"""Benchmark harness configuration.

Each benchmark regenerates one of the paper's tables or figures and
asserts the qualitative result the paper reports for it (who wins, by
roughly what factor).  Simulation results are shared through one
session-scoped :class:`ResultCache`, so the suite costs one simulation
per (workload, design) even though figures overlap heavily.

``REPRO_SCALE`` scales the workloads (default 1.0 — the calibrated
operating point; smaller values run faster but compress the effects).
"""

from __future__ import annotations

import pytest

from repro.experiments.common import ResultCache


@pytest.fixture(scope="session")
def cache() -> ResultCache:
    return ResultCache()


def run_once(benchmark, fn):
    """Benchmark a figure regeneration exactly once (they are minutes-long)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
