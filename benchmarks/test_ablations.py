"""Ablations of the design choices DESIGN.md calls out.

* FBT sizing (§4.3): a 16K-entry FBT covers one page per L2 line; an
  8K-entry table should already eliminate most invalidation overhead
  for these workloads, while a tiny table thrashes.
* Per-L1 invalidation filters (§4.2): without them every FBT
  eviction/shootdown flushes every L1.
* PTW concurrency (Table 1): 16 concurrent walkers vs a single one,
  measured where walks are actually exposed (VC without the FBT-as-TLB
  optimization).
"""

import dataclasses

import pytest

from repro.core.virtual_hierarchy import VirtualCacheHierarchy
from repro.system.config import SoCConfig
from repro.system.designs import FULL_VC, MMUDesign, VC_WITHOUT_OPT
from repro.system.run import simulate
from repro.workloads.registry import load

from conftest import run_once

WORKLOAD = "color_max"


def _run_vc(trace, config, fbt_entries, use_filters=True):
    cfg = dataclasses.replace(config, fbt_entries=fbt_entries,
                              per_cu_tlb_entries=None)
    hierarchy = VirtualCacheHierarchy(
        cfg, {0: trace.address_space.page_table},
        fbt_as_second_level_tlb=True,
        use_invalidation_filters=use_filters,
    )
    return simulate(trace, hierarchy, cfg, design=f"fbt{fbt_entries}")


def test_ablation_fbt_size(benchmark, cache):
    """Paper §4.3: 8K entries suffice; a tiny FBT causes invalidations."""
    trace = cache.trace(WORKLOAD)
    config = cache.config

    def sweep():
        return {
            entries: _run_vc(trace, config, entries)
            for entries in (1024, 8192, 16384)
        }

    results = run_once(benchmark, sweep)
    inval = {e: r.counters.get("vc.invalidations", 0) for e, r in results.items()}
    print(f"FBT invalidations by size: {inval}")

    # A tiny FBT thrashes; the provisioned sizes do not.
    assert inval[1024] > 10 * max(1, inval[16384])
    # 8K already eliminates most invalidation overhead (§4.3).
    assert inval[8192] <= inval[1024] // 5
    # Performance ordering follows.
    assert results[16384].cycles <= results[1024].cycles * 1.05


def test_ablation_invalidation_filter(benchmark, cache):
    """Without per-L1 filters, FBT evictions flush L1s indiscriminately."""
    trace = cache.trace(WORKLOAD)
    config = cache.config

    def both():
        with_f = _run_vc(trace, config, fbt_entries=1024, use_filters=True)
        without = _run_vc(trace, config, fbt_entries=1024, use_filters=False)
        return with_f, without

    with_f, without = run_once(benchmark, both)
    flushes_with = with_f.counters.get("vc.l1_flushes", 0)
    flushes_without = without.counters.get("vc.l1_flushes", 0)
    print(f"L1 flushes: filter={flushes_with}, no-filter={flushes_without}")
    # The filter eliminates (most) L1 flushes.
    assert flushes_without > 2 * max(1, flushes_with)


def test_ablation_ptw_concurrency(benchmark, cache):
    """16 concurrent walkers absorb walk bursts a single walker cannot."""
    trace = cache.trace("fw")  # big footprint → real shared-TLB misses
    config = cache.config

    def both():
        results = {}
        for threads in (1, 16):
            iommu = dataclasses.replace(config.iommu, ptw_threads=threads,
                                        shared_tlb_entries=512)
            cfg = dataclasses.replace(config, iommu=iommu,
                                      per_cu_tlb_entries=None)
            hierarchy = VirtualCacheHierarchy(
                cfg, {0: trace.address_space.page_table},
                fbt_as_second_level_tlb=False,  # expose the walks
            )
            results[threads] = simulate(trace, hierarchy, cfg,
                                        design=f"ptw{threads}")
        return results

    results = run_once(benchmark, both)
    print({t: r.cycles for t, r in results.items()})
    # Fewer walkers can never be faster; usually visibly slower.
    assert results[1].cycles >= results[16].cycles
