"""§5.3: energy-proxy event counts."""

from repro.experiments import energy

from conftest import run_once


def test_energy_proxies(benchmark, cache):
    result = run_once(benchmark, lambda: energy.run(cache))
    print(result.render())

    # The VC design removes per-CU TLBs entirely: 100% of per-access
    # TLB lookups disappear.
    assert result.tlb_lookup_reduction() == 1.0
    assert all(v == 0 for v in result.tlb_lookups_vc.values())

    # And the IOMMU is consulted substantially less overall — above all
    # by the workloads that generate the traffic.
    assert result.iommu_reduction() > 0.2
    assert result.iommu_reduction_high_bw() > 0.4
