"""Benchmarks for the §3.2/§4.3 extension studies.

* Dynamic synonym remapping (§4.3) on a synonym-heavy future workload.
* The multi-banked IOMMU TLB alternative (§3.2): banking by high-order
  VPN bits suffers conflicts that banking by low bits (or true
  multi-porting) avoids.
* BT-as-coherence-filter (§4.1): probe filtering against a warmed
  hierarchy.
"""

import dataclasses

from repro.core.virtual_hierarchy import VirtualCacheHierarchy
from repro.experiments import coherence
from repro.system.run import simulate
from repro.workloads.synthetic import synonym_stress

from conftest import run_once


def test_extension_synonym_remapping(benchmark, cache):
    """The SRT converts repeated synonym replays into cache hits."""
    config = cache.config

    def both():
        results = {}
        for enabled in (False, True):
            trace = synonym_stress(n_pages=512, n_aliases=3,
                                   n_accesses=20_000, seed=11)
            hierarchy = VirtualCacheHierarchy(
                config, {0: trace.address_space.page_table},
                enable_synonym_remapping=enabled,
            )
            results[enabled] = simulate(trace, hierarchy, config,
                                        design=f"srt={enabled}")
        return results

    results = run_once(benchmark, both)
    replays = {e: r.counters.get("vc.synonym_replays", 0)
               for e, r in results.items()}
    print(f"synonym replays: without SRT={replays[False]}, "
          f"with SRT={replays[True]}; "
          f"SRT remaps={results[True].counters.get('vc.srt_remaps', 0)}")
    assert replays[True] < 0.5 * replays[False]
    assert results[True].cycles <= results[False].cycles * 1.02


def test_extension_banked_iommu_tlb(benchmark, cache):
    """§3.2: high-order-bit banking conflicts squander the extra ports."""
    from repro.system.designs import MMUDesign
    trace = cache.trace("color_max")
    config = cache.config

    def sweep():
        results = {}
        for name, n_banks, select in (
            ("single-port", 1, "low"),
            ("banked-2-low", 2, "low"),
            ("banked-2-high", 2, "high"),
        ):
            iommu = dataclasses.replace(config.iommu, n_banks=n_banks,
                                        bank_select=select,
                                        shared_tlb_entries=16384)
            cfg = dataclasses.replace(config, iommu=iommu)
            design = MMUDesign(name=name, iommu_entries=16384)
            hierarchy = design.build(cfg, {0: trace.address_space.page_table})
            results[name] = simulate(trace, hierarchy, cfg, design=name)
        return results

    results = run_once(benchmark, sweep)
    cycles = {name: r.cycles for name, r in results.items()}
    print(f"banked IOMMU TLB cycles: {cycles}")
    # Two well-interleaved banks beat one port...
    assert cycles["banked-2-low"] < cycles["single-port"]
    # ...and beat (or at least match) conflict-prone high-bit banking.
    assert cycles["banked-2-low"] <= cycles["banked-2-high"] * 1.02


def test_extension_coherence_filtering(benchmark, cache):
    """§4.1: the BT filters probes to pages the GPU does not cache."""
    result = run_once(benchmark, lambda: coherence.run(cache))
    print(result.render())
    assert result.probes == result.filtered + result.forwarded
    # With a well-provisioned FBT most *touched* pages keep BT entries,
    # so page-level filtering catches only genuinely untouched frames...
    assert result.filter_rate > 0.08
    # ...while line-level information spares most forwarded probes an
    # actual L2 invalidation.
    assert result.l2_invalidations < result.forwarded
    assert result.forwarded > 0             # sharing traffic gets through
    assert result.l2_invalidations > 0
    assert result.reverse_translation_errors == 0
