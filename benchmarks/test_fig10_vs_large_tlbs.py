"""Figure 10: comparison with larger per-CU TLBs."""

from repro.experiments import fig10

from conftest import run_once


def test_fig10_vs_large_tlbs(benchmark, cache):
    result = run_once(benchmark, lambda: fig10.run(cache))
    print(result.render())

    # Paper: ~1.2x average speedup for the VC hierarchy over 128-entry
    # fully-associative per-CU TLBs + a 16K IOMMU TLB.  At this model's
    # reduced footprints a 128-entry TLB recovers more traffic than it
    # can on the paper's 100s-of-GB workloads, so the expected regime
    # here is "VC never loses, and wins where divergence persists"
    # (fw, fw_block, lud, mis) — see EXPERIMENTS.md, known deviations.
    assert result.average() >= 1.0

    # Some workloads are roughly at parity (the paper names bc,
    # fw_block, and lud) — large TLBs do filter some traffic.
    assert any(s < 1.1 for s in result.speedup.values())

    # But nothing should be dramatically *slower* with the VC.
    for w, s in result.speedup.items():
        assert s > 0.8, f"{w}: {s}"
