"""Figure 11: whole-hierarchy vs L1-only virtual caching."""

from repro.experiments import fig11

from conftest import run_once


def test_fig11_l1_only(benchmark, cache):
    result = run_once(benchmark, lambda: fig11.run(cache))
    print(result.render())

    l1_32 = result.average("L1-Only VC (32)")
    l1_128 = result.average("L1-Only VC (128)")
    full = result.average("VC With OPT")

    # L1-only virtual caching already speeds things up (paper: ~1.35x)...
    assert l1_32 > 1.0

    # ...a bigger per-CU TLB helps the L1-only design a bit more...
    assert l1_128 >= 0.95 * l1_32

    # ...but the whole hierarchy wins (paper: ~1.31x additional).
    assert full > l1_32
    assert full > l1_128
    assert result.full_vs_l1_only() > 1.05
