"""Figure 12 (Appendix): lifetimes of pages in the TLB and caches."""

from repro.experiments import fig12

from conftest import run_once


def test_fig12_lifetimes(benchmark, cache):
    result = run_once(benchmark, lambda: fig12.run(cache))
    print(result.render())

    assert len(result.tlb_residence_ns) > 100
    assert len(result.l2_active_ns) > 100

    # The paper's core observation: TLB entries die before cached data
    # stops being useful, and L2 data outlives L1 data.
    dead_tlb, l1_live, l2_live = result.survival_beyond_tlb(5000.0)
    assert dead_tlb > 0.7          # most TLB entries evicted by 5 µs
    assert l2_live > l1_live       # the L1/L2 gap of the figure
    assert l2_live > 0.1           # a meaningful share of L2 data still live

    # CDFs are monotone in the checkpoint horizon.
    for which in ("tlb", "l1", "l2"):
        values = [result.cdf_at(which, ns) for ns in fig12.CHECKPOINTS_NS]
        assert values == sorted(values)
