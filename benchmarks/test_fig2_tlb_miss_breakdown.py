"""Figure 2: per-CU TLB miss ratio and breakdown by data residence."""

from repro.experiments import fig2

from conftest import run_once


def test_fig2_tlb_miss_breakdown(benchmark, cache):
    result = run_once(benchmark, lambda: fig2.run(cache))
    print(result.render())

    # Paper: 56% average miss ratio at 32 entries.
    avg32 = result.average_miss_ratio(32)
    assert 0.35 <= avg32 <= 0.80, f"avg miss ratio {avg32}"

    # Paper: ~66% of misses filterable by the cache hierarchy at 32
    # entries, and still ~65% at 128 (the filter is not just TLB size).
    assert result.filterable_fraction(32) >= 0.45
    assert result.filterable_fraction(128) >= 0.40

    # Larger TLBs never increase the miss ratio.
    for w in result.workloads:
        assert result.miss_ratio[w]["32"] >= result.miss_ratio[w]["128"] - 1e-9
        assert result.miss_ratio[w]["128"] >= result.miss_ratio[w]["inf"] - 1e-9

    # Graph workloads (Pannotia) show higher miss ratios than the dense
    # traditional kernels, per the paper's Figure 2 split.
    graph = ["color_max", "color_maxmin", "mis", "pagerank_spmv", "bc"]
    dense = ["kmeans", "lud"]
    graph_avg = sum(result.miss_ratio[w]["32"] for w in graph) / len(graph)
    dense_avg = sum(result.miss_ratio[w]["32"] for w in dense) / len(dense)
    assert graph_avg > dense_avg

    # Breakdown fractions always partition the misses.
    for w in result.workloads:
        for size in ("32", "64", "128", "inf"):
            bd = result.breakdown[w][size]
            total = bd["l1_hit"] + bd["l2_hit"] + bd["l2_miss"]
            assert abs(total - 1.0) < 1e-9 or total == 0.0
