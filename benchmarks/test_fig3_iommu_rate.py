"""Figure 3: IOMMU TLB access-rate analysis."""

from repro.experiments import fig3
from repro.workloads.registry import HIGH_BANDWIDTH, LOW_BANDWIDTH

from conftest import run_once


def test_fig3_iommu_rate(benchmark, cache):
    result = run_once(benchmark, lambda: fig3.run(cache))
    print(result.render())

    rates = result.rates
    high = [rates[w].mean for w in HIGH_BANDWIDTH]
    low = [rates[w].mean for w in LOW_BANDWIDTH]

    # The high-translation-bandwidth group genuinely demands more.
    assert sum(high) / len(high) > 2 * (sum(low) / len(low))

    # Paper: roughly one access/cycle for the demanding workloads, with
    # bursts above the sustainable one-per-cycle port rate.
    assert max(high) > 0.5
    assert any(rates[w].maximum > 1.0 for w in HIGH_BANDWIDTH)

    # Bursts exceed means everywhere (the ±σ band of the figure).
    for w in rates:
        assert rates[w].maximum >= rates[w].mean
        assert rates[w].std >= 0.0

    # The sort order puts a graph workload first.
    assert result.sorted_workloads()[0] in HIGH_BANDWIDTH
