"""Figure 4: GPU address-translation overheads."""

from repro.experiments import fig4

from conftest import run_once


def test_fig4_translation_overhead(benchmark, cache):
    result = run_once(benchmark, lambda: fig4.run(cache))
    print(result.render())

    ideal = result.average("IDEAL MMU")
    small = result.average("Baseline 512")
    large = result.average("Baseline 16K")

    assert ideal == 1.0
    # Paper: ~1.77x average; accept the regime, not the digit.
    assert small >= 1.25, f"baseline overhead too small: {small}"
    # Paper's key negative result: capacity barely helps, because the
    # overhead is serialization at the port, not TLB misses.
    assert large >= 0.85 * small
    assert abs(large - small) < 0.5 * (small - 1.0) + 0.15

    # No workload runs faster under a real MMU than under IDEAL.
    for w in result.workloads:
        assert result.relative_time[w]["Baseline 512"] >= 0.95
