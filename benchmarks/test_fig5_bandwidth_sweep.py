"""Figure 5: serialization overhead vs IOMMU TLB peak bandwidth."""

from repro.experiments import fig5

from conftest import run_once


def test_fig5_bandwidth_sweep(benchmark, cache):
    result = run_once(benchmark, lambda: fig5.run(cache))
    print(result.render())

    overheads = {bw: result.serialization_overhead(bw) for bw in (1.0, 2.0, 3.0, 4.0)}

    # More bandwidth, less serialization — monotone (within noise).
    assert overheads[1.0] >= overheads[2.0] - 0.02
    assert overheads[2.0] >= overheads[3.0] - 0.02
    assert overheads[3.0] >= overheads[4.0] - 0.02

    # One access/cycle hurts badly; four accesses/cycle is near-ideal
    # (paper: overhead falls to ~8% and ~4% at 3 and 4 accesses/cycle).
    assert overheads[1.0] > 0.15
    assert overheads[4.0] < 0.15
    assert overheads[4.0] < 0.4 * overheads[1.0]
