"""Figure 8: bandwidth reduction at the IOMMU TLB."""

from repro.experiments import fig8
from repro.workloads.registry import HIGH_BANDWIDTH

from conftest import run_once


def test_fig8_filtering(benchmark, cache):
    result = run_once(benchmark, lambda: fig8.run(cache))
    print(result.render())

    # Takeaway 1: the hierarchy is an effective bandwidth filter — the
    # virtual hierarchy's average demand sits well below the baseline's.
    assert result.average_rate("vc") < 0.6 * result.average_rate("base")

    # Paper: VC demand averages below ~0.3/cycle (we accept < 0.5: the
    # scaled-down traces have proportionally more cold misses).
    assert result.average_rate("vc") < 0.5

    # Filtering helps precisely where it matters: every high-bandwidth
    # graph workload sees a large reduction.
    for w in HIGH_BANDWIDTH:
        if result.baseline[w].mean > 0.5:
            assert result.reduction(w) > 0.25, f"{w}: {result.reduction(w)}"
