"""Figure 9: performance of the Table 2 designs relative to IDEAL."""

from repro.experiments import fig9

from conftest import run_once


def test_fig9_performance(benchmark, cache):
    result = run_once(benchmark, lambda: fig9.run(cache))
    print(result.render())

    base_high = result.average("Baseline 512", "high")
    base_all = result.average("Baseline 512", "all")
    vc = result.average("VC W/O OPT", "high")
    vc_opt = result.average("VC With OPT", "high")

    # Paper: ~42% degradation for high-BW workloads (rel perf ~0.58) and
    # ~32% across all; we accept the regime.
    assert base_high < 0.85
    assert base_all < 0.95

    # The virtual hierarchy reaches (near-)ideal performance.
    assert vc_opt > 0.90
    assert vc_opt >= base_high + 0.10

    # The big shared TLB does not rescue the baseline...
    assert result.average("Baseline 16K", "high") < vc_opt

    # ...and the FBT-as-second-level-TLB optimization never hurts.
    assert vc_opt >= vc - 0.02

    # Low-bandwidth workloads are never degraded by the VC design
    # (§5.2: "there is no performance degradation").
    for w in result.all_workloads:
        if w not in result.high_bandwidth:
            assert result.performance[w]["VC With OPT"] > 0.9, w

    # §4.1: most shared-TLB misses are found in the FBT.
    assert result.average_fbt_hit_fraction() > 0.3
