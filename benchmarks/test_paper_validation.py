"""The complete paper-vs-measured validation.

Runs every experiment (sharing the session's result cache) and checks
the headline claim of each evaluated figure against the acceptance
bands in :mod:`repro.analysis.paper_targets`.  This is the one
benchmark that says, in a single table, how faithful the reproduction
is.
"""

from repro.analysis.paper_targets import (
    TARGETS,
    compare_all,
    collect_measurements,
    render_report,
)

from conftest import run_once

# Targets whose bands MUST hold for the reproduction to count; the rest
# are reported but allowed to drift at small REPRO_SCALE values.
MUST_HOLD = (
    "fig2.avg_miss_ratio_32",
    "fig2.filterable_32",
    "fig4.baseline512_relative_time",
    "fig4.large_tlb_gain",
    "fig8.vc_mean_rate",
    "fig9.baseline512_high_bw",
    "fig9.vc_opt_high_bw",
    "fig10.avg_speedup",
    "fig11.full_vs_l1_only",
    "fig12.tlb_dead_at_5us",
)


def test_paper_validation(benchmark, cache):
    measurements = run_once(benchmark, lambda: collect_measurements(cache))
    print(render_report(measurements))

    assert set(measurements) == set(TARGETS)
    comparisons = {c.target.key: c for c in compare_all(measurements)}
    failures = [key for key in MUST_HOLD if not comparisons[key].ok]
    assert not failures, f"out-of-band claims: {failures}"
    # Overall: the large majority of all recorded claims reproduce.
    n_ok = sum(1 for c in comparisons.values() if c.ok)
    assert n_ok >= int(0.8 * len(comparisons))
