"""Tables 1 and 2: configuration renders and value checks."""

from repro.experiments.tables import render_table1, render_table2
from repro.system.config import SoCConfig
from repro.system.designs import (
    BASELINE_16K,
    BASELINE_512,
    IDEAL_MMU,
    TABLE2_DESIGNS,
    VC_WITHOUT_OPT,
    VC_WITH_OPT,
)

from conftest import run_once


def test_table1_config(benchmark):
    text = run_once(benchmark, render_table1)
    cfg = SoCConfig()
    # The Table 1 values from the paper.
    assert cfg.n_cus == 16
    assert cfg.lanes_per_cu == 32
    assert cfg.frequency_ghz == 0.7
    assert cfg.l1.size_bytes == 32 * 1024 and not cfg.l1.write_back
    assert cfg.l2.size_bytes == 2 * 1024 * 1024 and cfg.l2.n_banks == 8
    assert cfg.l2.line_size == 128
    assert cfg.per_cu_tlb_entries == 32
    assert cfg.iommu.ptw_threads == 16
    assert cfg.iommu.pwc_size_bytes == 8192
    assert cfg.dram_bandwidth_gbps == 192.0
    assert "16 CUs" in text and "192 GB/s" in text


def test_table2_designs(benchmark):
    text = run_once(benchmark, render_table2)
    assert len(TABLE2_DESIGNS) == 5
    assert IDEAL_MMU.iommu_bandwidth == float("inf")
    assert BASELINE_512.iommu_entries == 512
    assert BASELINE_16K.iommu_entries == 16384
    assert VC_WITHOUT_OPT.per_cu_tlb_entries is None
    assert VC_WITH_OPT.fbt_as_second_level_tlb
    for design in (BASELINE_512, BASELINE_16K, VC_WITHOUT_OPT, VC_WITH_OPT):
        assert design.iommu_bandwidth == 1.0  # one access per cycle
    assert "VC With OPT" in text
