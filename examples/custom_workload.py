#!/usr/bin/env python
"""Domain example: bring your own workload.

Shows the full public API for evaluating a *custom* kernel against the
MMU designs: lay out data structures in a simulated address space,
record the per-lane addresses your kernel would issue (here: a sparse
embedding-table lookup, the kind of gather that dominates recommender
inference), and run it through the Table 2 designs.

The embedding gather is deliberately pathological for TLBs — every lane
reads a different row of a multi-megabyte table — yet row popularity is
Zipf-skewed, so the caches keep the hot rows. Exactly the regime where
the paper says a virtual cache hierarchy shines.

Run with::

    python examples/custom_workload.py
"""

import numpy as np

from repro import (
    BASELINE_512,
    IDEAL_MMU,
    TABLE2_DESIGNS,
    SoCConfig,
    simulate,
)
from repro.analysis.report import format_table
from repro.memsys.address_space import AddressSpace
from repro.workloads.device import DeviceArray, TraceBuilder, warp_chunks

N_CUS = 16
LANES = 32


def build_embedding_trace(
    n_rows: int = 200_000,
    row_bytes: int = 64,
    n_lookups: int = 48_000,
    zipf_exponent: float = 1.2,
    seed: int = 7,
):
    """An embedding-table inference kernel as a memory trace."""
    rng = np.random.default_rng(seed)
    space = AddressSpace(asid=0)
    tb = TraceBuilder(n_cus=N_CUS)

    table = DeviceArray(space, n_rows * (row_bytes // 4), 4, "embedding_table")
    indices = DeviceArray(space, n_lookups, 4, "lookup_indices")
    output = DeviceArray(space, n_lookups * (row_bytes // 4), 4, "output")

    # Zipf-popular rows, scattered over the table (as hashed IDs are).
    ranks = np.arange(1, n_rows + 1) ** (-zipf_exponent)
    cdf = np.cumsum(ranks / ranks.sum())
    perm = rng.permutation(n_rows)
    rows = perm[np.searchsorted(cdf, rng.random(n_lookups))]

    for cu, start, count in warp_chunks(n_lookups, N_CUS):
        batch = rows[start:start + count]
        # Load the indices (streaming, coalesced)...
        tb.emit(cu, indices.addrs(range(start, start + count)))
        # ...gather one embedding row per lane (the divergent access)...
        tb.emit(cu, table.addrs(batch * (row_bytes // 4)))
        # ...and store the pooled result.
        tb.emit(cu, output.addrs(range(start, start + count)), is_write=True)

    return tb.build("embedding_lookup", space, issue_interval=40.0,
                    suite="custom", high_bandwidth=True)


def main() -> None:
    trace = build_embedding_trace()
    print(f"embedding workload: {trace.n_instructions} instructions, "
          f"{trace.footprint_pages()} pages, "
          f"divergence {trace.mean_divergence():.1f}\n")

    config = SoCConfig()
    page_tables = {0: trace.address_space.page_table}
    rows = []
    ideal_cycles = None
    for design in TABLE2_DESIGNS:
        hierarchy = design.build(config, page_tables)
        result = simulate(trace, hierarchy, design.soc_config(config),
                          design=design.name)
        if ideal_cycles is None:
            ideal_cycles = result.cycles  # IDEAL MMU is first in Table 2
        rows.append([
            design.name,
            f"{result.cycles:,.0f}",
            f"{ideal_cycles / result.cycles:.2f}",
            f"{result.counters.get('iommu.accesses', 0):,}",
        ])
    print(format_table(
        ["design", "cycles", "perf vs IDEAL", "IOMMU TLB accesses"], rows,
    ))


if __name__ == "__main__":
    main()
