#!/usr/bin/env python
"""Domain example: sizing an MMU for graph-analytics GPUs.

The paper's motivation is that emerging graph workloads (Pannotia)
hammer translation hardware far harder than traditional dense kernels.
This example plays the role of an SoC architect: for the graph-analytics
kernels, it sweeps the *conventional* remedies (bigger per-CU TLBs;
bigger shared IOMMU TLB; more shared-TLB bandwidth) and compares each
against simply virtualizing the cache hierarchy — reproducing the §3.2
argument that the conventional knobs don't scale.

Run with::

    python examples/graph_analytics_sweep.py [scale]
"""

import sys

from repro import IDEAL_MMU, MMUDesign, VC_WITH_OPT, SoCConfig, simulate
from repro.analysis.metrics import mean
from repro.analysis.report import format_table
from repro.workloads.registry import load

GRAPH_KERNELS = ("pagerank", "color_max", "mis", "bfs")

# §3.2's conventional mechanisms, plus the paper's proposal.
CANDIDATES = [
    MMUDesign(name="baseline (32-entry TLBs, 512 IOMMU)", iommu_entries=512),
    MMUDesign(name="bigger per-CU TLBs (128)", per_cu_tlb_entries=128,
              iommu_entries=512),
    MMUDesign(name="bigger IOMMU TLB (16K)", iommu_entries=16384),
    MMUDesign(name="2x IOMMU TLB bandwidth", iommu_entries=512,
              iommu_bandwidth=2.0),
    MMUDesign(name="all three combined", per_cu_tlb_entries=128,
              iommu_entries=16384, iommu_bandwidth=2.0),
    VC_WITH_OPT,
]


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5
    config = SoCConfig()

    per_design = {d.name: [] for d in CANDIDATES}
    for kernel in GRAPH_KERNELS:
        trace = load(kernel, scale=scale)
        page_tables = {0: trace.address_space.page_table}
        ideal = simulate(trace, IDEAL_MMU.build(config, page_tables),
                         IDEAL_MMU.soc_config(config), design="ideal")
        print(f"{kernel}: ideal = {ideal.cycles:,.0f} cycles")
        for design in CANDIDATES:
            hierarchy = design.build(config, page_tables)
            result = simulate(trace, hierarchy, design.soc_config(config),
                              design=design.name)
            per_design[design.name].append(ideal.cycles / result.cycles)

    print()
    rows = [
        [name, *(f"{v:.2f}" for v in values), f"{mean(values):.2f}"]
        for name, values in per_design.items()
    ]
    print(format_table(
        ["design (perf relative to IDEAL)", *GRAPH_KERNELS, "mean"], rows,
    ))
    print(
        "\nThe conventional knobs each buy a little; the virtual cache\n"
        "hierarchy gets essentially all of it — with hardware that scales\n"
        "with cache capacity instead of workload footprint (§3.3)."
    )


if __name__ == "__main__":
    main()
