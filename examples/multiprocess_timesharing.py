#!/usr/bin/env python
"""Domain example: two processes time-sharing a virtually-cached GPU.

§4.3 ("Future GPU System Support") argues multi-process GPUs need no
cache flushes on context switches: cache lines are ASID-tagged, so
homonyms (the same virtual address meaning different things in each
process) cannot alias, and cross-process shared memory is just another
synonym the backward table resolves to one leading address.

This example builds two processes with *identical* virtual layouts
(true homonyms) plus one physically shared read-only region, then
context-switches between them on one virtual cache hierarchy:

* process A runs and warms the caches;
* process B runs with A's lines still resident — correctness via ASID
  tags, no flush;
* A runs again and re-hits its own still-cached data.

Run with::

    python examples/multiprocess_timesharing.py
"""

from repro.core.virtual_hierarchy import VirtualCacheHierarchy
from repro.system.config import SoCConfig
from repro.system.run import simulate
from repro.workloads.synthetic import multiprocess_homonyms


def main() -> None:
    workload = multiprocess_homonyms(
        n_private_pages=192, n_shared_pages=48, n_accesses=6000)
    config = SoCConfig()
    tables = {space.asid: space.page_table for space in workload.spaces}
    hierarchy = VirtualCacheHierarchy(config, tables,
                                      fault_on_rw_synonym=False)

    trace_a, trace_b = workload.traces
    print("two processes, same virtual base addresses (homonyms), "
          "one shared region (cross-ASID synonyms)\n")

    schedule = [(trace_a, 0), (trace_b, 1), (trace_a, 0)]
    clock = 0.0
    for i, (trace, asid) in enumerate(schedule):
        before_lines = len(hierarchy.l2)
        before_hits = hierarchy.counters["vc.l1_hits"] + \
            hierarchy.counters["vc.l2_hits"]
        result = simulate(trace, hierarchy, config, asid=asid,
                          design=f"slice{i}", start_time=clock)
        clock += result.cycles
        hits = (hierarchy.counters["vc.l1_hits"]
                + hierarchy.counters["vc.l2_hits"]) - before_hits
        print(f"slice {i}: process {asid} ran {result.requests} requests in "
              f"{result.cycles:,.0f} cycles — L2 lines before: {before_lines}, "
              f"cache hits this slice: {hits}")

    flushes = hierarchy.counters.as_dict().get("vc.l1_flushes", 0)
    synonyms = hierarchy.fbt.counters["fbt.synonym_accesses"]
    print(f"\ncontext switches performed: {len(schedule) - 1}")
    print(f"cache flushes required:     {flushes}  (ASID tags make them unnecessary)")
    print(f"cross-process synonym accesses resolved by the BT: {synonyms}")

    # Prove homonym isolation: the same VA is cached once per ASID, with
    # different backing data.
    va = workload.spaces[0].mappings[0].base_va
    from repro.core.virtual_hierarchy import line_key
    cached = [asid for asid in (0, 1)
              if hierarchy.l2.contains(line_key(asid, va // 128))]
    print(f"virtual address {va:#x} cached under ASIDs: {cached} "
          f"(no aliasing between processes)")


if __name__ == "__main__":
    main()
