#!/usr/bin/env python
"""Quickstart: one workload, three MMU designs.

Runs PageRank (a Pannotia-style irregular graph workload) through the
IDEAL MMU, the realistic baseline (32-entry per-CU TLBs + a 512-entry
shared IOMMU TLB limited to one access per cycle), and the paper's
virtual cache hierarchy with the FBT as a second-level TLB — then prints
the numbers that motivate the whole paper: how often the private TLBs
miss, how hard the shared IOMMU TLB is hammered, and how much of that
traffic the virtual caches filter.

Run with::

    python examples/quickstart.py [workload] [scale]
"""

import sys

from repro import BASELINE_512, IDEAL_MMU, VC_WITH_OPT, SoCConfig, simulate
from repro.analysis.report import format_table
from repro.workloads.registry import WORKLOADS, load


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "pagerank"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5
    if workload not in WORKLOADS:
        raise SystemExit(f"unknown workload {workload!r}; "
                         f"choose from: {', '.join(sorted(WORKLOADS))}")

    print(f"generating {workload} trace (scale {scale}) ...")
    trace = load(workload, scale=scale)
    print(f"  {trace.n_instructions} memory instructions, "
          f"{trace.footprint_pages()} 4KB pages touched, "
          f"mean divergence {trace.mean_divergence():.1f} lines/instruction\n")

    config = SoCConfig()
    page_tables = {0: trace.address_space.page_table}
    results = {}
    for design in (IDEAL_MMU, BASELINE_512, VC_WITH_OPT):
        hierarchy = design.build(config, page_tables)
        results[design.name] = simulate(
            trace, hierarchy, design.soc_config(config), design=design.name
        )
        print(f"simulated {design.name}: {results[design.name].cycles:,.0f} cycles")

    ideal = results["IDEAL MMU"]
    rows = []
    for name, r in results.items():
        rows.append([
            name,
            f"{r.cycles:,.0f}",
            f"{ideal.cycles / r.cycles:.2f}",
            f"{r.per_cu_tlb_miss_ratio():.2f}",
            f"{r.counters.get('iommu.accesses', 0):,}",
            f"{r.iommu_accesses_per_cycle():.3f}",
        ])
    print()
    print(format_table(
        ["design", "cycles", "perf vs IDEAL", "per-CU TLB miss ratio",
         "IOMMU TLB accesses", "IOMMU acc/cycle"],
        rows,
    ))

    base = results["Baseline 512"]
    vc = results["VC With OPT"]
    filtered = 1 - vc.counters.get("iommu.accesses", 1) / max(
        1, base.counters.get("iommu.accesses", 1))
    if filtered >= 0:
        print(f"\nThe virtual cache hierarchy filtered "
              f"{filtered * 100:.0f}% of the shared-TLB traffic and runs "
              f"{vc.speedup_over(base):.2f}x faster than the baseline.")
    else:
        print(f"\nStreaming workload: the virtual hierarchy translates per "
              f"cold L2 miss where a sequential TLB coped, so its absolute "
              f"shared-TLB traffic is higher — but demand stays far below "
              f"the port limit ({vc.iommu_accesses_per_cycle():.2f}/cycle) "
              f"and performance is unchanged "
              f"({vc.speedup_over(base):.2f}x vs baseline). "
              f"Try a graph workload (pagerank, mis, color_max) to see "
              f"the filtering effect.")


if __name__ == "__main__":
    main()
