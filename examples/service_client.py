#!/usr/bin/env python
"""The simulation service, end to end: submit → poll → fetch.

Starts an :class:`~repro.service.server.ExperimentService` in-process
(the same server ``repro-experiment serve`` runs), then drives it with
the stdlib :class:`~repro.service.client.ServiceClient`:

1. submit an asynchronous job for a small experiment wave,
2. poll it until the batch of simulations lands,
3. fetch the results with their cache-tier provenance, and
4. repeat the same request — this time every point is answered from
   the in-process memo with **zero new simulations**, the paper's
   bandwidth-filtering argument applied to the simulation fleet
   itself.

Run with::

    python examples/service_client.py [scale]

Against a real server, replace ``start_in_thread()`` with the address
printed by ``repro-experiment serve --port 0``.
"""

import sys
import tempfile

from repro.service import ExperimentService, ServiceClient

POINTS = [
    {"workload": "bfs", "design": "ideal-mmu"},
    {"workload": "bfs", "design": "baseline-512"},
    {"workload": "bfs", "design": "vc-with-opt"},
]


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.05
    with tempfile.TemporaryDirectory(prefix="repro-service-") as cache_dir:
        service = ExperimentService(port=0, jobs=2, scale=scale,
                                    cache_dir=cache_dir)
        host, port = service.start_in_thread()
        print(f"service listening on http://{host}:{port} "
              f"(scale {scale}, disk cache {cache_dir})")
        try:
            with ServiceClient(host, port) as client:
                job_id = client.submit(POINTS)
                print(f"submitted job {job_id} ({len(POINTS)} points); "
                      f"polling ...")
                reply = client.wait(job_id)
                print(f"job finished in {reply.wall_seconds:.2f}s "
                      f"({reply.simulations_run_total} simulations ran):")
                for point in reply.points:
                    print(f"  {point.design:<22} {point.cycles:>14,.0f} "
                          f"cycles   [{point.tier}]")

                again = client.simulate(POINTS)
                print("\nsame request again:")
                for point in again.points:
                    print(f"  {point.design:<22} {point.cycles:>14,.0f} "
                          f"cycles   [{point.tier}]")
                new_sims = (again.simulations_run_total
                            - reply.simulations_run_total)
                print(f"\n{new_sims} new simulations — the cache tiers "
                      f"filtered every repeated point before it reached "
                      f"the process pool.")
                health = client.healthz()
                print(f"server health: {health.status}, "
                      f"{health.simulations_run} simulations total, "
                      f"{health.pool['waves_run']} waves")
        finally:
            service.shutdown()
        print("service drained cleanly")


if __name__ == "__main__":
    main()
