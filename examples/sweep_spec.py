#!/usr/bin/env python
"""One SweepSpec, every entry point: validate → run → re-run → serve.

Builds a declarative :class:`~repro.experiments.sweepspec.SweepSpec`
programmatically (the same JSON document ``repro-experiment sweep``
reads and ``POST /v1/sweep`` accepts — see ``docs/SWEEPSPEC.md``), then:

1. shows strict validation rejecting a bad spec with a *typed* error,
2. runs the spec cold through a fresh result cache,
3. runs the identical spec again — **zero** new simulations, every
   point filtered by the cache before it reaches the simulator, and
4. submits the very same spec to an in-process service's ``/v1/sweep``,
   where it is journal-backed and survives restarts.

Run with::

    python examples/sweep_spec.py [scale]
"""

import sys
import tempfile

from repro.experiments.common import ResultCache
from repro.experiments.sweepspec import (
    SweepSpec,
    UnknownDesignError,
    run_sweep,
)
from repro.service import ExperimentService, ServiceClient


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.05

    # -- 1. strict validation: a typo is a typed error, not a silent run
    try:
        SweepSpec.grid(["bfs"], ["basline-512"])  # note the typo
    except UnknownDesignError as exc:
        print(f"rejected as {type(exc).__name__}:\n  {exc}\n")

    spec = SweepSpec.grid(
        ["bfs", "kmeans"],
        ["ideal-mmu", "baseline-512", "vc-with-opt"],
        scale=scale, name="example-sweep")
    print(f"spec {spec.name!r}: {len(spec.resolved_points())} points, "
          f"fingerprint {spec.fingerprint()[:12]}")
    print(spec.to_json())

    with tempfile.TemporaryDirectory(prefix="repro-sweep-") as cache_dir:
        cache = ResultCache(cache_dir=cache_dir)

        # -- 2. cold: every point simulates
        cold = run_sweep(spec, cache)
        print(cold.render())

        # -- 3. warm: the identical plan re-runs without simulating
        warm = run_sweep(SweepSpec.from_json(spec.to_json()), cache)
        assert warm.simulations_run == 0, warm.simulations_run
        assert warm.spec.fingerprint() == spec.fingerprint()
        print(f"\nsame spec again: {warm.simulations_run} new simulations "
              f"— the cache filtered all {len(warm.points)} points.\n")

        # -- 4. the same document over the wire, as a durable job
        service = ExperimentService(port=0, jobs=2, scale=scale,
                                    cache_dir=cache_dir)
        host, port = service.start_in_thread()
        print(f"service listening on http://{host}:{port}")
        try:
            with ServiceClient(host, port) as client:
                job_id = client.sweep(spec)
                print(f"submitted sweep job {job_id}; polling ...")
                reply = client.wait(job_id)
                print(f"job finished "
                      f"({reply.simulations_run_total} simulations ran — "
                      f"the disk cache is shared with the local runs):")
                for point in reply.points:
                    print(f"  {point.workload:<8} {point.design:<22} "
                          f"{point.cycles:>14,.0f} cycles   [{point.tier}]")
        finally:
            service.shutdown()
        print("service drained cleanly")


if __name__ == "__main__":
    main()
