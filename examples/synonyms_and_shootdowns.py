#!/usr/bin/env python
"""Domain example: virtual-memory corner cases on a virtual cache hierarchy.

The hard part of virtual caching was never the happy path — it is
synonyms, TLB shootdowns, and physically-addressed coherence.  This
example drives each §4.1/§4.2 mechanism of the forward-backward table
directly and prints what the hardware does:

* read-only synonyms: detected at the BT and replayed with the leading
  virtual address (no duplication in the caches);
* read-write synonyms: conservatively faulted (GPUs lack precise
  exceptions);
* single-entry TLB shootdown: filtered by the FT when nothing is
  cached, selective invalidation (bit vector) when something is;
* CPU coherence probes: reverse-translated through the BT, or filtered
  outright when the GPU caches nothing from the page.

Run with::

    python examples/synonyms_and_shootdowns.py
"""

from repro.core.virtual_hierarchy import VirtualCacheHierarchy, line_key
from repro.gpu.coalescer import CoalescedRequest
from repro.memsys.address_space import AddressSpace
from repro.memsys.addressing import line_address, page_number
from repro.memsys.directory import CoherenceProbe, Directory
from repro.memsys.permissions import Permissions, ReadWriteSynonymFault
from repro.system.config import SoCConfig


def read(h, cu, va, now):
    return h.access(cu, CoalescedRequest(line_address(va), False, 1), now)


def write(h, cu, va, now):
    return h.access(cu, CoalescedRequest(line_address(va), True, 1), now)


def main() -> None:
    config = SoCConfig()
    space = AddressSpace(asid=0)
    h = VirtualCacheHierarchy(config, {0: space.page_table})

    # -- read-only synonyms ------------------------------------------------
    shared = space.mmap(2, permissions=Permissions.READ_ONLY)
    alias = space.map_synonym(shared)
    print(f"mapped {shared.n_pages} read-only pages at {shared.base_va:#x} "
          f"with a synonym at {alias.base_va:#x}")

    t = read(h, 0, shared.base_va, 0.0)
    t = read(h, 1, alias.base_va, t)  # synonymous access from another CU
    replays = h.counters["vc.synonym_replays"]
    lead = line_key(0, line_address(shared.base_va))
    other = line_key(0, line_address(alias.base_va))
    print(f"  synonym replays: {replays}; "
          f"leading line cached: {h.l2.contains(lead)}, "
          f"alias line cached: {h.l2.contains(other)} "
          f"(no duplication — the BT enforces one leading address)")

    # -- read-write synonyms -------------------------------------------------
    rw = space.mmap(1)
    rw_alias = space.map_synonym(rw)
    t = write(h, 0, rw.base_va, t)
    try:
        read(h, 1, rw_alias.base_va, t)
        print("  ERROR: read-write synonym went undetected!")
    except ReadWriteSynonymFault as fault:
        print(f"  read-write synonym correctly faulted: {fault}")

    # -- TLB shootdown ----------------------------------------------------------
    vpn = page_number(shared.base_va)
    print(f"\nshootdown of cached page {vpn:#x}: "
          f"{'invalidated' if h.shootdown(0, vpn, t) else 'filtered'}")
    print(f"shootdown of never-cached page 0x999: "
          f"{'invalidated' if h.shootdown(0, 0x999, t) else 'filtered by the FT'}")
    print(f"L1 flushes so far: {h.counters['vc.l1_flushes']} "
          f"(invalidation filters spare the untouched CUs)")

    # -- coherence probes ---------------------------------------------------------
    directory = Directory()
    data = space.mmap(1)
    t = read(h, 0, data.base_va, t)
    pa_line = space.translate(data.base_va) // config.line_size
    directory.record_gpu_fill(pa_line)

    probe = h.handle_probe(directory.make_probe(pa_line), t)
    print(f"\nprobe to cached physical line {pa_line:#x}: "
          f"forwarded as virtual line {probe.forwarded_virtual_line:#x}")
    probe2 = h.handle_probe(directory.make_probe(0xABCDE), t)
    print(f"probe to uncached physical line 0xabcde: "
          f"{'filtered by the BT' if probe2.filtered else 'forwarded'}")
    print(f"\nFBT stats: {h.fbt.counters.as_dict()}")


if __name__ == "__main__":
    main()
