"""repro — Filtering Translation Bandwidth with Virtual Caching (ASPLOS 2018).

A trace-driven GPU memory-system simulator reproducing Yoon, Lowe-Power
and Sohi's virtual cache hierarchy: baseline per-CU-TLB + IOMMU
translation, the forward-backward table (FBT), whole-hierarchy and
L1-only virtual caching, 15 Rodinia/Pannotia-like workloads, and
experiment drivers regenerating every table and figure of the paper.

Quick start::

    from repro import quickstart
    result = quickstart("pagerank")

or at a lower level::

    from repro.workloads.registry import load
    from repro.system import SoCConfig, simulate, BASELINE_512, VC_WITH_OPT

    trace = load("pagerank", scale=0.25)
    config = SoCConfig()
    tables = {0: trace.address_space.page_table}
    base = simulate(trace, BASELINE_512.build(config, tables),
                    BASELINE_512.soc_config(config))
    vc = simulate(trace, VC_WITH_OPT.build(config, tables),
                  VC_WITH_OPT.soc_config(config))
    print(vc.speedup_over(base))
"""

from repro.system.config import SoCConfig
from repro.system.designs import (
    BASELINE_16K,
    BASELINE_512,
    BASELINE_LARGE_PER_CU,
    IDEAL_MMU,
    L1_ONLY_VC_128,
    L1_ONLY_VC_32,
    MMUDesign,
    TABLE2_DESIGNS,
    VC_WITHOUT_OPT,
    VC_WITH_OPT,
)
from repro.obs import (
    JsonLinesTracer,
    MetricsRegistry,
    Observability,
    Profiler,
    RecordingTracer,
)
from repro.system.run import SimulationResult, simulate

__version__ = "1.0.0"


def quickstart(workload: str = "pagerank", scale: float = 0.25):
    """Run one workload through the ideal, baseline, and VC designs.

    Returns a dict of design name → :class:`SimulationResult`.
    """
    from repro.workloads.registry import load

    trace = load(workload, scale=scale)
    config = SoCConfig()
    tables = {0: trace.address_space.page_table}
    results = {}
    for design in (IDEAL_MMU, BASELINE_512, VC_WITH_OPT):
        hierarchy = design.build(config, tables)
        results[design.name] = simulate(
            trace, hierarchy, design.soc_config(config), design=design.name
        )
    return results


__all__ = [
    "SoCConfig", "MMUDesign", "TABLE2_DESIGNS",
    "IDEAL_MMU", "BASELINE_512", "BASELINE_16K", "BASELINE_LARGE_PER_CU",
    "VC_WITHOUT_OPT", "VC_WITH_OPT", "L1_ONLY_VC_32", "L1_ONLY_VC_128",
    "SimulationResult", "simulate", "quickstart",
    "Observability", "MetricsRegistry", "Profiler",
    "JsonLinesTracer", "RecordingTracer",
]
