"""Metrics aggregation and plain-text report rendering."""

from repro.analysis.metrics import (
    average_across_workloads,
    fbt_hit_fraction,
    geomean,
    mean,
    relative_performance,
    speedups,
    translation_filter_rate,
)
from repro.analysis.report import bar, bar_chart, format_table, section, stacked_bar

__all__ = [
    "average_across_workloads", "fbt_hit_fraction", "geomean", "mean",
    "relative_performance", "speedups", "translation_filter_rate",
    "bar", "bar_chart", "format_table", "section", "stacked_bar",
]

from repro.analysis.calibration import (  # noqa: E402
    OperatingPoint,
    calibration_report,
    measure,
    recommend_interval,
)
from repro.analysis.paper_targets import (  # noqa: E402
    TARGETS,
    collect_measurements,
    compare_all,
    render_report,
)

__all__ += [
    "OperatingPoint", "calibration_report", "measure", "recommend_interval",
    "TARGETS", "collect_measurements", "compare_all", "render_report",
]
