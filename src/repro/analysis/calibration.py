"""Workload calibration harness.

The trace-driven model matches the paper's *regimes*, not its cycle
counts; the knob that anchors a workload in the right regime is its
``issue_interval`` — the compute cycles between memory instructions,
i.e. the arithmetic-intensity of the kernel.  Given a target shared-TLB
demand λ (misses per cycle, the quantity Figure 3 plots), this module
measures a workload and recommends the interval that produces it:

    ideal_cycles(interval) ≈ (instructions × interval + extra_requests) / n_CUs
    λ(interval) = tlb_misses / ideal_cycles(interval)

`calibrate` inverts that relation; `measure` reports the achieved
operating point so a recalibration can be verified.  This is exactly
the procedure that set the intervals baked into
:mod:`repro.workloads.pannotia` and :mod:`repro.workloads.rodinia`
(see DESIGN.md §6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.analysis.report import format_table
from repro.system.config import SoCConfig
from repro.system.designs import BASELINE_512, IDEAL_MMU, VC_WITH_OPT
from repro.system.run import simulate
from repro.workloads.trace import Trace


__all__ = [
    "OperatingPoint",
    "calibration_report",
    "measure",
    "recommend_interval",
]


@dataclass
class OperatingPoint:
    """A workload's measured translation-bandwidth operating point."""

    workload: str
    issue_interval: float
    instructions: int
    requests: int
    tlb_misses: int
    vc_translations: int
    ideal_cycles: float
    baseline_cycles: float

    @property
    def demand(self) -> float:
        """Baseline shared-TLB demand λ (misses per ideal cycle)."""
        return self.tlb_misses / self.ideal_cycles if self.ideal_cycles else 0.0

    @property
    def vc_demand(self) -> float:
        """Virtual-hierarchy demand (translations per ideal cycle)."""
        return (self.vc_translations / self.ideal_cycles
                if self.ideal_cycles else 0.0)

    @property
    def baseline_slowdown(self) -> float:
        return (self.baseline_cycles / self.ideal_cycles
                if self.ideal_cycles else 0.0)

    @property
    def filter_rate(self) -> float:
        """Fraction of baseline translation traffic the VC removes."""
        if self.tlb_misses == 0:
            return 0.0
        return 1.0 - self.vc_translations / self.tlb_misses

    def row(self):
        return [self.workload, f"{self.issue_interval:.0f}",
                f"{self.demand:.2f}", f"{self.vc_demand:.2f}",
                f"{self.baseline_slowdown:.2f}x", f"{self.filter_rate:.2f}"]


def measure(trace: Trace, config: Optional[SoCConfig] = None) -> OperatingPoint:
    """Measure a trace's operating point (three simulations)."""
    config = config if config is not None else SoCConfig()
    tables = {trace.address_space.asid: trace.address_space.page_table}
    ideal = simulate(trace, IDEAL_MMU.build(config, tables),
                     IDEAL_MMU.soc_config(config))
    base = simulate(trace, BASELINE_512.build(config, tables),
                    BASELINE_512.soc_config(config))
    vc = simulate(trace, VC_WITH_OPT.build(config, tables),
                  VC_WITH_OPT.soc_config(config))
    return OperatingPoint(
        workload=trace.name,
        issue_interval=trace.issue_interval,
        instructions=trace.n_instructions,
        requests=base.requests,
        tlb_misses=base.counters.get("tlb.misses", 0),
        vc_translations=vc.counters.get("iommu.accesses", 0),
        ideal_cycles=ideal.cycles,
        baseline_cycles=base.cycles,
    )


def recommend_interval(
    point: OperatingPoint,
    target_demand: float,
    n_cus: int = 16,
    minimum: float = 4.0,
    max_vc_demand: Optional[float] = 0.45,
) -> float:
    """The issue interval putting ``point``'s workload at ``target_demand``.

    Uses the linear issue model: total issue cycles ≈ instructions ×
    interval + (requests − instructions), spread over ``n_cus``.  When
    ``max_vc_demand`` is set, the interval is also stretched until the
    virtual hierarchy's own demand stays under it (so VC ≈ ideal holds,
    as the paper reports even for the streaming workloads).
    """
    if target_demand <= 0:
        raise ValueError("target demand must be positive")
    extra = max(0, point.requests - point.instructions)

    def interval_for(total_translations: float, demand: float) -> float:
        ideal_target = total_translations / demand
        return (ideal_target * n_cus - extra) / max(1, point.instructions)

    interval = interval_for(point.tlb_misses, target_demand)
    if max_vc_demand is not None and point.vc_translations:
        interval = max(interval,
                       interval_for(point.vc_translations, max_vc_demand))
    return max(minimum, interval)


def calibration_report(points: Dict[str, OperatingPoint]) -> str:
    """A table of operating points for a set of measured workloads."""
    rows = [p.row() for p in points.values()]
    return format_table(
        ["workload", "interval", "λ baseline", "λ VC", "slowdown",
         "filter rate"],
        rows,
        title="Calibration operating points",
    )
