"""Aggregation helpers over simulation results.

The paper reports arithmetic means over workload groups (e.g.,
"Average(High BW)", "Average(ALL)" in Figure 9) and ratios of execution
times.  These helpers keep that arithmetic in one place.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Sequence

from repro.system.run import SimulationResult


__all__ = [
    "average_across_workloads",
    "fbt_hit_fraction",
    "geomean",
    "mean",
    "relative_performance",
    "speedups",
    "translation_filter_rate",
]

def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (0.0 for empty input)."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def geomean(values: Sequence[float]) -> float:
    """Geometric mean (0.0 for empty input); values must be positive."""
    values = list(values)
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def relative_performance(
    results: Mapping[str, SimulationResult],
    baseline: str,
) -> Dict[str, float]:
    """Performance of each design relative to ``baseline``.

    Returns ``baseline_time / design_time`` per design — 1.0 means "as
    fast as the baseline", <1 slower, >1 faster (the convention of
    Figure 9, where the IDEAL MMU is the 1.0 reference).
    """
    if baseline not in results:
        raise KeyError(f"baseline design {baseline!r} not in results")
    ref = results[baseline]
    return {
        name: ref.cycles / result.cycles if result.cycles else float("inf")
        for name, result in results.items()
    }


def speedups(
    results: Mapping[str, SimulationResult],
    baseline: str,
) -> Dict[str, float]:
    """Speedup of each design over ``baseline`` (Figures 10 and 11)."""
    return relative_performance(results, baseline)


def average_across_workloads(
    per_workload: Mapping[str, Mapping[str, float]],
    workloads: Iterable[str] = None,
) -> Dict[str, float]:
    """Average a {workload → {design → value}} table over workloads."""
    names = list(workloads) if workloads is not None else list(per_workload)
    if not names:
        return {}
    designs: List[str] = list(per_workload[names[0]])
    return {
        design: mean([per_workload[w][design] for w in names])
        for design in designs
    }


def translation_filter_rate(
    baseline: SimulationResult, virtual: SimulationResult
) -> float:
    """Fraction of baseline shared-TLB traffic the VC hierarchy removed."""
    base_traffic = baseline.counters.get("iommu.accesses", 0)
    if base_traffic == 0:
        return 0.0
    vc_traffic = virtual.counters.get("iommu.accesses", 0)
    return 1.0 - vc_traffic / base_traffic


def fbt_hit_fraction(result: SimulationResult) -> float:
    """Of shared-TLB misses, the fraction the FBT satisfied (§4.1: ≈74%)."""
    misses = result.counters.get("iommu.tlb_misses", 0)
    if misses == 0:
        return 0.0
    return result.counters.get("iommu.fbt_hits", 0) / misses
