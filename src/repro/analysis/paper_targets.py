"""The paper's quantitative claims, as checkable data.

Every headline number from the evaluation is recorded here with an
acceptance band.  Absolute cycle counts cannot transfer from the
authors' gem5-gpu testbed to this trace-driven model, so the bands
assert the *regime* — who wins and by roughly what factor — following
the reproduction contract in DESIGN.md.

``repro-experiment``'s figures and the EXPERIMENTS.md generator compare
measured values against these targets; the benchmark suite asserts the
``must_hold`` subset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


__all__ = [
    "Comparison",
    "TARGETS",
    "Target",
    "collect_measurements",
    "compare_all",
    "render_report",
]


@dataclass(frozen=True)
class Target:
    """One claim from the paper."""

    key: str
    figure: str
    description: str
    paper_value: float
    # Acceptance band for the reproduction (the regime, not the digit).
    low: float
    high: float
    unit: str = ""

    def check(self, measured: float) -> bool:
        return self.low <= measured <= self.high

    def verdict(self, measured: float) -> str:
        return "OK" if self.check(measured) else "OUT-OF-BAND"


TARGETS: Dict[str, Target] = {
    t.key: t
    for t in [
        Target(
            key="fig2.avg_miss_ratio_32",
            figure="Figure 2",
            description="average per-CU TLB miss ratio, 32-entry TLBs",
            paper_value=0.56, low=0.35, high=0.80,
        ),
        Target(
            key="fig2.filterable_32",
            figure="Figure 2",
            description="fraction of TLB misses that hit in the cache "
                        "hierarchy (filterable), 32-entry TLBs",
            paper_value=0.66, low=0.45, high=0.90,
        ),
        Target(
            key="fig2.filterable_128",
            figure="Figure 2",
            description="filterable fraction with 128-entry TLBs",
            paper_value=0.65, low=0.40, high=0.90,
        ),
        Target(
            key="fig3.mean_rate_high_bw",
            figure="Figure 3",
            description="mean IOMMU TLB accesses/cycle, high-BW group, "
                        "unlimited bandwidth",
            paper_value=1.0, low=0.5, high=2.5, unit="acc/cycle",
        ),
        Target(
            key="fig4.baseline512_relative_time",
            figure="Figure 4",
            description="average relative execution time of Baseline 512 "
                        "across all workloads",
            paper_value=1.77, low=1.25, high=2.6, unit="x",
        ),
        Target(
            key="fig4.large_tlb_gain",
            figure="Figure 4",
            description="Baseline 16K time divided by Baseline 512 time "
                        "(≈1: capacity does not rescue the baseline)",
            paper_value=1.0, low=0.85, high=1.02,
        ),
        Target(
            key="fig5.overhead_at_4",
            figure="Figure 5",
            description="serialization overhead at 4 accesses/cycle",
            paper_value=0.04, low=0.0, high=0.15,
        ),
        Target(
            key="fig8.vc_mean_rate",
            figure="Figure 8",
            description="average IOMMU TLB demand with the VC hierarchy",
            paper_value=0.3, low=0.0, high=0.5, unit="acc/cycle",
        ),
        Target(
            key="fig9.baseline512_high_bw",
            figure="Figure 9",
            description="Baseline 512 performance relative to IDEAL, "
                        "high-BW average (paper: 42% degradation)",
            paper_value=0.58, low=0.35, high=0.85,
        ),
        Target(
            key="fig9.vc_opt_high_bw",
            figure="Figure 9",
            description="VC With OPT performance relative to IDEAL, "
                        "high-BW average",
            paper_value=1.0, low=0.90, high=1.05,
        ),
        Target(
            key="fig9.fbt_hit_fraction",
            figure="§4.1",
            description="fraction of shared-TLB misses found in the FBT",
            paper_value=0.74, low=0.30, high=1.0,
        ),
        Target(
            key="fig10.avg_speedup",
            figure="Figure 10",
            description="VC speedup over 128-entry per-CU TLBs + 16K IOMMU",
            paper_value=1.2, low=1.0, high=1.8, unit="x",
        ),
        Target(
            key="fig11.l1_only_speedup",
            figure="Figure 11",
            description="L1-only VC (32) speedup over Baseline 16K",
            paper_value=1.35, low=1.0, high=1.9, unit="x",
        ),
        Target(
            key="fig11.full_vs_l1_only",
            figure="Figure 11",
            description="full-hierarchy speedup over L1-only VC",
            paper_value=1.31, low=1.05, high=1.8, unit="x",
        ),
        Target(
            key="fig12.tlb_dead_at_5us",
            figure="Figure 12",
            description="fraction of TLB entries evicted within 5000 ns (bfs)",
            paper_value=0.90, low=0.70, high=1.0,
        ),
        Target(
            key="fig12.l2_live_at_5us",
            figure="Figure 12",
            description="fraction of L2 data still actively used at 5000 ns",
            paper_value=0.60, low=0.10, high=0.90,
        ),
    ]
}


@dataclass
class Comparison:
    """A measured value against its target."""

    target: Target
    measured: float

    @property
    def ok(self) -> bool:
        return self.target.check(self.measured)

    def row(self) -> List[object]:
        t = self.target
        return [
            t.figure, t.description,
            f"{t.paper_value:g}{t.unit}", f"{self.measured:.3f}{t.unit}",
            f"[{t.low:g}, {t.high:g}]", t.verdict(self.measured),
        ]


def compare_all(measurements: Dict[str, float]) -> List[Comparison]:
    """Pair measurements (by target key) with their targets."""
    comparisons = []
    for key, value in measurements.items():
        if key not in TARGETS:
            raise KeyError(f"no paper target named {key!r}")
        comparisons.append(Comparison(target=TARGETS[key], measured=value))
    return comparisons


def collect_measurements(cache=None) -> Dict[str, float]:
    """Run every experiment and extract the target metrics.

    This is the EXPERIMENTS.md engine: one call produces the full
    paper-vs-measured table (it reuses the shared result cache, so
    anything already simulated is free).
    """
    from repro.analysis.metrics import mean
    from repro.experiments import fig2, fig3, fig4, fig5, fig8, fig9, fig10, fig11, fig12
    from repro.experiments.common import GLOBAL_CACHE, HIGH_BANDWIDTH

    cache = cache if cache is not None else GLOBAL_CACHE
    out: Dict[str, float] = {}

    r2 = fig2.run(cache)
    out["fig2.avg_miss_ratio_32"] = r2.average_miss_ratio(32)
    out["fig2.filterable_32"] = r2.filterable_fraction(32)
    out["fig2.filterable_128"] = r2.filterable_fraction(128)

    r3 = fig3.run(cache)
    out["fig3.mean_rate_high_bw"] = mean(
        [r3.rates[w].mean for w in HIGH_BANDWIDTH])

    r4 = fig4.run(cache)
    out["fig4.baseline512_relative_time"] = r4.average("Baseline 512")
    out["fig4.large_tlb_gain"] = (r4.average("Baseline 16K")
                                  / r4.average("Baseline 512"))

    r5 = fig5.run(cache)
    out["fig5.overhead_at_4"] = r5.serialization_overhead(4.0)

    r8 = fig8.run(cache)
    out["fig8.vc_mean_rate"] = r8.average_rate("vc")

    r9 = fig9.run(cache)
    out["fig9.baseline512_high_bw"] = r9.average("Baseline 512", "high")
    out["fig9.vc_opt_high_bw"] = r9.average("VC With OPT", "high")
    out["fig9.fbt_hit_fraction"] = r9.average_fbt_hit_fraction()

    r10 = fig10.run(cache)
    out["fig10.avg_speedup"] = r10.average()

    r11 = fig11.run(cache)
    out["fig11.l1_only_speedup"] = r11.average("L1-Only VC (32)")
    out["fig11.full_vs_l1_only"] = r11.full_vs_l1_only()

    r12 = fig12.run(cache)
    dead, _l1_live, l2_live = r12.survival_beyond_tlb(5000.0)
    out["fig12.tlb_dead_at_5us"] = dead
    out["fig12.l2_live_at_5us"] = l2_live
    return out


def render_report(measurements: Dict[str, float]) -> str:
    """The paper-vs-measured table as text (EXPERIMENTS.md body)."""
    from repro.analysis.report import format_table

    comparisons = compare_all(measurements)
    rows = [c.row() for c in comparisons]
    n_ok = sum(1 for c in comparisons if c.ok)
    table = format_table(
        ["figure", "claim", "paper", "measured", "accept band", "verdict"],
        rows,
    )
    return f"{table}\n\n{n_ok}/{len(comparisons)} claims reproduced in band."
