"""Plain-text rendering of experiment results.

Every experiment driver renders to monospaced text: aligned tables and
horizontal ASCII bars, so `python -m repro.experiments.fig9` prints
something directly comparable to the paper's figure.
"""

from __future__ import annotations

from typing import Iterable, Sequence


__all__ = ["bar", "bar_chart", "format_table", "section", "stacked_bar"]

def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str = None) -> str:
    """Render an aligned text table."""
    str_rows = [[_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def bar(value: float, scale: float = 1.0, width: int = 40, char: str = "#") -> str:
    """A horizontal bar: ``value/scale`` of ``width`` characters."""
    if scale <= 0:
        raise ValueError("bar scale must be positive")
    n = int(round(min(max(value / scale, 0.0), 1.0) * width))
    return char * n


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    unit: str = "",
    scale: float = None,
) -> str:
    """Render labelled horizontal bars, auto-scaled to the maximum."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if not labels:
        return "(no data)"
    top = scale if scale is not None else max(max(values), 1e-12)
    label_w = max(len(l) for l in labels)
    lines = []
    for label, value in zip(labels, values):
        lines.append(
            f"{label.ljust(label_w)}  {value:8.3f}{unit} |{bar(value, top, width)}"
        )
    return "\n".join(lines)


def stacked_bar(fractions: Sequence[float], chars: str = "#xo.",
                width: int = 40) -> str:
    """Render stacked fractions (e.g., Figure 2's miss breakdown)."""
    if len(fractions) > len(chars):
        raise ValueError("not enough distinct characters for the segments")
    out = []
    for frac, ch in zip(fractions, chars):
        out.append(ch * int(round(frac * width)))
    return "".join(out)[:width]


def section(title: str, body: str) -> str:
    """A titled block."""
    rule = "-" * max(len(title), 8)
    return f"\n{title}\n{rule}\n{body}\n"
