"""Dependency-free SVG rendering of the paper's figures.

The experiment drivers print text; this module draws them.  It writes
plain SVG 1.1 by hand (no matplotlib in the offline environment), with
the chart shapes the paper's evaluation uses: grouped bar charts
(Figures 3, 4, 8, 9, 10, 11), step-line CDFs (Figure 12), and
multi-series line charts (the telemetry dashboard's timelines).
"""

from __future__ import annotations

import xml.sax.saxutils as saxutils
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

__all__ = ["PALETTE", "cdf_chart", "grouped_bar_chart", "line_chart"]

PALETTE = ("#31588A", "#C14B42", "#D9A441", "#5B8C5A", "#7B5B8F", "#4E9B9B")


def _esc(text: str) -> str:
    return saxutils.escape(str(text))


@dataclass
class _Canvas:
    width: int
    height: int
    parts: List[str] = field(default_factory=list)

    def rect(self, x, y, w, h, fill, opacity=1.0, title=None) -> None:
        tip = f"<title>{_esc(title)}</title>" if title else ""
        self.parts.append(
            f'<rect x="{x:.1f}" y="{y:.1f}" width="{w:.1f}" height="{h:.1f}" '
            f'fill="{fill}" fill-opacity="{opacity}">{tip}</rect>'
        )

    def line(self, x1, y1, x2, y2, stroke="#444", width=1.0, dash=None) -> None:
        dash_attr = f' stroke-dasharray="{dash}"' if dash else ""
        self.parts.append(
            f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" y2="{y2:.1f}" '
            f'stroke="{stroke}" stroke-width="{width}"{dash_attr}/>'
        )

    def polyline(self, points: Sequence[Tuple[float, float]], stroke,
                 width=1.5) -> None:
        pts = " ".join(f"{x:.1f},{y:.1f}" for x, y in points)
        self.parts.append(
            f'<polyline points="{pts}" fill="none" stroke="{stroke}" '
            f'stroke-width="{width}"/>'
        )

    def text(self, x, y, content, size=11, anchor="middle", rotate=None,
             fill="#222") -> None:
        transform = f' transform="rotate({rotate} {x:.1f} {y:.1f})"' if rotate else ""
        self.parts.append(
            f'<text x="{x:.1f}" y="{y:.1f}" font-size="{size}" '
            f'text-anchor="{anchor}" fill="{fill}" '
            f'font-family="sans-serif"{transform}>{_esc(content)}</text>'
        )

    def render(self) -> str:
        body = "\n".join(self.parts)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{self.height}" viewBox="0 0 {self.width} {self.height}">\n'
            f'<rect width="{self.width}" height="{self.height}" fill="white"/>\n'
            f"{body}\n</svg>\n"
        )


def grouped_bar_chart(
    title: str,
    categories: Sequence[str],
    series: Dict[str, Sequence[float]],
    y_label: str = "",
    width: int = 900,
    height: int = 360,
    reference_line: float = None,
) -> str:
    """A grouped bar chart (one group per category, one bar per series)."""
    if not categories or not series:
        raise ValueError("need at least one category and one series")
    for name, values in series.items():
        if len(values) != len(categories):
            raise ValueError(f"series {name!r} length mismatch")

    margin_l, margin_r, margin_t, margin_b = 60, 20, 40, 90
    plot_w = width - margin_l - margin_r
    plot_h = height - margin_t - margin_b
    y_max = max(max(values) for values in series.values())
    y_max = max(y_max, reference_line or 0.0, 1e-9) * 1.08

    c = _Canvas(width, height)
    c.text(width / 2, 20, title, size=14)
    # Axes + gridlines.
    c.line(margin_l, margin_t, margin_l, margin_t + plot_h)
    c.line(margin_l, margin_t + plot_h, margin_l + plot_w, margin_t + plot_h)
    for i in range(5):
        y_val = y_max * (i + 1) / 5
        y = margin_t + plot_h * (1 - (i + 1) / 5)
        c.line(margin_l, y, margin_l + plot_w, y, stroke="#ddd")
        c.text(margin_l - 6, y + 4, f"{y_val:.2f}", size=10, anchor="end")
    if y_label:
        c.text(16, margin_t + plot_h / 2, y_label, size=11, rotate=-90)

    n_groups = len(categories)
    n_series = len(series)
    group_w = plot_w / n_groups
    bar_w = group_w * 0.8 / n_series
    for s_idx, (name, values) in enumerate(series.items()):
        color = PALETTE[s_idx % len(PALETTE)]
        for g_idx, value in enumerate(values):
            h = plot_h * min(value, y_max) / y_max
            x = margin_l + g_idx * group_w + group_w * 0.1 + s_idx * bar_w
            c.rect(x, margin_t + plot_h - h, bar_w * 0.92, h, color,
                   title=f"{name} / {categories[g_idx]}: {value:.3f}")
    if reference_line is not None:
        y = margin_t + plot_h * (1 - reference_line / y_max)
        c.line(margin_l, y, margin_l + plot_w, y, stroke="#888", dash="5,4")

    for g_idx, cat in enumerate(categories):
        x = margin_l + (g_idx + 0.5) * group_w
        c.text(x, margin_t + plot_h + 14, cat, size=10, rotate=-35,
               anchor="end")
    # Legend.
    lx = margin_l
    ly = height - 16
    for s_idx, name in enumerate(series):
        color = PALETTE[s_idx % len(PALETTE)]
        c.rect(lx, ly - 9, 10, 10, color)
        c.text(lx + 14, ly, name, size=10, anchor="start")
        lx += 14 + 7 * len(name) + 24
    return c.render()


def line_chart(
    title: str,
    series: Dict[str, Sequence[Tuple[float, float]]],
    x_label: str = "",
    y_label: str = "",
    width: int = 900,
    height: int = 320,
    y_max: float = None,
) -> str:
    """A multi-series line chart over a shared numeric x axis.

    Each series is a sequence of ``(x, y)`` points (e.g. a
    :meth:`~repro.obs.Timeline.series` — epoch start vs. per-epoch
    value).  Series need not share x positions; the x axis spans the
    union of all points.
    """
    if not series:
        raise ValueError("need at least one series")
    margin_l, margin_r, margin_t, margin_b = 70, 20, 40, 60
    plot_w = width - margin_l - margin_r
    plot_h = height - margin_t - margin_b
    all_points = [pt for pts in series.values() for pt in pts]
    if not all_points:
        raise ValueError("every series is empty")
    x_lo = min(pt[0] for pt in all_points)
    x_hi = max(pt[0] for pt in all_points)
    x_span = max(x_hi - x_lo, 1e-9)
    data_y_max = max(pt[1] for pt in all_points)
    y_top = y_max if y_max is not None else data_y_max * 1.08
    y_top = max(y_top, 1e-9)

    c = _Canvas(width, height)
    c.text(width / 2, 20, title, size=14)
    c.line(margin_l, margin_t, margin_l, margin_t + plot_h)
    c.line(margin_l, margin_t + plot_h, margin_l + plot_w, margin_t + plot_h)
    for i in range(6):
        frac = i / 5
        y = margin_t + plot_h * (1 - frac)
        if i:
            c.line(margin_l, y, margin_l + plot_w, y, stroke="#ddd")
        c.text(margin_l - 6, y + 4, f"{y_top * frac:.3g}", size=10,
               anchor="end")
        x = margin_l + plot_w * frac
        c.text(x, margin_t + plot_h + 16, f"{x_lo + x_span * frac:.3g}",
               size=10)
    if x_label:
        c.text(margin_l + plot_w / 2, height - 12, x_label, size=11)
    if y_label:
        c.text(16, margin_t + plot_h / 2, y_label, size=11, rotate=-90)

    for s_idx, (name, points) in enumerate(series.items()):
        color = PALETTE[s_idx % len(PALETTE)]
        coords = [
            (margin_l + plot_w * (x_val - x_lo) / x_span,
             margin_t + plot_h * (1 - min(y_val, y_top) / y_top))
            for x_val, y_val in points
        ]
        if coords:
            c.polyline(coords, stroke=color)
    # Legend along the bottom (same layout as the bar charts).
    lx = margin_l
    ly = height - 16
    for s_idx, name in enumerate(series):
        color = PALETTE[s_idx % len(PALETTE)]
        c.rect(lx, ly - 9, 10, 10, color)
        c.text(lx + 14, ly, name, size=10, anchor="start")
        lx += 14 + 7 * len(name) + 24
    return c.render()


def cdf_chart(
    title: str,
    series: Dict[str, Sequence[Tuple[float, float]]],
    x_label: str = "",
    width: int = 700,
    height: int = 400,
    x_max: float = None,
) -> str:
    """Step-line CDFs (Figure 12's shape)."""
    if not series:
        raise ValueError("need at least one series")
    margin_l, margin_r, margin_t, margin_b = 60, 20, 40, 60
    plot_w = width - margin_l - margin_r
    plot_h = height - margin_t - margin_b
    data_max = max((pt[0] for pts in series.values() for pt in pts),
                   default=1.0)
    x_top = x_max if x_max is not None else data_max
    x_top = max(x_top, 1e-9)

    c = _Canvas(width, height)
    c.text(width / 2, 20, title, size=14)
    c.line(margin_l, margin_t, margin_l, margin_t + plot_h)
    c.line(margin_l, margin_t + plot_h, margin_l + plot_w, margin_t + plot_h)
    for i in range(6):
        frac = i / 5
        y = margin_t + plot_h * (1 - frac)
        c.line(margin_l, y, margin_l + plot_w, y, stroke="#ddd")
        c.text(margin_l - 6, y + 4, f"{frac:.1f}", size=10, anchor="end")
        x = margin_l + plot_w * frac
        c.text(x, margin_t + plot_h + 16, f"{x_top * frac:.0f}", size=10)
    if x_label:
        c.text(margin_l + plot_w / 2, height - 12, x_label, size=11)

    for s_idx, (name, points) in enumerate(series.items()):
        color = PALETTE[s_idx % len(PALETTE)]
        coords = []
        for x_val, frac in points:
            x = margin_l + plot_w * min(x_val, x_top) / x_top
            y = margin_t + plot_h * (1 - frac)
            coords.append((x, y))
            if x_val > x_top:
                break
        if coords:
            c.polyline(coords, stroke=color)
        c.rect(margin_l + plot_w - 170, margin_t + 10 + 16 * s_idx, 10, 10,
               color)
        c.text(margin_l + plot_w - 154, margin_t + 19 + 16 * s_idx, name,
               size=10, anchor="start")
    return c.render()
