"""The paper's contribution: FBT and GPU virtual cache hierarchies."""

from repro.core.backward_table import BackwardTable, BTEntry
from repro.core.fbt import AccessCheck, ForwardBackwardTable, InvalidationOrder
from repro.core.forward_table import ForwardTable
from repro.core.invalidation_filter import InvalidationFilter
from repro.core.l1_only import ASDT, ASDTEntry, L1OnlyVirtualHierarchy
from repro.core.virtual_hierarchy import (
    VirtualCacheHierarchy,
    line_key,
    page_key,
    split_page_key,
)

__all__ = [
    "BackwardTable", "BTEntry",
    "AccessCheck", "ForwardBackwardTable", "InvalidationOrder",
    "ForwardTable",
    "InvalidationFilter",
    "ASDT", "ASDTEntry", "L1OnlyVirtualHierarchy",
    "VirtualCacheHierarchy", "line_key", "page_key", "split_page_key",
]
