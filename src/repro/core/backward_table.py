"""Backward table (BT): physical page → leading virtual page.

The BT is the reverse-translation half of the forward-backward table
(Figure 7).  Each entry is tagged by a physical page number and records:

* the unique *leading* virtual page (ASID + VPN) under which data from
  this physical page may be placed in the virtual caches — the first
  virtual address that referenced the page;
* the page permissions;
* a 32-bit vector marking which lines of the page are resident in the
  shared L2 (inclusive tracking; the non-inclusive L1s are covered by
  per-L1 invalidation filters instead, §4.2);
* a ``written`` flag used to detect read-write synonyms (footnote 5);
* a ``locked`` flag set while an invalidation is in progress (§4.1,
  "While the invalidation is in progress, the FBT entry is locked").

For large pages a per-entry counter replaces the bit vector (§4.3): a
2 MB page would need a 16,384-bit vector, so the entry counts resident
lines instead and invalidation walks the cache.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional, Tuple

from repro.memsys.addressing import is_power_of_two
from repro.memsys.permissions import Permissions


__all__ = ["BTEntry", "BackwardTable"]

class BTEntry:
    """One backward-table entry.

    ``__slots__``: one entry exists per cached page and the inclusion
    bookkeeping (``mark_line_cached``/``mark_line_evicted``) runs on
    every L2 fill and eviction.
    """

    __slots__ = ("ppn", "leading_asid", "leading_vpn", "permissions",
                 "tracking", "line_bits", "line_count", "written", "locked")

    def __init__(
        self,
        ppn: int,
        leading_asid: int,
        leading_vpn: int,
        permissions: Permissions,
        # 'bitvector' for base (4 KB) pages, 'counter' for large pages.
        tracking: str = "bitvector",
        line_bits: int = 0,
        line_count: int = 0,
        written: bool = False,
        locked: bool = False,
    ) -> None:
        self.ppn = ppn
        self.leading_asid = leading_asid
        self.leading_vpn = leading_vpn
        self.permissions = permissions
        self.tracking = tracking
        self.line_bits = line_bits
        self.line_count = line_count
        self.written = written
        self.locked = locked

    def __repr__(self) -> str:
        return (
            f"BTEntry(ppn={self.ppn!r}, leading_asid={self.leading_asid!r}, "
            f"leading_vpn={self.leading_vpn!r}, "
            f"permissions={self.permissions!r}, tracking={self.tracking!r}, "
            f"line_bits={self.line_bits!r}, line_count={self.line_count!r}, "
            f"written={self.written!r}, locked={self.locked!r})"
        )

    def mark_line_cached(self, line_index: int) -> None:
        """A line of this page was filled into the L2."""
        if self.tracking == "bitvector":
            bit = 1 << line_index
            if not self.line_bits & bit:
                self.line_bits |= bit
                self.line_count += 1
        else:
            self.line_count += 1

    def mark_line_evicted(self, line_index: int) -> None:
        """A line of this page left the L2."""
        if self.tracking == "bitvector":
            bit = 1 << line_index
            if self.line_bits & bit:
                self.line_bits &= ~bit
                self.line_count -= 1
        else:
            if self.line_count > 0:
                self.line_count -= 1

    def line_cached(self, line_index: int) -> bool:
        """Whether ``line_index`` of the page is (conservatively) resident."""
        if self.tracking == "bitvector":
            return bool(self.line_bits & (1 << line_index))
        # Counter mode has no per-line information: conservatively true
        # while any line is resident.
        return self.line_count > 0

    def cached_line_indices(self, lines_per_page: int = 32) -> List[int]:
        """Line indices to invalidate selectively (bit-vector mode only)."""
        if self.tracking != "bitvector":
            raise ValueError("counter-mode entries have no per-line information")
        return [i for i in range(lines_per_page) if self.line_bits & (1 << i)]

    @property
    def leading_key(self) -> Tuple[int, int]:
        return (self.leading_asid, self.leading_vpn)


class BackwardTable:
    """A set-associative table of :class:`BTEntry`, keyed by PPN."""

    def __init__(self, n_entries: int = 16384, associativity: int = 8) -> None:
        if n_entries <= 0 or associativity <= 0:
            raise ValueError("BT geometry must be positive")
        if n_entries % associativity != 0:
            raise ValueError("entries must divide evenly into sets")
        n_sets = n_entries // associativity
        if not is_power_of_two(n_sets):
            raise ValueError(f"BT set count ({n_sets}) must be a power of two")
        self.n_entries = n_entries
        self.associativity = associativity
        self.n_sets = n_sets
        self._sets: List[OrderedDict[int, BTEntry]] = [OrderedDict() for _ in range(n_sets)]
        self.lookups = 0
        self.hits = 0
        self.evictions = 0

    def _set_for(self, ppn: int) -> OrderedDict:
        return self._sets[ppn % self.n_sets]

    def __len__(self) -> int:
        return sum(len(s) for s in self._sets)

    def lookup(self, ppn: int) -> Optional[BTEntry]:
        """Find the entry for ``ppn``, refreshing LRU on a hit."""
        bt_set = self._set_for(ppn)
        entry = bt_set.get(ppn)
        self.lookups += 1
        if entry is not None:
            bt_set.move_to_end(ppn)
            self.hits += 1
        return entry

    def peek(self, ppn: int) -> Optional[BTEntry]:
        """Find without LRU/stat side effects."""
        return self._set_for(ppn).get(ppn)

    def allocate(
        self,
        ppn: int,
        leading_asid: int,
        leading_vpn: int,
        permissions: Permissions,
        tracking: str = "bitvector",
    ) -> Tuple[BTEntry, Optional[BTEntry]]:
        """Create an entry for ``ppn``; returns ``(entry, evicted_victim)``.

        The victim — if one had to be displaced — must have its cached
        data invalidated by the caller before the eviction is complete
        (§4.1, "Eviction of FBT Entry").  Locked entries are never chosen
        as victims.
        """
        if tracking not in ("bitvector", "counter"):
            raise ValueError(f"unknown tracking mode {tracking!r}")
        bt_set = self._set_for(ppn)
        if ppn in bt_set:
            raise ValueError(f"BT entry for ppn {ppn:#x} already exists")
        victim = None
        if len(bt_set) >= self.associativity:
            victim_ppn = next(
                (p for p, e in bt_set.items() if not e.locked), None
            )
            if victim_ppn is None:
                raise RuntimeError("all BT candidates in the set are locked")
            victim = bt_set.pop(victim_ppn)
            self.evictions += 1
        entry = BTEntry(
            ppn=ppn,
            leading_asid=leading_asid,
            leading_vpn=leading_vpn,
            permissions=permissions,
            tracking=tracking,
        )
        bt_set[ppn] = entry
        return entry, victim

    def remove(self, ppn: int) -> Optional[BTEntry]:
        """Drop the entry for ``ppn`` (shootdown path)."""
        return self._set_for(ppn).pop(ppn, None)

    def entries(self) -> List[BTEntry]:
        """All live entries (test/diagnostic helper)."""
        out: List[BTEntry] = []
        for bt_set in self._sets:
            out.extend(bt_set.values())
        return out
