"""The forward-backward table (FBT).

The FBT is the one new structure the proposal adds to the IOMMU
(Figures 6 and 7).  It is fully inclusive — at page granularity — of the
GPU's virtual caches: every page with data anywhere in the hierarchy has
a BT entry, created on the L2 miss that first fetched the page's data.
It provides, without OS involvement:

* **synonym detection and management** (§4.1): only the page's unique
  *leading* virtual address may place and look up its data, so a miss
  whose translation lands on a PPN with a different leading VPN is a
  synonym — replayed with the leading address (and only when the line
  bit says the replay will hit);
* **read-write synonym faulting** (§4.2): GPUs lack precise exceptions,
  so a synonym access involving writes conservatively faults;
* **reverse translation** for physically-addressed coherence probes,
  plus probe *filtering* when the GPU caches nothing from the page;
* **TLB shootdown** handling, filtered through the FT;
* a **second-level TLB** (the "With OPT" design): the FT knows the
  leading VPN → BT entry mapping and the BT entry knows the PPN.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.backward_table import BackwardTable, BTEntry
from repro.core.forward_table import ForwardTable
from repro.engine.stats import Counters
from repro.memsys.permissions import Permissions, ReadWriteSynonymFault


__all__ = ["AccessCheck", "ForwardBackwardTable", "InvalidationOrder"]


@dataclass
class InvalidationOrder:
    """Work the hierarchy must do when a page leaves the FBT.

    ``line_indices`` lists the L2 lines to invalidate selectively (from
    the bit vector); ``walk_l2`` is set instead for counter-mode (large
    page) entries, where the L2 must be walked.  The L1 side is always a
    filter check per CU followed by a full L1 flush on a filter hit.
    """

    asid: int
    leading_vpn: int
    reason: str  # "bt_eviction" | "shootdown" | "flush" | "stale_remap"
    line_indices: List[int] = field(default_factory=list)
    walk_l2: bool = False
    # Counter-mode (2 MB) entries cover many 4 KB subpages.
    n_subpages: int = 1


@dataclass(slots=True)
class AccessCheck:
    """Outcome of the FBT consultation on an L2 virtual-cache miss.

    ``slots=True``: allocated once per L2 miss, so it carries no
    per-instance ``__dict__``.
    """

    status: str  # "new_leading" | "leading" | "synonym"
    entry: BTEntry
    leading_asid: int
    leading_vpn: int
    # For synonyms: will the replay with the leading address hit in L2?
    replay_hits_l2: bool = False
    # Pages whose cached data must be invalidated before this access
    # proceeds: BT set-conflict victims, and stale leading entries when a
    # virtual page was remapped without an explicit shootdown.
    invalidations: List[InvalidationOrder] = field(default_factory=list)


class ForwardBackwardTable:
    """BT + FT with the paper's management operations."""

    SUBPAGE_POLICY = "subpage"
    COUNTER_POLICY = "counter"

    def __init__(
        self,
        n_entries: int = 16384,
        associativity: int = 8,
        lines_per_page: int = 32,
        fault_on_rw_synonym: bool = True,
        large_page_policy: str = SUBPAGE_POLICY,
    ) -> None:
        if large_page_policy not in (self.SUBPAGE_POLICY, self.COUNTER_POLICY):
            raise ValueError(f"unknown large-page policy {large_page_policy!r}")
        self.bt = BackwardTable(n_entries=n_entries, associativity=associativity)
        self.ft = ForwardTable()
        self.lines_per_page = lines_per_page
        self.fault_on_rw_synonym = fault_on_rw_synonym
        # §4.3 "Large Page Support": 'subpage' (the optimization — treat
        # each accessed 4 KB subpage as its own bit-vector entry, no
        # preallocation) or 'counter' (one counter-mode entry covering
        # the whole 2 MB page; invalidation walks the cache).
        self.large_page_policy = large_page_policy
        self.counters = Counters()

    # -- large pages --------------------------------------------------------
    def _counter_base(self, ppn: int) -> int:
        from repro.memsys.addressing import BASE_PAGES_PER_LARGE
        return ppn - ppn % BASE_PAGES_PER_LARGE

    # -- the L2-miss path -------------------------------------------------
    def check_access(
        self,
        asid: int,
        vpn: int,
        ppn: int,
        permissions: Permissions,
        line_index: int,
        is_write: bool,
        is_large: bool = False,
        large_base_vpn: int = 0,
        large_base_ppn: int = 0,
    ) -> AccessCheck:
        """Consult the BT after translating an L2 virtual-cache miss.

        Decides whether the access is to a brand-new page (allocate an
        entry; the given VPN becomes the leading VPN), to the page's
        leading address, or a synonym.  Raises
        :class:`ReadWriteSynonymFault` per §4.2 when a synonym access
        involves written data and faulting is enabled.

        Accesses within 2 MB mappings follow ``large_page_policy``: with
        the subpage optimization they are handled exactly like base
        pages (an FBT entry per *accessed* 4 KB subpage); in counter
        mode one counter entry covers the whole large page.
        """
        if is_large and self.large_page_policy == self.COUNTER_POLICY:
            return self._check_access_counter(
                asid, vpn, ppn, permissions, is_write,
                large_base_vpn, large_base_ppn,
            )
        entry = self.bt.lookup(ppn)
        if entry is None:
            return self._allocate(asid, vpn, ppn, permissions, is_write)

        if entry.leading_key == (asid, vpn):
            if is_write:
                entry.written = True
            return AccessCheck(
                status="leading",
                entry=entry,
                leading_asid=asid,
                leading_vpn=vpn,
            )

        # Synonym: data for this physical page lives (if anywhere) under
        # a different — leading — virtual address.
        self.counters.add("fbt.synonym_accesses")
        if self.fault_on_rw_synonym and (is_write or entry.written):
            self.counters.add("fbt.rw_synonym_faults")
            raise ReadWriteSynonymFault(ppn, entry.leading_vpn, vpn)
        if is_write:
            entry.written = True
        return AccessCheck(
            status="synonym",
            entry=entry,
            leading_asid=entry.leading_asid,
            leading_vpn=entry.leading_vpn,
            replay_hits_l2=entry.line_cached(line_index),
        )

    def _check_access_counter(
        self,
        asid: int,
        vpn: int,
        ppn: int,
        permissions: Permissions,
        is_write: bool,
        large_base_vpn: int,
        large_base_ppn: int,
    ) -> AccessCheck:
        """Counter-mode consultation: one entry per 2 MB page."""
        entry = self.bt.lookup(large_base_ppn)
        if entry is None:
            invalidations: List[InvalidationOrder] = []
            stale = self.ft.lookup(asid, large_base_vpn)
            if stale is not None:
                self.bt.remove(stale.ppn)
                self.ft.remove_entry(stale)
                invalidations.append(self._order_for(stale, reason="stale_remap"))
                self.counters.add("fbt.stale_remaps")
            entry, victim = self.bt.allocate(
                large_base_ppn, leading_asid=asid, leading_vpn=large_base_vpn,
                permissions=permissions, tracking="counter",
            )
            if victim is not None:
                self.ft.remove_entry(victim)
                invalidations.append(self._order_for(victim, reason="bt_eviction"))
                self.counters.add("fbt.evictions")
            self.ft.insert(entry)
            entry.written = is_write
            self.counters.add("fbt.allocations")
            self.counters.add("fbt.large_allocations")
            return AccessCheck(
                status="new_leading", entry=entry, leading_asid=asid,
                leading_vpn=large_base_vpn, invalidations=invalidations,
            )

        if entry.leading_key == (asid, large_base_vpn):
            if is_write:
                entry.written = True
            return AccessCheck(status="leading", entry=entry,
                               leading_asid=asid, leading_vpn=large_base_vpn)

        self.counters.add("fbt.synonym_accesses")
        if self.fault_on_rw_synonym and (is_write or entry.written):
            self.counters.add("fbt.rw_synonym_faults")
            raise ReadWriteSynonymFault(large_base_ppn, entry.leading_vpn,
                                        large_base_vpn)
        if is_write:
            entry.written = True
        # The replay target keeps the subpage offset within the leading
        # large page.  Counter mode has no per-line residency knowledge,
        # so the replay is attempted conservatively (the hierarchy falls
        # back to a memory fetch when the L2 misses).
        effective_leading = entry.leading_vpn + (vpn - large_base_vpn)
        return AccessCheck(
            status="synonym", entry=entry,
            leading_asid=entry.leading_asid, leading_vpn=effective_leading,
            replay_hits_l2=entry.line_count > 0,
        )

    def _allocate(
        self, asid: int, vpn: int, ppn: int, permissions: Permissions, is_write: bool
    ) -> AccessCheck:
        invalidations: List[InvalidationOrder] = []

        # If this virtual page already leads a *different* physical page,
        # its translation changed underneath us (a remap whose shootdown
        # we are effectively observing now).  The stale entry — and any
        # data cached under the old mapping — must go first, or the new
        # fill would alias the old data.
        stale = self.ft.lookup(asid, vpn)
        if stale is not None:
            self.bt.remove(stale.ppn)
            self.ft.remove_entry(stale)
            invalidations.append(self._order_for(stale, reason="stale_remap"))
            self.counters.add("fbt.stale_remaps")

        entry, victim = self.bt.allocate(
            ppn, leading_asid=asid, leading_vpn=vpn, permissions=permissions
        )
        if victim is not None:
            self.ft.remove_entry(victim)
            invalidations.append(self._order_for(victim, reason="bt_eviction"))
            self.counters.add("fbt.evictions")
        self.ft.insert(entry)
        entry.written = is_write
        self.counters.add("fbt.allocations")
        return AccessCheck(
            status="new_leading",
            entry=entry,
            leading_asid=asid,
            leading_vpn=vpn,
            invalidations=invalidations,
        )

    # -- second-level TLB ("With OPT") --------------------------------------
    def forward_translate(self, asid: int, vpn: int) -> Optional[Tuple[int, Permissions]]:
        """Leading-page forward translation, for the IOMMU's L2-TLB use."""
        entry = self.ft.lookup(asid, vpn)
        if entry is None:
            return None
        return entry.ppn, entry.permissions

    # -- inclusion bookkeeping ----------------------------------------------
    def note_l2_fill(self, ppn: int, line_index: int) -> None:
        """A line of ``ppn`` was filled into the shared L2."""
        entry = self.bt.peek(ppn)
        if entry is None and self.large_page_policy == self.COUNTER_POLICY:
            entry = self.bt.peek(self._counter_base(ppn))
        if entry is None:
            raise RuntimeError(
                f"L2 fill for ppn {ppn:#x} with no BT entry — FBT inclusion broken"
            )
        entry.mark_line_cached(line_index)

    def _entry_by_leading(self, asid: int, leading_vpn: int):
        entry = self.ft.lookup(asid, leading_vpn)
        if entry is None and self.large_page_policy == self.COUNTER_POLICY:
            from repro.memsys.addressing import large_page_base_vpn
            entry = self.ft.lookup(asid, large_page_base_vpn(leading_vpn))
        return entry

    def note_l2_eviction(self, asid: int, leading_vpn: int, line_index: int) -> None:
        """A line left the L2; clear its bit via the forward table (§4.1)."""
        entry = self._entry_by_leading(asid, leading_vpn)
        if entry is None:
            # The page's entry was already evicted/shot down (which
            # invalidated the line in the caches first) — nothing to do.
            return
        entry.mark_line_evicted(line_index)

    def note_write(self, asid: int, leading_vpn: int) -> None:
        """A write-through to a cached page passed the IOMMU (footnote 5)."""
        entry = self._entry_by_leading(asid, leading_vpn)
        if entry is not None:
            entry.written = True

    # -- coherence ------------------------------------------------------------
    def reverse_translate_probe(
        self, physical_line: int
    ) -> Optional[Tuple[int, int, int, bool]]:
        """Reverse-translate a physically-addressed coherence probe.

        Returns ``None`` when the probe is filtered (the GPU caches
        nothing from the page), else ``(asid, virtual_line, line_index,
        l2_has_line)`` with the line re-homed under the leading VPN.
        """
        ppn = physical_line // self.lines_per_page
        line_index = physical_line % self.lines_per_page
        entry = self.bt.peek(ppn)
        subpage_offset = 0
        if entry is None and self.large_page_policy == self.COUNTER_POLICY:
            base = self._counter_base(ppn)
            entry = self.bt.peek(base)
            subpage_offset = ppn - base
        if entry is None:
            self.counters.add("fbt.probes_filtered")
            return None
        self.counters.add("fbt.probes_forwarded")
        virtual_line = ((entry.leading_vpn + subpage_offset) * self.lines_per_page
                        + line_index)
        return entry.leading_asid, virtual_line, line_index, entry.line_cached(line_index)

    def forward_response_translate(self, asid: int, virtual_line: int) -> Optional[int]:
        """Translate a cache response's leading-virtual line back to physical.

        Uses the FT (§4.1: "When the cache responds with a leading
        virtual address, it is translated to the matching physical
        address via the FT").
        """
        vpn = virtual_line // self.lines_per_page
        entry = self.ft.lookup(asid, vpn)
        if entry is None:
            return None
        return entry.ppn * self.lines_per_page + virtual_line % self.lines_per_page

    # -- shootdown ---------------------------------------------------------------
    def shootdown(self, asid: int, vpn: int) -> Optional[InvalidationOrder]:
        """Single-entry TLB shootdown for virtual page ``(asid, vpn)``.

        Returns the invalidation work, or ``None`` when the FT filters
        the request (no data from the page is cached).  A shootdown of
        any subpage of a counter-tracked large page invalidates the
        whole large entry.
        """
        entry = self._entry_by_leading(asid, vpn)
        if entry is None:
            self.counters.add("fbt.shootdowns_filtered")
            return None
        entry.locked = True
        self.bt.remove(entry.ppn)
        self.ft.remove_entry(entry)
        self.counters.add("fbt.shootdowns")
        return self._order_for(entry, reason="shootdown")

    def shootdown_all(self) -> List[InvalidationOrder]:
        """All-entry shootdown: every cached page must be flushed (§4.1)."""
        orders = []
        for entry in self.bt.entries():
            self.bt.remove(entry.ppn)
            self.ft.remove_entry(entry)
            orders.append(self._order_for(entry, reason="flush"))
        self.counters.add("fbt.full_shootdowns")
        return orders

    def state_summary(self) -> str:
        """One-line occupancy summary for invariant-violation dumps."""
        entries = self.bt.entries()
        counter_entries = sum(1 for e in entries if e.tracking == "counter")
        return (f"FBT entries={len(entries)} (counter-mode {counter_entries}), "
                f"FT entries={len(self.ft)}, policy={self.large_page_policy}")

    def _order_for(self, entry: BTEntry, reason: str) -> InvalidationOrder:
        if entry.tracking == "bitvector":
            return InvalidationOrder(
                asid=entry.leading_asid,
                leading_vpn=entry.leading_vpn,
                reason=reason,
                line_indices=entry.cached_line_indices(self.lines_per_page),
            )
        from repro.memsys.addressing import BASE_PAGES_PER_LARGE
        return InvalidationOrder(
            asid=entry.leading_asid,
            leading_vpn=entry.leading_vpn,
            reason=reason,
            walk_l2=True,
            n_subpages=BASE_PAGES_PER_LARGE,
        )
