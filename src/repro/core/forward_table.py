"""Forward table (FT): leading virtual page → backward-table entry.

The FT is the second half of the forward-backward table (Figure 7).  It
lets the FBT be indexed by *virtual* addresses: cache evictions, TLB
shootdowns, and responses to coherence requests all arrive with the
leading virtual address and need to find the owning BT entry without a
shared-TLB lookup or page walk (§4).  With the forward translation
information the FBT can also serve as a large second-level TLB
("VC With OPT").

The paper provisions exactly one FT entry per BT entry (the FT stores a
log2(#BT-entries)-bit index), so FT entries are created and destroyed in
lockstep with BT entries and the FT never evicts on its own.  We model
that pairing directly: the FT maps the leading (ASID, VPN) key to the
live :class:`BTEntry` object.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.backward_table import BTEntry


__all__ = ["ForwardTable"]

class ForwardTable:
    """Index from leading virtual page to BT entry."""

    def __init__(self) -> None:
        self._index: Dict[Tuple[int, int], BTEntry] = {}
        self.lookups = 0
        self.hits = 0

    def __len__(self) -> int:
        return len(self._index)

    def insert(self, entry: BTEntry) -> None:
        """Pair an FT entry with a freshly-allocated BT entry."""
        key = entry.leading_key
        if key in self._index:
            raise ValueError(
                f"forward entry for leading page {key} already exists — "
                "leading virtual pages must be unique"
            )
        self._index[key] = entry

    def lookup(self, asid: int, vpn: int) -> Optional[BTEntry]:
        """BT entry whose leading page is ``(asid, vpn)``, or None.

        A miss is meaningful: on a single-entry TLB shootdown it means no
        data from that virtual page is cached, so the invalidation
        request is filtered (§4.1, "TLB Shootdown").
        """
        self.lookups += 1
        entry = self._index.get((asid, vpn))
        if entry is not None:
            self.hits += 1
        return entry

    def remove(self, asid: int, vpn: int) -> Optional[BTEntry]:
        """Drop the pairing when its BT entry dies."""
        return self._index.pop((asid, vpn), None)

    def remove_entry(self, entry: BTEntry) -> None:
        """Drop by entry identity (used on BT replacement)."""
        self._index.pop(entry.leading_key, None)

    def items(self):
        """Stat-free snapshot of (leading key, BT entry) pairs.

        Unlike :meth:`lookup` this touches no statistics, so invariant
        audits can walk the table without perturbing the simulation.
        """
        return list(self._index.items())
