"""Per-L1 invalidation filter.

Modern GPU hierarchies are non-inclusive: a private L1 may hold lines
the shared L2 does not.  Rather than track L1 contents precisely in the
backward table, the design adds a small filter at each L1 (§4.2): each
entry holds a virtual page number and a counter of resident lines from
that page.  When a page invalidation arrives (FBT-entry eviction or TLB
shootdown), a filter miss proves the L1 holds nothing from the page; a
filter hit conservatively flushes the *entire* L1 — safe because GPU L1s
are write-through (no dirty data) and cheap because their hit ratios are
low and such events are rare.

A 32 KB L1 with 128 B lines has 256 lines, so the filter needs at most
256 entries (≈1 KB, <3% of the L1 per §4.3).
"""

from __future__ import annotations

from typing import Dict, Tuple


__all__ = ["InvalidationFilter"]

class InvalidationFilter:
    """Counting filter over the virtual pages resident in one L1."""

    def __init__(self, name: str = "inval-filter") -> None:
        self.name = name
        self._counts: Dict[Tuple[int, int], int] = {}
        self.checks = 0
        self.filtered = 0

    def __len__(self) -> int:
        return len(self._counts)

    def on_fill(self, asid: int, vpn: int) -> None:
        """The L1 filled a line from ``(asid, vpn)``."""
        key = (asid, vpn)
        self._counts[key] = self._counts.get(key, 0) + 1

    def on_evict(self, asid: int, vpn: int) -> None:
        """The L1 dropped a line from ``(asid, vpn)``."""
        key = (asid, vpn)
        count = self._counts.get(key, 0)
        if count <= 1:
            self._counts.pop(key, None)
        else:
            self._counts[key] = count - 1

    def might_hold(self, asid: int, vpn: int) -> bool:
        """Conservative membership test used by page invalidations.

        ``False`` filters the invalidation (nothing from the page is in
        this L1); ``True`` obliges the caller to flush the L1.
        """
        self.checks += 1
        present = (asid, vpn) in self._counts
        if not present:
            self.filtered += 1
        return present

    def lines_from(self, asid: int, vpn: int) -> int:
        """Resident-line count for a page (diagnostics/tests)."""
        return self._counts.get((asid, vpn), 0)

    def snapshot(self) -> Dict[Tuple[int, int], int]:
        """Stat-free copy of the per-page counts, for invariant audits."""
        return dict(self._counts)

    def clear(self) -> None:
        """Reset after a full L1 flush."""
        self._counts.clear()
