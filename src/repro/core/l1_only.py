"""L1-only virtual caching (§5.4, Figure 11).

This design virtualizes only the private L1s — the configuration most
CPU virtual-cache proposals correspond to.  The shared L2 stays
physically indexed, so translation (per-CU TLB, then the IOMMU) is
needed on every L1 *miss* and on every write-through.  L1 read hits are
the only accesses that skip translation, which is why the paper finds
whole-hierarchy virtual caching filters roughly twice the shared-TLB
traffic (31% vs 66% of private-TLB misses, Figure 2's black vs
black+red bars).

Synonym correctness at the L1 level is kept by an ASDT-style table
(after Yoon & Sohi [52], the design §4 builds on): one entry per
physical page with data in any L1, recording the unique leading virtual
page.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.virtual_hierarchy import _ASID_SHIFT, page_key, split_page_key
from repro.engine.resources import BankedServer
from repro.engine.stats import Counters
from repro.gpu.coalescer import CoalescedRequest
from repro.memsys.addressing import lines_per_page
from repro.memsys.cache import Cache
from repro.memsys.dram import DRAM
from repro.memsys.iommu import IOMMU
from repro.memsys.page_table import PageTable
from repro.memsys.permissions import PermissionFault, ReadWriteSynonymFault
from repro.memsys.tlb import TLB
from repro.system.config import SoCConfig


__all__ = ["ASDT", "ASDTEntry", "L1OnlyVirtualHierarchy"]


@dataclass
class ASDTEntry:
    """Active-synonym-detection entry: one per physical page in the L1s."""

    ppn: int
    leading_asid: int
    leading_vpn: int
    resident_lines: int = 0
    written: bool = False


class ASDT:
    """Tracks the leading virtual page of every physical page in the L1s."""

    def __init__(self, fault_on_rw_synonym: bool = True) -> None:
        self._by_ppn: Dict[int, ASDTEntry] = {}
        self._by_leading: Dict[Tuple[int, int], int] = {}
        self.fault_on_rw_synonym = fault_on_rw_synonym
        self.synonym_accesses = 0

    def __len__(self) -> int:
        return len(self._by_ppn)

    def check(self, asid: int, vpn: int, ppn: int, is_write: bool) -> ASDTEntry:
        """Establish/verify the leading page for an L1 fill of ``ppn``."""
        entry = self._by_ppn.get(ppn)
        if entry is None:
            entry = ASDTEntry(ppn=ppn, leading_asid=asid, leading_vpn=vpn,
                              written=is_write)
            self._by_ppn[ppn] = entry
            self._by_leading[(asid, vpn)] = ppn
            return entry
        if (entry.leading_asid, entry.leading_vpn) != (asid, vpn):
            self.synonym_accesses += 1
            if self.fault_on_rw_synonym and (is_write or entry.written):
                raise ReadWriteSynonymFault(ppn, entry.leading_vpn, vpn)
        if is_write:
            entry.written = True
        return entry

    def note_write(self, asid: int, vpn: int, ppn: int) -> None:
        """A write-through to ``ppn`` passed by; mark tracked pages written.

        Writes to untracked pages are harmless (no stale data can be in
        the L1s) and do not allocate an entry — write-through L1s never
        hold a dirty copy.
        """
        entry = self._by_ppn.get(ppn)
        if entry is None:
            return
        if (entry.leading_asid, entry.leading_vpn) != (asid, vpn):
            self.synonym_accesses += 1
            if self.fault_on_rw_synonym:
                raise ReadWriteSynonymFault(ppn, entry.leading_vpn, vpn)
        entry.written = True

    def on_fill(self, ppn: int) -> None:
        entry = self._by_ppn.get(ppn)
        if entry is not None:
            entry.resident_lines += 1

    def on_evict(self, ppn: int) -> None:
        entry = self._by_ppn.get(ppn)
        if entry is None:
            return
        entry.resident_lines -= 1
        if entry.resident_lines <= 0:
            del self._by_ppn[ppn]
            self._by_leading.pop((entry.leading_asid, entry.leading_vpn), None)

    def leading_of(self, ppn: int) -> Optional[Tuple[int, int]]:
        entry = self._by_ppn.get(ppn)
        if entry is None:
            return None
        return entry.leading_asid, entry.leading_vpn

    def ppn_of_leading(self, asid: int, vpn: int) -> Optional[int]:
        """Reverse index: the PPN led by ``(asid, vpn)``, if tracked."""
        return self._by_leading.get((asid, vpn))

    def entries(self) -> List[ASDTEntry]:
        """Stat-free snapshot of the live entries, for invariant audits."""
        return list(self._by_ppn.values())

    def clear(self) -> None:
        """Drop all tracking (after a full L1 flush)."""
        self._by_ppn.clear()
        self._by_leading.clear()


class L1OnlyVirtualHierarchy:
    """Virtual L1s over a physical L2, with per-CU TLBs on L1 misses."""

    def __init__(
        self,
        config: SoCConfig,
        page_tables: Dict[int, PageTable],
        fault_on_rw_synonym: bool = True,
        obs=None,
    ) -> None:
        self.config = config
        self._counters = Counters()
        self.obs = obs
        self._tracer = obs.tracer if obs is not None else None
        # Windowed time series (obs.metrics.timeline); None unless the
        # caller enabled a timeline before building the hierarchy.
        self._timeline = obs.metrics.timeline if obs is not None else None
        self._lpp = lines_per_page(config.line_size)
        # Deferred hot-path event counts (flushed via the ``counters``
        # property; only nonzero counts materialize, matching the
        # key-presence semantics of per-event ``Counters.add``).
        self._n_accesses = 0
        self._n_l1_hits = 0
        self._n_synonym_replays = 0
        self._n_tlb_accesses = 0
        self._n_tlb_misses = 0
        self._n_l2_hits = 0
        self._n_l2_writebacks = 0
        self.l1s: List[Cache] = [
            Cache(config.l1, name=f"cu{i}-vl1") for i in range(config.n_cus)
        ]
        self.per_cu_tlbs: List[TLB] = [
            TLB(capacity=config.per_cu_tlb_entries, name=f"cu{i}-tlb")
            for i in range(config.n_cus)
        ]
        self.l2 = Cache(config.l2, name="l2-physical")
        self.l2_banks = BankedServer(config.l2.n_banks)
        self.dram = DRAM(
            latency_cycles=config.dram_latency,
            bandwidth_gbps=config.dram_bandwidth_gbps,
            frequency_ghz=config.frequency_ghz,
            line_size=config.line_size,
        )
        self.iommu = IOMMU(config.iommu, page_tables,
                           frequency_ghz=config.frequency_ghz, obs=obs)
        self.asdt = ASDT(fault_on_rw_synonym=fault_on_rw_synonym)
        if obs is not None:
            self.l2_banks.attach_delay_histogram(
                obs.metrics.histogram("l2.bank_queue_delay"))

    # -- counters ---------------------------------------------------------
    @property
    def counters(self) -> Counters:
        """The hierarchy's counter bag, with pending hot-path deltas flushed."""
        self._flush_counters()
        return self._counters

    def _flush_counters(self) -> None:
        counters = self._counters
        if self._n_accesses:
            counters.add("vc.accesses", self._n_accesses)
            self._n_accesses = 0
        if self._n_l1_hits:
            counters.add("vc.l1_hits", self._n_l1_hits)
            self._n_l1_hits = 0
        if self._n_synonym_replays:
            counters.add("vc.synonym_replays", self._n_synonym_replays)
            self._n_synonym_replays = 0
        if self._n_tlb_accesses:
            counters.add("tlb.accesses", self._n_tlb_accesses)
            self._n_tlb_accesses = 0
        if self._n_tlb_misses:
            counters.add("tlb.misses", self._n_tlb_misses)
            self._n_tlb_misses = 0
        if self._n_l2_hits:
            counters.add("l2.hits", self._n_l2_hits)
            self._n_l2_hits = 0
        if self._n_l2_writebacks:
            counters.add("l2.writebacks", self._n_l2_writebacks)
            self._n_l2_writebacks = 0

    # -- translation (per-CU TLB → IOMMU) ----------------------------------
    def _translate(self, cu_id: int, vpn: int, now: float, asid: int):
        tlb = self.per_cu_tlbs[cu_id]
        self._n_tlb_accesses += 1
        if self._timeline is not None:
            self._timeline.record("tlb.probes", now)
        key = (asid << 52) | vpn
        # Inlined TLB.lookup (no lifetime tracker on per-CU TLBs): a
        # last-translation micro-memo tag compare, falling back to the
        # dict probe + LRU refresh, skipping the method dispatch.  The
        # memo hit skips the refresh safely: the memoized key is MRU.
        t = now + self.config.per_cu_tlb_latency
        tracer = self._tracer
        tracing = tracer is not None and tracer.enabled
        if key == tlb._memo_key:
            entry = tlb._memo_entry
        else:
            entries = tlb._entries
            entry = entries.get(key)
            if entry is not None:
                entries.move_to_end(key)
                tlb._memo_key = key
                tlb._memo_entry = entry
        if entry is not None:
            tlb.hits += 1
            if tracing:
                tracer.emit("tlb.hit", t, cu=cu_id, vpn=vpn)
            return t, entry.ppn, entry.permissions
        tlb.misses += 1
        self._n_tlb_misses += 1
        if self._timeline is not None:
            self._timeline.record("tlb.misses", t)
        if tracing:
            tracer.emit("tlb.miss", t, cu=cu_id, vpn=vpn)
        request_at = t + self.config.interconnect.gpu_to_iommu
        outcome = self.iommu.translate(vpn, request_at, asid=asid)
        ready = outcome.finish + self.config.interconnect.iommu_to_gpu
        tlb.insert(key, outcome.ppn, outcome.permissions, ready)
        return ready, outcome.ppn, outcome.permissions

    # -- the access path ------------------------------------------------------
    def access(
        self, cu_id: int, request: CoalescedRequest, now: float, asid: int = 0
    ) -> float:
        """Service one coalesced request; return its completion time."""
        cfg = self.config
        vline = request.line_addr
        vpn = request.vpn
        is_write = request.is_write
        line_index = vline % self._lpp
        l1 = self.l1s[cu_id]
        self._n_accesses += 1
        timeline = self._timeline
        if timeline is not None:
            timeline.record("vc.accesses", now)

        key = (asid << _ASID_SHIFT) | vline
        line = l1.lookup(key)
        if line is not None and not is_write:
            if not line.permissions._value_ & 1:
                raise PermissionFault(vpn, False, line.permissions)
            self._n_l1_hits += 1
            if timeline is not None:
                timeline.record("vc.l1_hits", now)
            tracer = self._tracer
            if tracer is not None and tracer.enabled:
                tracer.emit("vc.l1_hit", now, cu=cu_id, vpn=vpn)
            return now + cfg.l1_latency

        # Everything else needs a physical address: L1 read misses and
        # all writes (write-through to the physical L2).
        ready, ppn, permissions, *_ = self._translate(cu_id, vpn, now, asid)
        if not permissions._value_ & (2 if is_write else 1):
            raise PermissionFault(vpn, is_write, permissions)
        physical_line = ppn * self._lpp + line_index

        if is_write:
            if line is not None:
                self._n_l1_hits += 1
            self.asdt.note_write(asid, vpn, ppn)
            return self._l2_write(physical_line, ready + cfg.l1_latency)

        entry = self.asdt.check(asid, vpn, ppn, False)
        lead_key = ((entry.leading_asid << _ASID_SHIFT)
                    | (entry.leading_vpn * self._lpp + line_index))
        if lead_key != key:
            # Synonym: the data, if present, is cached under the leading
            # virtual address; replay there.
            self._n_synonym_replays += 1
            replayed = l1.lookup(lead_key)
            if replayed is not None:
                self._n_l1_hits += 1
                return ready + cfg.l1_latency
            key = lead_key
            asid, vpn = entry.leading_asid, entry.leading_vpn

        completion = self._l2_read(physical_line, ready)
        self._fill_l1(cu_id, asid, vpn, key, ppn, permissions)
        return completion

    def _l2_write(self, physical_line: int, now: float) -> float:
        cfg = self.config
        t_l2 = now + cfg.interconnect.l1_to_l2
        start = self.l2_banks.banks[self.l2.bank_of(physical_line)].request(t_l2)
        t_done = start + cfg.l2_latency
        if self.l2.lookup(physical_line) is not None:
            self.l2.mark_dirty(physical_line)
            return t_done
        victim = self.l2.insert(physical_line, dirty=True)
        if victim is not None and victim.dirty:
            self.dram.access_line(start)
            self._n_l2_writebacks += 1
        return t_done

    def _l2_read(self, physical_line: int, now: float) -> float:
        cfg = self.config
        t_l2 = now + cfg.l1_latency + cfg.interconnect.l1_to_l2
        start = self.l2_banks.banks[self.l2.bank_of(physical_line)].request(t_l2)
        t_hit = start + cfg.l2_latency
        if self.l2.lookup(physical_line) is not None:
            self._n_l2_hits += 1
            return t_hit + cfg.interconnect.l1_to_l2
        t_mem = self.dram.access_line(t_hit)
        victim = self.l2.insert(physical_line)
        if victim is not None and victim.dirty:
            self.dram.access_line(t_mem)
            self._n_l2_writebacks += 1
        return t_mem + cfg.interconnect.l1_to_l2

    def _fill_l1(
        self, cu_id: int, asid: int, vpn: int, key: int, ppn: int, permissions
    ) -> None:
        victim = self.l1s[cu_id].insert(key, permissions=permissions,
                                        page=page_key(asid, vpn))
        if victim is not None and victim.page is not None:
            v_asid, v_vpn = split_page_key(victim.page)
            victim_ppn = self.asdt.ppn_of_leading(v_asid, v_vpn)
            if victim_ppn is not None:
                self.asdt.on_evict(victim_ppn)
        self.asdt.on_fill(ppn)

    # -- software-visible operations ----------------------------------------
    def shootdown(self, asid: int, vpn: int, now: float = 0.0) -> bool:
        """Single-entry TLB shootdown: drop the translation and L1 data.

        Only leading pages have data in the (virtual) L1s; shooting down
        a non-leading synonym page needs just the TLB invalidations —
        the data remains valid under its unchanged leading mapping.
        Returns True when cached data had to be invalidated.
        """
        key = (asid << _ASID_SHIFT) | vpn
        for tlb in self.per_cu_tlbs:
            tlb.invalidate(key, now)
        self.iommu.invalidate(vpn, asid)
        ppn = self.asdt.ppn_of_leading(asid, vpn)
        if ppn is None:
            return False
        pkey = page_key(asid, vpn)
        dropped = False
        for l1 in self.l1s:
            for _line in l1.invalidate_page(pkey):
                self.asdt.on_evict(ppn)
                dropped = True
        return dropped

    def shootdown_all(self, now: float = 0.0) -> int:
        """All-entry shootdown: flush every translation and virtual L1."""
        for tlb in self.per_cu_tlbs:
            tlb.invalidate_all(now)
        self.iommu.invalidate_all()
        flushed = len(self.asdt)
        for l1 in self.l1s:
            l1.invalidate_all()
        self.asdt.clear()
        return flushed

    def finish(self, now: float) -> None:
        """End-of-run hook: flush deferred counters into the bag."""
        self._flush_counters()
