"""Dynamic synonym remapping (§4.3, after Yoon & Sohi [52]).

Without remapping, every access through a non-leading virtual address
misses the whole virtual cache hierarchy and is replayed at the FBT —
"it will miss in the cache and will be replayed on every access" (§4.1).
The paper points out that for synonym-heavy future workloads the ASDT
paper's *dynamic synonym remapping* integrates naturally: a small
per-CU table remembers active non-leading → leading page remappings and
applies them *before* the L1 lookup, so repeated synonymous accesses
become ordinary virtual-cache hits.

Entries are learned from FBT synonym detections (the replay response
carries the leading address) and must be dropped whenever the leading
page's FBT entry dies (shootdown, eviction, remap) — a stale remapping
would resurrect invalidated data.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

__all__ = ["Key", "SynonymRemapTable"]

Key = Tuple[int, int]  # (asid, vpn)


class SynonymRemapTable:
    """A small per-CU LRU table of non-leading → leading page remappings."""

    def __init__(self, capacity: int = 32, name: str = "srt") -> None:
        if capacity <= 0:
            raise ValueError("SRT capacity must be positive")
        self.capacity = capacity
        self.name = name
        self._entries: "OrderedDict[Key, Key]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, asid: int, vpn: int) -> Optional[Key]:
        """Leading ``(asid, vpn)`` for a known synonym page, or None."""
        leading = self._entries.get((asid, vpn))
        if leading is None:
            self.misses += 1
            return None
        self._entries.move_to_end((asid, vpn))
        self.hits += 1
        return leading

    def insert(self, asid: int, vpn: int, leading_asid: int,
               leading_vpn: int) -> None:
        """Learn a remapping (from an FBT synonym detection)."""
        if (asid, vpn) == (leading_asid, leading_vpn):
            raise ValueError("a page cannot be a synonym of itself")
        key = (asid, vpn)
        if key in self._entries:
            self._entries.move_to_end(key)
        elif len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
        self._entries[key] = (leading_asid, leading_vpn)

    def invalidate_leading(self, leading_asid: int, leading_vpn: int) -> int:
        """Drop every remapping that targets a dead leading page."""
        doomed = [k for k, v in self._entries.items()
                  if v == (leading_asid, leading_vpn)]
        for key in doomed:
            del self._entries[key]
        return len(doomed)

    def invalidate(self, asid: int, vpn: int) -> bool:
        """Drop one source page's remapping (its own mapping changed)."""
        return self._entries.pop((asid, vpn), None) is not None

    def entries(self):
        """Stat-free snapshot of (source, leading) pairs, for audits."""
        return list(self._entries.items())

    def clear(self) -> None:
        self._entries.clear()
