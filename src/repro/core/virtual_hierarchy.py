"""The proposed GPU virtual cache hierarchy (Figure 6).

Both the per-CU L1s and the shared L2 are indexed and tagged by virtual
addresses; per-CU TLBs are gone.  A request reaches address translation
only when it misses the *entire* cache hierarchy, so the hierarchy acts
as a bandwidth filter in front of the shared IOMMU TLB.  The
forward-backward table in the IOMMU keeps execution correct for
synonyms, shootdowns, and physically-addressed coherence — and in the
"With OPT" configuration doubles as a second-level TLB.

Cache keys are ASID-qualified virtual line addresses, which is how the
design handles homonyms (§4.3: "each cache line needs to track the
corresponding ASID information", avoiding flushes on context switches).

Hot-path note: :meth:`VirtualCacheHierarchy.access` runs once per
coalesced request.  Event counts are accumulated in plain integer
attributes and flushed into the :class:`~repro.engine.stats.Counters`
bag only when ``counters`` is read (every read flushes, so mid-run
inspection still sees exact values); the ASID-qualification of line and
page keys is inlined rather than routed through :func:`line_key`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.fbt import ForwardBackwardTable, InvalidationOrder
from repro.core.invalidation_filter import InvalidationFilter
from repro.core.synonym_remap import SynonymRemapTable
from repro.engine.resources import BankedServer
from repro.engine.stats import Counters
from repro.gpu.coalescer import CoalescedRequest
from repro.memsys.cache import Cache, CacheLine
from repro.memsys.directory import CoherenceProbe
from repro.memsys.dram import DRAM
from repro.memsys.iommu import IOMMU
from repro.memsys.addressing import lines_per_page
from repro.memsys.page_table import PageTable
from repro.memsys.permissions import PermissionFault, Permissions
from repro.system.config import SoCConfig

# Virtual line/page keys are ASID-qualified so distinct address spaces
# never alias in the caches (homonym safety).

__all__ = ["VirtualCacheHierarchy", "line_key", "page_key", "split_page_key"]

_ASID_SHIFT = 52


def line_key(asid: int, virtual_line: int) -> int:
    """ASID-qualified virtual line address used as the cache key."""
    return (asid << _ASID_SHIFT) | virtual_line


def page_key(asid: int, vpn: int) -> int:
    """ASID-qualified virtual page number used for page-level tracking."""
    return (asid << _ASID_SHIFT) | vpn


def split_page_key(key: int) -> Tuple[int, int]:
    """Inverse of :func:`page_key`."""
    return key >> _ASID_SHIFT, key & ((1 << _ASID_SHIFT) - 1)


class VirtualCacheHierarchy:
    """Whole-hierarchy (L1 + L2) virtual caching with an FBT."""

    # The FBT detects pages remapped without an explicit shootdown on the
    # next translation (``fbt.stale_remaps``), so silent-remap fault
    # injection is a meaningful event for this hierarchy only.
    handles_stale_remap = True

    def __init__(
        self,
        config: SoCConfig,
        page_tables: Dict[int, PageTable],
        fbt_as_second_level_tlb: bool = True,
        fault_on_rw_synonym: bool = True,
        use_invalidation_filters: bool = True,
        large_page_policy: str = "subpage",
        enable_synonym_remapping: bool = False,
        srt_entries: int = 32,
        obs=None,
    ) -> None:
        self.config = config
        self._counters = Counters()
        self.obs = obs
        self._tracer = obs.tracer if obs is not None else None
        # Windowed time series (obs.metrics.timeline); None unless the
        # caller enabled a timeline before building the hierarchy.
        self._timeline = obs.metrics.timeline if obs is not None else None
        self._lpp = lines_per_page(config.line_size)
        # Per-access scalar latencies, hoisted out of the (frozen)
        # config's nested dataclasses for the access fast path.
        self._l1_latency = config.l1_latency
        self._l2_latency = config.l2_latency
        self._l1_to_l2 = config.interconnect.l1_to_l2
        # Deferred hot-path event counts (flushed via the ``counters``
        # property; only nonzero counts materialize, matching the
        # key-presence semantics of per-event ``Counters.add``).
        # ``vc.accesses`` is not counted per access: every access makes
        # exactly one L1 probe (synonym replays re-probe only the L2),
        # so it is derived at flush time from the L1s' hit/miss totals.
        self._n_srt_remaps = 0
        self._n_l1_hits = 0
        self._n_l2_hits = 0
        self._n_l2_misses = 0
        self._n_synonym_replays = 0
        self._n_l2_writebacks = 0
        self._n_invalidations = 0
        self._n_l1_flushes = 0
        # Ablation knob: without the per-L1 filters (§4.2), every page
        # invalidation must conservatively flush every L1.
        self.use_invalidation_filters = use_invalidation_filters

        self.l1s: List[Cache] = [
            Cache(config.l1, name=f"cu{i}-vl1") for i in range(config.n_cus)
        ]
        self.filters: List[InvalidationFilter] = [
            InvalidationFilter(name=f"cu{i}-filter") for i in range(config.n_cus)
        ]
        self.l2 = Cache(config.l2, name="vl2")
        self.l2_banks = BankedServer(config.l2.n_banks)
        self.dram = DRAM(
            latency_cycles=config.dram_latency,
            bandwidth_gbps=config.dram_bandwidth_gbps,
            frequency_ghz=config.frequency_ghz,
            line_size=config.line_size,
        )
        self.fbt = ForwardBackwardTable(
            n_entries=config.fbt_entries,
            associativity=config.fbt_associativity,
            lines_per_page=self._lpp,
            fault_on_rw_synonym=fault_on_rw_synonym,
            large_page_policy=large_page_policy,
        )
        self.fbt_as_second_level_tlb = fbt_as_second_level_tlb
        self.iommu = IOMMU(
            config.iommu,
            page_tables,
            frequency_ghz=config.frequency_ghz,
            second_level=self.fbt if fbt_as_second_level_tlb else None,
            obs=obs,
        )
        if obs is not None:
            self.l2_banks.attach_delay_histogram(
                obs.metrics.histogram("l2.bank_queue_delay"))
        # Dynamic synonym remapping (§4.3): optional per-CU tables that
        # redirect known synonym pages to their leading address before
        # the L1 lookup.
        self.enable_synonym_remapping = enable_synonym_remapping
        self.srts: Optional[List[SynonymRemapTable]] = None
        if enable_synonym_remapping:
            self.srts = [SynonymRemapTable(srt_entries, name=f"cu{i}-srt")
                         for i in range(config.n_cus)]
        if obs is None:
            # Uninstrumented build: shadow the access method with the
            # closure-compiled fast path (bit-identical; see fastpath).
            from repro.system.fastpath import compile_virtual_access

            fast = compile_virtual_access(self)
            if fast is not None:
                self.access = fast

    # -- counters ---------------------------------------------------------
    @property
    def counters(self) -> Counters:
        """The hierarchy's counter bag, with pending hot-path deltas flushed."""
        self._flush_counters()
        return self._counters

    def _flush_counters(self) -> None:
        counters = self._counters
        probes = sum(l1.hits + l1.misses for l1 in self.l1s)
        if probes:
            counters.set("vc.accesses", probes)
        if self._n_srt_remaps:
            counters.add("vc.srt_remaps", self._n_srt_remaps)
            self._n_srt_remaps = 0
        if self._n_l1_hits:
            counters.add("vc.l1_hits", self._n_l1_hits)
            self._n_l1_hits = 0
        if self._n_l2_hits:
            counters.add("vc.l2_hits", self._n_l2_hits)
            self._n_l2_hits = 0
        if self._n_l2_misses:
            counters.add("vc.l2_misses", self._n_l2_misses)
            self._n_l2_misses = 0
        if self._n_synonym_replays:
            counters.add("vc.synonym_replays", self._n_synonym_replays)
            self._n_synonym_replays = 0
        if self._n_l2_writebacks:
            counters.add("vc.l2_writebacks", self._n_l2_writebacks)
            self._n_l2_writebacks = 0
        if self._n_invalidations:
            counters.add("vc.invalidations", self._n_invalidations)
            self._n_invalidations = 0
        if self._n_l1_flushes:
            counters.add("vc.l1_flushes", self._n_l1_flushes)
            self._n_l1_flushes = 0

    # -- the access path --------------------------------------------------
    def access(
        self, cu_id: int, request: CoalescedRequest, now: float, asid: int = 0
    ) -> float:
        """Service one coalesced request; return its completion time.

        Reads complete when data arrives; writes are posted (complete at
        L1-write time) but still exercise the L2/translation machinery
        at the correct simulated times.
        """
        vline = request.line_addr
        vpn = request.vpn
        lpp = self._lpp
        line_index = vline % lpp
        is_write = request.is_write

        timeline = self._timeline
        if timeline is not None:
            timeline.record("vc.accesses", now)
        if self.srts is not None:
            # Dynamic synonym remapping: redirect known synonym pages to
            # their leading address before the L1 lookup (one extra
            # cycle, subsumed by the L1 access latency here).
            remap = self.srts[cu_id].lookup(asid, vpn)
            if remap is not None:
                asid, vpn = remap
                vline = vpn * lpp + line_index
                self._n_srt_remaps += 1
        key = (asid << _ASID_SHIFT) | vline
        # Inlined Cache.lookup for the virtual L1 (and the L2 below):
        # set select is a bitmask, a hit is a dict probe + LRU refresh.
        l1 = self.l1s[cu_id]
        l1_set = l1._sets[key & l1._set_mask]
        line = l1_set.get(key)
        if line is not None:
            l1_set.move_to_end(key)
            l1.hits += 1
            if not line.permissions._value_ & (2 if is_write else 1):
                raise PermissionFault(vpn, is_write, line.permissions)
            self._n_l1_hits += 1
            if timeline is not None:
                timeline.record("vc.l1_hits", now)
            tracer = self._tracer
            if tracer is not None and tracer.enabled:
                tracer.emit("vc.l1_hit", now, cu=cu_id, vpn=vpn)
            if is_write:
                # Write-through: the write still flows to the L2 and the
                # store occupies the CU window until it lands there.
                return self._l2_write(cu_id, asid, vpn, vline, line_index,
                                      now + self._l1_latency)
            return now + self._l1_latency
        l1.misses += 1

        # L1 miss → virtual L2.  (bank_of returns an in-range index, so
        # the bank's server is addressed directly.)
        t_l2 = now + self._l1_latency + self._l1_to_l2
        l2 = self.l2
        start = self.l2_banks.banks[l2.bank_of(key)].request(t_l2)
        t_hit = start + self._l2_latency
        l2_set = l2._sets[key & l2._set_mask]
        l2_line = l2_set.get(key)
        if l2_line is not None:
            l2_set.move_to_end(key)
            l2.hits += 1
            if not l2_line.permissions._value_ & (2 if is_write else 1):
                raise PermissionFault(vpn, is_write, l2_line.permissions)
            self._n_l2_hits += 1
            if timeline is not None:
                timeline.record("vc.l2_hits", t_hit)
            tracer = self._tracer
            if tracer is not None and tracer.enabled:
                tracer.emit("vc.l2_hit", t_hit, cu=cu_id, vpn=vpn)
            if is_write:
                l2_line.dirty = True
                self.fbt.note_write(asid, vpn)
                return t_hit
            self._fill_l1(cu_id, asid, vpn, key, l2_line.permissions)
            return t_hit + self._l1_to_l2
        l2.misses += 1

        # Whole-hierarchy miss → translation is finally needed.
        self._n_l2_misses += 1
        if timeline is not None:
            timeline.record("vc.l2_misses", t_hit)
        tracer = self._tracer
        if tracer is not None and tracer.enabled:
            tracer.emit("vc.miss", t_hit, cu=cu_id, vpn=vpn)
        return self._miss_path(
            cu_id, asid, vpn, vline, line_index, is_write, t_hit
        )

    def _l2_write(
        self,
        cu_id: int,
        asid: int,
        vpn: int,
        vline: int,
        line_index: int,
        now: float,
    ) -> float:
        """Write-through from an L1 write hit: update/allocate in the L2."""
        key = (asid << _ASID_SHIFT) | vline
        t_l2 = now + self._l1_to_l2
        l2 = self.l2
        start = self.l2_banks.banks[l2.bank_of(key)].request(t_l2)
        l2_set = l2._sets[key & l2._set_mask]
        line = l2_set.get(key)
        if line is not None:
            l2_set.move_to_end(key)
            l2.hits += 1
            line.dirty = True
            self.fbt.note_write(asid, vpn)
            return start + self._l2_latency
        l2.misses += 1
        # Non-inclusive hierarchy: the L1 held the line but the L2 did
        # not.  The write allocates in the write-back L2, which needs an
        # FBT consultation (translation) to keep inclusion tracking.
        return self._miss_path(cu_id, asid, vpn, vline, line_index, True,
                               start + self._l2_latency, fill_l1=False)

    def _miss_path(
        self,
        cu_id: int,
        asid: int,
        vpn: int,
        vline: int,
        line_index: int,
        is_write: bool,
        now: float,
        fill_l1: bool = True,
    ) -> float:
        """Translate, consult the FBT, and fetch on a whole-hierarchy miss."""
        cfg = self.config
        t_iommu = now + cfg.interconnect.gpu_to_iommu
        outcome = self.iommu.translate(vpn, t_iommu, asid=asid)
        if not outcome.permissions._value_ & (2 if is_write else 1):
            raise PermissionFault(vpn, is_write, outcome.permissions)

        t_fbt = outcome.finish + cfg.interconnect.l2_to_fbt + cfg.interconnect.fbt_lookup
        if self._timeline is not None:
            self._timeline.record("fbt.lookups", t_fbt)
        check = self.fbt.check_access(
            asid, vpn, outcome.ppn, outcome.permissions, line_index, is_write,
            is_large=outcome.is_large,
            large_base_vpn=outcome.large_base_vpn,
            large_base_ppn=outcome.large_base_ppn,
        )
        for order in check.invalidations:
            self._execute_invalidation(order, t_fbt)

        if check.status == "synonym":
            return self._synonym_replay(
                cu_id, asid, vpn, check, outcome.ppn, line_index, is_write,
                t_fbt, fill_l1,
            )

        # Leading (or brand-new leading) access: place the data under
        # the requested — leading — virtual address.  Writes allocate in
        # the write-back L2 without a memory fetch (full-line store);
        # reads fetch the line from DRAM first.
        if is_write:
            self._fill_l2(asid, vpn, line_index, outcome.ppn, True,
                          outcome.permissions, t_fbt)
            return t_fbt + cfg.interconnect.l1_to_l2
        t_mem = self.dram.access_line(t_fbt)
        self._fill_l2(asid, vpn, line_index, outcome.ppn, False, outcome.permissions, t_mem)
        if fill_l1:
            self._fill_l1(cu_id, asid, vpn, (asid << _ASID_SHIFT) | vline,
                          outcome.permissions)
        return t_mem + cfg.interconnect.l1_to_l2

    def _synonym_replay(
        self,
        cu_id: int,
        asid: int,
        vpn: int,
        check,
        ppn: int,
        line_index: int,
        is_write: bool,
        now: float,
        fill_l1: bool,
    ) -> float:
        """Replay a synonym access with the page's leading virtual address."""
        cfg = self.config
        self._n_synonym_replays += 1
        if self.srts is not None:
            # Learn the remapping so this CU's future accesses through
            # the synonym page hit the caches directly.
            self.srts[cu_id].insert(asid, vpn, check.leading_asid,
                                    check.leading_vpn)
        lead_vline = check.leading_vpn * self._lpp + line_index
        lead_key = (check.leading_asid << _ASID_SHIFT) | lead_vline
        t_replay = now + cfg.interconnect.l2_to_fbt  # back to the L2

        if check.replay_hits_l2:
            start = self.l2_banks.banks[self.l2.bank_of(lead_key)].request(t_replay)
            t_hit = start + cfg.l2_latency
            line = self.l2.lookup(lead_key)
            if line is None:
                if check.entry.tracking != "counter":
                    raise RuntimeError(
                        "BT bit vector said the replay would hit, but the L2 "
                        "does not hold the leading line — inclusion broken"
                    )
                # Counter-mode entries are conservative: "some line of
                # the large page is cached" does not pin down this one.
                # Fall through to the memory fetch below.
                t_replay = t_hit
            else:
                if is_write:
                    self.l2.mark_dirty(lead_key)
                elif fill_l1:
                    self._fill_l1(cu_id, check.leading_asid, check.leading_vpn,
                                  lead_key, line.permissions)
                return t_hit + cfg.interconnect.l1_to_l2

        # Bit clear: writes allocate directly; reads fetch from memory.
        # Either way the data is cached under the leading address.
        if is_write:
            self._fill_l2(check.leading_asid, check.leading_vpn, line_index, ppn,
                          True, check.entry.permissions, t_replay)
            return t_replay + cfg.interconnect.l1_to_l2
        t_mem = self.dram.access_line(t_replay)
        self._fill_l2(check.leading_asid, check.leading_vpn, line_index, ppn,
                      False, check.entry.permissions, t_mem)
        if fill_l1:
            self._fill_l1(cu_id, check.leading_asid, check.leading_vpn, lead_key,
                          check.entry.permissions)
        return t_mem + cfg.interconnect.l1_to_l2

    # -- fills -------------------------------------------------------------
    # Both fills inline ``Cache.insert`` and *recycle* the evicted victim
    # line in place of allocating a fresh CacheLine: same field values,
    # same LRU/dict ordering, one allocation less per fill.  They run on
    # every L2 read hit (L1 fill) and every whole-hierarchy miss (L2
    # fill), which makes them the hottest allocation sites of the VC.

    def _fill_l1(
        self, cu_id: int, asid: int, vpn: int, key: int, permissions: Permissions
    ) -> None:
        l1 = self.l1s[cu_id]
        cache_set = l1._sets[key & l1._set_mask]
        pkey = (asid << _ASID_SHIFT) | vpn
        fltr = self.filters[cu_id]
        existing = cache_set.get(key)
        if existing is not None:
            # A synonym replay can refill a leading line that is already
            # resident (the original probe used the synonym key).
            existing.permissions = permissions
            cache_set.move_to_end(key)
            fltr.on_fill(asid, vpn)
            return
        if len(cache_set) >= l1._associativity:
            _, victim = cache_set.popitem(last=False)
            victim_page = victim.page
            if victim_page is not None:
                l1._forget_page_line(victim)
                fltr.on_evict(victim_page >> _ASID_SHIFT,
                              victim_page & ((1 << _ASID_SHIFT) - 1))
            victim.line_addr = key
            victim.dirty = False
            victim.permissions = permissions
            victim.page = pkey
            cache_set[key] = victim
        else:
            cache_set[key] = CacheLine(key, False, permissions, pkey)
            l1._n_resident += 1
        page_lines = l1._page_lines
        page_lines[pkey] = page_lines.get(pkey, 0) + 1
        fltr.on_fill(asid, vpn)

    def _fill_l2(
        self,
        asid: int,
        vpn: int,
        line_index: int,
        ppn: int,
        dirty: bool,
        permissions: Permissions,
        now: float,
    ) -> None:
        lpp = self._lpp
        key = (asid << _ASID_SHIFT) | (vpn * lpp + line_index)
        pkey = (asid << _ASID_SHIFT) | vpn
        l2 = self.l2
        cache_set = l2._sets[key & l2._set_mask]
        existing = cache_set.get(key)
        if existing is not None:
            # Refill of a resident line: refresh LRU, merge the dirty
            # bit (write-back cache), no victim.
            existing.dirty = existing.dirty or dirty
            existing.permissions = permissions
            cache_set.move_to_end(key)
        else:
            if len(cache_set) >= l2._associativity:
                _, victim = cache_set.popitem(last=False)
                if victim.dirty:
                    self.dram.access_line(now)  # write-back traffic
                    self._n_l2_writebacks += 1
                victim_page = victim.page
                if victim_page is not None:
                    l2._forget_page_line(victim)
                    self.fbt.note_l2_eviction(
                        victim_page >> _ASID_SHIFT,
                        victim_page & ((1 << _ASID_SHIFT) - 1),
                        victim.line_addr % lpp)
                victim.line_addr = key
                victim.dirty = dirty
                victim.permissions = permissions
                victim.page = pkey
                cache_set[key] = victim
            else:
                cache_set[key] = CacheLine(key, dirty, permissions, pkey)
                l2._n_resident += 1
            page_lines = l2._page_lines
            page_lines[pkey] = page_lines.get(pkey, 0) + 1
        self.fbt.note_l2_fill(ppn, line_index)

    # -- invalidation machinery ---------------------------------------------
    def _execute_invalidation(self, order: InvalidationOrder, now: float) -> None:
        """Carry out an FBT-entry eviction / shootdown invalidation (§4.2)."""
        if order.walk_l2:
            # Counter-mode (large page) invalidation: walk every subpage.
            dropped = []
            for subpage in range(order.n_subpages):
                pkey = page_key(order.asid, order.leading_vpn + subpage)
                dropped.extend(self.l2.invalidate_page(pkey))
        else:
            dropped = []
            base = order.leading_vpn * self._lpp
            for idx in order.line_indices:
                line = self.l2.invalidate_line(line_key(order.asid, base + idx))
                if line is not None:
                    dropped.append(line)
        for line in dropped:
            if line.dirty:
                self.dram.access_line(now)
                self._n_l2_writebacks += 1
        self._n_invalidations += 1

        # Non-inclusive L1s: consult each CU's invalidation filter; a hit
        # conservatively flushes that whole (clean, write-through) L1.
        timeline = self._timeline
        for cu_id, fltr in enumerate(self.filters):
            flush = not self.use_invalidation_filters
            if not flush:
                flush = any(
                    fltr.might_hold(order.asid, order.leading_vpn + subpage)
                    for subpage in range(order.n_subpages)
                )
            if timeline is not None:
                timeline.record("filter.checks", now)
                if not flush:
                    # The invalidation filter proved this L1 clean of
                    # the page, saving a conservative whole-L1 flush.
                    timeline.record("filter.filtered", now)
            if flush:
                self.l1s[cu_id].invalidate_all()
                fltr.clear()
                self._n_l1_flushes += 1
        if self.srts is not None:
            # Stale remappings to the dead leading page must go too.
            for srt in self.srts:
                srt.invalidate_leading(order.asid, order.leading_vpn)

    # -- software-visible operations ------------------------------------------
    def shootdown(self, asid: int, vpn: int, now: float = 0.0) -> bool:
        """Single-entry TLB shootdown: drop the translation and cached data.

        Returns True when data had to be invalidated (the FT did not
        filter the request).
        """
        self.iommu.invalidate(vpn, asid)
        if self.srts is not None:
            # The shot-down page may be a synonym *source*: its own
            # remapping is stale even when the FT filters the request
            # (non-leading pages have no FT entry).
            for srt in self.srts:
                srt.invalidate(asid, vpn)
        order = self.fbt.shootdown(asid, vpn)
        if order is None:
            return False
        self._execute_invalidation(order, now)
        return True

    def shootdown_all(self, now: float = 0.0) -> int:
        """All-entry shootdown: flush every cached translation and page."""
        self.iommu.invalidate_all()
        orders = self.fbt.shootdown_all()
        for order in orders:
            self._execute_invalidation(order, now)
        return len(orders)

    def handle_probe(self, probe: CoherenceProbe, now: float = 0.0) -> CoherenceProbe:
        """Service a physically-addressed coherence probe from the directory."""
        reverse = self.fbt.reverse_translate_probe(probe.physical_line)
        if reverse is None:
            probe.filtered = True
            return probe
        probe.filtered = False
        asid, virtual_line, line_index, l2_has_line = reverse
        probe.forwarded_virtual_line = virtual_line
        if l2_has_line:
            line = self.l2.invalidate_line(line_key(asid, virtual_line))
            if line is not None:
                if line.dirty:
                    self.dram.access_line(now)
                self.fbt.note_l2_eviction(asid, virtual_line // self._lpp, line_index)
        vpn = virtual_line // self._lpp
        for cu_id, fltr in enumerate(self.filters):
            if fltr.might_hold(asid, vpn):
                self.l1s[cu_id].invalidate_all()
                fltr.clear()
                self._n_l1_flushes += 1
        return probe

    def finish(self, now: float) -> None:
        """End-of-run hook: flush deferred counters into the bag."""
        self._flush_counters()
