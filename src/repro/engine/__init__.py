"""Discrete-event simulation kernel, shared-resource models, statistics."""

from repro.engine.events import EventQueue, Simulator
from repro.engine.resources import (
    BandwidthLink,
    BankedServer,
    ThreadPool,
    ThroughputServer,
)
from repro.engine.stats import (
    Counters,
    IntervalSampler,
    LifetimeTracker,
    RateStats,
    cdf,
    fraction_at_or_below,
)

__all__ = [
    "EventQueue",
    "Simulator",
    "ThroughputServer",
    "BankedServer",
    "ThreadPool",
    "BandwidthLink",
    "Counters",
    "IntervalSampler",
    "LifetimeTracker",
    "RateStats",
    "cdf",
    "fraction_at_or_below",
]
