"""Discrete-event simulation kernel.

The timing model in :mod:`repro.system` is mostly *compositional* (request
latencies are computed by walking through shared-resource models), but a
classic event queue is still needed for asynchronous activity such as
coherence probes from the CPU directory, TLB shootdowns, and periodic
samplers.  This module provides that kernel.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple


__all__ = ["EventQueue", "Simulator"]

class EventQueue:
    """A time-ordered queue of callbacks.

    Events scheduled for the same time fire in the order they were
    scheduled (a monotonically increasing sequence number breaks ties),
    which keeps simulations deterministic.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Callable[..., Any], tuple]] = []
        self._seq = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, time: float, callback: Callable[..., Any], *args: Any) -> None:
        """Schedule ``callback(*args)`` to fire at ``time``."""
        if time < 0:
            raise ValueError(f"cannot schedule an event at negative time {time}")
        heapq.heappush(self._heap, (time, next(self._seq), callback, args))

    def peek_time(self) -> Optional[float]:
        """Return the firing time of the earliest event, or ``None``."""
        if not self._heap:
            return None
        return self._heap[0][0]

    def pop(self) -> Tuple[float, Callable[..., Any], tuple]:
        """Remove and return the earliest event as ``(time, callback, args)``."""
        time, _seq, callback, args = heapq.heappop(self._heap)
        return time, callback, args


class Simulator:
    """Minimal event-driven simulator with a cycle-granular clock.

    Times are expressed in *cycles* of the GPU clock.  ``frequency_ghz``
    is only used to convert to wall-clock nanoseconds for reporting
    (e.g., the lifetime CDFs of Figure 12 are plotted in ns).
    """

    def __init__(self, frequency_ghz: float = 0.7) -> None:
        if frequency_ghz <= 0:
            raise ValueError("frequency must be positive")
        self.frequency_ghz = frequency_ghz
        self.now: float = 0.0
        self._events = EventQueue()

    # -- time -----------------------------------------------------------
    def cycles_to_ns(self, cycles: float) -> float:
        """Convert a cycle count to nanoseconds at the configured clock."""
        return cycles / self.frequency_ghz

    def ns_to_cycles(self, ns: float) -> float:
        """Convert nanoseconds to cycles at the configured clock."""
        return ns * self.frequency_ghz

    def advance_to(self, time: float) -> None:
        """Move the clock forward to ``time`` (never backwards)."""
        if time > self.now:
            self.now = time

    # -- events ---------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> None:
        """Schedule ``callback`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule with negative delay {delay}")
        self._events.push(self.now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> None:
        """Schedule ``callback`` to run at absolute ``time`` cycles."""
        self._events.push(time, callback, *args)

    def pending_events(self) -> int:
        """Number of events waiting to fire."""
        return len(self._events)

    def fire_due_events(self, up_to: float) -> int:
        """Fire every queued event with time ``<= up_to``.

        The clock advances to each event's time as it fires.  Returns the
        number of events fired.  The compositional timing driver calls
        this as it sweeps forward through request issue times so that
        asynchronous activity (probes, shootdowns) interleaves correctly.
        """
        fired = 0
        while True:
            t = self._events.peek_time()
            if t is None or t > up_to:
                break
            time, callback, args = self._events.pop()
            self.advance_to(time)
            callback(*args)
            fired += 1
        if up_to != float("inf"):
            self.advance_to(up_to)
        return fired

    def run(self, until: Optional[float] = None) -> int:
        """Fire events until the queue drains (or ``until`` is reached)."""
        limit = float("inf") if until is None else until
        return self.fire_due_events(limit)
