"""Shared-resource timing models.

The contended structures in the simulated SoC — the shared IOMMU TLB,
L2 cache banks, DRAM, the page-table-walker thread pool — are modelled
as small queueing servers.  Requests are presented in nondecreasing time
order by the top-level driver, so each server only needs to remember
when it next becomes free; the difference between a request's arrival
and its service start *is* the paper's "serialization delay".
"""

from __future__ import annotations

import heapq
from typing import List


__all__ = [
    "BandwidthLink",
    "BankedServer",
    "ThreadPool",
    "ThroughputServer",
    "WindowedServer",
]

class ThroughputServer:
    """A FIFO server that accepts ``rate`` requests per cycle.

    This models the shared IOMMU TLB port (Observations 3 and 4 in the
    paper: the TLB can process one request per cycle and queuing at this
    port dominates translation overhead).  ``request`` returns the time
    service *starts*; the caller adds its own access latency on top.
    """

    def __init__(self, rate: float = 1.0) -> None:
        if rate <= 0:
            raise ValueError("service rate must be positive")
        self.rate = rate
        self._next_free = 0.0
        self.total_requests = 0
        self.total_queue_delay = 0.0
        # Optional observability hook: a LatencyHistogram-like object
        # recording each request's queueing delay (None = no overhead).
        self.delay_histogram = None

    def request(self, now: float) -> float:
        """Enqueue a request arriving at ``now``; return service start time."""
        start = now if now > self._next_free else self._next_free
        self._next_free = start + 1.0 / self.rate
        self.total_requests += 1
        self.total_queue_delay += start - now
        if self.delay_histogram is not None:
            self.delay_histogram.record(start - now)
        return start

    def queue_delay(self, now: float) -> float:
        """Delay a request arriving at ``now`` would currently experience."""
        return max(0.0, self._next_free - now)

    def reset(self) -> None:
        """Forget all state (for reuse across simulation runs)."""
        self._next_free = 0.0
        self.total_requests = 0
        self.total_queue_delay = 0.0


class WindowedServer:
    """An order-tolerant rate limiter (capacity per accounting window).

    Unlike :class:`ThroughputServer`, arrivals need not be time-ordered:
    a request stamped in the future (e.g. a synonym replay that reaches
    the L2 banks after its FBT consultation) must not block requests
    that arrive at earlier times.  Within each window of
    ``WINDOW_CYCLES`` the server accepts ``rate × window`` requests
    without queueing; the overflow beyond that capacity is what a
    request waits for.
    """

    WINDOW_CYCLES = 128.0

    def __init__(self, rate: float = 1.0) -> None:
        if rate <= 0:
            raise ValueError("service rate must be positive")
        self.rate = rate
        self._window_index = -1
        self._window_count = 0.0
        self.total_requests = 0
        self.total_queue_delay = 0.0
        self.delay_histogram = None

    def request(self, now: float) -> float:
        """Register a request arriving at ``now``; return service start."""
        self.total_requests += 1
        window = int(now // self.WINDOW_CYCLES)
        if window > self._window_index:
            self._window_index = window
            self._window_count = 0.0
        elif window < self._window_index:
            # An arrival stamped in an already-closed window is charged
            # against the *current* window's capacity, so clamp it into
            # that window: its service cannot start before the window it
            # is accounted in, and any overflow delay is measured from
            # the window start rather than the stale timestamp.
            now = self._window_index * self.WINDOW_CYCLES
        self._window_count += 1.0
        overflow = self._window_count - self.WINDOW_CYCLES * self.rate
        delay = overflow / self.rate if overflow > 0 else 0.0
        self.total_queue_delay += delay
        if self.delay_histogram is not None:
            self.delay_histogram.record(delay)
        return now + delay

    def reset(self) -> None:
        self._window_index = -1
        self._window_count = 0.0
        self.total_requests = 0
        self.total_queue_delay = 0.0


class BankedServer:
    """A set of independent rate-limited servers selected by a bank index.

    Models the 8-banked shared L2: each bank accepts one request per
    cycle, conflicts queue per-bank.  Banks use windowed (order-
    tolerant) accounting because requests legitimately reach the L2 at
    mixed times — ordinary lookups at issue time, synonym replays only
    after their FBT consultation.
    """

    def __init__(self, n_banks: int, rate_per_bank: float = 1.0) -> None:
        if n_banks <= 0:
            raise ValueError("need at least one bank")
        self.n_banks = n_banks
        # Public: hot paths that already computed an in-range bank index
        # may call ``banks[i].request(now)`` directly, skipping the
        # modulo-and-delegate hop below.
        self.banks = [WindowedServer(rate_per_bank) for _ in range(n_banks)]
        self._banks = self.banks

    def request(self, now: float, bank: int) -> float:
        """Enqueue at ``bank`` (taken modulo the bank count)."""
        return self._banks[bank % self.n_banks].request(now)

    def attach_delay_histogram(self, histogram) -> None:
        """Record every bank's queueing delays into one shared histogram."""
        for b in self._banks:
            b.delay_histogram = histogram

    @property
    def total_requests(self) -> int:
        return sum(b.total_requests for b in self._banks)

    @property
    def total_queue_delay(self) -> float:
        return sum(b.total_queue_delay for b in self._banks)

    def reset(self) -> None:
        for bank in self._banks:
            bank.reset()


class ThreadPool:
    """``n_threads`` concurrent servers with per-request service times.

    Models the multi-threaded page-table walker (16 concurrent walks in
    the baseline IOMMU).  A request occupies one thread for its whole
    service time; when all threads are busy the request waits for the
    earliest to free up.
    """

    def __init__(self, n_threads: int) -> None:
        if n_threads <= 0:
            raise ValueError("need at least one thread")
        self.n_threads = n_threads
        self._free_times: List[float] = [0.0] * n_threads
        heapq.heapify(self._free_times)
        self.total_requests = 0
        self.total_queue_delay = 0.0
        self.delay_histogram = None

    def request(self, now: float, service_time: float) -> float:
        """Run a job of ``service_time`` arriving at ``now``; return finish time."""
        if service_time < 0:
            raise ValueError("service time must be nonnegative")
        earliest = heapq.heappop(self._free_times)
        start = now if now > earliest else earliest
        finish = start + service_time
        heapq.heappush(self._free_times, finish)
        self.total_requests += 1
        self.total_queue_delay += start - now
        if self.delay_histogram is not None:
            self.delay_histogram.record(start - now)
        return finish

    def reset(self) -> None:
        self._free_times = [0.0] * self.n_threads
        heapq.heapify(self._free_times)
        self.total_requests = 0
        self.total_queue_delay = 0.0


class BandwidthLink:
    """A link with fixed latency plus a bytes-per-cycle throughput limit.

    Models DRAM (192 GB/s in Table 1).  Unlike the FIFO servers above,
    requests reach this link with *loosely ordered* timestamps — an L2
    fill's victim write-back, for example, is stamped with the fill's
    completion time, which can lie ahead of other in-flight requests.  A
    strict ``next_free`` FIFO would let one future-stamped arrival delay
    every later request and chain full memory latencies serially.
    Bandwidth is therefore enforced with *windowed* accounting: within
    each accounting window the link moves at most ``bytes_per_cycle ×
    window`` bytes; the overflow beyond that capacity is what a request
    waits for.  Latency is added on top, never compounded.
    """

    WINDOW_CYCLES = 256.0

    def __init__(self, latency: float, bytes_per_cycle: float = float("inf")) -> None:
        if latency < 0:
            raise ValueError("latency must be nonnegative")
        if bytes_per_cycle <= 0:
            raise ValueError("bandwidth must be positive")
        self.latency = latency
        self.bytes_per_cycle = bytes_per_cycle
        self._window_index = -1
        self._window_bytes = 0.0
        self.total_requests = 0
        self.total_bytes = 0
        self.total_queue_delay = 0.0

    def request(self, now: float, n_bytes: int = 0) -> float:
        """Transfer ``n_bytes`` arriving at ``now``; return delivery time."""
        self.total_requests += 1
        self.total_bytes += n_bytes
        transfer = n_bytes / self.bytes_per_cycle if n_bytes else 0.0
        if self.bytes_per_cycle == float("inf"):
            return now + self.latency
        window = int(now // self.WINDOW_CYCLES)
        if window > self._window_index:
            self._window_index = window
            self._window_bytes = 0.0
        self._window_bytes += n_bytes
        capacity = self.WINDOW_CYCLES * self.bytes_per_cycle
        overflow = self._window_bytes - capacity
        queue_delay = overflow / self.bytes_per_cycle if overflow > 0 else 0.0
        self.total_queue_delay += queue_delay
        return now + queue_delay + transfer + self.latency

    def reset(self) -> None:
        self._window_index = -1
        self._window_bytes = 0.0
        self.total_requests = 0
        self.total_bytes = 0
        self.total_queue_delay = 0.0
