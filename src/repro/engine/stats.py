"""Statistics collection: counters, interval samplers, lifetime trackers.

The paper reports three kinds of measurements that need dedicated
machinery:

* Figures 3 and 8 plot shared-TLB *accesses per cycle* sampled over
  one-microsecond intervals, with mean, one standard deviation, and the
  maximum across samples → :class:`IntervalSampler`.
* Figure 12 plots CDFs of per-CU TLB entry residence times and of the
  *active lifetime* of data in the L1/L2 caches → :class:`LifetimeTracker`.
* Everything else is plain event counting → :class:`Counters`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Sequence, Tuple


__all__ = [
    "Counters",
    "IntervalSampler",
    "LifetimeTracker",
    "RateStats",
    "cdf",
    "fraction_at_or_below",
]

class Counters:
    """A bag of named integer counters with dict-style access."""

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}

    def add(self, name: str, amount: int = 1) -> None:
        self._counts[name] = self._counts.get(name, 0) + amount

    def set(self, name: str, value: int) -> None:
        """Overwrite ``name`` with ``value``.

        For counters maintained as a rounded view of a float accumulator
        (e.g. ``iommu.queue_cycles``): the owner keeps the exact float
        total and publishes ``round(total)`` here, so the reported value
        is rounded once instead of truncated per event.
        """
        self._counts[name] = value

    def __getitem__(self, name: str) -> int:
        return self._counts.get(name, 0)

    def __contains__(self, name: str) -> bool:
        return name in self._counts

    def as_dict(self) -> Dict[str, int]:
        """A snapshot copy of all counters, keys sorted.

        The ordering guarantee keeps exported metrics JSON byte-stable
        across runs regardless of counter-first-touch order.
        """
        return dict(sorted(self._counts.items()))

    def merge(self, other: "Counters | Dict[str, int]") -> None:
        """Add every count from ``other`` (a Counters or plain mapping)."""
        items = other.as_dict() if isinstance(other, Counters) else other
        for name, amount in items.items():
            self.add(name, amount)

    def ratio(self, numerator: str, denominator: str) -> float:
        """``counts[numerator] / counts[denominator]`` (0.0 when empty)."""
        denom = self[denominator]
        if denom == 0:
            return 0.0
        return self[numerator] / denom

    def reset(self) -> None:
        self._counts.clear()


@dataclass
class RateStats:
    """Per-cycle event-rate statistics over fixed sampling intervals."""

    mean: float
    std: float
    maximum: float
    n_samples: int
    samples: Tuple[float, ...] = field(repr=False, default=())

    def fraction_above(self, threshold: float) -> float:
        """Fraction of sampling intervals whose rate exceeds ``threshold``.

        The paper uses this form of statement, e.g. "color_max shows
        about 25% of sample periods with more than one IOMMU TLB access
        per cycle".
        """
        if not self.samples:
            return 0.0
        return sum(1 for s in self.samples if s > threshold) / len(self.samples)


class IntervalSampler:
    """Counts events in fixed-width time windows.

    ``record(time)`` attributes one event to the window containing
    ``time``; ``rate_stats`` then reports events *per cycle* in each
    window.  Windows with zero events between the first and last event
    are included (bursty workloads genuinely idle between bursts).
    """

    def __init__(self, interval_cycles: float) -> None:
        if interval_cycles <= 0:
            raise ValueError("sampling interval must be positive")
        self.interval_cycles = interval_cycles
        self._window_counts: Dict[int, int] = {}
        self._max_window = -1

    @property
    def total_events(self) -> int:
        return sum(self._window_counts.values())

    def record(self, time: float, count: int = 1) -> None:
        """Attribute ``count`` events to the window containing ``time``."""
        if time < 0:
            raise ValueError("event time must be nonnegative")
        window = int(time // self.interval_cycles)
        self._window_counts[window] = self._window_counts.get(window, 0) + count
        if window > self._max_window:
            self._max_window = window

    def rate_stats(self, end_time: float = None) -> RateStats:
        """Events-per-cycle statistics across all windows up to ``end_time``."""
        if end_time is not None:
            last = int(end_time // self.interval_cycles)
        else:
            last = self._max_window
        if last < 0:
            return RateStats(mean=0.0, std=0.0, maximum=0.0, n_samples=0)
        rates = [
            self._window_counts.get(w, 0) / self.interval_cycles
            for w in range(last + 1)
        ]
        n = len(rates)
        mean = sum(rates) / n
        var = sum((r - mean) ** 2 for r in rates) / n
        return RateStats(
            mean=mean,
            std=math.sqrt(var),
            maximum=max(rates),
            n_samples=n,
            samples=tuple(rates),
        )

    def reset(self) -> None:
        self._window_counts.clear()
        self._max_window = -1


@dataclass
class _Residency:
    inserted: float
    last_access: float


class LifetimeTracker:
    """Tracks residence and active-lifetime spans of keyed entries.

    Used for per-CU TLB entries (residence = eviction − insertion) and
    for cache data (*active* lifetime = last access − insertion, per the
    Appendix's definition).
    """

    def __init__(self) -> None:
        self._live: Dict[Hashable, _Residency] = {}
        self.residence_times: List[float] = []
        self.active_lifetimes: List[float] = []

    def on_insert(self, key: Hashable, time: float) -> None:
        """A new entry for ``key`` became resident at ``time``."""
        self._live[key] = _Residency(inserted=time, last_access=time)

    def on_access(self, key: Hashable, time: float) -> None:
        """``key`` was accessed while resident (no-op if not tracked)."""
        entry = self._live.get(key)
        if entry is not None and time > entry.last_access:
            entry.last_access = time

    def on_evict(self, key: Hashable, time: float) -> None:
        """``key`` was evicted at ``time``; record its spans."""
        entry = self._live.pop(key, None)
        if entry is None:
            return
        self.residence_times.append(time - entry.inserted)
        self.active_lifetimes.append(entry.last_access - entry.inserted)

    def flush(self, time: float) -> None:
        """Evict everything still resident (end-of-simulation accounting)."""
        for key in list(self._live):
            self.on_evict(key, time)


def cdf(values: Sequence[float]) -> List[Tuple[float, float]]:
    """Empirical CDF as sorted ``(value, cumulative_fraction)`` points."""
    if not values:
        return []
    ordered = sorted(values)
    n = len(ordered)
    return [(v, (i + 1) / n) for i, v in enumerate(ordered)]


def fraction_at_or_below(values: Sequence[float], threshold: float) -> float:
    """Fraction of ``values`` ≤ ``threshold`` (CDF evaluated at a point)."""
    if not values:
        return 0.0
    return sum(1 for v in values if v <= threshold) / len(values)
