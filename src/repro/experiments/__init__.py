"""Experiment drivers: one module per table/figure of the paper."""

from repro.experiments import (
    energy,
    fig2,
    fig3,
    fig4,
    fig5,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    tables,
)
from repro.experiments.common import GLOBAL_CACHE, ResultCache

__all__ = [
    "energy", "fig2", "fig3", "fig4", "fig5", "fig8", "fig9", "fig10",
    "fig11", "fig12", "tables", "GLOBAL_CACHE", "ResultCache",
]
