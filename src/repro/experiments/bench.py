"""Microbenchmark harness for the per-access simulation hot path.

Times representative (workload, design) points — the Figure 4 baseline
sweep plus a Figure 9 virtual-cache point — and reports *simulator
throughput* (coalesced requests simulated per wall-clock second), with a
per-stage breakdown (trace synthesis, hierarchy construction, the
``simulate()`` request loop).

Throughput is what the figure sweeps multiply by dozens of design
points, so it is the number this repo tracks across PRs::

    repro-experiment bench                          # print + write BENCH json
    repro-experiment bench --scale 0.05             # tiny CI smoke scale
    repro-experiment bench --bench-compare benchmarks/perf/BENCH_PR3.json
    repro-experiment bench --bench-baseline benchmarks/perf/BENCH_SEED.json

``--bench-baseline`` embeds a previously recorded run (e.g. the
pre-optimization seed measurement) into the output JSON and reports the
speedup against it.  ``--bench-compare`` gates CI: the run fails when
total requests/sec regresses more than ``--bench-tolerance`` (default
30%) below the recorded file's number.

Requests/sec is scale-robust (it is a throughput, not a latency), so a
tiny-scale CI run can be compared against a committed larger-scale
measurement; the tolerance absorbs host noise.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.experiments.sweepspec import SweepSpec
from repro.system.config import SoCConfig
from repro.system.designs import (
    BASELINE_512,
    BASELINE_16K,
    IDEAL_MMU,
    MMUDesign,
    VC_WITH_OPT,
)
from repro.system.run import simulate
from repro.workloads import registry

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "DEFAULT_POINTS",
    "PointResult",
    "attach_baseline",
    "check_regression",
    "main",
    "render",
    "run_bench",
]

BENCH_SCHEMA_VERSION = 2

#: The tracked points: the fig4 smoke sweep (one workload under the
#: three baseline MMUs) plus a fig9 virtual-cache point.  ``bfs`` is a
#: high-translation-bandwidth workload, so every layer of the hot path
#: (TLBs, IOMMU queueing, FBT, caches) is exercised.
DEFAULT_POINTS: Sequence[tuple] = (
    ("fig4", "bfs", IDEAL_MMU),
    ("fig4", "bfs", BASELINE_512),
    ("fig4", "bfs", BASELINE_16K),
    ("fig9", "bfs", VC_WITH_OPT),
)


@dataclass
class PointResult:
    """Timing of one benchmarked (workload, design) point."""

    name: str
    workload: str
    design: str
    trace_seconds: float
    build_seconds: float
    simulate_seconds: float
    requests: int
    instructions: int
    cycles: float
    requests_per_sec: float
    trace_source: str = "generated"

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "workload": self.workload,
            "design": self.design,
            "trace_source": self.trace_source,
            "trace_seconds": round(self.trace_seconds, 6),
            "build_seconds": round(self.build_seconds, 6),
            "simulate_seconds": round(self.simulate_seconds, 6),
            "requests": self.requests,
            "instructions": self.instructions,
            "cycles": self.cycles,
            "requests_per_sec": round(self.requests_per_sec, 1),
        }


def _bench_point(
    figure: str,
    workload: str,
    design: MMUDesign,
    config: SoCConfig,
    scale: float,
    repeats: int,
) -> PointResult:
    """Benchmark one point; the best of ``repeats`` runs is reported.

    Each repeat builds a fresh hierarchy (state never carries over), so
    repeats measure the same work; best-of-N suppresses host noise.
    The trace is memoized by the registry — its synthesis cost is the
    cold first load, reported separately from the simulate loop.  When
    a compiled-trace store is active the first load may instead mmap a
    prior compilation; ``trace_source`` records which happened.
    """
    before = registry.trace_cache_stats()
    t0 = time.perf_counter()
    trace = registry.load(workload, scale=scale)
    trace_seconds = time.perf_counter() - t0
    after = registry.trace_cache_stats()
    if after["hits"] > before["hits"]:
        trace_source = "compiled"
    elif after["misses"] > before["misses"]:
        trace_source = "generated"
    else:
        trace_source = "memoized" if trace_seconds < 0.001 else "generated"

    best = None
    build_seconds = 0.0
    for _ in range(repeats):
        page_tables = {0: trace.address_space.page_table}
        t0 = time.perf_counter()
        hierarchy = design.build(config, page_tables)
        build = time.perf_counter() - t0
        t0 = time.perf_counter()
        result = simulate(trace, hierarchy, design.soc_config(config),
                          design=design.name)
        elapsed = time.perf_counter() - t0
        if best is None or elapsed < best[0]:
            best = (elapsed, result)
            build_seconds = build
    elapsed, result = best
    return PointResult(
        name=f"{figure}:{workload}:{design.name}",
        workload=workload,
        design=design.name,
        trace_seconds=trace_seconds,
        build_seconds=build_seconds,
        simulate_seconds=elapsed,
        requests=result.requests,
        instructions=result.instructions,
        cycles=result.cycles,
        requests_per_sec=result.requests / elapsed if elapsed > 0 else 0.0,
        trace_source=trace_source,
    )


def run_bench(
    scale: float = 0.1,
    repeats: int = 3,
    points: Sequence[tuple] = DEFAULT_POINTS,
    config: Optional[SoCConfig] = None,
    obs=None,
    trace_cache: Optional[str] = None,
) -> Dict[str, object]:
    """Run every benchmark point and return the report dict.

    ``obs`` is telemetry *about* the benchmark, never *inside* it: the
    timed simulate loop stays unobserved (observing it would distort
    the tracked requests/sec), and each point instead yields one
    ``bench.point`` span plus ``bench.*`` metrics after its best run.

    ``trace_cache`` names a compiled-trace store directory: a warm
    rerun mmaps prior compilations (trace stage ≈ 0) and the report's
    ``trace_cache`` block records the hit/miss/store traffic.
    """
    config = config if config is not None else SoCConfig()
    if trace_cache is not None:
        registry.set_trace_cache(trace_cache)
    trace_ctx = None
    if obs is not None and obs.tracing:
        from repro.obs.trace_context import TraceContext

        trace_ctx = TraceContext.new()
    # The benchmarked points are enumerated through a SweepSpec like
    # every other entry point; the figure labels ride alongside (they
    # are report metadata, not point identity).
    spec = SweepSpec.explicit(
        [(workload, design) for _figure, workload, design in points],
        name="bench")
    figures = [figure for figure, _workload, _design in points]
    results: List[PointResult] = []
    for figure, (workload, design, _track) in zip(figures,
                                                  spec.resolved_points()):
        point = _bench_point(figure, workload, design, config, scale, repeats)
        results.append(point)
        if obs is not None:
            obs.metrics.add("bench.points")
            obs.metrics.histogram("bench.simulate_seconds").record(
                point.simulate_seconds)
            obs.metrics.histogram("bench.requests_per_sec").record(
                point.requests_per_sec)
            if trace_ctx is not None:
                obs.tracer.emit(
                    "span", time.time(), name="bench.point",
                    dur=point.simulate_seconds, point=point.name,
                    requests=point.requests,
                    requests_per_sec=round(point.requests_per_sec, 1),
                    **trace_ctx.child().span_fields())
    total_requests = sum(r.requests for r in results)
    total_seconds = sum(r.simulate_seconds for r in results)
    total_trace_seconds = sum(r.trace_seconds for r in results)
    stats = registry.trace_cache_stats()
    return {
        "schema": BENCH_SCHEMA_VERSION,
        "scale": scale,
        "repeats": repeats,
        "trace_cache": {
            "enabled": trace_cache is not None,
            "dir": trace_cache,
            "hits": stats["hits"],
            "misses": stats["misses"],
            "stores": stats["stores"],
            "trace_seconds": round(total_trace_seconds, 6),
        },
        "host": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "machine": platform.machine(),
        },
        "points": [r.as_dict() for r in results],
        "total": {
            "requests": total_requests,
            "simulate_seconds": round(total_seconds, 6),
            "requests_per_sec": (
                round(total_requests / total_seconds, 1)
                if total_seconds > 0 else 0.0
            ),
        },
    }


def attach_baseline(report: Dict[str, object], baseline: Dict[str, object]) -> None:
    """Embed ``baseline`` (a prior report) and per-point speedups."""
    report["baseline"] = baseline
    by_name = {p["name"]: p for p in baseline.get("points", ())}
    speedup: Dict[str, float] = {}
    for point in report["points"]:
        prior = by_name.get(point["name"])
        if prior and prior.get("requests_per_sec"):
            speedup[point["name"]] = round(
                point["requests_per_sec"] / prior["requests_per_sec"], 2)
    base_total = baseline.get("total", {}).get("requests_per_sec")
    if base_total:
        speedup["total"] = round(
            report["total"]["requests_per_sec"] / base_total, 2)
    report["speedup_vs_baseline"] = speedup


def check_regression(
    report: Dict[str, object], recorded: Dict[str, object], tolerance: float,
) -> Optional[str]:
    """None if within tolerance, else a human-readable failure message."""
    recorded_rps = recorded.get("total", {}).get("requests_per_sec")
    if not recorded_rps:
        return "recorded benchmark file has no total requests/sec"
    current = report["total"]["requests_per_sec"]
    floor = recorded_rps * (1.0 - tolerance)
    if current < floor:
        return (
            f"throughput regression: {current:.0f} requests/sec is more than "
            f"{tolerance:.0%} below the recorded {recorded_rps:.0f} "
            f"(floor {floor:.0f})"
        )
    return None


def render(report: Dict[str, object]) -> str:
    """Human-readable summary of a benchmark report."""
    lines = [
        f"Simulation hot-path benchmark "
        f"(scale={report['scale']}, best of {report['repeats']})",
        "",
        f"{'point':38s} {'sim (s)':>9s} {'requests':>10s} {'req/s':>10s}",
    ]
    for p in report["points"]:
        lines.append(
            f"{p['name']:38s} {p['simulate_seconds']:9.3f} "
            f"{p['requests']:10d} {p['requests_per_sec']:10.0f}"
        )
    total = report["total"]
    lines.append(
        f"{'TOTAL':38s} {total['simulate_seconds']:9.3f} "
        f"{total['requests']:10d} {total['requests_per_sec']:10.0f}"
    )
    cache = report.get("trace_cache")
    if cache and cache.get("enabled"):
        lines.append(
            f"trace cache: {cache['hits']} hit(s), {cache['misses']} "
            f"miss(es), {cache['stores']} store(s); trace stage "
            f"{cache['trace_seconds']:.3f}s"
        )
    speedup = report.get("speedup_vs_baseline")
    if speedup:
        lines.append("")
        lines.append("Speedup vs recorded baseline:")
        for name, value in speedup.items():
            lines.append(f"  {name:36s} {value:5.2f}x")
    return "\n".join(lines)


def main(
    scale: float = 0.1,
    repeats: int = 3,
    out: Optional[str] = None,
    baseline_path: Optional[str] = None,
    compare_path: Optional[str] = None,
    tolerance: float = 0.30,
    trace_out: Optional[str] = None,
    metrics_out: Optional[str] = None,
    trace_cache: Optional[str] = None,
) -> int:
    """CLI entry (wired to ``repro-experiment bench``); returns exit code."""
    # Read the reference files up front so a bad path fails cleanly
    # before the (multi-second) benchmark run, not after it.
    baseline = recorded = None
    for label, path in (("--bench-baseline", baseline_path),
                        ("--bench-compare", compare_path)):
        if path is None:
            continue
        try:
            loaded = json.loads(Path(path).read_text())
        except (OSError, ValueError) as exc:
            print(f"repro-experiment: error: cannot read {label} "
                  f"'{path}': {exc}", file=sys.stderr)
            return 2
        if label == "--bench-baseline":
            baseline = loaded
        else:
            recorded = loaded

    obs = None
    if trace_out or metrics_out:
        from repro.obs import JsonLinesTracer, Observability

        tracer = JsonLinesTracer(trace_out) if trace_out else None
        obs = Observability(tracer=tracer)
    report = run_bench(scale=scale, repeats=repeats, obs=obs,
                       trace_cache=trace_cache)
    if baseline is not None:
        attach_baseline(report, baseline)
    print(render(report))
    if obs is not None:
        obs.close()
        if metrics_out:
            from repro.obs.manifest import build_manifest, write_manifest

            manifest = build_manifest(
                config=SoCConfig(), metrics=obs.metrics,
                extra={"experiments": ["bench"], "scale": scale,
                       "bench_total": report["total"]})
            print(f"wrote {write_manifest(metrics_out, manifest)}")
        if trace_out:
            print(f"wrote {trace_out} ({obs.tracer.events_emitted} events)")
    if out is not None:
        try:
            parent = Path(out).resolve().parent
            parent.mkdir(parents=True, exist_ok=True)
            Path(out).write_text(
                json.dumps(report, indent=2, sort_keys=True) + "\n")
        except OSError as exc:
            print(f"repro-experiment: error: cannot write --bench-out "
                  f"'{out}': {exc}", file=sys.stderr)
            return 2
        print(f"\nwrote {out}")
    if recorded is not None:
        failure = check_regression(report, recorded, tolerance)
        if failure is not None:
            print(f"bench: FAIL: {failure}", file=sys.stderr)
            return 1
        recorded_rps = recorded["total"]["requests_per_sec"]
        print(f"bench: OK: {report['total']['requests_per_sec']:.0f} req/s "
              f"vs recorded {recorded_rps:.0f} (tolerance {tolerance:.0%})")
    return 0
