"""Chaos experiment: fault injection + invariant auditing, end to end.

Sweeps a grid of (workload × design × fault rate) points.  Each point
replays the workload through a fresh hierarchy wrapped in a
:class:`~repro.robustness.fault_plan.FaultInjector` (TLB shootdowns,
page remaps — silent and announced — unmaps, permission downgrades) with
the structural invariant auditor enabled, proving the paper's
transparency claim (§4): the virtual hierarchy's FBT/cache state stays
consistent under the full set of hostile OS events.

The run is fully deterministic — the fault schedule derives from
``(trace, rate, seed)`` via SHA-512-seeded ``random.Random`` — so a
failing point reproduces exactly from its printed parameters.  Exit
status is nonzero if any point trips an invariant violation.

Traces are loaded *fresh* (bypassing the registry memo): fault injection
mutates the page table, which must never leak into other experiments'
memoized traces.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.analysis.report import section
from repro.experiments.common import GLOBAL_CACHE, resolve_workloads
from repro.experiments.sweepspec import FaultSpec, SweepSpec
from repro.obs.trace_context import TraceContext
from repro.robustness.fault_plan import FaultInjector, FaultPlan
from repro.robustness.invariants import InvariantViolation
from repro.system.config import SoCConfig
from repro.system.designs import (
    BASELINE_512,
    L1_ONLY_VC_32,
    VC_WITH_OPT,
    VC_WITHOUT_OPT,
)
from repro.system.run import simulate
from repro.workloads import registry

#: One design per hierarchy flavour: the physical baseline, the virtual
#: hierarchy with and without the paper's optimisations (bitvector vs
#: counter FBT tracking), and the L1-only virtual cache.

__all__ = [
    "ChaosPoint",
    "ChaosReport",
    "DEFAULT_RATES",
    "DEFAULT_WORKLOADS",
    "DESIGNS",
    "main",
    "run",
    "run_spec",
]

DESIGNS = (BASELINE_512, VC_WITHOUT_OPT, VC_WITH_OPT, L1_ONLY_VC_32)

DEFAULT_WORKLOADS = ("bfs", "kmeans")
DEFAULT_RATES = (0.0005, 0.002)


@dataclass(frozen=True)
class ChaosPoint:
    """Outcome of one audited fault-injection run."""

    workload: str
    design: str
    rate: float
    n_events: int
    events_applied: int
    audits: int
    cycles: float
    violation: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.violation is None


@dataclass
class ChaosReport:
    """All chaos points plus the seed that reproduces them."""

    points: List[ChaosPoint]
    seed: int

    @property
    def ok(self) -> bool:
        return all(p.ok for p in self.points)

    def render(self) -> str:
        header = (f"{'workload':12s} {'design':16s} {'rate':>8s} "
                  f"{'faults':>6s} {'applied':>7s} {'audits':>6s} verdict")
        rows = [header, "-" * len(header)]
        for p in self.points:
            verdict = "ok" if p.ok else "INVARIANT VIOLATION"
            rows.append(
                f"{p.workload:12s} {p.design:16s} {p.rate:8.4f} "
                f"{p.n_events:6d} {p.events_applied:7d} {p.audits:6d} {verdict}")
        for p in self.points:
            if not p.ok:
                rows.append("")
                rows.append(f"--- {p.workload} / {p.design} @ {p.rate} ---")
                rows.append(p.violation)
        status = ("all points green" if self.ok
                  else "INVARIANT VIOLATIONS DETECTED")
        return section(
            f"Chaos: VM-event fault injection under invariant audit "
            f"(seed {self.seed}) — {status}",
            "\n".join(rows))


def _run_point(
    config: SoCConfig,
    workload: str,
    design,
    rate: float,
    seed: int,
    scale: Optional[float],
    invariant_interval: int,
    obs=None,
    trace_ctx=None,
) -> ChaosPoint:
    # Fresh trace: the injector mutates this trace's page table.
    trace = registry.load_fresh(workload, scale=scale)
    page_tables = {0: trace.address_space.page_table}
    point_ctx = None
    point_obs = obs
    if obs is not None and obs.tracing and trace_ctx is not None:
        # One span per grid point; the injected faults and the
        # simulation's fine-grained events all join this trace.
        point_ctx = trace_ctx.child()
        point_obs = obs.with_fields(**point_ctx.fields())
    hierarchy = design.build(config, page_tables, obs=point_obs)
    plan = FaultPlan.for_trace(trace, rate, seed=seed)
    injector = FaultInjector(
        hierarchy, plan, trace.address_space,
        tracer=(point_obs.tracer if point_obs is not None
                and point_obs.tracing else None),
        trace_ctx=point_ctx)
    violation = None
    audits = 0
    cycles = 0.0
    wall_start = time.perf_counter()
    try:
        result = simulate(
            trace, injector, design.soc_config(config),
            design=design.name, check_invariants=True,
            invariant_interval=invariant_interval, obs=point_obs,
        )
    except InvariantViolation as exc:
        violation = str(exc)
    else:
        audits = int(result.counters.get("invariants.audits", 0))
        cycles = result.cycles
    applied = int(injector.counters.as_dict().get("chaos.events", 0))
    if point_ctx is not None:
        obs.tracer.emit(
            "span", time.time(), name="chaos.point",
            dur=time.perf_counter() - wall_start, workload=workload,
            design=design.name, rate=rate, events_applied=applied,
            ok=violation is None, **point_ctx.span_fields())
    return ChaosPoint(
        workload=workload, design=design.name, rate=rate,
        n_events=len(plan), events_applied=applied, audits=audits,
        cycles=cycles, violation=violation,
    )


def run(
    config: Optional[SoCConfig] = None,
    workloads: Tuple[str, ...] = DEFAULT_WORKLOADS,
    rates: Tuple[float, ...] = DEFAULT_RATES,
    seed: int = 0,
    scale: Optional[float] = None,
    # Low enough that even tiny CI-scale traces (a few hundred
    # instructions) get several mid-run audits, not just the final one.
    invariant_interval: int = 64,
    designs=DESIGNS,
    obs=None,
) -> ChaosReport:
    """Run the chaos grid; never raises on a violation (it's reported).

    With a tracing ``obs``, the whole grid becomes one trace: a
    ``chaos.point`` span per grid point with each injected fault as a
    zero-duration child span, plus the simulation's per-request events.
    """
    names = resolve_workloads(workloads, DEFAULT_WORKLOADS)
    for rate in rates:
        if rate < 0:
            raise ValueError("fault rates must be nonnegative")
    spec = SweepSpec.grid(
        names, designs, name="chaos",
        faults=FaultSpec(rates=tuple(rates), seed=seed,
                         invariant_interval=invariant_interval))
    return run_spec(spec, config=config, scale=scale, obs=obs)


def run_spec(
    spec: SweepSpec,
    config: Optional[SoCConfig] = None,
    scale: Optional[float] = None,
    obs=None,
) -> ChaosReport:
    """Run a fault-plan :class:`~repro.experiments.sweepspec.SweepSpec`.

    The spec's grid expands exactly like :func:`run`'s triple loop
    (workload-major, fault rate innermost); its scalar config overrides
    and scale apply on top of the caller's (or the global cache's)
    defaults.  Like :func:`run`, a violation is reported, never raised.
    """
    if spec.faults is None:
        raise ValueError("chaos.run_spec needs a spec with a fault plan")
    config = config if config is not None else GLOBAL_CACHE.config
    config = spec.apply_config(config)
    if spec.scale is not None:
        scale = spec.scale
    elif scale is None:
        scale = GLOBAL_CACHE.effective_scale()
    trace_ctx = None
    if obs is not None and obs.tracing:
        trace_ctx = TraceContext.new()
    points = [
        _run_point(config, workload, design, rate, spec.faults.seed, scale,
                   spec.faults.invariant_interval, obs=obs,
                   trace_ctx=trace_ctx)
        for workload, design, rate in spec.fault_points()
    ]
    return ChaosReport(points=points, seed=spec.faults.seed)


def main(
    workloads: Tuple[str, ...] = DEFAULT_WORKLOADS,
    rates: Tuple[float, ...] = DEFAULT_RATES,
    seed: int = 0,
    scale: Optional[float] = None,
    trace_out: Optional[str] = None,
    metrics_out: Optional[str] = None,
) -> int:
    obs = None
    if trace_out or metrics_out:
        from repro.obs import JsonLinesTracer, Observability

        tracer = JsonLinesTracer(trace_out) if trace_out else None
        obs = Observability(tracer=tracer)
    report = run(workloads=workloads, rates=rates, seed=seed, scale=scale,
                 obs=obs)
    print(report.render())
    if obs is not None:
        obs.close()
        if metrics_out:
            from repro.obs.manifest import build_manifest, write_manifest

            manifest = build_manifest(
                config=GLOBAL_CACHE.config, metrics=obs.metrics,
                extra={"experiments": ["chaos"], "seed": seed,
                       "rates": list(rates)})
            print(f"wrote {write_manifest(metrics_out, manifest)}")
        if trace_out:
            print(f"wrote {trace_out} ({obs.tracer.events_emitted} events)")
    return 0 if report.ok else 1


if __name__ == "__main__":
    import sys

    sys.exit(main())
