"""Command-line entry point: regenerate any table or figure.

Usage::

    repro-experiment fig9               # one figure
    repro-experiment all                # everything
    repro-experiment fig2 --scale 0.25  # quick, scaled-down run
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict

from repro.experiments import (
    energy,
    fig2,
    fig3,
    fig4,
    fig5,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    tables,
)
from repro.experiments.common import GLOBAL_CACHE

EXPERIMENTS: Dict[str, Callable[[], str]] = {
    "table1": lambda: tables.render_table1(),
    "table2": lambda: tables.render_table2(),
    "fig2": lambda: fig2.run(GLOBAL_CACHE).render(),
    "fig3": lambda: fig3.run(GLOBAL_CACHE).render(),
    "fig4": lambda: fig4.run(GLOBAL_CACHE).render(),
    "fig5": lambda: fig5.run(GLOBAL_CACHE).render(),
    "fig8": lambda: fig8.run(GLOBAL_CACHE).render(),
    "fig9": lambda: fig9.run(GLOBAL_CACHE).render(),
    "fig10": lambda: fig10.run(GLOBAL_CACHE).render(),
    "fig11": lambda: fig11.run(GLOBAL_CACHE).render(),
    "fig12": lambda: fig12.run(GLOBAL_CACHE).render(),
    "energy": lambda: energy.run(GLOBAL_CACHE).render(),
    "coherence": lambda: _coherence(),
    "validate": lambda: _validate(),
}


def _coherence() -> str:
    from repro.experiments import coherence

    return coherence.run(GLOBAL_CACHE).render()


def _validate() -> str:
    from repro.analysis.paper_targets import collect_measurements, render_report

    return render_report(collect_measurements(GLOBAL_CACHE))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiment",
        description="Regenerate tables/figures from 'Filtering Translation "
                    "Bandwidth with Virtual Caching' (ASPLOS 2018)",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which artefact to regenerate",
    )
    parser.add_argument(
        "--scale", type=float, default=None,
        help="workload scale factor (default: REPRO_SCALE env or 1.0)",
    )
    parser.add_argument(
        "--svg", metavar="DIR", default=None,
        help="additionally render the data figures as SVG files into DIR",
    )
    args = parser.parse_args(argv)

    if args.scale is not None:
        GLOBAL_CACHE.scale = args.scale

    chosen = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in chosen:
        start = time.time()
        print(EXPERIMENTS[name]())
        print(f"[{name} regenerated in {time.time() - start:.1f}s]\n")

    if args.svg is not None:
        from repro.experiments.figures_svg import save_all

        for path in save_all(args.svg, GLOBAL_CACHE):
            print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
