"""Command-line entry point: regenerate any table or figure.

Usage::

    repro-experiment fig9                     # one figure
    repro-experiment all                      # everything
    repro-experiment fig2 --scale 0.25        # quick, scaled-down run
    repro-experiment all --jobs 4 \\
        --cache-dir ~/.cache/repro            # parallel + persistent cache
    repro-experiment --list                   # valid experiment names
    repro-experiment fig3 --scale 0.25 \\
        --trace-out trace.jsonl \\
        --metrics-out manifest.json --profile # fully observed run

``--trace-out`` streams every simulated request's path (CU issue, TLB
and virtual-cache hits/misses, IOMMU queue enter/exit, page walks,
completion) as JSON lines; ``--metrics-out`` writes a run manifest with
the config, git SHA, wall-clock, and every metric including latency
histograms (IOMMU queueing delay p50/p95/p99); ``--profile`` prints a
wall-clock breakdown of the experiment pipeline.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Callable, Dict

from repro.experiments import (
    energy,
    fig2,
    fig3,
    fig4,
    fig5,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    tables,
)
from repro.experiments.common import GLOBAL_CACHE

__all__ = ["EXPERIMENTS", "EXTRA_COMMANDS", "build_parser", "main"]

EXPERIMENTS: Dict[str, Callable[[], str]] = {
    "table1": lambda: tables.render_table1(),
    "table2": lambda: tables.render_table2(),
    "fig2": lambda: fig2.run(GLOBAL_CACHE).render(),
    "fig3": lambda: fig3.run(GLOBAL_CACHE).render(),
    "fig4": lambda: fig4.run(GLOBAL_CACHE).render(),
    "fig5": lambda: fig5.run(GLOBAL_CACHE).render(),
    "fig8": lambda: fig8.run(GLOBAL_CACHE).render(),
    "fig9": lambda: fig9.run(GLOBAL_CACHE).render(),
    "fig10": lambda: fig10.run(GLOBAL_CACHE).render(),
    "fig11": lambda: fig11.run(GLOBAL_CACHE).render(),
    "fig12": lambda: fig12.run(GLOBAL_CACHE).render(),
    "energy": lambda: energy.run(GLOBAL_CACHE).render(),
    "coherence": lambda: _coherence(),
    "validate": lambda: _validate(),
}


def _coherence() -> str:
    from repro.experiments import coherence

    return coherence.run(GLOBAL_CACHE).render()


def _validate() -> str:
    from repro.analysis.paper_targets import collect_measurements, render_report

    return render_report(collect_measurements(GLOBAL_CACHE))


#: Subcommands dispatched outside the figure/table registry.
EXTRA_COMMANDS = ("all", "bench", "chaos", "dashboard", "designs",
                  "loadtest", "serve", "sweep", "trace", "workloads")


def _experiment_listing() -> str:
    return "\n".join(sorted(EXPERIMENTS) + list(EXTRA_COMMANDS))


def _preflight_cache_dir(cache_dir: str) -> str:
    """Prove --cache-dir is creatable and writable; '' if so, else why not.

    Runs before any simulation so a doomed sweep fails in milliseconds,
    not after hours of compute whose results then cannot be persisted.
    """
    import tempfile

    try:
        Path(cache_dir).mkdir(parents=True, exist_ok=True)
        fd, probe = tempfile.mkstemp(dir=cache_dir, prefix=".writable-")
    except OSError as exc:
        return f"--cache-dir {cache_dir!r} is not writable: {exc}"
    import os

    os.close(fd)
    os.unlink(probe)
    return ""


def _build_observability(args):
    """One Observability bundle for --trace-out/--metrics-out/--profile."""
    if not (args.trace_out or args.metrics_out or args.profile):
        return None
    from repro.obs import JsonLinesTracer, Observability, Profiler

    tracer = JsonLinesTracer(args.trace_out) if args.trace_out else None
    profiler = Profiler() if args.profile else None
    return Observability(tracer=tracer, profiler=profiler)


def _print_designs(slugs_only: bool) -> int:
    """The ``designs`` command: every preset a SweepSpec can name."""
    from repro.system.designs import PRESET_DESIGNS, design_slug

    if slugs_only:
        for design in PRESET_DESIGNS:
            print(design_slug(design.name))
        return 0
    header = (f"{'slug':32s} {'name':30s} {'kind':9s} "
              f"{'per-CU TLB':>10s} {'IOMMU TLB':>9s} {'B/W':>9s}")
    print(header)
    print("-" * len(header))
    for design in PRESET_DESIGNS:
        per_cu = ("inf" if design.per_cu_tlb_entries is None
                  else str(design.per_cu_tlb_entries))
        iommu = ("inf" if design.iommu_entries is None
                 else str(design.iommu_entries))
        bandwidth = (f"{design.iommu_bandwidth:g}/cyc")
        print(f"{design_slug(design.name):32s} {design.name:30s} "
              f"{design.kind:9s} {per_cu:>10s} {iommu:>9s} {bandwidth:>9s}")
    print("\n(use the slug — or the full name — in SweepSpec 'designs', "
          "service points, and --lt-points)")
    return 0


def _print_workloads(names_only: bool) -> int:
    """The ``workloads`` command: every trace name a SweepSpec can use."""
    from repro.workloads import registry

    if names_only:
        for name in sorted(registry.WORKLOADS):
            print(name)
        return 0
    header = f"{'workload':16s} {'suite':10s} bandwidth"
    print(header)
    print("-" * len(header))
    for name in sorted(registry.WORKLOADS):
        suite = "pannotia" if name in registry.PANNOTIA else "rodinia"
        if name in registry.HIGH_BANDWIDTH:
            group = "high"
        elif name in registry.LOW_BANDWIDTH:
            group = "low"
        else:
            group = "-"
        print(f"{name:16s} {suite:10s} {group}")
    print("\n(use these names in SweepSpec 'workloads', service points, "
          "and --chaos-workloads)")
    return 0


def _run_sweep(args, obs) -> int:
    """The ``sweep`` command body: load, validate, run, report."""
    import json

    from repro.experiments import sweepspec

    if args.action is None:
        print("repro-experiment: error: sweep needs a spec file "
              "(repro-experiment sweep SPEC.json)", file=sys.stderr)
        return 2
    try:
        text = Path(args.action).read_text(encoding="utf-8")
    except OSError as exc:
        print(f"repro-experiment: error: cannot read sweep spec "
              f"{args.action!r}: {exc}", file=sys.stderr)
        return 2
    try:
        spec = sweepspec.SweepSpec.from_json(text)
    except sweepspec.SweepSpecError as exc:
        print(f"repro-experiment: error: invalid sweep spec "
              f"({type(exc).__name__}): {exc}", file=sys.stderr)
        return 2
    if args.sweep_out is not None:
        parent = Path(args.sweep_out).resolve().parent
        if not parent.is_dir():
            print(f"repro-experiment: error: --sweep-out directory "
                  f"{str(parent)!r} does not exist", file=sys.stderr)
            return 2
    if spec.faults is not None:
        # A fault-plan spec is a chaos grid: uncached, always audited.
        from repro.experiments import chaos

        report = chaos.run_spec(spec, obs=obs)
        print(report.render())
        if args.sweep_out is not None:
            payload = {
                "name": spec.name,
                "fingerprint": spec.fingerprint(),
                "seed": spec.faults.seed,
                "ok": report.ok,
                "points": [{
                    "workload": p.workload, "design": p.design,
                    "rate": p.rate, "n_events": p.n_events,
                    "events_applied": p.events_applied,
                    "audits": p.audits, "cycles": p.cycles,
                    "ok": p.ok, "violation": p.violation,
                } for p in report.points],
            }
            Path(args.sweep_out).write_text(
                json.dumps(payload, indent=2, sort_keys=True) + "\n")
            print(f"wrote {args.sweep_out}")
        return 0 if report.ok else 1
    outcome = sweepspec.run_sweep(spec, GLOBAL_CACHE)
    print(outcome.render())
    if args.sweep_out is not None:
        Path(args.sweep_out).write_text(
            json.dumps(outcome.as_dict(), indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.sweep_out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The complete ``repro-experiment`` argument parser.

    Exposed separately from :func:`main` so ``docs/CLI.md`` can be
    generated from (and drift-checked against) the real parser — see
    :mod:`repro.experiments.cli_doc`.
    """
    parser = argparse.ArgumentParser(
        prog="repro-experiment",
        description="Regenerate tables/figures from 'Filtering Translation "
                    "Bandwidth with Virtual Caching' (ASPLOS 2018)",
    )
    parser.add_argument(
        "experiment", nargs="?", metavar="EXPERIMENT",
        help="which artefact to regenerate (see --list), or 'all'",
    )
    parser.add_argument(
        "action", nargs="?", metavar="ACTION",
        help="subaction for the 'trace' command (only 'show': render a "
             "JSON-lines trace file as a span tree), or the SPEC.json "
             "path for the 'sweep' command",
    )
    parser.add_argument(
        "--list", action="store_true",
        help="print the valid experiment names and exit",
    )
    parser.add_argument(
        "--scale", type=float, default=None,
        help="workload scale factor (default: REPRO_SCALE env or 1.0)",
    )
    parser.add_argument(
        "--svg", metavar="DIR", default=None,
        help="additionally render the data figures as SVG files into DIR",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="fan missing (workload, design) simulations out over N "
             "worker processes (default: 1, fully serial; results are "
             "bit-identical either way)",
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="persist simulation results under DIR and reuse them across "
             "invocations; entries are keyed by workload, scale, the full "
             "MMU design, and a content hash of the SoC config, so any "
             "change to those re-simulates",
    )
    parser.add_argument(
        "--trace-cache", metavar="DIR", default=None,
        help="store compiled (precoalesced, mmap-able) traces under DIR "
             "and reuse them across processes; defaults to "
             "CACHE_DIR/traces when --cache-dir is given; chaos runs "
             "never read it (fault injection mutates page tables)",
    )
    parser.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="write a JSON-lines trace of every simulated request to PATH",
    )
    parser.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help="write a JSON run manifest (config, git SHA, all metrics "
             "including latency histograms) to PATH",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="print a wall-clock profile of the experiment pipeline",
    )
    bench_group = parser.add_argument_group(
        "bench options (only with the 'bench' experiment)")
    bench_group.add_argument(
        "--bench-out", metavar="PATH", default=None,
        help="write the benchmark report JSON to PATH (default: "
             "benchmarks/perf/BENCH_PR8.json)",
    )
    bench_group.add_argument(
        "--bench-repeats", type=int, default=3, metavar="N",
        help="repeats per point; the best run is reported (default: 3)",
    )
    bench_group.add_argument(
        "--bench-baseline", metavar="PATH", default=None,
        help="embed the recorded report at PATH as the baseline and report "
             "speedups against it",
    )
    bench_group.add_argument(
        "--bench-compare", metavar="PATH", default=None,
        help="fail (exit 1) if total requests/sec regresses more than "
             "--bench-tolerance below the report recorded at PATH",
    )
    bench_group.add_argument(
        "--bench-tolerance", type=float, default=0.30, metavar="FRAC",
        help="allowed fractional throughput regression for --bench-compare "
             "(default: 0.30)",
    )
    sweep_group = parser.add_argument_group(
        "sweep options (only with the 'sweep' experiment)")
    sweep_group.add_argument(
        "--sweep-out", metavar="PATH", default=None,
        help="write the sweep's JSON report (fingerprint, per-point "
             "results, simulations actually run this invocation) to PATH",
    )
    robust_group = parser.add_argument_group("robustness options")
    robust_group.add_argument(
        "--check-invariants", action="store_true",
        help="audit FBT/cache structural invariants during every "
             "simulation, failing fast with a diagnostic dump on any "
             "inconsistency (opt-in: costs simulation throughput)",
    )
    robust_group.add_argument(
        "--checkpoint", metavar="PATH", default=None,
        help="append every completed sweep point to a crash-safe "
             "checkpoint file at PATH; a killed run restarted with the "
             "same checkpoint recomputes nothing that already finished",
    )
    robust_group.add_argument(
        "--point-timeout", type=float, default=None, metavar="SECONDS",
        help="kill and retry any parallel sweep point that produces no "
             "result within SECONDS (default: wait forever)",
    )
    robust_group.add_argument(
        "--point-retries", type=int, default=2, metavar="N",
        help="retry a crashed/timed-out sweep point up to N times before "
             "failing the sweep (default: 2)",
    )
    chaos_group = parser.add_argument_group(
        "chaos options (only with the 'chaos' experiment)")
    chaos_group.add_argument(
        "--fault-rates", metavar="R1,R2,...", default="0.0005,0.002",
        help="comma-separated VM-event fault rates (events per coalesced "
             "request) to sweep (default: 0.0005,0.002)",
    )
    chaos_group.add_argument(
        "--chaos-seed", type=int, default=0, metavar="N",
        help="seed for the deterministic fault schedule (default: 0)",
    )
    chaos_group.add_argument(
        "--chaos-workloads", metavar="W1,W2,...", default="bfs,kmeans",
        help="comma-separated workloads to fault-inject (default: bfs,kmeans)",
    )
    chaos_group.add_argument(
        "--net", action="store_true",
        help="network chaos instead of VM-event chaos: spawn a sharded "
             "gateway whose replica links run through a seeded "
             "fault-injecting TCP proxy (resets, black-holes, slow-loris, "
             "corruption, truncation, latency) and assert zero wrong "
             "results and a bounded error rate",
    )
    chaos_group.add_argument(
        "--net-rates", metavar="KIND=R,...", default=None,
        help="per-connection network fault rates, e.g. "
             "'reset=0.2,corrupt=0.1'; kinds: latency, reset, blackhole, "
             "slowloris, corrupt, truncate (default: every kind in play, "
             "~45%% of connections faulted)",
    )
    chaos_group.add_argument(
        "--net-replicas", type=int, default=2, metavar="N",
        help="replicas behind the chaos gateway (default: 2)",
    )
    chaos_group.add_argument(
        "--net-requests", type=int, default=32, metavar="N",
        help="client requests driven through the faulted gateway "
             "(default: 32)",
    )
    chaos_group.add_argument(
        "--net-out", metavar="PATH", default=None,
        help="write the network-chaos report JSON to PATH",
    )
    serve_group = parser.add_argument_group(
        "serve options (only with the 'serve' experiment)")
    serve_group.add_argument(
        "--host", metavar="ADDR", default="127.0.0.1",
        help="address the simulation service binds (default: 127.0.0.1)",
    )
    serve_group.add_argument(
        "--port", type=int, default=8000, metavar="N",
        help="port the simulation service listens on; 0 picks a free "
             "port and prints it (default: 8000)",
    )
    serve_group.add_argument(
        "--batch-window", type=float, default=0.01, metavar="SECONDS",
        help="how long the server lingers collecting points into one "
             "run_many wave after the first arrives (default: 0.01)",
    )
    serve_group.add_argument(
        "--max-batch", type=int, default=64, metavar="N",
        help="maximum distinct points batched into one wave (default: 64)",
    )
    serve_group.add_argument(
        "--replicas", type=int, default=0, metavar="N",
        help="front N 'repro-experiment serve' subprocess replicas with a "
             "consistent-hash sharding gateway on --host:--port; the "
             "replicas share --cache-dir as a common disk tier "
             "(default: 0, a plain single-process service)",
    )
    serve_group.add_argument(
        "--replica-urls", metavar="HOST:PORT,...", default=None,
        help="shard across already-running services at these addresses "
             "instead of spawning replicas (the gateway health-checks and "
             "routes but never starts or stops them; IPv6 as [ADDR]:PORT)",
    )
    serve_group.add_argument(
        "--health-interval", type=float, default=0.5, metavar="SECONDS",
        help="gateway health-probe period (jittered ±20%%); 3 consecutive "
             "failed probes evict the replica from the hash ring until it "
             "recovers (default: 0.5)",
    )
    serve_group.add_argument(
        "--max-inflight", type=int, default=None, metavar="N",
        help="admission-control budget: shed work (HTTP 429 with a "
             "Retry-After hint) once N points are queued or in flight "
             "(default: unbounded)",
    )
    serve_group.add_argument(
        "--jobs-journal", metavar="PATH", default=None,
        help="persist submitted /v1/jobs to a crash-safe journal at PATH; "
             "a restarted server resumes unfinished jobs and still serves "
             "finished results (plain serve only, not --replicas)",
    )
    serve_group.add_argument(
        "--no-supervise", action="store_true",
        help="gateway mode: do not respawn dead managed replicas (default: "
             "a dead replica is respawned with capped exponential backoff, "
             "and a flapping one trips the give-up alarm)",
    )
    loadtest_group = parser.add_argument_group(
        "loadtest options (only with the 'loadtest' experiment)")
    loadtest_group.add_argument(
        "--lt-target", metavar="HOST:PORT", default=None,
        help="load-test an already-running service at HOST:PORT "
             "(default: spawn a private in-process service)",
    )
    loadtest_group.add_argument(
        "--lt-clients", metavar="N1,N2,...", default="1,2,4,8",
        help="comma-separated concurrency levels to sweep "
             "(default: 1,2,4,8)",
    )
    loadtest_group.add_argument(
        "--lt-requests", type=int, default=8, metavar="N",
        help="requests each client issues per level (default: 8)",
    )
    loadtest_group.add_argument(
        "--lt-points", metavar="W/D,...", default="bfs/baseline-512",
        help="comma-separated workload/design points each request asks "
             "for (default: bfs/baseline-512)",
    )
    loadtest_group.add_argument(
        "--lt-out", metavar="PATH", default=None,
        help="write the per-level latency/throughput report JSON to PATH",
    )
    loadtest_group.add_argument(
        "--lt-replicas", metavar="N1,N2,...", default=None,
        help="shard-scaling mode: sweep the mixed hot/cold stream against "
             "a locally spawned gateway at each replica count (e.g. 1,2,3) "
             "and report the scaling curve; mutually exclusive with "
             "--lt-target",
    )
    loadtest_group.add_argument(
        "--lt-cold-points", metavar="W/D,...", default=None,
        help="cold (cache-missing) points interleaved into the client "
             "stream; shard mode defaults to a built-in cold set",
    )
    loadtest_group.add_argument(
        "--lt-cold-every", type=int, default=0, metavar="N",
        help="make every Nth request per client a cold point "
             "(default: 0, hot-only; shard mode defaults to 8)",
    )
    loadtest_group.add_argument(
        "--lt-batch-window", type=float, default=None, metavar="SECONDS",
        help="batch window for self-spawned services/replicas "
             "(default: 0.002 plain, 0.04 shard)",
    )
    loadtest_group.add_argument(
        "--lt-max-batch", type=int, default=None, metavar="N",
        help="max points per wave for self-spawned services/replicas "
             "(default: 64 plain, 4 shard)",
    )
    dash_group = parser.add_argument_group(
        "dashboard options (only with the 'dashboard' experiment)")
    dash_group.add_argument(
        "--dash-out", metavar="PATH", default="dashboard.html",
        help="HTML file to write (default: dashboard.html)",
    )
    dash_group.add_argument(
        "--dash-workload", metavar="NAME", default="bfs",
        help="workload driven through every dashboard design "
             "(default: bfs)",
    )
    dash_group.add_argument(
        "--dash-service-metrics", metavar="PATH", default=None,
        help="a service /metrics JSON snapshot to render the cache-tier "
             "provenance panel from (optional)",
    )
    dash_group.add_argument(
        "--dash-epoch-cycles", type=float, default=1024.0, metavar="N",
        help="timeline epoch width in simulated cycles (default: 1024)",
    )
    trace_group = parser.add_argument_group(
        "trace options (only with the 'trace show' command)")
    trace_group.add_argument(
        "--trace-in", metavar="PATH", default=None,
        help="the JSON-lines trace file to render (from --trace-out)",
    )
    trace_group.add_argument(
        "--trace-id", metavar="ID", default=None,
        help="render only this trace id (default: every trace in the file)",
    )
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list and args.experiment not in ("designs", "workloads"):
        print(_experiment_listing())
        return 0
    if args.experiment is None:
        parser.print_usage(sys.stderr)
        print("repro-experiment: error: no experiment given "
              "(use --list to see the choices)", file=sys.stderr)
        return 2
    if args.action is not None and args.experiment not in ("trace", "sweep"):
        print(f"repro-experiment: error: {args.experiment!r} takes no "
              f"subaction (got {args.action!r})", file=sys.stderr)
        return 2
    if args.experiment in ("designs", "workloads"):
        listing = (_print_designs if args.experiment == "designs"
                   else _print_workloads)
        try:
            return listing(args.list)
        except BrokenPipeError:
            # Piping into `head` is normal; a closed pipe is not an error.
            import os

            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
            return 0
    if args.cache_dir is not None:
        # Fail before any simulation, not after hours of compute.
        problem = _preflight_cache_dir(args.cache_dir)
        if problem:
            print(f"repro-experiment: error: {problem}", file=sys.stderr)
            return 2
    trace_cache = args.trace_cache
    if trace_cache is None and args.cache_dir is not None:
        trace_cache = str(Path(args.cache_dir) / "traces")
    if trace_cache is not None:
        # Safe to enable globally: chaos loads via load_fresh, which
        # never consults the store.
        from repro.workloads import registry

        registry.set_trace_cache(trace_cache)
    if args.experiment == "trace":
        from repro.obs.trace_view import load_events, render_traces

        if args.action != "show":
            print("repro-experiment: error: the trace command needs the "
                  "'show' subaction (repro-experiment trace show "
                  "--trace-in PATH)", file=sys.stderr)
            return 2
        if args.trace_in is None:
            print("repro-experiment: error: trace show requires "
                  "--trace-in PATH", file=sys.stderr)
            return 2
        try:
            events = load_events(args.trace_in)
        except (OSError, ValueError) as exc:
            print(f"repro-experiment: error: cannot load --trace-in "
                  f"{args.trace_in!r}: {exc}", file=sys.stderr)
            return 2
        try:
            print(render_traces(events, args.trace_id))
        except ValueError as exc:  # --trace-id not present in the file
            print(f"repro-experiment: error: {exc}", file=sys.stderr)
            return 2
        except BrokenPipeError:
            # Piping into `head` is normal for large traces; a closed
            # pipe is not an error.
            import os

            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    if args.experiment == "loadtest":
        from repro.experiments import loadtest

        try:
            levels = tuple(
                int(n) for n in args.lt_clients.split(",") if n.strip())
        except ValueError:
            print(f"repro-experiment: error: --lt-clients "
                  f"{args.lt_clients!r} is not a comma-separated list of "
                  f"integers", file=sys.stderr)
            return 2
        if not levels or any(n < 1 for n in levels):
            print("repro-experiment: error: --lt-clients needs at least "
                  "one positive level", file=sys.stderr)
            return 2
        if args.lt_requests < 1:
            print("repro-experiment: error: --lt-requests must be >= 1",
                  file=sys.stderr)
            return 2
        def _parse_points(text, flag):
            parsed = []
            for chunk in text.split(","):
                chunk = chunk.strip()
                if not chunk:
                    continue
                workload, sep, design = chunk.partition("/")
                if not sep or not workload or not design:
                    print(f"repro-experiment: error: {flag} entry "
                          f"{chunk!r} is not WORKLOAD/DESIGN",
                          file=sys.stderr)
                    return None
                parsed.append((workload, design))
            return parsed

        points = _parse_points(args.lt_points, "--lt-points")
        if points is None:
            return 2
        if not points:
            print("repro-experiment: error: --lt-points needs at least "
                  "one WORKLOAD/DESIGN point", file=sys.stderr)
            return 2
        cold_points = []
        if args.lt_cold_points is not None:
            cold_points = _parse_points(args.lt_cold_points,
                                        "--lt-cold-points")
            if cold_points is None:
                return 2
        if args.lt_cold_every < 0:
            print("repro-experiment: error: --lt-cold-every must be >= 0",
                  file=sys.stderr)
            return 2
        replica_counts = None
        if args.lt_replicas is not None:
            try:
                replica_counts = tuple(
                    int(n) for n in args.lt_replicas.split(",") if n.strip())
            except ValueError:
                print(f"repro-experiment: error: --lt-replicas "
                      f"{args.lt_replicas!r} is not a comma-separated list "
                      f"of integers", file=sys.stderr)
                return 2
            if not replica_counts or any(n < 1 for n in replica_counts):
                print("repro-experiment: error: --lt-replicas needs at "
                      "least one positive replica count", file=sys.stderr)
                return 2
        return loadtest.main(
            target=args.lt_target, levels=levels,
            requests_per_client=args.lt_requests, points=points,
            scale=args.scale, jobs=args.jobs, out=args.lt_out,
            replica_counts=replica_counts, cold_points=cold_points,
            cold_every=args.lt_cold_every,
            batch_window=args.lt_batch_window, max_batch=args.lt_max_batch,
        )
    if args.experiment == "dashboard":
        from repro.experiments import dashboard

        if args.dash_epoch_cycles <= 0:
            print("repro-experiment: error: --dash-epoch-cycles must be "
                  "positive", file=sys.stderr)
            return 2
        try:
            return dashboard.main(
                workload=args.dash_workload, scale=args.scale,
                out=args.dash_out,
                service_metrics=args.dash_service_metrics,
                epoch_cycles=args.dash_epoch_cycles,
            )
        except KeyError as exc:
            print(f"repro-experiment: error: {exc.args[0]}",
                  file=sys.stderr)
            return 2
    if args.experiment == "serve":
        from repro.service.server import run_server

        if args.jobs < 1:
            print("repro-experiment: error: --jobs must be >= 1",
                  file=sys.stderr)
            return 2
        if not 0 <= args.port <= 65535:
            print("repro-experiment: error: --port must be in 0..65535",
                  file=sys.stderr)
            return 2
        if args.batch_window < 0:
            print("repro-experiment: error: --batch-window must be >= 0",
                  file=sys.stderr)
            return 2
        if args.max_batch < 1:
            print("repro-experiment: error: --max-batch must be >= 1",
                  file=sys.stderr)
            return 2
        if args.replicas < 0:
            print("repro-experiment: error: --replicas must be >= 0",
                  file=sys.stderr)
            return 2
        if args.health_interval <= 0:
            print("repro-experiment: error: --health-interval must be "
                  "positive", file=sys.stderr)
            return 2
        if args.max_inflight is not None and args.max_inflight < 1:
            print("repro-experiment: error: --max-inflight must be >= 1",
                  file=sys.stderr)
            return 2
        if args.replicas > 0 or args.replica_urls is not None:
            from repro.service.gateway import run_gateway

            if args.jobs_journal is not None:
                print("repro-experiment: error: --jobs-journal applies to "
                      "a plain serve, not --replicas (each replica would "
                      "need its own journal)", file=sys.stderr)
                return 2
            replica_urls = None
            if args.replica_urls is not None:
                replica_urls = [u.strip()
                                for u in args.replica_urls.split(",")
                                if u.strip()]
                if not replica_urls:
                    print("repro-experiment: error: --replica-urls needs "
                          "at least one HOST:PORT", file=sys.stderr)
                    return 2
            try:
                return run_gateway(
                    host=args.host, port=args.port,
                    replicas=args.replicas or 2,
                    replica_urls=replica_urls,
                    jobs=args.jobs, scale=args.scale,
                    cache_dir=args.cache_dir,
                    check_invariants=args.check_invariants,
                    batch_window=args.batch_window,
                    max_batch=args.max_batch,
                    health_interval=args.health_interval,
                    max_inflight=args.max_inflight,
                    supervise=not args.no_supervise,
                    trace_out=args.trace_out,
                    metrics_out=args.metrics_out,
                )
            except (ValueError, RuntimeError) as exc:
                print(f"repro-experiment: error: {exc}", file=sys.stderr)
                return 2
        return run_server(
            host=args.host, port=args.port, jobs=args.jobs,
            scale=args.scale, cache_dir=args.cache_dir,
            checkpoint=args.checkpoint,
            check_invariants=args.check_invariants,
            point_timeout=args.point_timeout,
            point_retries=args.point_retries,
            batch_window=args.batch_window, max_batch=args.max_batch,
            max_inflight=args.max_inflight,
            jobs_journal=args.jobs_journal,
            trace_out=args.trace_out, metrics_out=args.metrics_out,
        )
    if args.experiment == "chaos":
        if args.net:
            from repro.experiments import netchaos

            if args.net_replicas < 1:
                print("repro-experiment: error: --net-replicas must be >= 1",
                      file=sys.stderr)
                return 2
            if args.net_requests < 1:
                print("repro-experiment: error: --net-requests must be >= 1",
                      file=sys.stderr)
                return 2
            return netchaos.main(
                rates_text=args.net_rates, seed=args.chaos_seed,
                replicas=args.net_replicas, requests=args.net_requests,
                scale=args.scale, out=args.net_out,
            )
        from repro.experiments import chaos

        try:
            rates = tuple(
                float(r) for r in args.fault_rates.split(",") if r.strip())
        except ValueError:
            print(f"repro-experiment: error: --fault-rates "
                  f"{args.fault_rates!r} is not a comma-separated list of "
                  f"numbers", file=sys.stderr)
            return 2
        if not rates or any(r < 0 for r in rates):
            print("repro-experiment: error: --fault-rates needs at least "
                  "one nonnegative rate", file=sys.stderr)
            return 2
        workloads = tuple(
            w.strip() for w in args.chaos_workloads.split(",") if w.strip())
        try:
            return chaos.main(
                workloads=workloads, rates=rates, seed=args.chaos_seed,
                scale=args.scale, trace_out=args.trace_out,
                metrics_out=args.metrics_out,
            )
        except KeyError as exc:
            print(f"repro-experiment: error: {exc.args[0]}", file=sys.stderr)
            return 2
    if args.experiment == "bench":
        from repro.experiments import bench

        if args.bench_repeats < 1:
            print("repro-experiment: error: --bench-repeats must be >= 1",
                  file=sys.stderr)
            return 2
        return bench.main(
            scale=args.scale if args.scale is not None else 0.1,
            repeats=args.bench_repeats,
            out=(args.bench_out if args.bench_out is not None
                 else "benchmarks/perf/BENCH_PR8.json"),
            baseline_path=args.bench_baseline,
            compare_path=args.bench_compare,
            tolerance=args.bench_tolerance,
            trace_out=args.trace_out,
            metrics_out=args.metrics_out,
            trace_cache=trace_cache,
        )
    if (args.experiment not in EXPERIMENTS
            and args.experiment not in ("all", "sweep")):
        print(f"repro-experiment: error: unknown experiment "
              f"{args.experiment!r}; valid choices are:", file=sys.stderr)
        print(_experiment_listing(), file=sys.stderr)
        return 2

    if args.jobs < 1:
        print("repro-experiment: error: --jobs must be >= 1", file=sys.stderr)
        return 2
    if args.point_retries < 0:
        print("repro-experiment: error: --point-retries must be >= 0",
              file=sys.stderr)
        return 2
    if args.point_timeout is not None and args.point_timeout <= 0:
        print("repro-experiment: error: --point-timeout must be positive",
              file=sys.stderr)
        return 2
    if args.scale is not None:
        GLOBAL_CACHE.scale = args.scale
    GLOBAL_CACHE.jobs = args.jobs
    if args.cache_dir is not None:
        GLOBAL_CACHE.cache_dir = args.cache_dir
    GLOBAL_CACHE.check_invariants = args.check_invariants
    GLOBAL_CACHE.checkpoint = args.checkpoint
    GLOBAL_CACHE.point_timeout = args.point_timeout
    GLOBAL_CACHE.point_retries = args.point_retries
    if args.metrics_out is not None:
        # Fail before the run, not after: the manifest is written last.
        parent = Path(args.metrics_out).resolve().parent
        if not parent.is_dir():
            print(f"repro-experiment: error: --metrics-out directory "
                  f"{str(parent)!r} does not exist", file=sys.stderr)
            return 2
    try:
        obs = _build_observability(args)
    except OSError as exc:
        print(f"repro-experiment: error: cannot open --trace-out "
              f"{args.trace_out!r}: {exc}", file=sys.stderr)
        return 2
    if obs is not None:
        GLOBAL_CACHE.obs = obs

    wall_start = time.time()
    chosen = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    profiler = obs.profiler if obs is not None else None
    exit_code = 0
    if args.experiment == "sweep":
        start = time.time()
        if profiler is not None:
            with profiler.span("experiment:sweep"):
                exit_code = _run_sweep(args, obs)
        else:
            exit_code = _run_sweep(args, obs)
        if exit_code == 0:
            print(f"[sweep completed in {time.time() - start:.1f}s]\n")
    else:
        for name in chosen:
            start = time.time()
            if profiler is not None:
                with profiler.span(f"experiment:{name}"):
                    rendered = EXPERIMENTS[name]()
            else:
                rendered = EXPERIMENTS[name]()
            print(rendered)
            print(f"[{name} regenerated in {time.time() - start:.1f}s]\n")

    if args.svg is not None and args.experiment != "sweep":
        from repro.experiments.figures_svg import save_all

        for path in save_all(args.svg, GLOBAL_CACHE):
            print(f"wrote {path}")

    if obs is not None:
        obs.close()  # flush the JSON-lines trace before reporting
        if args.metrics_out:
            from repro.obs.manifest import build_manifest, write_manifest

            manifest = build_manifest(
                config=GLOBAL_CACHE.config,
                metrics=obs.metrics,
                extra={
                    "experiments": chosen,
                    "scale": GLOBAL_CACHE.effective_scale(),
                    "trace_out": args.trace_out,
                    "wall_clock_seconds": time.time() - wall_start,
                },
            )
            path = write_manifest(args.metrics_out, manifest)
            print(f"wrote {path}")
        if args.trace_out:
            print(f"wrote {args.trace_out} "
                  f"({obs.tracer.events_emitted} events)")
        if profiler is not None:
            print(profiler.report())
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
