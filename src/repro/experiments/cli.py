"""Command-line entry point: regenerate any table or figure.

Usage::

    repro-experiment fig9                     # one figure
    repro-experiment all                      # everything
    repro-experiment fig2 --scale 0.25        # quick, scaled-down run
    repro-experiment all --jobs 4 \\
        --cache-dir ~/.cache/repro            # parallel + persistent cache
    repro-experiment --list                   # valid experiment names
    repro-experiment fig3 --scale 0.25 \\
        --trace-out trace.jsonl \\
        --metrics-out manifest.json --profile # fully observed run

``--trace-out`` streams every simulated request's path (CU issue, TLB
and virtual-cache hits/misses, IOMMU queue enter/exit, page walks,
completion) as JSON lines; ``--metrics-out`` writes a run manifest with
the config, git SHA, wall-clock, and every metric including latency
histograms (IOMMU queueing delay p50/p95/p99); ``--profile`` prints a
wall-clock breakdown of the experiment pipeline.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Callable, Dict

from repro.experiments import (
    energy,
    fig2,
    fig3,
    fig4,
    fig5,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    tables,
)
from repro.experiments.common import GLOBAL_CACHE

EXPERIMENTS: Dict[str, Callable[[], str]] = {
    "table1": lambda: tables.render_table1(),
    "table2": lambda: tables.render_table2(),
    "fig2": lambda: fig2.run(GLOBAL_CACHE).render(),
    "fig3": lambda: fig3.run(GLOBAL_CACHE).render(),
    "fig4": lambda: fig4.run(GLOBAL_CACHE).render(),
    "fig5": lambda: fig5.run(GLOBAL_CACHE).render(),
    "fig8": lambda: fig8.run(GLOBAL_CACHE).render(),
    "fig9": lambda: fig9.run(GLOBAL_CACHE).render(),
    "fig10": lambda: fig10.run(GLOBAL_CACHE).render(),
    "fig11": lambda: fig11.run(GLOBAL_CACHE).render(),
    "fig12": lambda: fig12.run(GLOBAL_CACHE).render(),
    "energy": lambda: energy.run(GLOBAL_CACHE).render(),
    "coherence": lambda: _coherence(),
    "validate": lambda: _validate(),
}


def _coherence() -> str:
    from repro.experiments import coherence

    return coherence.run(GLOBAL_CACHE).render()


def _validate() -> str:
    from repro.analysis.paper_targets import collect_measurements, render_report

    return render_report(collect_measurements(GLOBAL_CACHE))


def _experiment_listing() -> str:
    return "\n".join(sorted(EXPERIMENTS) + ["all", "bench"])


def _build_observability(args):
    """One Observability bundle for --trace-out/--metrics-out/--profile."""
    if not (args.trace_out or args.metrics_out or args.profile):
        return None
    from repro.obs import JsonLinesTracer, Observability, Profiler

    tracer = JsonLinesTracer(args.trace_out) if args.trace_out else None
    profiler = Profiler() if args.profile else None
    return Observability(tracer=tracer, profiler=profiler)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiment",
        description="Regenerate tables/figures from 'Filtering Translation "
                    "Bandwidth with Virtual Caching' (ASPLOS 2018)",
    )
    parser.add_argument(
        "experiment", nargs="?", metavar="EXPERIMENT",
        help="which artefact to regenerate (see --list), or 'all'",
    )
    parser.add_argument(
        "--list", action="store_true",
        help="print the valid experiment names and exit",
    )
    parser.add_argument(
        "--scale", type=float, default=None,
        help="workload scale factor (default: REPRO_SCALE env or 1.0)",
    )
    parser.add_argument(
        "--svg", metavar="DIR", default=None,
        help="additionally render the data figures as SVG files into DIR",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="fan missing (workload, design) simulations out over N "
             "worker processes (default: 1, fully serial; results are "
             "bit-identical either way)",
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="persist simulation results under DIR and reuse them across "
             "invocations; entries are keyed by workload, scale, the full "
             "MMU design, and a content hash of the SoC config, so any "
             "change to those re-simulates",
    )
    parser.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="write a JSON-lines trace of every simulated request to PATH",
    )
    parser.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help="write a JSON run manifest (config, git SHA, all metrics "
             "including latency histograms) to PATH",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="print a wall-clock profile of the experiment pipeline",
    )
    bench_group = parser.add_argument_group(
        "bench options (only with the 'bench' experiment)")
    bench_group.add_argument(
        "--bench-out", metavar="PATH", default=None,
        help="write the benchmark report JSON to PATH (default: BENCH_PR3.json "
             "in the current directory)",
    )
    bench_group.add_argument(
        "--bench-repeats", type=int, default=3, metavar="N",
        help="repeats per point; the best run is reported (default: 3)",
    )
    bench_group.add_argument(
        "--bench-baseline", metavar="PATH", default=None,
        help="embed the recorded report at PATH as the baseline and report "
             "speedups against it",
    )
    bench_group.add_argument(
        "--bench-compare", metavar="PATH", default=None,
        help="fail (exit 1) if total requests/sec regresses more than "
             "--bench-tolerance below the report recorded at PATH",
    )
    bench_group.add_argument(
        "--bench-tolerance", type=float, default=0.30, metavar="FRAC",
        help="allowed fractional throughput regression for --bench-compare "
             "(default: 0.30)",
    )
    args = parser.parse_args(argv)

    if args.list:
        print(_experiment_listing())
        return 0
    if args.experiment is None:
        parser.print_usage(sys.stderr)
        print("repro-experiment: error: no experiment given "
              "(use --list to see the choices)", file=sys.stderr)
        return 2
    if args.experiment == "bench":
        from repro.experiments import bench

        if args.bench_repeats < 1:
            print("repro-experiment: error: --bench-repeats must be >= 1",
                  file=sys.stderr)
            return 2
        return bench.main(
            scale=args.scale if args.scale is not None else 0.1,
            repeats=args.bench_repeats,
            out=args.bench_out if args.bench_out is not None else "BENCH_PR3.json",
            baseline_path=args.bench_baseline,
            compare_path=args.bench_compare,
            tolerance=args.bench_tolerance,
        )
    if args.experiment != "all" and args.experiment not in EXPERIMENTS:
        print(f"repro-experiment: error: unknown experiment "
              f"{args.experiment!r}; valid choices are:", file=sys.stderr)
        print(_experiment_listing(), file=sys.stderr)
        return 2

    if args.jobs < 1:
        print("repro-experiment: error: --jobs must be >= 1", file=sys.stderr)
        return 2
    if args.scale is not None:
        GLOBAL_CACHE.scale = args.scale
    GLOBAL_CACHE.jobs = args.jobs
    if args.cache_dir is not None:
        GLOBAL_CACHE.cache_dir = args.cache_dir
    if args.metrics_out is not None:
        # Fail before the run, not after: the manifest is written last.
        parent = Path(args.metrics_out).resolve().parent
        if not parent.is_dir():
            print(f"repro-experiment: error: --metrics-out directory "
                  f"{str(parent)!r} does not exist", file=sys.stderr)
            return 2
    try:
        obs = _build_observability(args)
    except OSError as exc:
        print(f"repro-experiment: error: cannot open --trace-out "
              f"{args.trace_out!r}: {exc}", file=sys.stderr)
        return 2
    if obs is not None:
        GLOBAL_CACHE.obs = obs

    wall_start = time.time()
    chosen = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    profiler = obs.profiler if obs is not None else None
    for name in chosen:
        start = time.time()
        if profiler is not None:
            with profiler.span(f"experiment:{name}"):
                rendered = EXPERIMENTS[name]()
        else:
            rendered = EXPERIMENTS[name]()
        print(rendered)
        print(f"[{name} regenerated in {time.time() - start:.1f}s]\n")

    if args.svg is not None:
        from repro.experiments.figures_svg import save_all

        for path in save_all(args.svg, GLOBAL_CACHE):
            print(f"wrote {path}")

    if obs is not None:
        obs.close()  # flush the JSON-lines trace before reporting
        if args.metrics_out:
            from repro.obs.manifest import build_manifest, write_manifest

            manifest = build_manifest(
                config=GLOBAL_CACHE.config,
                metrics=obs.metrics,
                extra={
                    "experiments": chosen,
                    "scale": GLOBAL_CACHE.effective_scale(),
                    "trace_out": args.trace_out,
                    "wall_clock_seconds": time.time() - wall_start,
                },
            )
            path = write_manifest(args.metrics_out, manifest)
            print(f"wrote {path}")
        if args.trace_out:
            print(f"wrote {args.trace_out} "
                  f"({obs.tracer.events_emitted} events)")
        if profiler is not None:
            print(profiler.report())
    return 0


if __name__ == "__main__":
    sys.exit(main())
