"""Generate ``docs/CLI.md`` from the real ``repro-experiment`` parser.

The CLI reference is *generated*, never hand-edited: this module walks
:func:`repro.experiments.cli.build_parser` (every flag, every argument
group, every default) plus the experiment registry, and renders the
markdown committed at ``docs/CLI.md``.  ``tests/test_cli_doc.py`` fails
whenever the committed file differs from what this module renders, so
the documentation cannot drift from the code.  Regenerate with::

    PYTHONPATH=src python -m repro.experiments.cli_doc > docs/CLI.md
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Dict, List

from repro.experiments.cli import EXPERIMENTS, EXTRA_COMMANDS, build_parser

__all__ = ["EXPERIMENT_DESCRIPTIONS", "main", "render_cli_doc"]

#: One-line description per experiment name.  Generation fails loudly if
#: an experiment is added without a description (or one goes stale), so
#: the drift test catches missing docs too.
EXPERIMENT_DESCRIPTIONS: Dict[str, str] = {
    "table1": "Simulated SoC configuration (paper Table 1).",
    "table2": "MMU design presets under evaluation (paper Table 2).",
    "fig2": "Per-CU TLB miss ratio and where a virtual cache would "
            "have found the data.",
    "fig3": "Shared IOMMU TLB accesses/cycle (mean ± σ, max).",
    "fig4": "Translation overhead of the baseline MMUs vs IDEAL.",
    "fig5": "Serialization overhead vs shared-TLB peak bandwidth "
            "1–4 accesses/cycle.",
    "fig8": "Shared-TLB demand: baseline vs virtual hierarchy.",
    "fig9": "Performance of all Table 2 designs relative to IDEAL.",
    "fig10": "Virtual-cache speedup over 128-entry per-CU TLBs.",
    "fig11": "Whole-hierarchy vs L1-only virtual caching.",
    "fig12": "Lifetimes: TLB entries die while cached data stays live.",
    "energy": "Energy proxies: TLB lookups avoided, IOMMU traffic (§5.3).",
    "coherence": "The backward table as a coherence filter (§4.1).",
    "validate": "Every headline paper claim vs the measured value, "
                "with acceptance bands.",
    "all": "Every experiment above, in name order.",
    "bench": "Host-throughput microbenchmark of the simulation hot path "
             "(see the bench options below).",
    "chaos": "Deterministic VM-event fault injection under invariant "
             "audit (see the chaos options below).",
    "serve": "Long-running simulation service over HTTP: batching, "
             "single-flight coalescing, cache-tier provenance, /metrics "
             "and /healthz; --replicas N shards it behind a "
             "consistent-hash gateway (see the serve options below).",
    "dashboard": "Render the translation-bandwidth telemetry dashboard "
                 "(IOMMU queue-depth / filter-rate timelines, traffic "
                 "breakdown) as a self-contained HTML page (see the "
                 "dashboard options below).",
    "loadtest": "Concurrency sweep against the simulation service: "
                "p50/p95/p99 latency, throughput, and the saturation "
                "knee; --lt-replicas sweeps a sharded gateway and "
                "reports the scaling curve (see the loadtest options "
                "below).",
    "trace": "Render a JSON-lines trace file as a span tree "
             "('trace show', see the trace options below).",
    "sweep": "Run a declarative SweepSpec JSON file ('sweep SPEC.json') "
             "through the result cache — full --jobs/--cache-dir/"
             "--checkpoint/retry support; fault-plan specs run the chaos "
             "harness (see docs/SWEEPSPEC.md and the sweep options "
             "below).",
    "designs": "Print every named MMU design preset a SweepSpec (or "
               "service point) can reference; --list prints bare slugs.",
    "workloads": "Print every workload trace name with its suite and "
                 "bandwidth class; --list prints bare names.",
}


def _invocation(action: argparse.Action) -> str:
    """How one option is spelled on the command line."""
    if not action.option_strings:  # positional
        return (action.metavar or action.dest).upper() \
            if isinstance(action.metavar or action.dest, str) else action.dest
    spelling = ", ".join(action.option_strings)
    if action.nargs != 0:
        metavar = action.metavar or action.dest.upper()
        spelling += f" {metavar}"
    return spelling


def _clean_help(action: argparse.Action) -> str:
    text = " ".join((action.help or "").split())
    return text[:1].upper() + text[1:] if text else ""


def _render_group(group: argparse._ArgumentGroup,
                  lines: List[str]) -> None:
    actions = [a for a in group._group_actions
               if not isinstance(a, argparse._HelpAction)]
    if not actions:
        return
    title = (group.title or "options")
    lines.append(f"### {title[:1].upper() + title[1:]}")
    lines.append("")
    lines.append("| Argument | Description |")
    lines.append("|---|---|")
    for action in actions:
        lines.append(f"| `{_invocation(action)}` | {_clean_help(action)} |")
    lines.append("")


def _format_usage_at_80_columns(parser: argparse.ArgumentParser) -> str:
    """Usage text wrapped at a fixed width, independent of the terminal.

    ``argparse`` wraps usage at the live terminal width (``COLUMNS``);
    pinning it keeps the generated file byte-identical everywhere.
    """
    saved = os.environ.get("COLUMNS")
    os.environ["COLUMNS"] = "80"
    try:
        return parser.format_usage().rstrip()
    finally:
        if saved is None:
            os.environ.pop("COLUMNS", None)
        else:
            os.environ["COLUMNS"] = saved


def render_cli_doc() -> str:
    """Render the complete markdown CLI reference."""
    parser = build_parser()
    documented = set(EXPERIMENT_DESCRIPTIONS)
    actual = set(EXPERIMENTS) | set(EXTRA_COMMANDS)
    if documented != actual:
        missing = sorted(actual - documented)
        stale = sorted(documented - actual)
        raise RuntimeError(
            f"EXPERIMENT_DESCRIPTIONS is out of sync with the experiment "
            f"registry (missing: {missing}, stale: {stale}); update "
            f"repro/experiments/cli_doc.py")

    lines: List[str] = []
    lines.append("# `repro-experiment` CLI reference")
    lines.append("")
    lines.append("> **Generated file — do not edit by hand.**  This page is "
                 "rendered from the real `argparse` parser by "
                 "`repro.experiments.cli_doc`; `tests/test_cli_doc.py` "
                 "fails if it drifts from the code.  Regenerate with:")
    lines.append("> ")
    lines.append("> ```bash")
    lines.append("> PYTHONPATH=src python -m repro.experiments.cli_doc "
                 "> docs/CLI.md")
    lines.append("> ```")
    lines.append("")
    lines.append(parser.description or "")
    lines.append("")
    lines.append("## Usage")
    lines.append("")
    lines.append("```")
    lines.append(_format_usage_at_80_columns(parser))
    lines.append("```")
    lines.append("")
    lines.append("## Experiments")
    lines.append("")
    lines.append("The positional `EXPERIMENT` argument selects what to run "
                 "(`repro-experiment --list` prints the same set):")
    lines.append("")
    lines.append("| Experiment | What it runs |")
    lines.append("|---|---|")
    ordered = sorted(EXPERIMENTS) + list(EXTRA_COMMANDS)
    for name in ordered:
        lines.append(f"| `{name}` | {EXPERIMENT_DESCRIPTIONS[name]} |")
    lines.append("")
    lines.append("## Options")
    lines.append("")
    for group in parser._action_groups:
        _render_group(group, lines)
    return "\n".join(lines).rstrip() + "\n"


def main() -> int:
    sys.stdout.write(render_cli_doc())
    return 0


if __name__ == "__main__":
    sys.exit(main())
