"""Coherence-filter experiment (§4.1 / §5.3).

The backward table is fully inclusive of the GPU caches, so when the
CPU-side directory probes the GPU with a physical address, a BT miss
proves the GPU caches nothing from that page and the probe is filtered —
the "efficient coherence filter" role the paper likens to the region
buffer of heterogeneous system coherence [35].

This experiment warms the virtual hierarchy with a workload, then plays
a stream of directory probes against it: a fraction aimed at lines the
GPU recently touched (sharing traffic), the rest across the whole
physical footprint (false sharing / unrelated CPU activity), and
measures the filter rate and reverse-translation correctness.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.report import format_table, section
from repro.experiments.common import GLOBAL_CACHE, ResultCache
from repro.memsys.directory import CoherenceProbe, Directory
from repro.system.designs import VC_WITH_OPT


__all__ = ["CoherenceResult", "main", "run"]


@dataclass
class CoherenceResult:
    """Probe-filtering statistics against a warmed virtual hierarchy."""

    workload: str
    probes: int
    filtered: int
    forwarded: int
    l2_invalidations: int
    reverse_translation_errors: int

    @property
    def filter_rate(self) -> float:
        return self.filtered / self.probes if self.probes else 0.0

    def render(self) -> str:
        rows = [
            ["probes issued", self.probes],
            ["filtered by the BT", f"{self.filtered} ({self.filter_rate:.0%})"],
            ["forwarded (reverse-translated)", self.forwarded],
            ["L2 lines invalidated", self.l2_invalidations],
            ["reverse-translation errors", self.reverse_translation_errors],
        ]
        return section(
            f"Coherence filtering at the BT ({self.workload})",
            format_table(["metric", "value"], rows),
        )


def run(
    cache: ResultCache = None,
    workload: str = "pagerank",
    n_probes: int = 4000,
    targeted_fraction: float = 0.25,
    seed: int = 0,
) -> CoherenceResult:
    """Warm the VC hierarchy with ``workload``, then inject probes."""
    cache = cache if cache is not None else GLOBAL_CACHE
    # Probes are injected into the warmed hierarchy after the run, so a
    # live in-process handle is required (slim cached records lack one).
    result = cache.run(workload, VC_WITH_OPT, need_hierarchy=True)
    hierarchy = result.hierarchy
    space = cache.trace(workload).address_space
    rng = np.random.default_rng(seed)

    # The GPU-resident physical lines (what sharing traffic would hit).
    resident = []
    for line in hierarchy.l2.resident_lines():
        pa = space.translate(line.line_addr * 128)
        if pa is not None:
            resident.append(pa // 128)
    total_frames = space.frames.frames_allocated
    directory = Directory()
    for pline in resident:
        directory.record_gpu_fill(pline)

    filtered = forwarded = invalidated = errors = 0
    for i in range(n_probes):
        if resident and rng.random() < targeted_fraction:
            target = int(resident[int(rng.integers(0, len(resident)))])
        else:
            target = int(rng.integers(0, total_frames * 32))
        before = len(hierarchy.l2)
        probe = hierarchy.handle_probe(CoherenceProbe(physical_line=target),
                                       now=result.cycles + i)
        if probe.filtered:
            filtered += 1
            # A filtered probe must really have nothing in the L2.
            if directory.gpu_may_hold(target) and before != len(hierarchy.l2):
                errors += 1
        else:
            forwarded += 1
            if len(hierarchy.l2) < before:
                invalidated += 1
            if probe.forwarded_virtual_line is not None:
                pa = space.translate(probe.forwarded_virtual_line * 128)
                if pa is None or pa // 128 != target:
                    errors += 1
    return CoherenceResult(
        workload=workload,
        probes=n_probes,
        filtered=filtered,
        forwarded=forwarded,
        l2_invalidations=invalidated,
        reverse_translation_errors=errors,
    )


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
