"""Shared experiment machinery.

Experiments run (workload × MMU design) simulations; many figures share
the same runs (the IDEAL MMU baseline appears in Figures 4, 5, and 9,
for example), so results are memoized per process in a
:class:`ResultCache`.  Each run builds a *fresh* hierarchy — simulator
state never leaks between design points — but reuses the memoized trace
from :mod:`repro.workloads.registry`.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.system.config import SoCConfig
from repro.system.designs import MMUDesign
from repro.system.run import SimulationResult, simulate
from repro.workloads import registry
from repro.workloads.trace import Trace


@dataclass
class ResultCache:
    """Memoizes simulation results keyed by (workload, scale, design).

    An :class:`~repro.obs.Observability` bundle attached as ``obs`` is
    threaded through every hierarchy built and every ``simulate()``
    call; when its profiler is set, trace synthesis and each simulation
    get their own wall-clock spans.
    """

    config: SoCConfig = field(default_factory=SoCConfig)
    scale: Optional[float] = None
    obs: object = None
    _results: Dict[Tuple[str, float, str, bool], SimulationResult] = \
        field(default_factory=dict)

    def effective_scale(self) -> float:
        return self.scale if self.scale is not None else registry.default_scale()

    def trace(self, workload: str) -> Trace:
        with self._span(f"load:{workload}"):
            return registry.load(workload, scale=self.effective_scale())

    def _span(self, name: str):
        profiler = getattr(self.obs, "profiler", None)
        return profiler.span(name) if profiler is not None else nullcontext()

    def run(
        self,
        workload: str,
        design: MMUDesign,
        track_lifetimes: bool = False,
    ) -> SimulationResult:
        """Run (or fetch) one simulation."""
        key = (workload, self.effective_scale(), design.name, track_lifetimes)
        if key not in self._results:
            trace = self.trace(workload)
            page_tables = {0: trace.address_space.page_table}
            hierarchy = design.build(self.config, page_tables,
                                     track_lifetimes=track_lifetimes,
                                     obs=self.obs)
            with self._span(f"sim:{workload}:{design.name}"):
                self._results[key] = simulate(
                    trace, hierarchy, design.soc_config(self.config),
                    design=design.name, obs=self.obs,
                )
        return self._results[key]

    def run_designs(
        self, workload: str, designs: Iterable[MMUDesign]
    ) -> Dict[str, SimulationResult]:
        return {d.name: self.run(workload, d) for d in designs}

    def clear(self) -> None:
        self._results.clear()


# A process-wide cache shared by all experiment drivers (and by the
# pytest-benchmark harness, which regenerates every figure in one run).
GLOBAL_CACHE = ResultCache()


def resolve_workloads(names: Optional[Iterable[str]], default: Iterable[str]) -> List[str]:
    """Validate a workload-name list against the registry."""
    chosen = list(names) if names is not None else list(default)
    for name in chosen:
        if name not in registry.WORKLOADS:
            raise KeyError(f"unknown workload {name!r}")
    return chosen


ALL_WORKLOADS: Tuple[str, ...] = tuple(registry.WORKLOADS)
HIGH_BANDWIDTH = registry.HIGH_BANDWIDTH
LOW_BANDWIDTH = registry.LOW_BANDWIDTH
