"""Shared experiment machinery.

Experiments run (workload × MMU design) simulations; many figures share
the same runs (the IDEAL MMU baseline appears in Figures 4, 5, and 9,
for example), so results are memoized per process in a
:class:`ResultCache`.  Each run builds a *fresh* hierarchy — simulator
state never leaks between design points — but reuses the memoized trace
from :mod:`repro.workloads.registry`.

Two opt-in layers sit on top of the in-process memo:

* **Parallelism** — :meth:`ResultCache.run_many` fans missing design
  points out over a :class:`~concurrent.futures.ProcessPoolExecutor`
  (``jobs`` workers).  Each worker builds a fresh trace/hierarchy pair
  exactly as the serial path does, so results are bit-identical to
  ``jobs=1``; per-worker metrics registries are merged back into the
  parent's :class:`~repro.obs.Observability` bundle.
* **Persistence** — ``cache_dir`` names an on-disk
  :class:`~repro.experiments.disk_cache.DiskCache` keyed by a complete
  fingerprint (workload, scale, full design, ``track_lifetimes``, and a
  content hash of the ``SoCConfig``), so a warm rerun of a figure costs
  zero simulations.
"""

from __future__ import annotations

import os
import time as _time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from contextlib import nullcontext
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from repro.experiments.disk_cache import (
    DiskCache,
    config_fingerprint,
    point_fingerprint,
)
from repro.obs import Observability
from repro.system.config import SoCConfig
from repro.system.designs import MMUDesign
from repro.system.run import SimulationResult, simulate
from repro.workloads import registry
from repro.workloads.trace import Trace

#: Memo key: (workload, scale, design name, track_lifetimes,
#: check_invariants, config hash).  The config hash is load-bearing —
#: without it, mutating ``cache.config`` between runs would silently
#: serve stale results; ``check_invariants`` is keyed because audited
#: runs carry an extra ``invariants.audits`` counter.

__all__ = [
    "ALL_WORKLOADS",
    "CacheKey",
    "GLOBAL_CACHE",
    "HIGH_BANDWIDTH",
    "LOW_BANDWIDTH",
    "Point",
    "PointFailure",
    "ResultCache",
    "SweepError",
    "resolve_workloads",
]

CacheKey = Tuple[str, float, str, bool, bool, str]

#: A design point: (workload, design) or (workload, design, track_lifetimes).
Point = Tuple

#: One missing design point, carried through the fault-tolerant runner:
#: (memo key, workload, design, track_lifetimes, disk fingerprint).
_Missing = Tuple[CacheKey, str, MMUDesign, bool, str]


@dataclass(frozen=True)
class PointFailure:
    """One design point that kept failing after all retries."""

    workload: str
    design: str
    attempts: int
    reason: str

    def __str__(self) -> str:
        return (f"({self.workload}, {self.design}) failed "
                f"{self.attempts}x: {self.reason}")


class SweepError(RuntimeError):
    """A sweep gave up on one or more points after bounded retries."""

    def __init__(self, failures: List[PointFailure]) -> None:
        self.failures = list(failures)
        lines = "\n  ".join(str(f) for f in self.failures)
        super().__init__(
            f"{len(self.failures)} design point(s) failed permanently:\n"
            f"  {lines}")


def _simulate_point(
    config: SoCConfig,
    scale: float,
    workload: str,
    design: MMUDesign,
    track_lifetimes: bool,
    collect_metrics: bool,
    check_invariants: bool = False,
    trace_ctx: Optional[Dict[str, object]] = None,
) -> Tuple[SimulationResult, Optional[object], List[Dict[str, object]]]:
    """Run one design point from scratch (executes inside a pool worker).

    Module-level so ``ProcessPoolExecutor`` can pickle it.  Builds the
    same fresh trace/hierarchy the serial path builds, so the result is
    bit-identical to an in-process run.  Returns the slim result, the
    worker's metrics registry (for parent-side merging) when the parent
    had observability attached, and — when ``trace_ctx`` (a
    :meth:`~repro.obs.TraceContext.to_wire` dict) is given — the span
    records the worker produced, for the parent to re-emit into its
    own trace stream.  Only coarse span records cross the process
    boundary; per-request events stay worker-local (streaming millions
    of events through pickling would dwarf the simulation itself).
    """
    obs = Observability() if collect_metrics else None
    wall_start = _time.perf_counter()
    trace = registry.load(workload, scale=scale)
    page_tables = {0: trace.address_space.page_table}
    hierarchy = design.build(config, page_tables,
                             track_lifetimes=track_lifetimes, obs=obs)
    result = simulate(trace, hierarchy, design.soc_config(config),
                      design=design.name, obs=obs,
                      check_invariants=check_invariants)
    spans: List[Dict[str, object]] = []
    if trace_ctx is not None:
        from repro.obs.trace_context import TraceContext

        ctx = TraceContext.from_wire(trace_ctx)
        span: Dict[str, object] = {
            "ev": "span", "t": _time.time(), "name": "worker.simulate",
            "workload": workload, "design": design.name,
            "dur": _time.perf_counter() - wall_start,
            "cycles": result.cycles, "pid": os.getpid(), "mode": "pool",
        }
        span.update(ctx.span_fields())
        spans.append(span)
    return result, (obs.metrics if obs is not None else None), spans


@dataclass
class ResultCache:
    """Memoizes simulation results keyed by (workload, scale, design, config).

    An :class:`~repro.obs.Observability` bundle attached as ``obs`` is
    threaded through every hierarchy built and every ``simulate()``
    call; when its profiler is set, trace synthesis and each simulation
    get their own wall-clock spans.

    ``jobs`` sets the default process fan-out for :meth:`run_many` /
    :meth:`run_designs`; ``cache_dir`` (a directory path) persists slim
    results across processes and invocations.
    """

    config: SoCConfig = field(default_factory=SoCConfig)
    scale: Optional[float] = None
    obs: object = None
    jobs: int = 1
    cache_dir: Optional[str] = None
    #: Audit simulator invariants during every run (see
    #: :mod:`repro.robustness.invariants`).  Keyed into the memo/disk
    #: fingerprints: audited results carry an extra counter.
    check_invariants: bool = False
    #: Path of a crash-safe checkpoint file for :meth:`run_many`; a
    #: killed sweep restarted with the same checkpoint recomputes
    #: nothing that already completed.
    checkpoint: Optional[str] = None
    #: Fault tolerance for the parallel runner: per-point timeout in
    #: seconds (None = wait forever), bounded retries per point, and the
    #: base of the exponential inter-round backoff.
    point_timeout: Optional[float] = None
    point_retries: int = 2
    retry_backoff: float = 0.5
    _results: Dict[CacheKey, SimulationResult] = field(default_factory=dict)
    # Strong refs to the hierarchies behind memoized results; results
    # themselves hold only weak refs, so clear() genuinely frees them.
    _hierarchies: Dict[CacheKey, object] = field(default_factory=dict)
    _disk: Optional[DiskCache] = field(default=None, repr=False)
    #: Simulations actually executed (memo/disk hits excluded).
    simulations_run: int = 0

    def effective_scale(self) -> float:
        return self.scale if self.scale is not None else registry.default_scale()

    def trace(self, workload: str) -> Trace:
        with self._span(f"load:{workload}"):
            return registry.load(workload, scale=self.effective_scale())

    def _span(self, name: str):
        profiler = getattr(self.obs, "profiler", None)
        return profiler.span(name) if profiler is not None else nullcontext()

    # -- cache keys -------------------------------------------------------
    def _key(self, workload: str, design: MMUDesign,
             track_lifetimes: bool) -> CacheKey:
        return (workload, self.effective_scale(), design.name,
                track_lifetimes, self.check_invariants,
                config_fingerprint(self.config))

    def _fingerprint(self, workload: str, design: MMUDesign,
                     track_lifetimes: bool) -> str:
        return point_fingerprint(workload, self.effective_scale(), design,
                                 track_lifetimes, self.config,
                                 check_invariants=self.check_invariants)

    def _disk_cache(self) -> Optional[DiskCache]:
        if self.cache_dir is None:
            return None
        if self._disk is None or self._disk.root != Path(self.cache_dir):
            metrics = getattr(self.obs, "metrics", None)
            self._disk = DiskCache(
                self.cache_dir,
                counters=getattr(metrics, "counters", None))
            # A persistent result cache implies a persistent trace
            # cache: cache misses regenerate workloads, and those
            # compilations should be shared across processes too.
            # (Idempotent; respects an explicit earlier set_trace_cache
            # to the same directory, and exports REPRO_TRACE_CACHE so
            # spawned pool workers resolve the same store.)
            if os.environ.get("REPRO_TRACE_CACHE") is None:
                registry.set_trace_cache(Path(self.cache_dir) / "traces")
        return self._disk

    # -- running ----------------------------------------------------------
    def run(
        self,
        workload: str,
        design: MMUDesign,
        track_lifetimes: bool = False,
        need_hierarchy: bool = False,
    ) -> SimulationResult:
        """Run (or fetch) one simulation.

        ``need_hierarchy=True`` guarantees ``result.hierarchy`` is a
        live in-process hierarchy (Figure 12 and the coherence probe
        experiment inspect it) — a slim memo/disk record without one is
        re-simulated rather than served.
        """
        key = self._key(workload, design, track_lifetimes)
        result = self._results.get(key)
        if result is not None:
            if not need_hierarchy or self._hierarchies.get(key) is not None:
                return result
        elif not need_hierarchy:
            disk = self._disk_cache()
            if disk is not None:
                cached = disk.load(
                    self._fingerprint(workload, design, track_lifetimes))
                if cached is not None:
                    self._results[key] = cached
                    return cached
        return self._simulate_into_cache(key, workload, design, track_lifetimes)

    def _simulate_into_cache(
        self, key: CacheKey, workload: str, design: MMUDesign,
        track_lifetimes: bool,
    ) -> SimulationResult:
        trace = self.trace(workload)
        page_tables = {0: trace.address_space.page_table}
        hierarchy = design.build(self.config, page_tables,
                                 track_lifetimes=track_lifetimes,
                                 obs=self.obs)
        with self._span(f"sim:{workload}:{design.name}"):
            result = simulate(
                trace, hierarchy, design.soc_config(self.config),
                design=design.name, obs=self.obs,
                check_invariants=self.check_invariants,
            )
        self.simulations_run += 1
        self._results[key] = result
        self._hierarchies[key] = hierarchy
        disk = self._disk_cache()
        if disk is not None:
            disk.store(self._fingerprint(workload, design, track_lifetimes),
                       result)
        return result

    @staticmethod
    def _normalize(points: Iterable[Point]) -> List[Tuple[str, MMUDesign, bool]]:
        normalized = []
        for point in points:
            if len(point) == 2:
                workload, design = point
                track_lifetimes = False
            else:
                workload, design, track_lifetimes = point
            normalized.append((workload, design, bool(track_lifetimes)))
        return normalized

    def run_many(
        self, points: Iterable[Point], jobs: Optional[int] = None,
        trace_ctx=None,
    ) -> List[SimulationResult]:
        """Run (or fetch) many design points, fanning misses out over processes.

        ``points`` is an iterable of ``(workload, design)`` or
        ``(workload, design, track_lifetimes)`` tuples; the returned
        list matches their order.  ``jobs`` defaults to ``self.jobs``;
        with one job (or at most one miss) everything runs serially
        in-process, exactly as :meth:`run`.

        ``trace_ctx`` (a :class:`~repro.obs.TraceContext`) threads a
        caller's trace through the sweep: every simulated point gets a
        child span (``worker.simulate``), and in the serial path the
        per-request events a traced hierarchy emits are bound to that
        span too, so one service request stitches into a single trace.

        Per-request tracing *without* a trace context forces the serial
        path — a worker process cannot stream fine-grained events into
        the parent's trace file.  With a context attached the parallel
        path stays parallel: workers return coarse span records (not
        event streams) and the parent re-emits them in deterministic
        submission order.

        The parallel path is fault tolerant: a point whose worker
        crashes, is killed, or exceeds ``point_timeout`` is retried (in
        a fresh pool, after exponential backoff) up to ``point_retries``
        times before the sweep raises :class:`SweepError`.  With
        ``checkpoint`` set, every completed point is durably appended to
        the checkpoint file and a restarted sweep resumes from it with
        zero lost work.
        """
        normalized = self._normalize(points)
        jobs = self.jobs if jobs is None else jobs
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        tracing = self.obs is not None and getattr(self.obs, "tracing", False)
        use_ctx = trace_ctx if tracing else None
        if tracing and use_ctx is None:
            jobs = 1

        store = None
        completed: Dict[str, object] = {}
        if self.checkpoint is not None:
            from repro.robustness.checkpoint import CheckpointStore

            store = CheckpointStore(self.checkpoint)
            completed = store.load()

        # Collect points not already memoized (deduplicated, in order),
        # serving checkpointed and disk-cached results along the way.
        disk = self._disk_cache()
        missing: List[_Missing] = []
        seen = set()
        for workload, design, track_lifetimes in normalized:
            key = self._key(workload, design, track_lifetimes)
            if key in self._results or key in seen:
                continue
            fingerprint = self._fingerprint(workload, design, track_lifetimes)
            resumed = completed.get(fingerprint)
            if isinstance(resumed, SimulationResult):
                self._results[key] = resumed
                continue
            if disk is not None:
                cached = disk.load(fingerprint)
                if cached is not None:
                    self._results[key] = cached
                    if store is not None:
                        store.append(fingerprint, cached)
                    continue
            seen.add(key)
            missing.append((key, workload, design, track_lifetimes, fingerprint))

        if jobs == 1 or len(missing) <= 1:
            for key, workload, design, track_lifetimes, fingerprint in missing:
                if use_ctx is not None:
                    result = self._simulate_traced(
                        key, workload, design, track_lifetimes, use_ctx)
                else:
                    result = self._simulate_into_cache(
                        key, workload, design, track_lifetimes)
                if store is not None:
                    store.append(fingerprint, result)
        elif missing:
            self._run_missing_parallel(missing, jobs, store, use_ctx)
        if use_ctx is not None and missing:
            self.obs.tracer.emit(
                "span", _time.time(), name="cache.run_many",
                n_points=len(missing), **use_ctx.span_fields())
        return [
            self._results[self._key(w, d, tl)] for w, d, tl in normalized
        ]

    def _simulate_traced(
        self, key: CacheKey, workload: str, design: MMUDesign,
        track_lifetimes: bool, ctx,
    ) -> SimulationResult:
        """Serial simulation under a child span of ``ctx``.

        The cache's obs bundle is temporarily swapped for a view whose
        tracer binds the child span's identity, so every per-request
        event the hierarchy emits joins the caller's trace; the span
        record itself is emitted afterwards with wall-clock timing.
        """
        point_ctx = ctx.child()
        saved_obs = self.obs
        self.obs = saved_obs.with_fields(**point_ctx.fields())
        wall_start = _time.perf_counter()
        try:
            result = self._simulate_into_cache(
                key, workload, design, track_lifetimes)
        finally:
            self.obs = saved_obs
        saved_obs.tracer.emit(
            "span", _time.time(), name="worker.simulate",
            workload=workload, design=design.name,
            dur=_time.perf_counter() - wall_start,
            cycles=result.cycles, pid=os.getpid(), mode="serial",
            **point_ctx.span_fields())
        return result

    #: How long to wait for stragglers once the pool has been torn down
    #: after a timeout (completed futures return instantly; running ones
    #: fail with BrokenProcessPool as soon as the executor notices).
    _POOL_DRAIN_TIMEOUT = 30.0
    #: Cap on the exponential inter-round retry backoff.
    _MAX_BACKOFF = 30.0

    def _run_missing_parallel(
        self, missing: List[_Missing], jobs: int, store=None, trace_ctx=None,
    ) -> None:
        # Generate traces in the parent first: forked workers then
        # inherit the memoized traces instead of regenerating one per
        # process (and spawn-based platforms still regenerate the same
        # deterministic trace from (name, scale)).
        for workload in dict.fromkeys(w for _, w, _, _, _ in missing):
            self.trace(workload)
        collect_metrics = self.obs is not None
        scale = self.effective_scale()
        disk = self._disk_cache()
        workers = min(jobs, len(missing))
        metrics_by_key: Dict[CacheKey, object] = {}
        # One child span per point, minted up front so a retried point
        # keeps its span identity across rounds.
        ctx_by_key: Dict[CacheKey, object] = {}
        if trace_ctx is not None:
            ctx_by_key = {entry[0]: trace_ctx.child() for entry in missing}
        attempts: Dict[CacheKey, int] = {entry[0]: 0 for entry in missing}
        pending: List[_Missing] = list(missing)
        round_number = 0
        with self._span(f"run_many:{len(missing)}points:{workers}jobs"):
            while pending:
                round_number += 1
                if round_number > 1:
                    delay = min(self.retry_backoff * 2 ** (round_number - 2),
                                self._MAX_BACKOFF)
                    if delay > 0:
                        _time.sleep(delay)
                pending = self._run_one_round(
                    pending, min(jobs, len(pending)), collect_metrics, scale,
                    disk, store, metrics_by_key, attempts, ctx_by_key)
        # Merge worker metrics in the original submission order so
        # parent-side aggregation is deterministic run to run, no matter
        # which retry round completed each point.
        if self.obs is not None:
            for entry in missing:
                metrics = metrics_by_key.get(entry[0])
                if metrics is not None:
                    self.obs.metrics.merge(metrics)

    def _run_one_round(
        self,
        pending: List[_Missing],
        workers: int,
        collect_metrics: bool,
        scale: float,
        disk,
        store,
        metrics_by_key: Dict[CacheKey, object],
        attempts: Dict[CacheKey, int],
        ctx_by_key: Optional[Dict[CacheKey, object]] = None,
    ) -> List[_Missing]:
        """Run one retry round in a fresh pool; return the points to retry.

        Raises :class:`SweepError` once any point exhausts its retries.
        A per-point timeout tears the whole pool down (the stuck worker
        cannot be targeted individually); already-completed futures are
        still harvested, everything else fails this round and is
        retried in the next pool.
        """
        failures: List[Tuple[_Missing, str]] = []
        ctx_by_key = ctx_by_key or {}
        pool = ProcessPoolExecutor(max_workers=workers)
        pool_killed = False
        try:
            futures = [
                (entry,
                 pool.submit(_simulate_point, self.config, scale, entry[1],
                             entry[2], entry[3], collect_metrics,
                             self.check_invariants,
                             (ctx_by_key[entry[0]].to_wire()
                              if entry[0] in ctx_by_key else None)))
                for entry in pending
            ]
            for entry, future in futures:
                key, workload, design, track_lifetimes, fingerprint = entry
                timeout = (self._POOL_DRAIN_TIMEOUT if pool_killed
                           else self.point_timeout)
                try:
                    result, metrics, spans = future.result(timeout=timeout)
                except (KeyboardInterrupt, SystemExit):
                    raise
                except FuturesTimeout:
                    failures.append((entry, (
                        f"no result within {timeout}s"
                        + ("" if pool_killed else " (worker killed)"))))
                    if not pool_killed:
                        self._terminate_pool(pool)
                        pool_killed = True
                    continue
                except BaseException as exc:
                    failures.append((entry, f"{type(exc).__name__}: {exc}"))
                    continue
                self.simulations_run += 1
                self._results[key] = result
                if metrics is not None:
                    metrics_by_key[key] = metrics
                if spans and self.obs is not None:
                    # Harvested in submission order, so the re-emitted
                    # worker spans land deterministically in the trace.
                    tracer = self.obs.tracer
                    for span in spans:
                        fields = dict(span)
                        tracer.emit(fields.pop("ev"), fields.pop("t"),
                                    **fields)
                if disk is not None:
                    disk.store(fingerprint, result)
                if store is not None:
                    store.append(fingerprint, result)
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

        retry: List[_Missing] = []
        exhausted: List[PointFailure] = []
        for entry, reason in failures:
            key = entry[0]
            attempts[key] += 1
            if attempts[key] > self.point_retries:
                exhausted.append(PointFailure(
                    workload=entry[1], design=entry[2].name,
                    attempts=attempts[key], reason=reason))
            else:
                retry.append(entry)
        if exhausted:
            raise SweepError(exhausted)
        return retry

    @staticmethod
    def _terminate_pool(pool: ProcessPoolExecutor) -> None:
        """Hard-kill a pool whose worker blew the per-point timeout."""
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.terminate()
            except Exception:
                pass

    def run_designs(
        self, workload: str, designs: Iterable[MMUDesign]
    ) -> Dict[str, SimulationResult]:
        designs = list(designs)
        results = self.run_many([(workload, d) for d in designs])
        return {d.name: r for d, r in zip(designs, results)}

    def clear(self) -> None:
        """Drop memoized results *and* release their hierarchies."""
        self._results.clear()
        self._hierarchies.clear()


# A process-wide cache shared by all experiment drivers (and by the
# pytest-benchmark harness, which regenerates every figure in one run).
GLOBAL_CACHE = ResultCache()


def resolve_workloads(names: Optional[Iterable[str]], default: Iterable[str]) -> List[str]:
    """Validate a workload-name list against the registry."""
    chosen = list(names) if names is not None else list(default)
    for name in chosen:
        if name not in registry.WORKLOADS:
            raise KeyError(f"unknown workload {name!r}")
    return chosen


ALL_WORKLOADS: Tuple[str, ...] = tuple(registry.WORKLOADS)
HIGH_BANDWIDTH = registry.HIGH_BANDWIDTH
LOW_BANDWIDTH = registry.LOW_BANDWIDTH
