"""Translation-bandwidth dashboard: timeline telemetry rendered as HTML.

Runs the fig4/fig8 comparison points (one workload under the ideal MMU,
the physical baseline, and the virtual-cache designs) with a
:class:`~repro.obs.Timeline`-enabled metrics registry, then renders the
paper's bandwidth-filtering story *over simulated time* as a single
self-contained HTML page of inline SVG charts:

* **IOMMU queue depth** — per-epoch mean translations queued at the
  shared IOMMU TLB port (Little's law: summed queue-wait cycles per
  epoch / epoch width).  This is the congestion Figure 5 sweeps.
* **IOMMU port occupancy** — per-epoch fraction of the epoch the
  shared port spent servicing lookups.
* **Translation filter rate** — per-epoch fraction of translation
  traffic filtered *before* the shared IOMMU (virtual-cache hits, or
  per-CU TLB hits for the physical baseline) — Figure 8's bandwidth
  claim as a timeline.
* **Traffic breakdown** — end-of-run translation traffic by stage
  (probes, IOMMU lookups, FBT lookups, page walks) per design.
* **Tier provenance** (optional) — the service's memo/disk/computed
  split, when a ``/metrics`` JSON snapshot is supplied.

The dashboard *observes* the runs; attaching the timeline never changes
simulated timing (the obs-off golden tests pin this).
"""

from __future__ import annotations

import html
import json
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.svgfig import grouped_bar_chart, line_chart
from repro.experiments.common import GLOBAL_CACHE
from repro.obs import Observability
from repro.system.config import SoCConfig
from repro.system.designs import (
    BASELINE_512,
    IDEAL_MMU,
    MMUDesign,
    VC_WITH_OPT,
    VC_WITHOUT_OPT,
)
from repro.system.run import simulate
from repro.workloads import registry

__all__ = [
    "DEFAULT_DESIGNS",
    "DEFAULT_WORKLOAD",
    "DesignTelemetry",
    "collect",
    "main",
    "render_html",
]

DEFAULT_WORKLOAD = "bfs"

#: The fig4 translation-overhead points (ideal vs. physical baseline)
#: plus the fig8 filtering points (virtual cache with/without the
#: paper's optimisations).
DEFAULT_DESIGNS: Tuple[MMUDesign, ...] = (
    IDEAL_MMU, BASELINE_512, VC_WITHOUT_OPT, VC_WITH_OPT,
)

#: Translation-traffic stages charted in the breakdown panel, as
#: (timeline/counter-agnostic label, timeline series name).
_TRAFFIC_STAGES: Tuple[Tuple[str, str], ...] = (
    ("probes (TLB/VC)", "probes"),
    ("IOMMU lookups", "iommu.accesses"),
    ("FBT lookups", "fbt.lookups"),
    ("page walks", "iommu.walks"),
)


class DesignTelemetry:
    """One design's run plus the timeline its metrics recorded."""

    def __init__(self, design_name: str, result, timeline) -> None:
        self.design_name = design_name
        self.result = result
        self.timeline = timeline

    @property
    def epoch_cycles(self) -> float:
        return self.timeline.epoch_cycles

    def series_sum(self, name: str) -> float:
        return sum(v for _, v in self.timeline.series(name))

    def probe_series_name(self) -> Optional[str]:
        """The series counting *all* translation probes for this design."""
        names = self.timeline.names()
        if "vc.accesses" in names:
            return "vc.accesses"
        if "tlb.probes" in names:
            return "tlb.probes"
        return None

    def queue_depth_series(self) -> List[Tuple[float, float]]:
        """Per-epoch mean IOMMU queue depth (Little's law)."""
        width = self.epoch_cycles
        return [(t, wait / width)
                for t, wait in self.timeline.series("iommu.queue_wait")]

    def occupancy_series(self) -> List[Tuple[float, float]]:
        """Per-epoch fraction of the epoch the IOMMU port was busy."""
        width = self.epoch_cycles
        return [(t, busy / width)
                for t, busy in self.timeline.series("iommu.busy")]

    def filter_rate_series(self) -> List[Tuple[float, float]]:
        """Per-epoch fraction of probes filtered before the IOMMU."""
        probes = self.probe_series_name()
        if probes is None:
            return []
        reached = dict(self.timeline.series("iommu.accesses"))
        out: List[Tuple[float, float]] = []
        for t, total in self.timeline.series(probes):
            if total <= 0:
                continue
            rate = 1.0 - reached.get(t, 0.0) / total
            out.append((t, max(rate, 0.0)))
        return out

    def overall_filter_rate(self) -> Optional[float]:
        probes = self.probe_series_name()
        if probes is None:
            return None
        total = self.series_sum(probes)
        if total <= 0:
            return None
        return max(1.0 - self.series_sum("iommu.accesses") / total, 0.0)


def collect(
    workload: str = DEFAULT_WORKLOAD,
    designs: Sequence[MMUDesign] = DEFAULT_DESIGNS,
    scale: Optional[float] = None,
    config: Optional[SoCConfig] = None,
    epoch_cycles: float = 1024.0,
) -> List[DesignTelemetry]:
    """Simulate each design with a timeline-enabled registry attached.

    Each design gets a *fresh* Observability bundle — the timeline must
    be enabled before the hierarchy is built, because the hot-path
    instrumentation captures the timeline reference at construction.
    """
    config = config if config is not None else GLOBAL_CACHE.config
    scale = scale if scale is not None else GLOBAL_CACHE.effective_scale()
    trace = registry.load(workload, scale=scale)
    out: List[DesignTelemetry] = []
    for design in designs:
        obs = Observability()
        obs.metrics.enable_timeline(epoch_cycles=epoch_cycles)
        page_tables = {0: trace.address_space.page_table}
        hierarchy = design.build(config, page_tables, obs=obs)
        result = simulate(trace, hierarchy, design.soc_config(config),
                          design=design.name, obs=obs)
        out.append(DesignTelemetry(design.name, result,
                                   obs.metrics.timeline))
    return out


def _panel(title: str, body: str, note: str = "") -> str:
    note_html = f"<p class='note'>{html.escape(note)}</p>" if note else ""
    return (f"<section><h2>{html.escape(title)}</h2>{note_html}"
            f"{body}</section>")


def _timeline_panel(title: str, y_label: str,
                    series: Dict[str, List[Tuple[float, float]]],
                    note: str = "") -> str:
    populated = {name: pts for name, pts in series.items() if pts}
    if not populated:
        return _panel(title, "<p class='note'>no data for this panel</p>",
                      note)
    svg = line_chart(title, populated, x_label="simulated cycles",
                     y_label=y_label)
    return _panel(title, svg, note)


def _comparison_table(telemetry: Sequence[DesignTelemetry]) -> str:
    ideal_cycles = None
    for item in telemetry:
        if item.design_name == IDEAL_MMU.name:
            ideal_cycles = item.result.cycles
    rows = ["<table><tr><th>design</th><th>cycles</th>"
            "<th>slowdown vs ideal</th><th>IOMMU lookups</th>"
            "<th>filter rate</th></tr>"]
    for item in telemetry:
        slowdown = ("–" if not ideal_cycles
                    else f"{item.result.cycles / ideal_cycles:.3f}×")
        filt = item.overall_filter_rate()
        rows.append(
            f"<tr><td>{html.escape(item.design_name)}</td>"
            f"<td>{item.result.cycles:,.0f}</td>"
            f"<td>{slowdown}</td>"
            f"<td>{item.series_sum('iommu.accesses'):,.0f}</td>"
            f"<td>{'–' if filt is None else f'{filt:.1%}'}</td></tr>")
    rows.append("</table>")
    return "".join(rows)


def _traffic_panel(telemetry: Sequence[DesignTelemetry]) -> str:
    categories = [item.design_name for item in telemetry]
    series: Dict[str, List[float]] = {}
    for label, name in _TRAFFIC_STAGES:
        values = []
        for item in telemetry:
            if name == "probes":
                probe = item.probe_series_name()
                values.append(item.series_sum(probe) if probe else 0.0)
            else:
                values.append(item.series_sum(name))
        if any(values):
            series[label] = values
    if not series:
        return _panel("Translation traffic breakdown",
                      "<p class='note'>no traffic recorded</p>")
    svg = grouped_bar_chart(
        "Translation traffic by stage", categories, series,
        y_label="events (end of run)")
    return _panel("Translation traffic breakdown", svg,
                  note="Filtered designs shrink the IOMMU/walk bars while "
                       "the probe bar stays constant — the paper's "
                       "bandwidth-filtering claim.")


def _tier_panel(snapshot: Optional[Dict[str, object]]) -> str:
    title = "Service tier provenance"
    if snapshot is None:
        return _panel(
            title,
            "<p class='note'>no service metrics supplied — run the "
            "service with <code>--metrics-out</code> (or save "
            "<code>client.metrics()</code>) and pass the JSON via "
            "<code>--dash-service-metrics</code>.</p>")
    counters = snapshot.get("counters", {})
    tiers = {name.rsplit(".", 1)[1]: value
             for name, value in counters.items()
             if isinstance(name, str) and name.startswith("service.tier.")}
    if not tiers:
        return _panel(title, "<p class='note'>snapshot has no "
                             "service.tier.* counters</p>")
    svg = grouped_bar_chart(
        "Points served per cache tier", list(tiers),
        {"points": [float(v) for v in tiers.values()]},
        y_label="points")
    return _panel(title, svg,
                  note="memo/disk hits are experiment traffic filtered "
                       "before the expensive shared resource (the "
                       "simulation pool).")


def render_html(
    telemetry: Sequence[DesignTelemetry],
    workload: str,
    scale: float,
    service_snapshot: Optional[Dict[str, object]] = None,
) -> str:
    """The complete dashboard page (self-contained: inline SVG only)."""
    queue = {t.design_name: t.queue_depth_series() for t in telemetry}
    occupancy = {t.design_name: t.occupancy_series() for t in telemetry}
    filter_rate = {t.design_name: t.filter_rate_series() for t in telemetry}
    panels = [
        _panel("Design comparison", _comparison_table(telemetry)),
        _timeline_panel(
            "IOMMU queue depth over time", "mean queued translations",
            queue,
            note="Summed queue-wait cycles per epoch / epoch width "
                 "(Little's law); the shared-port congestion the paper "
                 "attributes translation overhead to."),
        _timeline_panel(
            "IOMMU port occupancy over time", "busy fraction", occupancy),
        _timeline_panel(
            "Translation filter rate over time",
            "fraction filtered before IOMMU", filter_rate,
            note="Per-CU TLB hits (baseline) or virtual-cache hits (VC "
                 "designs) that never consumed shared translation "
                 "bandwidth."),
        _traffic_panel(telemetry),
        _tier_panel(service_snapshot),
    ]
    generated = time.strftime("%Y-%m-%d %H:%M:%S")
    return (
        "<!DOCTYPE html><html><head><meta charset='utf-8'>"
        "<title>Translation-bandwidth dashboard</title>"
        "<style>body{font-family:sans-serif;margin:24px;max-width:980px}"
        "section{margin-bottom:28px}h2{border-bottom:1px solid #ccc;"
        "padding-bottom:4px}table{border-collapse:collapse}"
        "td,th{border:1px solid #bbb;padding:4px 10px;text-align:right}"
        "th:first-child,td:first-child{text-align:left}"
        ".note{color:#555;font-size:0.9em}</style></head><body>"
        f"<h1>Translation-bandwidth dashboard</h1>"
        f"<p class='note'>workload <b>{html.escape(workload)}</b> · "
        f"scale {scale:g} · generated {generated}</p>"
        + "".join(panels) + "</body></html>"
    )


def main(
    workload: str = DEFAULT_WORKLOAD,
    scale: Optional[float] = None,
    out: str = "dashboard.html",
    service_metrics: Optional[str] = None,
    epoch_cycles: float = 1024.0,
) -> int:
    """CLI entry (``repro-experiment dashboard``); returns an exit code."""
    snapshot = None
    if service_metrics is not None:
        try:
            snapshot = json.loads(Path(service_metrics).read_text())
        except (OSError, ValueError) as exc:
            print(f"repro-experiment: error: cannot read "
                  f"--dash-service-metrics '{service_metrics}': {exc}")
            return 2
    effective_scale = (scale if scale is not None
                       else GLOBAL_CACHE.effective_scale())
    telemetry = collect(workload=workload, scale=effective_scale,
                        epoch_cycles=epoch_cycles)
    page = render_html(telemetry, workload, effective_scale,
                       service_snapshot=snapshot)
    path = Path(out)
    if path.parent != Path("."):
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(page)
    print(f"wrote {out} ({len(telemetry)} designs, "
          f"{sum(len(t.timeline.names()) for t in telemetry)} series)")
    return 0
