"""Persistent on-disk cache of slim :class:`SimulationResult` records.

The benchmark/figure suite re-simulates every (workload × MMU design)
point from scratch each invocation; with ``--cache-dir`` the experiment
drivers instead persist each point's result keyed by a *complete*
fingerprint of everything that determines it:

* the workload name and scale (which select the memoized trace),
* the full :class:`~repro.system.designs.MMUDesign` (``repr`` of the
  frozen dataclass — name *and* every override field),
* ``track_lifetimes``,
* a content hash of the :class:`~repro.system.config.SoCConfig`
  (``repr`` of the frozen dataclass tree), and
* a schema version, bumped whenever the stored record's shape changes.

Change any of those and the fingerprint — and therefore the cache file —
changes, so stale results can never be served.  Entries are written
atomically (temp file + ``os.replace``), which makes concurrent writers
(the parallel sweep runner, or two CLI invocations sharing a directory)
safe: the worst case is the same result being written twice.

Each entry is a self-verifying envelope carrying the schema version, the
fingerprint it was stored under, and a SHA-256 digest of the pickled
result.  A file that fails any of those checks — truncated pickle,
bit-rot, a foreign file dropped into the directory, an entry renamed to
the wrong fingerprint — is moved into ``<root>/quarantine/`` and treated
as a miss: a sweep never crashes on a bad cache entry and never serves
one either.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import warnings
from pathlib import Path
from typing import Optional

from repro.system.config import SoCConfig
from repro.system.designs import MMUDesign
from repro.system.run import SimulationResult

#: Bump when the pickled record's shape changes; old entries then miss.
#: Schema 2 wraps the result in a digest-verified envelope.

__all__ = [
    "DiskCache",
    "QUARANTINE_DIR",
    "SCHEMA_VERSION",
    "config_fingerprint",
    "point_fingerprint",
]

SCHEMA_VERSION = 2

#: Corrupt entries are moved here (relative to the cache root), keeping
#: the evidence for post-mortems without ever re-serving it.
QUARANTINE_DIR = "quarantine"


def config_fingerprint(config: SoCConfig) -> str:
    """Content hash of a frozen ``SoCConfig`` tree.

    Frozen dataclasses have deterministic, field-complete ``repr``s, so
    hashing the repr captures every nested sizing/timing parameter.
    """
    return hashlib.sha256(repr(config).encode("utf-8")).hexdigest()


def point_fingerprint(
    workload: str,
    scale: float,
    design: MMUDesign,
    track_lifetimes: bool,
    config: SoCConfig,
    check_invariants: bool = False,
) -> str:
    """The complete cache key for one (workload × design) design point.

    ``check_invariants`` is part of the key because audited runs carry
    an extra ``invariants.audits`` counter in their results.
    """
    blob = "\x1f".join([
        f"schema={SCHEMA_VERSION}",
        f"workload={workload}",
        f"scale={scale!r}",
        f"design={design!r}",
        f"track_lifetimes={track_lifetimes}",
        f"check_invariants={check_invariants}",
        f"config={config!r}",
    ])
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class DiskCache:
    """A directory of pickled slim results, one file per fingerprint."""

    def __init__(self, root, counters=None) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.quarantined = 0
        self.store_errors = 0
        # Optional Counters bag (e.g. the observability registry's) that
        # mirrors quarantine/store-error events for metrics export.
        self._counters = counters

    def _path(self, fingerprint: str) -> Path:
        return self.root / f"{fingerprint}.pkl"

    def _count(self, name: str) -> None:
        if self._counters is not None:
            self._counters.add(name)

    def _quarantine(self, path: Path, reason: str) -> None:
        """Move a corrupt entry aside; never crash doing so."""
        target_dir = self.root / QUARANTINE_DIR
        try:
            target_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, target_dir / path.name)
        except OSError:
            # Fall back to deletion; a corrupt entry must not be re-read.
            try:
                os.unlink(path)
            except OSError:
                return  # nothing more we can do; load() already missed
        self.quarantined += 1
        self._count("disk_cache.quarantined")
        warnings.warn(
            f"quarantined corrupt cache entry {path.name}: {reason}",
            RuntimeWarning,
            stacklevel=3,
        )

    def load(self, fingerprint: str) -> Optional[SimulationResult]:
        """Fetch a cached result, or ``None`` on miss/corruption.

        Corrupt or mismatched entries are quarantined (see module
        docstring) and count as misses.
        """
        path = self._path(fingerprint)
        try:
            with open(path, "rb") as fh:
                envelope = pickle.load(fh)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (KeyboardInterrupt, SystemExit):
            raise
        except (OSError, pickle.UnpicklingError, EOFError,
                AttributeError, ImportError, IndexError, MemoryError):
            self.misses += 1
            self._quarantine(path, "unreadable pickle")
            return None

        reason = None
        payload = None
        if not isinstance(envelope, dict):
            reason = f"not an envelope ({type(envelope).__name__})"
        elif envelope.get("schema") != SCHEMA_VERSION:
            reason = f"schema {envelope.get('schema')!r} != {SCHEMA_VERSION}"
        elif envelope.get("fingerprint") != fingerprint:
            reason = "fingerprint mismatch (entry stored under wrong name)"
        else:
            payload = envelope.get("payload")
            if not isinstance(payload, bytes):
                reason = "missing payload"
            elif hashlib.sha256(payload).hexdigest() != envelope.get("digest"):
                reason = "payload digest mismatch (bit rot or torn write)"
        if reason is None:
            try:
                result = pickle.loads(payload)
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception:
                reason = "payload does not unpickle"
            else:
                if not isinstance(result, SimulationResult):
                    reason = (
                        f"payload is {type(result).__name__}, "
                        f"not SimulationResult")
        if reason is not None:
            self.misses += 1
            self._quarantine(path, reason)
            return None
        self.hits += 1
        return result

    def store(self, fingerprint: str, result: SimulationResult) -> None:
        """Persist ``result`` atomically under ``fingerprint``.

        I/O failures (full disk, permissions, dying filesystem) are
        counted and surfaced as a warning but do not abort the sweep —
        losing a cache write only costs a recompute next time.
        ``KeyboardInterrupt``/``SystemExit`` always propagate.
        """
        payload = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        envelope = {
            "schema": SCHEMA_VERSION,
            "fingerprint": fingerprint,
            "digest": hashlib.sha256(payload).hexdigest(),
            "payload": payload,
        }
        try:
            fd, tmp = tempfile.mkstemp(dir=str(self.root), prefix=".tmp-")
        except OSError as exc:
            self._store_failed(exc)
            return
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(envelope, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, self._path(fingerprint))
        except (KeyboardInterrupt, SystemExit):
            self._discard_tmp(tmp)
            raise
        except OSError as exc:
            self._discard_tmp(tmp)
            self._store_failed(exc)
        except BaseException:
            self._discard_tmp(tmp)
            raise

    @staticmethod
    def _discard_tmp(tmp: str) -> None:
        try:
            os.unlink(tmp)
        except OSError:
            pass

    def _store_failed(self, exc: OSError) -> None:
        self.store_errors += 1
        self._count("disk_cache.store_errors")
        warnings.warn(
            f"disk cache write failed ({exc}); result not persisted",
            RuntimeWarning,
            stacklevel=3,
        )

    def __len__(self) -> int:
        # Non-recursive on purpose: quarantined entries don't count.
        return sum(1 for _ in self.root.glob("*.pkl"))
