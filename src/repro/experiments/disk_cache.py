"""Persistent on-disk cache of slim :class:`SimulationResult` records.

The benchmark/figure suite re-simulates every (workload × MMU design)
point from scratch each invocation; with ``--cache-dir`` the experiment
drivers instead persist each point's result keyed by a *complete*
fingerprint of everything that determines it:

* the workload name and scale (which select the memoized trace),
* the full :class:`~repro.system.designs.MMUDesign` (``repr`` of the
  frozen dataclass — name *and* every override field),
* ``track_lifetimes``,
* a content hash of the :class:`~repro.system.config.SoCConfig`
  (``repr`` of the frozen dataclass tree), and
* a schema version, bumped whenever the stored record's shape changes.

Change any of those and the fingerprint — and therefore the cache file —
changes, so stale results can never be served.  Entries are written
atomically (temp file + ``os.replace``), which makes concurrent writers
(the parallel sweep runner, or two CLI invocations sharing a directory)
safe: the worst case is the same result being written twice.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from pathlib import Path
from typing import Optional

from repro.system.config import SoCConfig
from repro.system.designs import MMUDesign
from repro.system.run import SimulationResult

#: Bump when the pickled record's shape changes; old entries then miss.
SCHEMA_VERSION = 1


def config_fingerprint(config: SoCConfig) -> str:
    """Content hash of a frozen ``SoCConfig`` tree.

    Frozen dataclasses have deterministic, field-complete ``repr``s, so
    hashing the repr captures every nested sizing/timing parameter.
    """
    return hashlib.sha256(repr(config).encode("utf-8")).hexdigest()


def point_fingerprint(
    workload: str,
    scale: float,
    design: MMUDesign,
    track_lifetimes: bool,
    config: SoCConfig,
) -> str:
    """The complete cache key for one (workload × design) design point."""
    blob = "\x1f".join([
        f"schema={SCHEMA_VERSION}",
        f"workload={workload}",
        f"scale={scale!r}",
        f"design={design!r}",
        f"track_lifetimes={track_lifetimes}",
        f"config={config!r}",
    ])
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class DiskCache:
    """A directory of pickled slim results, one file per fingerprint."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def _path(self, fingerprint: str) -> Path:
        return self.root / f"{fingerprint}.pkl"

    def load(self, fingerprint: str) -> Optional[SimulationResult]:
        """Fetch a cached result, or ``None`` on miss/corruption."""
        try:
            with open(self._path(fingerprint), "rb") as fh:
                result = pickle.load(fh)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, pickle.UnpicklingError, EOFError,
                AttributeError, ImportError, IndexError):
            # A truncated or stale-format entry is a miss, not an error.
            self.misses += 1
            return None
        if not isinstance(result, SimulationResult):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def store(self, fingerprint: str, result: SimulationResult) -> None:
        """Persist ``result`` atomically under ``fingerprint``."""
        fd, tmp = tempfile.mkstemp(dir=str(self.root), prefix=".tmp-")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, self._path(fingerprint))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.pkl"))
