"""§5.3 proxies: power and energy benefits (event counts).

The paper argues — without quantifying — that the virtual hierarchy
saves power three ways: per-access TLB lookups disappear, the IOMMU is
consulted far less, and the BT doubles as a coherence filter for the
GPU L2.  This experiment counts those events so the claims can be
checked as ratios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.metrics import mean
from repro.analysis.report import format_table, section
from repro.experiments.common import ALL_WORKLOADS, GLOBAL_CACHE, ResultCache, resolve_workloads
from repro.experiments.sweepspec import SweepSpec, run_sweep
from repro.system.designs import BASELINE_512, VC_WITH_OPT


__all__ = ["EnergyResult", "main", "run"]


@dataclass
class EnergyResult:
    """Per-workload event counts: baseline vs virtual hierarchy."""

    tlb_lookups_baseline: Dict[str, int]
    tlb_lookups_vc: Dict[str, int]          # always 0: no per-CU TLBs
    iommu_accesses_baseline: Dict[str, int]
    iommu_accesses_vc: Dict[str, int]
    workloads: List[str]

    def tlb_lookup_reduction(self) -> float:
        total = sum(self.tlb_lookups_baseline.values())
        if total == 0:
            return 0.0
        return 1.0 - sum(self.tlb_lookups_vc.values()) / total

    def iommu_reduction(self) -> float:
        """Traffic-weighted reduction in IOMMU consultations.

        Weighted by baseline traffic: streaming low-bandwidth workloads
        can show *more* VC-side translations (every cold L2 miss needs
        one where a sequential TLB coped fine), but their absolute
        demand is tiny; what the energy argument cares about is total
        shared-structure activity.
        """
        base_total = sum(self.iommu_accesses_baseline.values())
        if base_total == 0:
            return 0.0
        return 1.0 - sum(self.iommu_accesses_vc.values()) / base_total

    def iommu_reduction_high_bw(self) -> float:
        """Mean per-workload reduction over the high-bandwidth group."""
        from repro.workloads.registry import is_high_bandwidth
        ratios = []
        for w in self.workloads:
            base = self.iommu_accesses_baseline[w]
            if base and is_high_bandwidth(w):
                ratios.append(1.0 - self.iommu_accesses_vc[w] / base)
        return mean(ratios)

    def render(self) -> str:
        rows = [
            [w, self.tlb_lookups_baseline[w], self.iommu_accesses_baseline[w],
             self.iommu_accesses_vc[w]]
            for w in self.workloads
        ]
        table = format_table(
            ["workload", "per-CU TLB lookups (base)", "IOMMU accesses (base)",
             "IOMMU accesses (VC)"],
            rows,
        )
        summary = (
            f"\nper-access TLB lookups removed: {self.tlb_lookup_reduction() * 100:.0f}%"
            f" (the VC design has no per-CU TLBs at all)"
            f"\nIOMMU consultation reduction (traffic-weighted): "
            f"{self.iommu_reduction() * 100:.0f}%"
            f"\nIOMMU consultation reduction (high-BW workloads): "
            f"{self.iommu_reduction_high_bw() * 100:.0f}%"
        )
        return section("§5.3 energy proxies", table + summary)


def run(cache: ResultCache = None, workloads=None) -> EnergyResult:
    """Count the energy-relevant events for baseline vs VC."""
    cache = cache if cache is not None else GLOBAL_CACHE
    names = resolve_workloads(workloads, ALL_WORKLOADS)
    run_sweep(SweepSpec.grid(names, (BASELINE_512, VC_WITH_OPT),
                             name="energy"), cache)
    tlb_b, tlb_v, io_b, io_v = {}, {}, {}, {}
    for w in names:
        base = cache.run(w, BASELINE_512)
        vc = cache.run(w, VC_WITH_OPT)
        tlb_b[w] = base.counters.get("tlb.accesses", 0)
        tlb_v[w] = vc.counters.get("tlb.accesses", 0)
        io_b[w] = base.counters.get("iommu.accesses", 0)
        io_v[w] = vc.counters.get("iommu.accesses", 0)
    return EnergyResult(
        tlb_lookups_baseline=tlb_b,
        tlb_lookups_vc=tlb_v,
        iommu_accesses_baseline=io_b,
        iommu_accesses_vc=io_v,
        workloads=names,
    )


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
