"""Figure 10: comparison with larger per-CU TLBs.

Speedup of the virtual cache hierarchy (VC With OPT) over a beefed-up
baseline with 128-entry fully-associative per-CU TLBs and a 16K-entry
shared IOMMU TLB, for the high-translation-bandwidth workloads.

Paper findings: ≈1.2× average speedup — big private TLBs filter some
shared-TLB traffic, but the cache hierarchy filters more (and removes
per-access TLB lookup energy besides).  A few workloads (bc, fw_block,
lud) are roughly at parity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.metrics import mean
from repro.analysis.report import bar_chart, section
from repro.experiments.common import GLOBAL_CACHE, HIGH_BANDWIDTH, ResultCache, resolve_workloads
from repro.experiments.sweepspec import SweepSpec, run_sweep
from repro.system.designs import BASELINE_LARGE_PER_CU, VC_WITH_OPT


__all__ = ["Fig10Result", "main", "run"]


@dataclass
class Fig10Result:
    """Speedup of VC With OPT over the large-per-CU-TLB baseline."""

    speedup: Dict[str, float]

    def average(self) -> float:
        return mean(list(self.speedup.values()))

    def render(self) -> str:
        order = list(self.speedup) + ["Average"]
        values = [self.speedup[w] for w in self.speedup] + [self.average()]
        chart = bar_chart(order, values, unit="x", scale=2.0)
        return section(
            "Figure 10: VC speedup over 128-entry per-CU TLBs + 16K IOMMU TLB",
            chart + f"\n\naverage speedup: {self.average():.2f}x (paper: ~1.2x)",
        )


def run(cache: ResultCache = None, workloads=None) -> Fig10Result:
    """Regenerate Figure 10."""
    cache = cache if cache is not None else GLOBAL_CACHE
    names = resolve_workloads(workloads, HIGH_BANDWIDTH)
    run_sweep(SweepSpec.grid(names, (BASELINE_LARGE_PER_CU, VC_WITH_OPT),
                             name="fig10"), cache)
    speedup = {}
    for w in names:
        base = cache.run(w, BASELINE_LARGE_PER_CU)
        vc = cache.run(w, VC_WITH_OPT)
        speedup[w] = vc.speedup_over(base)
    return Fig10Result(speedup=speedup)


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
