"""Figure 11: whole-hierarchy vs L1-only virtual caching.

Average speedup over the Baseline 16K design for three virtual-cache
scopes: L1-only with 32-entry per-CU TLBs, L1-only with 128-entry TLBs,
and the full L1+L2 virtual hierarchy.

Paper findings: L1-only virtual caches already help (≈1.35×) because
many TLB misses hit in the L1s, but extending virtual caching to the
shared L2 filters ≈35 percentage points more of the misses and yields
≈1.31× *additional* speedup over L1-only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.metrics import mean
from repro.analysis.report import bar_chart, section
from repro.experiments.common import GLOBAL_CACHE, HIGH_BANDWIDTH, ResultCache, resolve_workloads
from repro.experiments.sweepspec import SweepSpec, run_sweep
from repro.system.designs import (
    BASELINE_16K,
    L1_ONLY_VC_128,
    L1_ONLY_VC_32,
    VC_WITH_OPT,
)

__all__ = ["Fig11Result", "SCOPES", "main", "run"]

SCOPES = (L1_ONLY_VC_32, L1_ONLY_VC_128, VC_WITH_OPT)


@dataclass
class Fig11Result:
    """Speedup over Baseline 16K: design → workload → speedup."""

    speedup: Dict[str, Dict[str, float]]
    workloads: List[str]

    def average(self, design: str) -> float:
        return mean([self.speedup[design][w] for w in self.workloads])

    def full_vs_l1_only(self, l1_design: str = "L1-Only VC (32)") -> float:
        """The headline: additional speedup of L1&L2 over L1-only."""
        l1 = self.average(l1_design)
        if l1 == 0:
            return 0.0
        return self.average("VC With OPT") / l1

    def render(self) -> str:
        labels = [d.name for d in SCOPES]
        chart = bar_chart(labels, [self.average(l) for l in labels],
                          unit="x", scale=2.0)
        summary = (
            f"\nL1-only (32) average speedup : {self.average('L1-Only VC (32)'):.2f}x"
            f" (paper: ~1.35x)"
            f"\nfull hierarchy avg speedup   : {self.average('VC With OPT'):.2f}x"
            f"\nfull vs L1-only              : {self.full_vs_l1_only():.2f}x"
            f" (paper: ~1.31x)"
        )
        return section("Figure 11: speedup over Baseline 16K by virtual-cache scope",
                       chart + summary)


def run(cache: ResultCache = None, workloads=None) -> Fig11Result:
    """Regenerate Figure 11."""
    cache = cache if cache is not None else GLOBAL_CACHE
    names = resolve_workloads(workloads, HIGH_BANDWIDTH)
    run_sweep(SweepSpec.grid(names, (BASELINE_16K,) + SCOPES,
                             name="fig11"), cache)
    speedup: Dict[str, Dict[str, float]] = {d.name: {} for d in SCOPES}
    for w in names:
        base = cache.run(w, BASELINE_16K)
        for design in SCOPES:
            result = cache.run(w, design)
            speedup[design.name][w] = result.speedup_over(base)
    return Fig11Result(speedup=speedup, workloads=names)


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
