"""Figure 12 (Appendix): lifetimes of pages in the TLB vs the caches.

Runs ``bfs`` on the baseline MMU with lifetime tracking and compares the
residence time of per-CU TLB entries against the *active lifetime*
(insertion → last access) of data in the L1s and the shared L2, as CDFs
in nanoseconds.

Paper findings: ≈90% of TLB entries are evicted within 5000 ns while
≈40% of L1 data and ≈60% of L2 data are still being actively used —
which is exactly why cache hits outlive translations and a virtual cache
hierarchy filters TLB misses.  The gap between the L1 and L2 curves is
why extending virtual caching to the L2 filters more.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.analysis.report import format_table, section
from repro.engine.stats import fraction_at_or_below
from repro.experiments.common import GLOBAL_CACHE, ResultCache
from repro.system.designs import BASELINE_512

__all__ = ["CHECKPOINTS_NS", "Fig12Result", "main", "run"]

CHECKPOINTS_NS = (1000.0, 2000.0, 5000.0, 10_000.0, 20_000.0, 40_000.0)


@dataclass
class Fig12Result:
    """Lifetime samples (ns) for TLB entries and L1/L2 cache data."""

    tlb_residence_ns: List[float]
    l1_active_ns: List[float]
    l2_active_ns: List[float]
    workload: str = "bfs"

    def cdf_at(self, which: str, ns: float) -> float:
        samples = {
            "tlb": self.tlb_residence_ns,
            "l1": self.l1_active_ns,
            "l2": self.l2_active_ns,
        }[which]
        return fraction_at_or_below(samples, ns)

    def survival_beyond_tlb(self, ns: float = 5000.0) -> Tuple[float, float, float]:
        """(TLB dead, L1 still live, L2 still live) fractions at ``ns``."""
        return (
            self.cdf_at("tlb", ns),
            1.0 - self.cdf_at("l1", ns),
            1.0 - self.cdf_at("l2", ns),
        )

    def render(self) -> str:
        rows = []
        for ns in CHECKPOINTS_NS:
            rows.append([
                f"{ns:8.0f}",
                self.cdf_at("tlb", ns),
                self.cdf_at("l1", ns),
                self.cdf_at("l2", ns),
            ])
        table = format_table(
            ["lifetime (ns)", "TLB entries CDF", "L1 data CDF", "L2 data CDF"],
            rows,
        )
        dead, l1_live, l2_live = self.survival_beyond_tlb(5000.0)
        summary = (
            f"\nat 5000 ns: {dead * 100:.0f}% of TLB entries evicted, while "
            f"{l1_live * 100:.0f}% of L1 data and {l2_live * 100:.0f}% of L2 "
            f"data still actively used\n(paper: ~90% evicted vs ~40%/~60% live)"
        )
        return section(
            f"Figure 12: relative lifetime of pages ({self.workload})",
            table + summary,
        )


def run(cache: ResultCache = None, workload: str = "bfs") -> Fig12Result:
    """Regenerate Figure 12."""
    cache = cache if cache is not None else GLOBAL_CACHE
    # The lifetime CDFs live on the hierarchy itself, so insist on a
    # live in-process handle (a slim disk-cached record is not enough).
    result = cache.run(workload, BASELINE_512, track_lifetimes=True,
                       need_hierarchy=True)
    hierarchy = result.hierarchy
    freq = cache.config.frequency_ghz

    def to_ns(samples: List[float]) -> List[float]:
        return [s / freq for s in samples]

    return Fig12Result(
        tlb_residence_ns=to_ns(hierarchy.lifetimes["tlb"].residence_times),
        l1_active_ns=to_ns(hierarchy.lifetimes["l1"].active_lifetimes),
        l2_active_ns=to_ns(hierarchy.lifetimes["l2"].active_lifetimes),
        workload=workload,
    )


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
