"""Figure 2: breakdown of per-CU TLB miss accesses.

For per-CU TLB sizes of 32, 64, 128, and infinite entries, measures each
workload's private-TLB miss ratio and classifies every miss by where a
virtual cache hierarchy would have found the data: the CU's own L1, the
shared L2, or nowhere (a real memory access).

Paper findings this regenerates: an average 56% miss ratio at 32
entries; of those misses ≈31% hit in an L1, ≈35% in the L2, ≈34% go to
memory — i.e. ≈66% of TLB misses are filterable by a virtual cache
hierarchy, and still ≈65% with 128-entry TLBs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.metrics import mean
from repro.analysis.report import format_table, section, stacked_bar
from repro.experiments.common import ALL_WORKLOADS, GLOBAL_CACHE, ResultCache, resolve_workloads
from repro.experiments.sweepspec import SweepSpec, run_sweep
from repro.system.designs import MMUDesign

__all__ = ["Fig2Result", "TLB_SIZES", "main", "run", "tlb_sweep_design"]

TLB_SIZES: Sequence[Optional[int]] = (32, 64, 128, None)  # None = infinite


def tlb_sweep_design(entries: Optional[int]) -> MMUDesign:
    label = "inf" if entries is None else str(entries)
    return MMUDesign(
        name=f"Baseline 512 / {label}-entry per-CU TLBs",
        per_cu_tlb_entries=entries,
        iommu_entries=512,
    )


@dataclass
class Fig2Result:
    """Miss ratios and breakdowns: workload → TLB size → values."""

    miss_ratio: Dict[str, Dict[str, float]]
    breakdown: Dict[str, Dict[str, Dict[str, float]]]
    workloads: List[str]

    @staticmethod
    def size_label(entries: Optional[int]) -> str:
        return "inf" if entries is None else str(entries)

    def average_miss_ratio(self, entries: Optional[int] = 32) -> float:
        label = self.size_label(entries)
        return mean([self.miss_ratio[w][label] for w in self.workloads])

    def filterable_fraction(self, entries: Optional[int] = 32) -> float:
        """Fraction of TLB misses a virtual cache hierarchy absorbs."""
        label = self.size_label(entries)
        fractions = [
            self.breakdown[w][label]["l1_hit"] + self.breakdown[w][label]["l2_hit"]
            for w in self.workloads
        ]
        return mean(fractions)

    def render(self) -> str:
        rows = []
        for w in self.workloads:
            for entries in TLB_SIZES:
                label = self.size_label(entries)
                bd = self.breakdown[w][label]
                mr = self.miss_ratio[w][label]
                rows.append([
                    w, label, mr,
                    bd["l1_hit"], bd["l2_hit"], bd["l2_miss"],
                    stacked_bar(
                        [mr * bd["l1_hit"], mr * bd["l2_hit"], mr * bd["l2_miss"]],
                        width=30,
                    ),
                ])
        table = format_table(
            ["workload", "tlb", "miss ratio", "→L1 hit", "→L2 hit", "→L2 miss",
             "miss bar (#=L1 x=L2 o=mem)"],
            rows,
        )
        summary = (
            f"average miss ratio @32 entries : {self.average_miss_ratio(32):.3f}"
            f"  (paper: 0.56)\n"
            f"filterable fraction @32 entries: {self.filterable_fraction(32):.3f}"
            f"  (paper: 0.66)\n"
            f"filterable fraction @128       : {self.filterable_fraction(128):.3f}"
            f"  (paper: 0.65)"
        )
        return section("Figure 2: per-CU TLB miss breakdown", table + "\n\n" + summary)


def run(cache: ResultCache = None, workloads=None) -> Fig2Result:
    """Regenerate Figure 2."""
    cache = cache if cache is not None else GLOBAL_CACHE
    names = resolve_workloads(workloads, ALL_WORKLOADS)
    run_sweep(SweepSpec.grid(
        names, tuple(tlb_sweep_design(e) for e in TLB_SIZES),
        name="fig2"), cache)
    miss_ratio: Dict[str, Dict[str, float]] = {}
    breakdown: Dict[str, Dict[str, Dict[str, float]]] = {}
    for w in names:
        miss_ratio[w] = {}
        breakdown[w] = {}
        for entries in TLB_SIZES:
            label = Fig2Result.size_label(entries)
            result = cache.run(w, tlb_sweep_design(entries))
            miss_ratio[w][label] = result.per_cu_tlb_miss_ratio()
            breakdown[w][label] = result.tlb_miss_breakdown()
    return Fig2Result(miss_ratio=miss_ratio, breakdown=breakdown, workloads=names)


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
