"""Figure 3: IOMMU TLB access rate analysis.

With 32-entry per-CU TLBs and an *unlimited-bandwidth* shared TLB (the
measurement configuration of the paper — footnote: "assumes that the
IOMMU TLB can be accessed any number of times per cycle, which is
impractical"), samples shared-TLB accesses per cycle over one-
microsecond intervals and reports mean, one standard deviation, and the
maximum, sorted by mean.

Paper findings: about one access per cycle on average, bursts above two
(up to >4), and graph-based (Pannotia) workloads far above traditional
ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.report import bar_chart, section
from repro.engine.stats import RateStats
from repro.experiments.common import ALL_WORKLOADS, GLOBAL_CACHE, ResultCache, resolve_workloads
from repro.experiments.sweepspec import SweepSpec, run_sweep
from repro.system.designs import baseline_unlimited_bandwidth
from repro.workloads.registry import is_high_bandwidth


__all__ = ["Fig3Result", "main", "run"]


@dataclass
class Fig3Result:
    """Per-workload shared-TLB access-rate statistics."""

    rates: Dict[str, RateStats]

    def sorted_workloads(self) -> List[str]:
        """Workloads by descending mean access rate (the figure's x order)."""
        return sorted(self.rates, key=lambda w: self.rates[w].mean, reverse=True)

    def high_bandwidth_group(self, threshold: float = 0.3) -> List[str]:
        """Workloads whose demand marks them high-translation-bandwidth."""
        return [w for w in self.sorted_workloads() if self.rates[w].mean > threshold]

    def render(self) -> str:
        order = self.sorted_workloads()
        chart = bar_chart(
            [f"{w}{'*' if is_high_bandwidth(w) else ' '}" for w in order],
            [self.rates[w].mean for w in order],
            unit=" acc/cy",
        )
        details = "\n".join(
            f"{w:15s} mean={self.rates[w].mean:6.3f}  std={self.rates[w].std:6.3f}"
            f"  max={self.rates[w].maximum:6.3f}"
            f"  frac>1/cy={self.rates[w].fraction_above(1.0):5.2f}"
            for w in order
        )
        note = ("* = paper's high-translation-bandwidth group; "
                "sorted by mean accesses/cycle (unlimited IOMMU TLB bandwidth)")
        return section("Figure 3: IOMMU TLB accesses per cycle",
                       chart + "\n\n" + details + "\n\n" + note)


def run(cache: ResultCache = None, workloads=None) -> Fig3Result:
    """Regenerate Figure 3."""
    cache = cache if cache is not None else GLOBAL_CACHE
    names = resolve_workloads(workloads, ALL_WORKLOADS)
    design = baseline_unlimited_bandwidth()
    results = run_sweep(
        SweepSpec.grid(names, (design,), name="fig3"), cache).results
    rates = {w: result.iommu_rate for w, result in zip(names, results)}
    return Fig3Result(rates=rates)


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
