"""Figure 4: GPU address-translation overheads.

Average relative execution time across all simulated workloads for the
IDEAL MMU, the baseline with a small (512-entry) shared IOMMU TLB, and
the baseline with a large (16K-entry) one — all bandwidth-limited to one
access per cycle except IDEAL.

Paper findings: ≈1.77× average runtime for the small-TLB baseline; the
large TLB barely helps, because the overhead is *serialization* at the
shared TLB port, not capacity or page-walk latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.metrics import mean
from repro.analysis.report import bar_chart, section
from repro.experiments.common import ALL_WORKLOADS, GLOBAL_CACHE, ResultCache, resolve_workloads
from repro.experiments.sweepspec import SweepSpec, run_sweep
from repro.system.designs import BASELINE_16K, BASELINE_512, IDEAL_MMU

__all__ = ["DESIGNS", "Fig4Result", "main", "run"]

DESIGNS = (IDEAL_MMU, BASELINE_512, BASELINE_16K)


@dataclass
class Fig4Result:
    """Relative execution time (IDEAL = 1.0): workload → design → value."""

    relative_time: Dict[str, Dict[str, float]]
    workloads: List[str]

    def average(self, design: str) -> float:
        return mean([self.relative_time[w][design] for w in self.workloads])

    def render(self) -> str:
        labels = [d.name for d in DESIGNS]
        chart = bar_chart(labels, [self.average(l) for l in labels], unit="x")
        per_wl = "\n".join(
            f"{w:15s} " + "  ".join(
                f"{l}={self.relative_time[w][l]:5.2f}x" for l in labels[1:]
            )
            for w in self.workloads
        )
        note = (f"\nSmall-TLB baseline average: {self.average('Baseline 512'):.2f}x"
                f" (paper: 1.77x); large-TLB average: "
                f"{self.average('Baseline 16K'):.2f}x — capacity barely helps.")
        return section("Figure 4: address-translation overhead (relative execution time)",
                       chart + "\n\n" + per_wl + note)


def run(cache: ResultCache = None, workloads=None) -> Fig4Result:
    """Regenerate Figure 4."""
    cache = cache if cache is not None else GLOBAL_CACHE
    names = resolve_workloads(workloads, ALL_WORKLOADS)
    run_sweep(SweepSpec.grid(names, DESIGNS, name="fig4"), cache)
    relative: Dict[str, Dict[str, float]] = {}
    for w in names:
        ideal = cache.run(w, IDEAL_MMU)
        relative[w] = {
            d.name: cache.run(w, d).relative_time(ideal) for d in DESIGNS
        }
    return Fig4Result(relative_time=relative, workloads=names)


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
