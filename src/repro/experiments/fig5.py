"""Figure 5: impact of the IOMMU TLB bandwidth limit.

For the high-translation-bandwidth workloads, sweeps the shared TLB's
peak bandwidth from 1 to 4 accesses per cycle (16K entries, isolating
serialization from capacity) and reports the average execution time
relative to the IDEAL MMU.

Paper findings: the overhead falls as bandwidth rises but only becomes
small (≈8%, ≈4%) at 3–4 accesses/cycle — an impractically expensive
associative structure, which is the motivation for filtering instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.analysis.metrics import mean
from repro.analysis.report import bar_chart, section
from repro.experiments.common import GLOBAL_CACHE, HIGH_BANDWIDTH, ResultCache, resolve_workloads
from repro.experiments.sweepspec import SweepSpec, run_sweep
from repro.system.designs import IDEAL_MMU, baseline_with_bandwidth

__all__ = ["BANDWIDTHS", "Fig5Result", "main", "run"]

BANDWIDTHS: Sequence[float] = (1.0, 2.0, 3.0, 4.0)


@dataclass
class Fig5Result:
    """Average relative execution time per peak bandwidth."""

    relative_time: Dict[float, Dict[str, float]]  # bandwidth → workload → x
    workloads: List[str]

    def average(self, bandwidth: float) -> float:
        return mean(list(self.relative_time[bandwidth].values()))

    def serialization_overhead(self, bandwidth: float) -> float:
        """Overhead beyond IDEAL, e.g. 0.08 for 8%."""
        return self.average(bandwidth) - 1.0

    def render(self) -> str:
        labels = [f"{bw:g} access/cycle" for bw in BANDWIDTHS]
        chart = bar_chart(labels, [self.average(bw) for bw in BANDWIDTHS], unit="x")
        overheads = ", ".join(
            f"{bw:g}/cy: {self.serialization_overhead(bw) * 100:.0f}%"
            for bw in BANDWIDTHS
        )
        return section(
            "Figure 5: serialization overhead vs IOMMU TLB peak bandwidth "
            "(high-BW workloads, 16K entries)",
            chart + f"\n\noverhead vs IDEAL: {overheads}"
            "\n(paper: falls to ~8% and ~4% at 3 and 4 accesses/cycle)",
        )


def run(cache: ResultCache = None, workloads=None) -> Fig5Result:
    """Regenerate Figure 5."""
    cache = cache if cache is not None else GLOBAL_CACHE
    names = resolve_workloads(workloads, HIGH_BANDWIDTH)
    # Not workload-major: every IDEAL point first, then the bandwidth
    # grid -- an explicit-points spec preserves that exact order.
    run_sweep(SweepSpec.explicit(
        [(w, IDEAL_MMU) for w in names]
        + [(w, baseline_with_bandwidth(bw)) for w in names for bw in BANDWIDTHS],
        name="fig5"), cache)
    table: Dict[float, Dict[str, float]] = {bw: {} for bw in BANDWIDTHS}
    for w in names:
        ideal = cache.run(w, IDEAL_MMU)
        for bw in BANDWIDTHS:
            result = cache.run(w, baseline_with_bandwidth(bw))
            table[bw][w] = result.relative_time(ideal)
    return Fig5Result(relative_time=table, workloads=names)


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
