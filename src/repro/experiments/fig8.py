"""Figure 8: bandwidth reduction at the IOMMU TLB.

Compares shared-TLB accesses per cycle between the baseline MMU (32-
entry per-CU TLBs) and the proposed virtual cache hierarchy, both
measured without a bandwidth constraint so the numbers are *demand*
rates (the baseline bars correspond to Figure 3's).

Paper findings: the virtual hierarchy cuts the average demand to below
≈0.3 accesses/cycle; occasional samples above one access/cycle remain
but are rare (<0.5% of sample periods).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.metrics import mean
from repro.analysis.report import format_table, section
from repro.engine.stats import RateStats
from repro.experiments.common import ALL_WORKLOADS, GLOBAL_CACHE, ResultCache, resolve_workloads
from repro.experiments.sweepspec import SweepSpec, run_sweep
from repro.system.designs import FULL_VC, MMUDesign, baseline_unlimited_bandwidth

__all__ = ["Fig8Result", "VC_UNLIMITED", "main", "run"]

VC_UNLIMITED = MMUDesign(
    name="VC hierarchy, unlimited B/W",
    kind=FULL_VC,
    per_cu_tlb_entries=None,
    iommu_entries=512,
    iommu_bandwidth=float("inf"),
    fbt_as_second_level_tlb=True,
)


@dataclass
class Fig8Result:
    """Baseline vs virtual-cache shared-TLB demand rates."""

    baseline: Dict[str, RateStats]
    virtual_cache: Dict[str, RateStats]

    def average_rate(self, which: str = "vc") -> float:
        rates = self.virtual_cache if which == "vc" else self.baseline
        return mean([r.mean for r in rates.values()])

    def reduction(self, workload: str) -> float:
        base = self.baseline[workload].mean
        if base == 0:
            return 0.0
        return 1.0 - self.virtual_cache[workload].mean / base

    def render(self) -> str:
        rows = []
        for w in sorted(self.baseline, key=lambda x: self.baseline[x].mean,
                        reverse=True):
            b, v = self.baseline[w], self.virtual_cache[w]
            rows.append([
                w, b.mean, b.std, v.mean, v.std,
                f"{self.reduction(w) * 100:5.1f}%",
                f"{v.fraction_above(1.0) * 100:.2f}%",
            ])
        table = format_table(
            ["workload", "base acc/cy", "±std", "VC acc/cy", "±std",
             "reduction", "VC samples >1/cy"],
            rows,
        )
        summary = (
            f"\naverage VC demand: {self.average_rate('vc'):.3f} acc/cycle "
            f"(paper: < 0.3); baseline: {self.average_rate('base'):.3f}"
        )
        return section("Figure 8: IOMMU TLB bandwidth reduction", table + summary)


def run(cache: ResultCache = None, workloads=None) -> Fig8Result:
    """Regenerate Figure 8."""
    cache = cache if cache is not None else GLOBAL_CACHE
    names = resolve_workloads(workloads, ALL_WORKLOADS)
    base_design = baseline_unlimited_bandwidth()
    run_sweep(SweepSpec.grid(names, (base_design, VC_UNLIMITED),
                             name="fig8"), cache)
    baseline = {}
    virtual = {}
    for w in names:
        baseline[w] = cache.run(w, base_design).iommu_rate
        virtual[w] = cache.run(w, VC_UNLIMITED).iommu_rate
    return Fig8Result(baseline=baseline, virtual_cache=virtual)


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
