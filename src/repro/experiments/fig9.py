"""Figure 9: performance relative to the IDEAL MMU (Table 2 designs).

For the high-translation-bandwidth workloads (plus Average(High BW) and
Average(ALL)), measures performance relative to an IDEAL MMU for:
Baseline 512, Baseline 16K, VC W/O OPT (virtual hierarchy, 512-entry
shared TLB), and VC With OPT (FBT additionally used as a second-level
TLB).

Paper findings: ≈42% degradation for the small-TLB baseline on the
high-BW group (≈32% across all 15); a big shared TLB does not help; the
virtual hierarchy reaches ≈ideal, with the FBT-as-TLB optimization
covering the exposed page-walk overhead of fw and bfs; §4.1's claim that
≈74% of shared-TLB misses hit in the FBT is also checked here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.metrics import fbt_hit_fraction, mean
from repro.analysis.report import format_table, section
from repro.experiments.common import (
    ALL_WORKLOADS,
    GLOBAL_CACHE,
    HIGH_BANDWIDTH,
    ResultCache,
    resolve_workloads,
)
from repro.experiments.sweepspec import SweepSpec, run_sweep
from repro.system.designs import (
    BASELINE_16K,
    BASELINE_512,
    IDEAL_MMU,
    VC_WITHOUT_OPT,
    VC_WITH_OPT,
)

__all__ = ["COMPARED", "Fig9Result", "main", "run"]

COMPARED = (BASELINE_512, BASELINE_16K, VC_WITHOUT_OPT, VC_WITH_OPT)


@dataclass
class Fig9Result:
    """Performance relative to IDEAL (1.0 = ideal): workload → design."""

    performance: Dict[str, Dict[str, float]]
    fbt_hit_fractions: Dict[str, float]
    high_bandwidth: List[str]
    all_workloads: List[str]

    def average(self, design: str, group: str = "high") -> float:
        names = self.high_bandwidth if group == "high" else self.all_workloads
        return mean([self.performance[w][design] for w in names])

    def average_fbt_hit_fraction(self) -> float:
        vals = [v for v in self.fbt_hit_fractions.values() if v > 0]
        return mean(vals)

    def render(self) -> str:
        design_names = [d.name for d in COMPARED]
        rows = []
        for w in self.high_bandwidth:
            rows.append([w] + [self.performance[w][d] for d in design_names])
        rows.append(["Average(High BW)"] +
                    [self.average(d, "high") for d in design_names])
        rows.append(["Average(ALL)"] +
                    [self.average(d, "all") for d in design_names])
        table = format_table(["workload"] + design_names, rows)
        summary = (
            f"\nBaseline 512 Average(High BW): {self.average('Baseline 512'):.2f}"
            f" (paper ~0.58, i.e. 42% degradation)"
            f"\nVC With OPT Average(High BW):  {self.average('VC With OPT'):.2f}"
            f" (paper ~1.0)"
            f"\nFBT hit fraction of shared-TLB misses: "
            f"{self.average_fbt_hit_fraction():.2f} (paper ~0.74)"
        )
        return section("Figure 9: performance relative to IDEAL MMU "
                       "(closer to 1.0 is better)", table + summary)


def run(cache: ResultCache = None, workloads=None) -> Fig9Result:
    """Regenerate Figure 9."""
    cache = cache if cache is not None else GLOBAL_CACHE
    all_names = resolve_workloads(workloads, ALL_WORKLOADS)
    high = [w for w in all_names if w in HIGH_BANDWIDTH]
    run_sweep(SweepSpec.grid(all_names, (IDEAL_MMU,) + COMPARED,
                             name="fig9"), cache)
    performance: Dict[str, Dict[str, float]] = {}
    fbt_fraction: Dict[str, float] = {}
    for w in all_names:
        ideal = cache.run(w, IDEAL_MMU)
        performance[w] = {}
        for design in COMPARED:
            result = cache.run(w, design)
            performance[w][design.name] = ideal.cycles / result.cycles
        fbt_fraction[w] = fbt_hit_fraction(cache.run(w, VC_WITH_OPT))
    return Fig9Result(
        performance=performance,
        fbt_hit_fractions=fbt_fraction,
        high_bandwidth=high,
        all_workloads=all_names,
    )


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
