"""Render the evaluation figures to SVG files.

``repro-experiment`` prints text; this module additionally draws SVG
versions of every data figure, reproducing the paper's chart shapes:

* Figure 3 / Figure 8: bar charts of IOMMU TLB accesses per cycle;
* Figure 4: relative execution time of the baseline MMUs;
* Figure 9: performance relative to IDEAL for the Table 2 designs;
* Figure 10 / Figure 11: speedup bar charts;
* Figure 12: lifetime CDFs.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Union

from repro.analysis.svgfig import cdf_chart, grouped_bar_chart
from repro.engine.stats import cdf
from repro.experiments import fig3, fig4, fig8, fig9, fig10, fig11, fig12
from repro.experiments.common import GLOBAL_CACHE, ResultCache


__all__ = [
    "RENDERERS",
    "fig10_svg",
    "fig11_svg",
    "fig12_svg",
    "fig3_svg",
    "fig4_svg",
    "fig8_svg",
    "fig9_svg",
    "main",
    "save_all",
]

def fig3_svg(cache: ResultCache) -> str:
    r = fig3.run(cache)
    order = r.sorted_workloads()
    return grouped_bar_chart(
        "Figure 3: IOMMU TLB accesses per cycle (unlimited bandwidth)",
        order,
        {
            "mean": [r.rates[w].mean for w in order],
            "max": [r.rates[w].maximum for w in order],
        },
        y_label="accesses / cycle",
        reference_line=1.0,
    )


def fig4_svg(cache: ResultCache) -> str:
    r = fig4.run(cache)
    designs = ["IDEAL MMU", "Baseline 512", "Baseline 16K"]
    return grouped_bar_chart(
        "Figure 4: relative execution time (IDEAL = 1.0)",
        designs,
        {"average over all workloads": [r.average(d) for d in designs]},
        y_label="relative execution time",
        reference_line=1.0,
    )


def fig8_svg(cache: ResultCache) -> str:
    r = fig8.run(cache)
    order = sorted(r.baseline, key=lambda w: r.baseline[w].mean, reverse=True)
    return grouped_bar_chart(
        "Figure 8: IOMMU TLB bandwidth reduction",
        order,
        {
            "Baseline": [r.baseline[w].mean for w in order],
            "Virtual Cache Hierarchy": [r.virtual_cache[w].mean for w in order],
        },
        y_label="accesses / cycle",
    )


def fig9_svg(cache: ResultCache) -> str:
    r = fig9.run(cache)
    designs = ["Baseline 512", "Baseline 16K", "VC W/O OPT", "VC With OPT"]
    categories = r.high_bandwidth + ["Average(High BW)", "Average(ALL)"]
    series: Dict[str, List[float]] = {}
    for d in designs:
        values = [r.performance[w][d] for w in r.high_bandwidth]
        values.append(r.average(d, "high"))
        values.append(r.average(d, "all"))
        series[d] = values
    return grouped_bar_chart(
        "Figure 9: performance relative to IDEAL MMU (closer to 1.0 is better)",
        categories, series, y_label="relative performance",
        reference_line=1.0,
    )


def fig10_svg(cache: ResultCache) -> str:
    r = fig10.run(cache)
    categories = list(r.speedup) + ["Average"]
    values = [r.speedup[w] for w in r.speedup] + [r.average()]
    return grouped_bar_chart(
        "Figure 10: speedup over larger (128-entry) per-CU TLBs",
        categories, {"VC With OPT": values},
        y_label="speedup", reference_line=1.0,
    )


def fig11_svg(cache: ResultCache) -> str:
    r = fig11.run(cache)
    designs = ["L1-Only VC (32)", "L1-Only VC (128)", "VC With OPT"]
    return grouped_bar_chart(
        "Figure 11: speedup over Baseline 16K by virtual-cache scope",
        designs,
        {"average (high-BW workloads)": [r.average(d) for d in designs]},
        y_label="speedup", reference_line=1.0,
    )


def fig12_svg(cache: ResultCache) -> str:
    r = fig12.run(cache)
    return cdf_chart(
        f"Figure 12: lifetime of pages in each level ({r.workload})",
        {
            "Per-CU TLB entry": cdf(r.tlb_residence_ns),
            "Data in L1 cache": cdf(r.l1_active_ns),
            "Data in L2 cache": cdf(r.l2_active_ns),
        },
        x_label="lifetime (ns)",
        x_max=40_000.0,
    )


RENDERERS = {
    "fig3": fig3_svg,
    "fig4": fig4_svg,
    "fig8": fig8_svg,
    "fig9": fig9_svg,
    "fig10": fig10_svg,
    "fig11": fig11_svg,
    "fig12": fig12_svg,
}


def save_all(outdir: Union[str, Path], cache: ResultCache = None) -> List[Path]:
    """Render every figure into ``outdir``; returns the written paths."""
    cache = cache if cache is not None else GLOBAL_CACHE
    outdir = Path(outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    written = []
    for name, renderer in RENDERERS.items():
        path = outdir / f"{name}.svg"
        path.write_text(renderer(cache))
        written.append(path)
    return written


def main() -> None:
    import sys

    outdir = sys.argv[1] if len(sys.argv) > 1 else "figures"
    for path in save_all(outdir):
        print(f"wrote {path}")


if __name__ == "__main__":
    main()
