"""Closed-loop load test for the experiment service.

Drives N concurrent clients against a running
:class:`~repro.service.server.ExperimentService` (or one it spawns
in-process) and reports, per concurrency level, the p50/p95/p99 request
latency and the sustained throughput — then locates the *saturation
knee*: the concurrency past which added clients stop buying throughput
and only buy queueing delay.

This is the service-layer analogue of the paper's Figure 5 bandwidth
sweep: the batching server is the shared resource, the request stream
is the translation traffic, and the memo/disk cache tiers are the
filters.  A load test against a warm cache measures the *filtered*
path (HTTP + single-flight + batching), which is why thousands of
requests per second are achievable over a simulator that takes
milliseconds per point.

Each client is closed-loop (it issues the next request only after the
previous response lands), so offered load scales with the number of
clients and the latency distribution is honest — there is no
coordinated-omission distortion from a paced open loop.

Usage::

    repro-experiment loadtest                       # self-spawned server
    repro-experiment loadtest --lt-clients 1,2,4,8,16 --lt-requests 50
    repro-experiment loadtest --lt-target 127.0.0.1:8000   # running server
"""

from __future__ import annotations

import json
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.metrics import LatencyHistogram
from repro.service.client import ServiceClient, ServiceError

__all__ = [
    "DEFAULT_LEVELS",
    "DEFAULT_POINTS",
    "LevelResult",
    "LoadtestReport",
    "find_knee",
    "main",
    "run",
]

#: Concurrency levels swept by default (doubling, like the fig5 sweep).
DEFAULT_LEVELS: Tuple[int, ...] = (1, 2, 4, 8)

#: The request body every client issues: one cheap point that the
#: service resolves from its memo tier after the first wave, so the
#: test loads the service path rather than the simulator.
DEFAULT_POINTS: Tuple[Tuple[str, str], ...] = (("bfs", "baseline-512"),)

#: Throughput must improve by at least this factor per doubling of
#: clients to count as "still scaling"; below it, the knee is called.
KNEE_GAIN_THRESHOLD = 1.10


@dataclass(frozen=True)
class LevelResult:
    """Aggregate outcome of one concurrency level."""

    concurrency: int
    requests: int
    failures: int
    wall_seconds: float
    throughput_rps: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    mean_ms: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "concurrency": self.concurrency,
            "requests": self.requests,
            "failures": self.failures,
            "wall_seconds": round(self.wall_seconds, 6),
            "throughput_rps": round(self.throughput_rps, 1),
            "p50_ms": round(self.p50_ms, 3),
            "p95_ms": round(self.p95_ms, 3),
            "p99_ms": round(self.p99_ms, 3),
            "mean_ms": round(self.mean_ms, 3),
        }


@dataclass
class LoadtestReport:
    """All levels plus the detected saturation knee."""

    target: str
    points: List[Tuple[str, str]]
    requests_per_client: int
    levels: List[LevelResult] = field(default_factory=list)
    knee_concurrency: Optional[int] = None

    @property
    def ok(self) -> bool:
        return all(level.failures == 0 for level in self.levels)

    def as_dict(self) -> Dict[str, object]:
        return {
            "target": self.target,
            "points": [list(p) for p in self.points],
            "requests_per_client": self.requests_per_client,
            "levels": [level.as_dict() for level in self.levels],
            "knee_concurrency": self.knee_concurrency,
        }

    def render(self) -> str:
        lines = [
            f"Service load test against {self.target} "
            f"({self.requests_per_client} requests/client, "
            f"points: {', '.join('/'.join(p) for p in self.points)})",
            "",
            f"{'clients':>7s} {'req':>6s} {'fail':>5s} {'req/s':>9s} "
            f"{'p50 ms':>9s} {'p95 ms':>9s} {'p99 ms':>9s}",
        ]
        for level in self.levels:
            lines.append(
                f"{level.concurrency:7d} {level.requests:6d} "
                f"{level.failures:5d} {level.throughput_rps:9.1f} "
                f"{level.p50_ms:9.3f} {level.p95_ms:9.3f} "
                f"{level.p99_ms:9.3f}"
            )
        lines.append("")
        if self.knee_concurrency is not None:
            lines.append(
                f"saturation knee at {self.knee_concurrency} client(s): "
                f"beyond it, added clients buy <"
                f"{KNEE_GAIN_THRESHOLD - 1:.0%} throughput per doubling")
        else:
            lines.append(
                "no saturation knee within the swept levels "
                "(throughput still scaling at the highest concurrency)")
        return "\n".join(lines)


def find_knee(levels: Sequence[LevelResult],
              gain_threshold: float = KNEE_GAIN_THRESHOLD) -> Optional[int]:
    """The last concurrency that still scaled, or None if all levels did.

    Scanning adjacent levels, the knee is the lower level of the first
    pair whose throughput ratio falls below ``gain_threshold``.
    """
    for prev, nxt in zip(levels, levels[1:]):
        if prev.throughput_rps <= 0:
            continue
        if nxt.throughput_rps / prev.throughput_rps < gain_threshold:
            return prev.concurrency
    return None


def _client_loop(host: str, port: int, points: List[Tuple[str, str]],
                 n_requests: int, barrier: threading.Barrier,
                 latencies: List[float], failures: List[int],
                 lock: threading.Lock) -> None:
    """One closed-loop client: wait at the barrier, then issue requests."""
    local_lat: List[float] = []
    local_fail = 0
    with ServiceClient(host, port, timeout=120.0) as client:
        barrier.wait()
        for _ in range(n_requests):
            start = time.perf_counter()
            try:
                client.simulate(points)
            except (ServiceError, OSError, TimeoutError):
                local_fail += 1
                continue
            local_lat.append(time.perf_counter() - start)
    with lock:
        latencies.extend(local_lat)
        failures[0] += local_fail


def _run_level(host: str, port: int, concurrency: int,
               points: List[Tuple[str, str]],
               n_requests: int) -> LevelResult:
    latencies: List[float] = []
    failures = [0]
    lock = threading.Lock()
    barrier = threading.Barrier(concurrency + 1)
    threads = [
        threading.Thread(
            target=_client_loop,
            args=(host, port, points, n_requests, barrier, latencies,
                  failures, lock),
            name=f"loadtest-client-{i}", daemon=True)
        for i in range(concurrency)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()  # release every client at once
    wall_start = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = max(time.perf_counter() - wall_start, 1e-9)

    hist = LatencyHistogram()
    for value in latencies:
        hist.record(value)
    n_ok = len(latencies)
    return LevelResult(
        concurrency=concurrency,
        requests=n_ok + failures[0],
        failures=failures[0],
        wall_seconds=wall,
        throughput_rps=n_ok / wall,
        p50_ms=hist.percentile(50) * 1e3 if n_ok else 0.0,
        p95_ms=hist.percentile(95) * 1e3 if n_ok else 0.0,
        p99_ms=hist.percentile(99) * 1e3 if n_ok else 0.0,
        mean_ms=hist.mean * 1e3 if n_ok else 0.0,
    )


def run(
    host: str,
    port: int,
    levels: Sequence[int] = DEFAULT_LEVELS,
    requests_per_client: int = 8,
    points: Sequence[Tuple[str, str]] = DEFAULT_POINTS,
) -> LoadtestReport:
    """Sweep the concurrency levels against an already-running service.

    A single warm-up request primes the cache tiers first, so every
    timed level measures the steady-state (memo-tier) service path
    instead of one level absorbing the initial simulation cost.
    """
    points = [tuple(p) for p in points]
    with ServiceClient(host, port, timeout=600.0) as client:
        client.simulate(points)  # warm the memo tier
    report = LoadtestReport(
        target=f"{host}:{port}", points=list(points),
        requests_per_client=requests_per_client)
    for concurrency in levels:
        report.levels.append(
            _run_level(host, port, concurrency, points, requests_per_client))
    report.knee_concurrency = find_knee(report.levels)
    return report


def main(
    target: Optional[str] = None,
    levels: Sequence[int] = DEFAULT_LEVELS,
    requests_per_client: int = 8,
    points: Sequence[Tuple[str, str]] = DEFAULT_POINTS,
    scale: Optional[float] = None,
    jobs: int = 1,
    out: Optional[str] = None,
) -> int:
    """CLI entry (``repro-experiment loadtest``); returns an exit code.

    Without ``target`` (``host:port``), a private in-process service is
    spawned on a free port with a throwaway cache directory and drained
    afterwards, so the load test is fully self-contained.
    """
    service = None
    tempdir = None
    if target is None:
        from repro.service.server import ExperimentService

        tempdir = tempfile.TemporaryDirectory(prefix="repro-loadtest-")
        service = ExperimentService(
            port=0, jobs=jobs, scale=scale if scale is not None else 0.05,
            cache_dir=tempdir.name, batch_window=0.002)
        host, port = service.start_in_thread()
        print(f"loadtest: spawned in-process service on {host}:{port}")
    else:
        host, _, port_text = target.rpartition(":")
        try:
            port = int(port_text)
        except ValueError:
            print(f"repro-experiment: error: --lt-target {target!r} is not "
                  f"HOST:PORT")
            return 2
        host = host or "127.0.0.1"
    try:
        report = run(host, port, levels=levels,
                     requests_per_client=requests_per_client, points=points)
    finally:
        if service is not None:
            service.shutdown()
        if tempdir is not None:
            tempdir.cleanup()
    print(report.render())
    if out is not None:
        path = Path(out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(report.as_dict(), indent=2, sort_keys=True) + "\n")
        print(f"wrote {out}")
    return 0 if report.ok else 1
