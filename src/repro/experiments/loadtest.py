"""Closed-loop load test for the experiment service and shard gateway.

Drives N concurrent clients against a running
:class:`~repro.service.server.ExperimentService` (or one it spawns
in-process) and reports, per concurrency level, the p50/p95/p99 request
latency and the sustained throughput — then locates the *saturation
knee*: the concurrency past which added clients stop buying throughput
and only buy queueing delay.  A level whose throughput collapses to
zero (every request failed) is the most extreme knee of all and is
reported at the last level that still moved requests.  Failures are
broken down by class — ``shed`` (429 admission control), ``deadline``
(504), ``connection`` (transport), ``other`` — and every level reports
its shed rate, so overload-protection behaviour is visible alongside
the saturation knee it exists to defend.

This is the service-layer analogue of the paper's Figure 5 bandwidth
sweep: the batching server is the shared resource, the request stream
is the translation traffic, and the memo/disk cache tiers are the
filters.  A load test against a warm cache measures the *filtered*
path (HTTP + single-flight + batching), which is why thousands of
requests per second are achievable over a simulator that takes
milliseconds per point.

Each client is closed-loop (it issues the next request only after the
previous response lands), so offered load scales with the number of
clients and the latency distribution is honest — there is no
coordinated-omission distortion from a paced open loop.

Two stream shapes are supported:

* the default *batch* stream — every request carries the full point
  list (the PR 6 behaviour), and
* a *mixed hot/cold* stream (``cold_points`` + ``cold_every``) — each
  request carries one point, clients rotate through the hot set with
  offset phases, and every ``cold_every``-th request touches a point
  from the larger cold set instead.  Single-point requests are what a
  consistent-hash gateway actually shards, and the periodic cold
  touches keep the shared disk tier and the ring's tail in play.

:func:`shard_sweep` repeats the whole sweep against a locally spawned
:class:`~repro.service.gateway.ShardGateway` at increasing replica
counts over one shared disk cache, producing the scaling curve
committed as ``benchmarks/perf/BENCH_PR7_shard.json``.

Usage::

    repro-experiment loadtest                       # self-spawned server
    repro-experiment loadtest --lt-clients 1,2,4,8,16 --lt-requests 50
    repro-experiment loadtest --lt-target 127.0.0.1:8000   # running server
    repro-experiment loadtest --lt-target '[::1]:8000'     # IPv6 target
    repro-experiment loadtest --lt-replicas 1,2,3          # shard sweep
"""

from __future__ import annotations

import json
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.metrics import LatencyHistogram
from repro.service.client import (
    ServiceClient,
    ServiceError,
    TransportError,
    parse_target,
)

__all__ = [
    "DEFAULT_LEVELS",
    "DEFAULT_POINTS",
    "FAILURE_CLASSES",
    "LevelResult",
    "LoadtestReport",
    "SHARD_COLD_POINTS",
    "SHARD_HOT_POINTS",
    "ShardReport",
    "classify_failure",
    "find_knee",
    "main",
    "run",
    "shard_sweep",
]

#: Failure classes a level breaks its failures down into: ``shed``
#: (429 admission control), ``deadline`` (504 budget exhausted),
#: ``connection`` (transport-level: resets, timeouts, digest
#: mismatches), and ``other`` (any remaining wrong status).
FAILURE_CLASSES: Tuple[str, ...] = ("shed", "deadline", "connection",
                                    "other")


def classify_failure(exc: BaseException) -> str:
    """Map one failed request's exception to a :data:`FAILURE_CLASSES` key."""
    if isinstance(exc, TransportError):
        return "connection"
    if isinstance(exc, ServiceError):
        if exc.status == 429:
            return "shed"
        if exc.status == 504:
            return "deadline"
        return "other"
    if isinstance(exc, (OSError, TimeoutError)):
        return "connection"
    return "other"

#: Concurrency levels swept by default (doubling, like the fig5 sweep).
DEFAULT_LEVELS: Tuple[int, ...] = (1, 2, 4, 8)

#: The request body every client issues: one cheap point that the
#: service resolves from its memo tier after the first wave, so the
#: test loads the service path rather than the simulator.
DEFAULT_POINTS: Tuple[Tuple[str, str], ...] = (("bfs", "baseline-512"),)

#: Hot set for the shard sweep: distinct points spread over the hash
#: ring so every replica owns a share of the hot stream.  There are at
#: least as many hot points as the deepest swept concurrency level, so
#: concurrent clients drive *distinct* fingerprints — otherwise
#: single-flight coalescing retires many requests per wave and inflates
#: the unsharded baseline.
SHARD_HOT_POINTS: Tuple[Tuple[str, str], ...] = tuple(
    (workload, design)
    for workload in ("bfs", "kmeans", "pagerank", "hotspot")
    for design in ("baseline-512", "ideal-mmu", "vc-with-opt",
                   "baseline-16k", "baseline-128-entry-tlbs-16k",
                   "l1-only-vc-128"))

#: Cold set for the shard sweep: rarely-touched points that land on the
#: shared disk tier the first time each replica sees them.
SHARD_COLD_POINTS: Tuple[Tuple[str, str], ...] = tuple(
    (workload, design)
    for workload in ("pathfinder", "nw")
    for design in ("baseline-512", "vc-w-o-opt", "l1-only-vc-32"))

#: Throughput must improve by at least this factor per doubling of
#: clients to count as "still scaling"; below it, the knee is called.
KNEE_GAIN_THRESHOLD = 1.10


def _format_target(host: str, port: int) -> str:
    """``host:port`` with IPv6 hosts bracketed."""
    return f"[{host}]:{port}" if ":" in host else f"{host}:{port}"


@dataclass(frozen=True)
class LevelResult:
    """Aggregate outcome of one concurrency level."""

    concurrency: int
    requests: int
    failures: int
    wall_seconds: float
    throughput_rps: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    mean_ms: float
    failure_classes: Dict[str, int] = field(default_factory=dict)

    @property
    def shed_rate(self) -> float:
        """Fraction of this level's requests the service shed (429)."""
        if self.requests <= 0:
            return 0.0
        return self.failure_classes.get("shed", 0) / self.requests

    def as_dict(self) -> Dict[str, object]:
        return {
            "concurrency": self.concurrency,
            "requests": self.requests,
            "failures": self.failures,
            "failure_classes": {cls: self.failure_classes.get(cls, 0)
                                for cls in FAILURE_CLASSES},
            "shed_rate": round(self.shed_rate, 4),
            "wall_seconds": round(self.wall_seconds, 6),
            "throughput_rps": round(self.throughput_rps, 1),
            "p50_ms": round(self.p50_ms, 3),
            "p95_ms": round(self.p95_ms, 3),
            "p99_ms": round(self.p99_ms, 3),
            "mean_ms": round(self.mean_ms, 3),
        }


@dataclass
class LoadtestReport:
    """All levels plus the detected saturation knee."""

    target: str
    points: List[Tuple[str, str]]
    requests_per_client: int
    levels: List[LevelResult] = field(default_factory=list)
    knee_concurrency: Optional[int] = None
    cold_points: List[Tuple[str, str]] = field(default_factory=list)
    cold_every: int = 0

    @property
    def ok(self) -> bool:
        return all(level.failures == 0 for level in self.levels)

    def as_dict(self) -> Dict[str, object]:
        return {
            "target": self.target,
            "points": [list(p) for p in self.points],
            "cold_points": [list(p) for p in self.cold_points],
            "cold_every": self.cold_every,
            "requests_per_client": self.requests_per_client,
            "levels": [level.as_dict() for level in self.levels],
            "knee_concurrency": self.knee_concurrency,
        }

    def render(self) -> str:
        stream = (f", 1 cold in {self.cold_every} from "
                  f"{len(self.cold_points)} cold point(s)"
                  if self.cold_every and self.cold_points else "")
        lines = [
            f"Service load test against {self.target} "
            f"({self.requests_per_client} requests/client, "
            f"points: {', '.join('/'.join(p) for p in self.points)}{stream})",
            "",
            f"{'clients':>7s} {'req':>6s} {'fail':>5s} {'shed%':>6s} "
            f"{'req/s':>9s} {'p50 ms':>9s} {'p95 ms':>9s} {'p99 ms':>9s}",
        ]
        for level in self.levels:
            lines.append(
                f"{level.concurrency:7d} {level.requests:6d} "
                f"{level.failures:5d} {level.shed_rate:6.1%} "
                f"{level.throughput_rps:9.1f} "
                f"{level.p50_ms:9.3f} {level.p95_ms:9.3f} "
                f"{level.p99_ms:9.3f}"
            )
        breakdown = {cls: sum(level.failure_classes.get(cls, 0)
                              for level in self.levels)
                     for cls in FAILURE_CLASSES}
        if any(breakdown.values()):
            lines.append("")
            lines.append(
                "failure breakdown: " + ", ".join(
                    f"{count} {cls}" for cls, count in breakdown.items()
                    if count))
        lines.append("")
        if self.knee_concurrency is not None:
            lines.append(
                f"saturation knee at {self.knee_concurrency} client(s): "
                f"beyond it, added clients buy <"
                f"{KNEE_GAIN_THRESHOLD - 1:.0%} throughput per doubling")
        else:
            lines.append(
                "no saturation knee within the swept levels "
                "(throughput still scaling at the highest concurrency)")
        return "\n".join(lines)


def find_knee(levels: Sequence[LevelResult],
              gain_threshold: float = KNEE_GAIN_THRESHOLD) -> Optional[int]:
    """The last concurrency that still scaled, or None if all levels did.

    Scanning adjacent levels, the knee is the lower level of the first
    pair whose throughput ratio falls below ``gain_threshold``.  A
    successor level with *zero* throughput — every request failed, the
    most extreme saturation there is — reports the knee at the last
    level that still moved requests, rather than being skipped as if
    the service were still scaling.  Zero-throughput levels never
    anchor a ratio themselves.
    """
    last_nonzero: Optional[LevelResult] = None
    for prev, nxt in zip(levels, levels[1:]):
        if prev.throughput_rps > 0:
            last_nonzero = prev
        if nxt.throughput_rps <= 0:
            # Throughput collapse: knee at the last productive level
            # (None when no level ever moved a request).
            if last_nonzero is not None:
                return last_nonzero.concurrency
            continue
        if prev.throughput_rps <= 0:
            continue  # a zero level cannot anchor a ratio
        if nxt.throughput_rps / prev.throughput_rps < gain_threshold:
            return prev.concurrency
    return None


def _request_schedule(
    client_index: int,
    n_requests: int,
    points: Sequence[Tuple[str, str]],
    cold_points: Sequence[Tuple[str, str]],
    cold_every: int,
) -> List[List[Tuple[str, str]]]:
    """The per-request point lists one closed-loop client will issue.

    Without a cold set every request carries the full ``points`` list
    (the original batch stream).  With one, each request carries a
    single point: clients walk the hot set with phase offset
    ``client_index`` (so concurrent clients spread over the ring
    instead of convoying on one replica), and every ``cold_every``-th
    request substitutes the next cold point.
    """
    if not cold_points or cold_every <= 0:
        return [list(points)] * n_requests
    hot = [[tuple(p)] for p in points]
    cold = [[tuple(p)] for p in cold_points]
    schedule: List[List[Tuple[str, str]]] = []
    cold_seen = 0
    for i in range(n_requests):
        if (i + 1) % cold_every == 0:
            schedule.append(cold[(client_index + cold_seen) % len(cold)])
            cold_seen += 1
        else:
            schedule.append(hot[(client_index + i) % len(hot)])
    return schedule


def _client_loop(host: str, port: int,
                 schedule: List[List[Tuple[str, str]]],
                 barrier: threading.Barrier,
                 latencies: List[float], failures: Dict[str, int],
                 lock: threading.Lock) -> None:
    """One closed-loop client: wait at the barrier, then issue requests."""
    local_lat: List[float] = []
    local_fail: Dict[str, int] = {}
    with ServiceClient(host, port, timeout=120.0) as client:
        barrier.wait()
        for request_points in schedule:
            start = time.perf_counter()
            try:
                client.simulate(request_points)
            except (ServiceError, OSError, TimeoutError) as exc:
                cls = classify_failure(exc)
                local_fail[cls] = local_fail.get(cls, 0) + 1
                continue
            local_lat.append(time.perf_counter() - start)
    with lock:
        latencies.extend(local_lat)
        for cls, count in local_fail.items():
            failures[cls] = failures.get(cls, 0) + count


def _run_level(host: str, port: int, concurrency: int,
               points: List[Tuple[str, str]],
               n_requests: int,
               cold_points: Sequence[Tuple[str, str]] = (),
               cold_every: int = 0) -> LevelResult:
    latencies: List[float] = []
    failures: Dict[str, int] = {}
    lock = threading.Lock()
    barrier = threading.Barrier(concurrency + 1)
    threads = [
        threading.Thread(
            target=_client_loop,
            args=(host, port,
                  _request_schedule(i, n_requests, points, cold_points,
                                    cold_every),
                  barrier, latencies, failures, lock),
            name=f"loadtest-client-{i}", daemon=True)
        for i in range(concurrency)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()  # release every client at once
    wall_start = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = max(time.perf_counter() - wall_start, 1e-9)

    hist = LatencyHistogram()
    for value in latencies:
        hist.record(value)
    n_ok = len(latencies)
    n_fail = sum(failures.values())
    return LevelResult(
        concurrency=concurrency,
        requests=n_ok + n_fail,
        failures=n_fail,
        wall_seconds=wall,
        throughput_rps=n_ok / wall,
        p50_ms=hist.percentile(50) * 1e3 if n_ok else 0.0,
        p95_ms=hist.percentile(95) * 1e3 if n_ok else 0.0,
        p99_ms=hist.percentile(99) * 1e3 if n_ok else 0.0,
        mean_ms=hist.mean * 1e3 if n_ok else 0.0,
        failure_classes=dict(failures),
    )


def run(
    host: str,
    port: int,
    levels: Sequence[int] = DEFAULT_LEVELS,
    requests_per_client: int = 8,
    points: Sequence[Tuple[str, str]] = DEFAULT_POINTS,
    cold_points: Sequence[Tuple[str, str]] = (),
    cold_every: int = 0,
) -> LoadtestReport:
    """Sweep the concurrency levels against an already-running service.

    A single warm-up request primes the cache tiers first (hot *and*
    cold points), so every timed level measures the steady-state
    service path instead of one level absorbing the initial simulation
    cost.  ``cold_points``/``cold_every`` switch the clients to the
    mixed hot/cold single-point stream (see the module docstring).
    """
    points = [tuple(p) for p in points]
    cold_points = [tuple(p) for p in cold_points]
    with ServiceClient(host, port, timeout=600.0) as client:
        client.simulate(points + cold_points)  # warm the cache tiers
    report = LoadtestReport(
        target=_format_target(host, port), points=list(points),
        requests_per_client=requests_per_client,
        cold_points=list(cold_points), cold_every=cold_every)
    for concurrency in levels:
        report.levels.append(
            _run_level(host, port, concurrency, points, requests_per_client,
                       cold_points=cold_points, cold_every=cold_every))
    report.knee_concurrency = find_knee(report.levels)
    return report


@dataclass
class ShardReport:
    """The scaling curve of one gateway sweep over replica counts."""

    replica_counts: List[int]
    levels: List[int]
    requests_per_client: int
    points: List[Tuple[str, str]]
    cold_points: List[Tuple[str, str]]
    cold_every: int
    mode: str
    scale: float
    batch_window: float
    max_batch: int
    reports: Dict[int, LoadtestReport] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return bool(self.reports) and all(
            r.ok for r in self.reports.values())

    def best_throughput(self, count: int) -> float:
        report = self.reports[count]
        return max((level.throughput_rps for level in report.levels),
                   default=0.0)

    def speedups(self) -> Dict[int, float]:
        """Best throughput per count relative to the first swept count."""
        if not self.reports:
            return {}
        base = self.best_throughput(self.replica_counts[0])
        if base <= 0:
            return {count: 0.0 for count in self.replica_counts}
        return {count: self.best_throughput(count) / base
                for count in self.replica_counts}

    def as_dict(self) -> Dict[str, object]:
        speedups = self.speedups()
        return {
            "replica_counts": list(self.replica_counts),
            "levels": list(self.levels),
            "requests_per_client": self.requests_per_client,
            "points": [list(p) for p in self.points],
            "cold_points": [list(p) for p in self.cold_points],
            "cold_every": self.cold_every,
            "mode": self.mode,
            "scale": self.scale,
            "batch_window": self.batch_window,
            "max_batch": self.max_batch,
            "best_throughput_rps": {
                str(count): round(self.best_throughput(count), 1)
                for count in self.replica_counts},
            "speedup_vs_first": {
                str(count): round(speedups.get(count, 0.0), 3)
                for count in self.replica_counts},
            "knee_concurrency": {
                str(count): self.reports[count].knee_concurrency
                for count in self.replica_counts if count in self.reports},
            "reports": {str(count): report.as_dict()
                        for count, report in self.reports.items()},
        }

    def render(self) -> str:
        speedups = self.speedups()
        lines = [
            f"Shard scaling sweep ({self.mode} replicas, "
            f"batch_window={self.batch_window}, max_batch={self.max_batch}, "
            f"{len(self.points)} hot / {len(self.cold_points)} cold points, "
            f"1 cold in {self.cold_every})",
            "",
            f"{'replicas':>8s} {'best req/s':>11s} {'speedup':>8s} "
            f"{'knee':>5s}",
        ]
        for count in self.replica_counts:
            report = self.reports.get(count)
            knee = report.knee_concurrency if report is not None else None
            lines.append(
                f"{count:8d} {self.best_throughput(count):11.1f} "
                f"{speedups.get(count, 0.0):7.2f}x "
                f"{'-' if knee is None else knee:>5}")
        for count in self.replica_counts:
            report = self.reports.get(count)
            if report is not None:
                lines.extend(["", f"--- {count} replica(s) ---",
                              report.render()])
        return "\n".join(lines)


def shard_sweep(
    replica_counts: Sequence[int] = (1, 2, 3),
    levels: Sequence[int] = (2, 4, 8, 16, 24),
    requests_per_client: int = 16,
    points: Sequence[Tuple[str, str]] = SHARD_HOT_POINTS,
    cold_points: Sequence[Tuple[str, str]] = SHARD_COLD_POINTS,
    cold_every: int = 8,
    scale: float = 0.05,
    jobs: int = 1,
    batch_window: float = 0.04,
    max_batch: int = 4,
    replica_mode: str = "subprocess",
    cache_dir: Optional[str] = None,
) -> ShardReport:
    """Run the mixed hot/cold sweep at each replica count (one gateway each).

    All counts share one disk-cache directory, so only the first sweep
    pays the simulation cost; later counts warm every replica's memo
    from the shared disk tier — exactly the deployment story the
    gateway exists for.  The per-replica wave budget is the deliberate
    bottleneck: a paced batcher admits at most ``max_batch`` points per
    ``batch_window``, so a single replica saturates at that rate and
    total throughput scales with the number of independent wave
    pipelines the ring spreads the stream over — not with raw CPU.
    """
    from repro.service.gateway import launch_local_gateway

    own_tempdir = None
    if cache_dir is None:
        own_tempdir = tempfile.TemporaryDirectory(prefix="repro-shard-")
        cache_dir = own_tempdir.name
    report = ShardReport(
        replica_counts=list(replica_counts), levels=list(levels),
        requests_per_client=requests_per_client,
        points=[tuple(p) for p in points],
        cold_points=[tuple(p) for p in cold_points],
        cold_every=cold_every, mode=replica_mode, scale=scale,
        batch_window=batch_window, max_batch=max_batch)
    try:
        for count in replica_counts:
            print(f"shard sweep: spawning gateway with {count} "
                  f"{replica_mode} replica(s)", flush=True)
            gateway = launch_local_gateway(
                count, mode=replica_mode, cache_dir=cache_dir, scale=scale,
                jobs=jobs, batch_window=batch_window, max_batch=max_batch)
            try:
                report.reports[count] = run(
                    gateway.host, gateway.port, levels=levels,
                    requests_per_client=requests_per_client, points=points,
                    cold_points=cold_points, cold_every=cold_every)
            finally:
                gateway.shutdown()
            best = report.best_throughput(count)
            print(f"shard sweep: {count} replica(s) -> {best:.1f} req/s",
                  flush=True)
    finally:
        if own_tempdir is not None:
            own_tempdir.cleanup()
    return report


def main(
    target: Optional[str] = None,
    levels: Sequence[int] = DEFAULT_LEVELS,
    requests_per_client: int = 8,
    points: Sequence[Tuple[str, str]] = DEFAULT_POINTS,
    scale: Optional[float] = None,
    jobs: int = 1,
    out: Optional[str] = None,
    replica_counts: Optional[Sequence[int]] = None,
    cold_points: Sequence[Tuple[str, str]] = (),
    cold_every: int = 0,
    batch_window: Optional[float] = None,
    max_batch: Optional[int] = None,
) -> int:
    """CLI entry (``repro-experiment loadtest``); returns an exit code.

    Without ``target`` (``host:port``), a private in-process service is
    spawned on a free port with a throwaway cache directory and drained
    afterwards, so the load test is fully self-contained.  With
    ``replica_counts``, the sweep instead runs :func:`shard_sweep`
    against locally spawned gateways (mutually exclusive with
    ``target``).  Exit codes: 0 success, 1 the test ran but failed
    (including an unreachable target), 2 bad arguments.
    """
    if replica_counts:
        if target is not None:
            print("repro-experiment: error: --lt-replicas and --lt-target "
                  "are mutually exclusive (the shard sweep spawns its own "
                  "gateways)")
            return 2
        sweep_points = (SHARD_HOT_POINTS
                        if tuple(tuple(p) for p in points) == DEFAULT_POINTS
                        else points)
        try:
            report = shard_sweep(
                replica_counts=replica_counts, levels=levels,
                requests_per_client=requests_per_client, points=sweep_points,
                cold_points=tuple(cold_points) or SHARD_COLD_POINTS,
                cold_every=cold_every or 8,
                scale=scale if scale is not None else 0.05, jobs=jobs,
                batch_window=(batch_window
                              if batch_window is not None else 0.04),
                max_batch=max_batch if max_batch is not None else 4)
        except (ServiceError, OSError) as exc:
            print(f"repro-experiment: error: shard sweep failed: {exc}")
            return 1
        print(report.render())
        if out is not None:
            path = Path(out)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(
                json.dumps(report.as_dict(), indent=2, sort_keys=True) + "\n")
            print(f"wrote {out}")
        return 0 if report.ok else 1

    service = None
    tempdir = None
    if target is None:
        from repro.service.server import ExperimentService

        tempdir = tempfile.TemporaryDirectory(prefix="repro-loadtest-")
        service = ExperimentService(
            port=0, jobs=jobs, scale=scale if scale is not None else 0.05,
            cache_dir=tempdir.name,
            batch_window=(batch_window
                          if batch_window is not None else 0.002),
            max_batch=max_batch if max_batch is not None else 64)
        host, port = service.start_in_thread()
        print(f"loadtest: spawned in-process service on {host}:{port}")
    else:
        try:
            host, port = parse_target(target)
        except ValueError as exc:
            print(f"repro-experiment: error: --lt-target {exc}")
            return 2
    try:
        report = run(host, port, levels=levels,
                     requests_per_client=requests_per_client, points=points,
                     cold_points=cold_points, cold_every=cold_every)
    except (ServiceError, OSError) as exc:
        # A dead target (connection refused, reset, HTTP error on the
        # warm-up request) is a *result*, not a crash: report it
        # cleanly with the documented non-zero exit.
        print(f"repro-experiment: error: load test against "
              f"{_format_target(host, port)} failed: {exc}")
        return 1
    finally:
        if service is not None:
            service.shutdown()
        if tempdir is not None:
            tempdir.cleanup()
    print(report.render())
    if out is not None:
        path = Path(out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(report.as_dict(), indent=2, sort_keys=True) + "\n")
        print(f"wrote {out}")
    return 0 if report.ok else 1
