"""Network-chaos resilience suite: seeded faults between gateway and replicas.

``repro-experiment chaos`` (PR 4) proves the *simulator* survives
hostile VM events; this suite (``repro-experiment chaos --net``) proves
the *service* survives a hostile network.  It builds the full sharded
topology in one process::

    client ──> ShardGateway ──> ChaosProxy ──> replica r0
                          └───> ChaosProxy ──> replica r1 ...

with a seeded :class:`~repro.service.chaosnet.NetFaultPlan` per proxy
injecting resets, black-holes, slow-loris trickles, corruption,
truncation, and latency into the gateway↔replica hop, then drives a
closed-loop client through the gateway and checks two invariants:

* **zero wrong results** — every successful response for a point must
  carry exactly the same cycle count as the clean baseline computed
  before chaos starts.  Corruption in transit must surface as the
  ``X-Content-Digest`` check failing (a retryable transport error),
  never as silently wrong data.
* **bounded error rate** — with the gateway's evict/hedge/readmit
  machinery and the client's budgeted retries absorbing faults, at
  most ``max_error_rate`` of requests may fail outright.

The gateway forwards with ``Connection: close`` here, so every request
draws a fresh proxied connection and therefore a fresh fault decision —
maximal fault exposure per request, and the fault sequence is exactly
the seeded plan's, independent of connection pooling.

Exit status is nonzero on any wrong result or an error rate over the
bound, with a per-fault-kind injection tally in the report so a
failing run says what it actually faced.
"""

from __future__ import annotations

import json
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.service.chaosnet import NET_KINDS, ChaosProxy, NetFaultPlan
from repro.service.client import ServiceClient, ServiceError, TransportError
from repro.service.gateway import Replica, ShardGateway, spawn_thread_replicas

__all__ = [
    "DEFAULT_NET_RATES",
    "DEFAULT_POINTS",
    "NetChaosReport",
    "main",
    "parse_net_rates",
    "run",
]

#: Default per-connection fault rates: every kind in play, ~45% of
#: connections faulted in total.
DEFAULT_NET_RATES: Dict[str, float] = {
    "latency": 0.10, "reset": 0.10, "blackhole": 0.05,
    "slowloris": 0.05, "corrupt": 0.10, "truncate": 0.05,
}

#: Distinct points so both replicas own a share of the stream.
DEFAULT_POINTS: Tuple[Tuple[str, str], ...] = (
    ("bfs", "baseline-512"),
    ("bfs", "vc-with-opt"),
    ("kmeans", "baseline-512"),
    ("kmeans", "l1-only-vc-32"),
)


def parse_net_rates(text: str) -> Dict[str, float]:
    """Parse ``kind=rate,kind=rate`` (e.g. ``reset=0.2,corrupt=0.1``).

    Raises ``ValueError`` on unknown kinds or malformed entries; the
    rate-sum and range checks live in :class:`NetFaultPlan`.
    """
    rates: Dict[str, float] = {}
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        kind, sep, value = chunk.partition("=")
        kind = kind.strip()
        if not sep or kind not in NET_KINDS:
            raise ValueError(
                f"bad --net-rates entry {chunk!r}; expected KIND=RATE with "
                f"KIND one of {', '.join(NET_KINDS)}")
        try:
            rates[kind] = float(value)
        except ValueError:
            raise ValueError(
                f"bad --net-rates entry {chunk!r}: {value!r} is not a number")
    if not rates:
        raise ValueError("--net-rates named no faults")
    return rates


class _ClosingGateway(ShardGateway):
    """A gateway that forwards with ``Connection: close``.

    One request = one proxied connection = one fault decision, which
    pins the suite's fault sequence to the seeded plan instead of to
    connection-pool reuse patterns.
    """

    def _forward_headers(self, ctx, accept="application/json"):
        headers = super()._forward_headers(ctx, accept)
        headers["Connection"] = "close"
        return headers


@dataclass
class NetChaosReport:
    """Outcome of one network-chaos run against the sharded service."""

    seed: int
    rates: Dict[str, float]
    replicas: int
    requests: int
    succeeded: int = 0
    wrong_results: int = 0
    retries: int = 0
    failure_classes: Dict[str, int] = field(default_factory=dict)
    injected: Dict[str, int] = field(default_factory=dict)
    max_error_rate: float = 0.2
    wall_seconds: float = 0.0

    @property
    def failed(self) -> int:
        return sum(self.failure_classes.values())

    @property
    def error_rate(self) -> float:
        return self.failed / self.requests if self.requests else 0.0

    @property
    def ok(self) -> bool:
        return (self.wrong_results == 0
                and self.error_rate <= self.max_error_rate)

    def as_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "rates": dict(self.rates),
            "replicas": self.replicas,
            "requests": self.requests,
            "succeeded": self.succeeded,
            "failed": self.failed,
            "failure_classes": dict(self.failure_classes),
            "wrong_results": self.wrong_results,
            "retries": self.retries,
            "injected": dict(self.injected),
            "error_rate": round(self.error_rate, 4),
            "max_error_rate": self.max_error_rate,
            "wall_seconds": round(self.wall_seconds, 3),
            "ok": self.ok,
        }

    def render(self) -> str:
        injected = ", ".join(
            f"{kind}={self.injected.get(kind, 0)}"
            for kind in (*NET_KINDS, "clean"))
        lines = [
            f"Network chaos: {self.requests} requests through "
            f"{self.replicas} proxied replica(s), seed {self.seed}",
            f"  injected per connection: {injected}",
            f"  succeeded: {self.succeeded}  failed: {self.failed} "
            f"({self.error_rate:.1%}, bound {self.max_error_rate:.0%})  "
            f"client retries: {self.retries}",
        ]
        if self.failure_classes:
            lines.append("  failure breakdown: " + ", ".join(
                f"{count} {cls}"
                for cls, count in sorted(self.failure_classes.items())))
        lines.append(
            f"  wrong results (digest-checked): {self.wrong_results} "
            f"(must be 0)")
        lines.append(
            "verdict: " + ("resilient — zero wrong results, error rate "
                           "within bound" if self.ok else "FAILED"))
        return "\n".join(lines)


def _classify(exc: BaseException) -> str:
    if isinstance(exc, TransportError):
        return "connection"
    if isinstance(exc, ServiceError):
        if exc.status == 429:
            return "shed"
        if exc.status == 504:
            return "deadline"
        return f"status_{exc.status}"
    return "other"


def run(
    rates: Optional[Dict[str, float]] = None,
    seed: int = 0,
    replicas: int = 2,
    requests: int = 32,
    points: Sequence[Tuple[str, str]] = DEFAULT_POINTS,
    scale: float = 0.02,
    max_error_rate: float = 0.2,
    retries: int = 4,
    deadline_ms: Optional[float] = None,
) -> NetChaosReport:
    """One seeded network-chaos run; returns the report (never raises
    on a fault-induced failure — that is the report's verdict).
    """
    rates = dict(DEFAULT_NET_RATES if rates is None else rates)
    plan_check = NetFaultPlan(rates, seed=seed)  # validate rates up front
    del plan_check
    report = NetChaosReport(
        seed=seed, rates=rates, replicas=replicas, requests=requests,
        max_error_rate=max_error_rate)
    points = [tuple(p) for p in points]
    started = time.perf_counter()
    with tempfile.TemporaryDirectory(prefix="repro-netchaos-") as cache_dir:
        workers = spawn_thread_replicas(replicas, cache_dir, scale=scale,
                                        batch_window=0.005)
        proxies: List[ChaosProxy] = []
        gateway = None
        try:
            # Clean baseline: the ground truth every chaos-era response
            # must match, computed before any fault can fire.
            expected: Dict[Tuple[str, str], float] = {}
            with ServiceClient(workers[0].host, workers[0].port,
                               timeout=120.0) as direct:
                reply = direct.simulate([
                    {"workload": w, "design": d} for w, d in points])
                for (w, d), point in zip(points, reply.points):
                    expected[(w, d)] = point.cycles

            # Interpose one seeded proxy per replica (seed varies by
            # index so the replicas see different fault sequences).
            front: List[Replica] = []
            for index, worker in enumerate(workers):
                proxy = ChaosProxy(
                    worker.host, worker.port,
                    NetFaultPlan(rates, seed=seed + index))
                proxy.start_in_thread()
                proxies.append(proxy)
                front.append(Replica(worker.id, proxy.host, proxy.port,
                                     service=worker.service))
            gateway = _ClosingGateway(
                front, health_interval=0.25, connect_timeout=2.0,
                forward_timeout=20.0, probe_failure_threshold=3)
            gateway.start_in_thread()

            with ServiceClient(
                    gateway.host, gateway.port, timeout=30.0,
                    retries=retries, retry_budget_s=20.0,
                    retry_seed=seed, deadline_ms=deadline_ms) as client:
                for i in range(requests):
                    workload, design = points[i % len(points)]
                    try:
                        reply = client.simulate(
                            [{"workload": workload, "design": design}])
                    except (ServiceError, OSError, TimeoutError) as exc:
                        cls = _classify(exc)
                        report.failure_classes[cls] = (
                            report.failure_classes.get(cls, 0) + 1)
                        continue
                    if reply.points[0].cycles != expected[(workload,
                                                           design)]:
                        report.wrong_results += 1
                    else:
                        report.succeeded += 1
                report.retries = client.retries_performed
        finally:
            if gateway is not None:
                gateway.shutdown()
            else:
                for worker in workers:
                    worker.service.shutdown()
            for proxy in proxies:
                proxy.shutdown()
    for proxy in proxies:
        for kind, count in proxy.counts.items():
            report.injected[kind] = report.injected.get(kind, 0) + count
    report.wall_seconds = time.perf_counter() - started
    return report


def main(
    rates_text: Optional[str] = None,
    seed: int = 0,
    replicas: int = 2,
    requests: int = 32,
    scale: Optional[float] = None,
    max_error_rate: float = 0.2,
    out: Optional[str] = None,
) -> int:
    """CLI entry (``repro-experiment chaos --net``); returns exit code."""
    try:
        rates = (parse_net_rates(rates_text)
                 if rates_text is not None else None)
    except ValueError as exc:
        print(f"repro-experiment: error: {exc}")
        return 2
    report = run(rates=rates, seed=seed, replicas=replicas,
                 requests=requests,
                 scale=scale if scale is not None else 0.02,
                 max_error_rate=max_error_rate)
    print(report.render())
    if out is not None:
        path = Path(out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(report.as_dict(), indent=2, sort_keys=True) + "\n")
        print(f"wrote {out}")
    return 0 if report.ok else 1


if __name__ == "__main__":
    import sys

    sys.exit(main())
