"""Generate ``docs/SWEEPSPEC.md`` from the real SweepSpec schema.

The spec reference is *generated*, never hand-edited, exactly like
``docs/CLI.md``: this module walks the :mod:`repro.experiments.sweepspec`
dataclasses (field sets are drift-checked against
``dataclasses.fields``, the documented error taxonomy against the
actual :class:`~repro.experiments.sweepspec.SweepSpecError` subclasses),
validates every worked example by parsing it with
:meth:`SweepSpec.from_dict` at render time, and renders the markdown
committed at ``docs/SWEEPSPEC.md``.  ``tests/test_spec_doc.py`` fails
whenever the committed file differs from what this module renders.
Regenerate with::

    PYTHONPATH=src python -m repro.experiments.spec_doc > docs/SWEEPSPEC.md
"""

from __future__ import annotations

import dataclasses
import json
import sys
from typing import Any, Dict, List, Tuple

from repro.experiments import sweepspec
from repro.experiments.sweepspec import (
    FaultSpec,
    OutputSpec,
    SweepPoint,
    SweepSpec,
)
from repro.system.designs import (
    PRESET_DESIGNS,
    MMUDesign,
    design_slug,
)
from repro.workloads import registry

__all__ = [
    "ERROR_DESCRIPTIONS",
    "FIELD_DOCS",
    "main",
    "render_spec_doc",
]

#: field name → (JSON type, validation rules / meaning).  One entry per
#: dataclass field; generation fails loudly when a field is added,
#: removed, or renamed without updating its row here.
FIELD_DOCS: Dict[type, Dict[str, Tuple[str, str]]] = {
    SweepSpec: {
        "version": ("integer (required)",
                    "Must equal the build's `SPEC_VERSION` "
                    f"(currently {sweepspec.SPEC_VERSION}); anything else "
                    "is `VersionSkewError`, so a spec written for a "
                    "different schema is never silently misread."),
        "name": ("string or null",
                 "Free-form label for reports and job listings; "
                 "**excluded from the fingerprint**, so renaming a sweep "
                 "never invalidates its cached results."),
        "workloads": ("array of strings",
                      "Grid mode: workload trace names (see "
                      "`repro-experiment workloads --list`). Unknown "
                      "names are `UnknownWorkloadError`. Must be paired "
                      "with `designs` and is mutually exclusive with "
                      "`points`."),
        "designs": ("array of strings or objects",
                    "Grid mode: preset slugs/names (see "
                    "`repro-experiment designs --list`) or inline design "
                    "objects. Unknown slugs are `UnknownDesignError`. "
                    "Two designs may not share a name "
                    "(`ConflictingFieldsError`): results are keyed by "
                    "design name."),
        "points": ("array of point objects",
                   "Explicit mode: run exactly these points in exactly "
                   "this order. Mutually exclusive with the "
                   "`workloads`×`designs` grid (`ConflictingFieldsError` "
                   "when both are given, `BadFieldError` when neither)."),
        "scale": ("positive number or null",
                  "Workload scale factor. `null`/omitted inherits the "
                  "runner's default (CLI `--scale`, the service's base "
                  "scale). Zero, negative, or non-numeric is "
                  "`BadScaleError`."),
        "config": ("object",
                   "Scalar `SoCConfig` field overrides (`n_cus`, "
                   "`dram_latency`, ...), applied on top of the runner's "
                   "base config. Unknown fields, non-scalar fields "
                   "(`l1`, `iommu`, ...), and non-numeric values are "
                   "`BadFieldError` — same contract as the service's "
                   "request-level `config`."),
        "track_lifetimes": ("boolean (default false)",
                            "Collect translation-lifetime histograms "
                            "(Figure 12 instrumentation) for every grid "
                            "point. Conflicts with `faults` "
                            "(`ConflictingFieldsError`)."),
        "check_invariants": ("boolean (default false)",
                             "Audit FBT/cache structural invariants "
                             "during every simulation. Part of each "
                             "point's cache fingerprint. On `/v1/sweep` "
                             "this requires a server started with "
                             "`--check-invariants` (400 otherwise)."),
        "faults": ("object or null",
                   "A fault plan (see below) turns the sweep into a "
                   "chaos grid: uncached, always invariant-audited, "
                   "CLI-only (`/v1/sweep` answers 400)."),
        "output": ("object",
                   "Output selection (see below)."),
    },
    FaultSpec: {
        "rates": ("non-empty array of numbers >= 0",
                  "VM-event fault rates (events per coalesced request) "
                  "swept per point, innermost in the expansion — the "
                  "exact grid order of `repro-experiment chaos`."),
        "seed": ("integer (default 0)",
                 "Seed for the deterministic fault schedule; a failing "
                 "point reproduces exactly from its printed parameters."),
        "invariant_interval": ("integer >= 1 (default 64)",
                               "Requests between mid-run invariant "
                               "audits."),
    },
    OutputSpec: {
        "include_counters": ("boolean (default false)",
                             "Include each result's full event-counter "
                             "map in sweep reports (`--sweep-out`) and "
                             "`/v1/sweep` point payloads."),
    },
    SweepPoint: {
        "workload": ("string (required)",
                     "Workload trace name, validated like grid-mode "
                     "`workloads` entries."),
        "design": ("string or object (required)",
                   "Preset slug/name or inline design object, validated "
                   "like grid-mode `designs` entries."),
        "track_lifetimes": ("boolean (default false)",
                            "Per-point lifetime tracking (grid mode uses "
                            "the spec-level toggle instead)."),
    },
    MMUDesign: {
        "name": ("string (required, non-empty)",
                 "Design label; results and cache entries are keyed by "
                 "it, so distinct parameter sets need distinct names."),
        "kind": ("string (default \"physical\")",
                 "Hierarchy flavour: `physical` (baseline MMU), `vc` "
                 "(full virtual hierarchy), or `l1vc` (L1-only virtual "
                 "cache)."),
        "ideal": ("boolean (default false)",
                  "Zero-cost translation (the paper's IDEAL MMU)."),
        "per_cu_tlb_entries": ("integer >= 1 or null (default 32)",
                               "Per-CU TLB capacity; `null` means "
                               "infinite."),
        "iommu_entries": ("integer >= 1 or null (default 512)",
                          "Shared IOMMU TLB capacity; `null` means "
                          "infinite."),
        "iommu_bandwidth": ("number > 0 or null (default 1.0)",
                            "Shared TLB accesses per cycle; `null` means "
                            "unlimited (JSON has no `Infinity`)."),
        "fbt_as_second_level_tlb": ("boolean (default false)",
                                    "The paper's OPT: consult the "
                                    "backward table as a second-level "
                                    "TLB before the page walker."),
    },
}

#: error class name → (when it is raised).  Drift-checked against the
#: actual ``SweepSpecError`` subclasses in :mod:`sweepspec`.
ERROR_DESCRIPTIONS: Dict[str, str] = {
    "UnknownDesignError": "A design slug/name that matches no preset "
                          "(the message lists every known slug).",
    "UnknownWorkloadError": "A workload name missing from the registry "
                            "(the message lists every known name).",
    "BadScaleError": "A `scale` that is not a positive number or null.",
    "ConflictingFieldsError": "Fields that contradict each other: grid "
                              "+ `points` both given, duplicate design "
                              "names, or `faults` combined with "
                              "lifetime tracking.",
    "VersionSkewError": "A missing `version`, a non-integer one, or one "
                        "this build does not read.",
    "BadFieldError": "Any other malformed field: unknown keys, wrong "
                     "types, bad config overrides, bad inline designs, "
                     "an empty/half-specified grid.",
}

#: Worked examples, one per section; each is parsed with
#: ``SweepSpec.from_dict`` at render time, so an example that stops
#: validating breaks generation (and the drift test) immediately.
EXAMPLE_GRID: Dict[str, Any] = {
    "version": 1,
    "name": "fig4-baseline-sweep",
    "workloads": ["bfs", "kmeans"],
    "designs": ["ideal-mmu", "baseline-512", "baseline-16k"],
    "scale": 0.05,
}

EXAMPLE_POINTS: Dict[str, Any] = {
    "version": 1,
    "name": "mixed-points",
    "points": [
        {"workload": "bfs", "design": "vc-with-opt"},
        {"workload": "pagerank", "design": "baseline-16k",
         "track_lifetimes": True},
    ],
    "config": {"n_cus": 8, "dram_latency": 160},
}

EXAMPLE_FAULTS: Dict[str, Any] = {
    "version": 1,
    "name": "chaos-smoke",
    "workloads": ["bfs"],
    "designs": ["baseline-512", "vc-with-opt"],
    "scale": 0.05,
    "faults": {"rates": [0.002], "seed": 0},
}

EXAMPLE_INLINE_DESIGN: Dict[str, Any] = {
    "version": 1,
    "name": "bandwidth-study",
    "workloads": ["bfs"],
    "designs": [
        "ideal-mmu",
        {"name": "Baseline 16K @ 2/cycle", "iommu_entries": 16384,
         "iommu_bandwidth": 2.0},
    ],
    "output": {"include_counters": True},
}


def _check_field_docs() -> None:
    for cls, docs in FIELD_DOCS.items():
        actual = {f.name for f in dataclasses.fields(cls)}
        documented = set(docs)
        if documented != actual:
            raise RuntimeError(
                f"FIELD_DOCS for {cls.__name__} is out of sync with the "
                f"dataclass (missing: {sorted(actual - documented)}, "
                f"stale: {sorted(documented - actual)}); update "
                f"repro/experiments/spec_doc.py")


def _check_error_docs() -> None:
    actual = {name for name in dir(sweepspec)
              if isinstance(getattr(sweepspec, name), type)
              and issubclass(getattr(sweepspec, name),
                             sweepspec.SweepSpecError)
              and getattr(sweepspec, name) is not sweepspec.SweepSpecError}
    documented = set(ERROR_DESCRIPTIONS)
    if documented != actual:
        raise RuntimeError(
            f"ERROR_DESCRIPTIONS is out of sync with the SweepSpecError "
            f"subclasses (missing: {sorted(actual - documented)}, "
            f"stale: {sorted(documented - actual)}); update "
            f"repro/experiments/spec_doc.py")


def _field_table(cls: type, lines: List[str]) -> None:
    lines.append("| Field | Type | Meaning / validation |")
    lines.append("|---|---|---|")
    for field in dataclasses.fields(cls):
        type_text, rules = FIELD_DOCS[cls][field.name]
        lines.append(f"| `{field.name}` | {type_text} | {rules} |")
    lines.append("")


def _example(example: Dict[str, Any], lines: List[str]) -> None:
    spec = SweepSpec.from_dict(example)  # an invalid example fails loudly
    lines.append("```json")
    lines.append(json.dumps(example, indent=2))
    lines.append("```")
    lines.append("")
    lines.append(f"expands to **{len(spec.resolved_points())} point(s)**, "
                 f"fingerprint `{spec.fingerprint()[:16]}…`")
    lines.append("")


def render_spec_doc() -> str:
    """Render the complete markdown SweepSpec reference."""
    _check_field_docs()
    _check_error_docs()
    lines: List[str] = []
    lines.append("# SweepSpec reference")
    lines.append("")
    lines.append("> **Generated file — do not edit by hand.**  This page "
                 "is rendered from the real schema by "
                 "`repro.experiments.spec_doc` (field tables are checked "
                 "against the dataclasses, every example is re-validated "
                 "at render time); `tests/test_spec_doc.py` fails if it "
                 "drifts from the code.  Regenerate with:")
    lines.append("> ")
    lines.append("> ```bash")
    lines.append("> PYTHONPATH=src python -m repro.experiments.spec_doc "
                 "> docs/SWEEPSPEC.md")
    lines.append("> ```")
    lines.append("")
    lines.append(
        "A **SweepSpec** is the one serializable experiment plan every "
        "entry point consumes: `repro-experiment sweep SPEC.json` runs it "
        "through the result cache (full `--jobs`/`--cache-dir`/"
        "`--checkpoint`/retry support), `POST /v1/sweep` submits it as a "
        "durable job (journaled before the ack, shardable through the "
        "gateway), and the figure drivers, `bench`, and `chaos` build "
        "their own point enumerations as specs internally.  Validation "
        "is strict: every rejected spec raises a typed "
        "`SweepSpecError` subclass with a precise message, which the "
        "service maps to HTTP 400.")
    lines.append("")
    lines.append(f"The current schema version is "
                 f"**{sweepspec.SPEC_VERSION}**.")
    lines.append("")

    lines.append("## Top-level fields")
    lines.append("")
    lines.append("Exactly one enumeration mode is set: a "
                 "`workloads`×`designs` grid (expanded workload-major — "
                 "all designs for the first workload, then the next, "
                 "matching the figure drivers) or an explicit `points` "
                 "list (order preserved).")
    lines.append("")
    _field_table(SweepSpec, lines)
    lines.append("A grid sweep (the committed "
                 "`examples/specs/fig4_sweep.json`):")
    lines.append("")
    _example(EXAMPLE_GRID, lines)

    lines.append("## Explicit points (`points[]`)")
    lines.append("")
    _field_table(SweepPoint, lines)
    lines.append("An explicit-points sweep with config overrides:")
    lines.append("")
    _example(EXAMPLE_POINTS, lines)

    lines.append("## Fault plan (`faults`)")
    lines.append("")
    lines.append("A spec with a fault plan is a chaos grid: each point "
                 "replays its workload through a fault-injecting wrapper "
                 "(TLB shootdowns, remaps, unmaps, permission "
                 "downgrades) with the invariant auditor enabled.  Fault "
                 "runs mutate page tables, so they are **never cached** "
                 "and **never served over the wire** — `/v1/sweep` "
                 "answers 400; run them with `repro-experiment sweep`.")
    lines.append("")
    _field_table(FaultSpec, lines)
    lines.append("The expansion order is rate-innermost over the "
                 "resolved points — exactly `repro-experiment chaos`'s "
                 "grid (the committed `examples/specs/chaos_sweep.json`):")
    lines.append("")
    _example(EXAMPLE_FAULTS, lines)

    lines.append("## Output selection (`output`)")
    lines.append("")
    _field_table(OutputSpec, lines)

    lines.append("## Inline designs")
    lines.append("")
    lines.append("Anywhere a design is named, an object may appear "
                 "instead of a preset slug — the sweep-variant designs "
                 "the figure drivers build programmatically "
                 "(bandwidth-swept baselines, TLB-size sweeps) all "
                 "serialize this way.  Infinite capacities/bandwidth "
                 "serialize as `null` (JSON has no `Infinity`).")
    lines.append("")
    _field_table(MMUDesign, lines)
    lines.append("A bandwidth-study sweep mixing a preset and an inline "
                 "design, with counters selected:")
    lines.append("")
    _example(EXAMPLE_INLINE_DESIGN, lines)

    lines.append("## Validation errors")
    lines.append("")
    lines.append("Every error subclasses `SweepSpecError` "
                 "(a `ValueError`); `/v1/sweep` maps each to HTTP 400 "
                 "with the same message, prefixed `invalid sweep spec:`.")
    lines.append("")
    lines.append("| Error | Raised on |")
    lines.append("|---|---|")
    for name in sorted(ERROR_DESCRIPTIONS):
        lines.append(f"| `{name}` | {ERROR_DESCRIPTIONS[name]} |")
    lines.append("")

    lines.append("## Fingerprinting")
    lines.append("")
    lines.append("`SweepSpec.fingerprint()` is the SHA-256 of the "
                 "canonical serialized form (sorted keys, defaults "
                 "omitted, designs in wire form, `name` excluded).  Two "
                 "specs that expand to the same plan hash identically "
                 "regardless of JSON key order or which defaults were "
                 "spelled out; any change to the plan itself changes the "
                 "hash.  Individual *points* are cached under the "
                 "existing disk-cache fingerprint (workload, scale, "
                 "design, lifetimes, auditing, config hash), so "
                 "different sweeps share cached points.")
    lines.append("")

    lines.append("## Design presets")
    lines.append("")
    lines.append("`repro-experiment designs` prints the same registry "
                 "with capacities and bandwidths:")
    lines.append("")
    lines.append("| Slug | Canonical name | Kind |")
    lines.append("|---|---|---|")
    for design in PRESET_DESIGNS:
        lines.append(f"| `{design_slug(design.name)}` | {design.name} "
                     f"| `{design.kind}` |")
    lines.append("")

    lines.append("## Workloads")
    lines.append("")
    lines.append("`repro-experiment workloads` prints suites and "
                 "bandwidth classes; the names are:")
    lines.append("")
    lines.append(", ".join(f"`{name}`"
                           for name in sorted(registry.WORKLOADS)))
    return "\n".join(lines).rstrip() + "\n"


def main() -> int:
    sys.stdout.write(render_spec_doc())
    return 0


if __name__ == "__main__":
    sys.exit(main())
