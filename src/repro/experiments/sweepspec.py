"""Declarative sweep plans: one serializable spec for every entry point.

A :class:`SweepSpec` is the single, versioned, JSON-(de)serializable
description of an experiment sweep — *which* points to run (a
``workloads × designs`` grid or an explicit point list), *how* to run
them (scale, scalar :class:`~repro.system.config.SoCConfig` overrides,
lifetime tracking, invariant auditing, an optional fault plan), and
*what* to report (output selection).  The same spec drives:

* the figure drivers (:mod:`repro.experiments.fig4` and friends build
  their point enumerations as specs and run them through
  :func:`run_sweep`),
* the CLI (``repro-experiment sweep SPEC.json``),
* the service (``POST /v1/sweep`` — validated by
  :func:`repro.service.protocol.parse_sweep_request`, journaled as a
  durable job, shardable through the gateway).

Validation is strict and typed: every rejected spec raises a
:class:`SweepSpecError` subclass with a precise message, which the
service maps to HTTP 400.  :meth:`SweepSpec.fingerprint` is a stable
SHA-256 over the canonical serialized form (the optional ``name`` label
excluded), so identical plans hash identically regardless of JSON key
order or which defaults were spelled out.

The generated schema reference lives at ``docs/SWEEPSPEC.md``
(:mod:`repro.experiments.spec_doc` renders it; a drift test keeps it
honest).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.system.config import SoCConfig
from repro.system.designs import (
    MMUDesign,
    design_from_dict,
    design_slug,
    design_to_dict,
    lookup_design,
)
from repro.workloads import registry

__all__ = [
    "BadFieldError",
    "BadScaleError",
    "ConflictingFieldsError",
    "FaultSpec",
    "OutputSpec",
    "SPEC_VERSION",
    "SweepOutcome",
    "SweepPoint",
    "SweepSpec",
    "SweepSpecError",
    "UnknownDesignError",
    "UnknownWorkloadError",
    "VersionSkewError",
    "design_to_wire",
    "run_sweep",
]

#: The current spec schema version.  Bump on any incompatible change;
#: :class:`VersionSkewError` rejects every other value so a spec written
#: for a different schema can never be silently misread.
SPEC_VERSION = 1


# -- the typed error taxonomy (each maps to HTTP 400 on /v1/sweep) --------

class SweepSpecError(ValueError):
    """Base class: a sweep spec that failed validation."""


class UnknownDesignError(SweepSpecError):
    """A design slug/name that matches no preset."""


class UnknownWorkloadError(SweepSpecError):
    """A workload name missing from the registry."""


class BadScaleError(SweepSpecError):
    """A scale that is not a positive number (or null)."""


class ConflictingFieldsError(SweepSpecError):
    """Fields that contradict each other (grid + points, faults + lifetimes)."""


class VersionSkewError(SweepSpecError):
    """A spec written for a different schema version."""


class BadFieldError(SweepSpecError):
    """Any other malformed field: unknown keys, wrong types, bad overrides."""


def _known_design_slugs() -> List[str]:
    from repro.system.designs import PRESET_DESIGNS

    return sorted({design_slug(d.name) for d in PRESET_DESIGNS})


def _resolve_design(entry: Any, where: str) -> MMUDesign:
    """One spec design entry — a preset slug/name or an inline object."""
    if isinstance(entry, str):
        design = lookup_design(entry)
        if design is None:
            raise UnknownDesignError(
                f"{where}: unknown design {entry!r}; known designs: "
                f"{', '.join(_known_design_slugs())} (or an inline design "
                f"object)")
        return design
    if isinstance(entry, dict):
        try:
            return design_from_dict(entry)
        except ValueError as exc:
            raise BadFieldError(f"{where}: invalid inline design: {exc}")
    raise BadFieldError(
        f"{where}: a design must be a preset slug string or an inline "
        f"design object, got {type(entry).__name__}")


def design_to_wire(design: MMUDesign) -> Union[str, Dict[str, Any]]:
    """Serialize a design as its preset slug, or inline when no preset matches."""
    if lookup_design(design.name) == design:
        return design_slug(design.name)
    return design_to_dict(design)


def _require_bool(value: Any, where: str) -> bool:
    if not isinstance(value, bool):
        raise BadFieldError(f"{where} must be a boolean, got {value!r}")
    return value


def _reject_unknown_keys(obj: Dict[str, Any], known: Sequence[str],
                         where: str) -> None:
    unknown = sorted(set(obj) - set(known))
    if unknown:
        raise BadFieldError(
            f"{where}: unknown field(s) {', '.join(map(repr, unknown))}; "
            f"valid fields: {', '.join(known)}")


# -- spec sections --------------------------------------------------------

@dataclass(frozen=True)
class FaultSpec:
    """The fault plan: sweep each point under these VM-event rates.

    Fault runs are never cached (injection mutates page tables), always
    audit invariants, and run CLI-side only — ``/v1/sweep`` rejects
    fault-plan specs.
    """

    rates: Tuple[float, ...]
    seed: int = 0
    invariant_interval: int = 64

    def __post_init__(self) -> None:
        if not isinstance(self.rates, tuple) or not self.rates:
            raise BadFieldError(
                "faults.rates must be a non-empty array of rates")
        for rate in self.rates:
            if isinstance(rate, bool) or not isinstance(rate, (int, float)):
                raise BadFieldError(
                    f"faults.rates entries must be numbers, got {rate!r}")
            if rate < 0:
                raise BadFieldError(
                    f"faults.rates entries must be nonnegative, got {rate}")
        if isinstance(self.seed, bool) or not isinstance(self.seed, int):
            raise BadFieldError(
                f"faults.seed must be an integer, got {self.seed!r}")
        if isinstance(self.invariant_interval, bool) \
                or not isinstance(self.invariant_interval, int) \
                or self.invariant_interval < 1:
            raise BadFieldError(
                f"faults.invariant_interval must be an integer >= 1, "
                f"got {self.invariant_interval!r}")

    @classmethod
    def from_dict(cls, obj: Any) -> "FaultSpec":
        if not isinstance(obj, dict):
            raise BadFieldError(
                f"'faults' must be an object, got {type(obj).__name__}")
        _reject_unknown_keys(
            obj, ("rates", "seed", "invariant_interval"), "faults")
        rates = obj.get("rates")
        if not isinstance(rates, list):
            raise BadFieldError("faults.rates must be a non-empty array")
        return cls(
            rates=tuple(rates),
            seed=obj.get("seed", 0),
            invariant_interval=obj.get("invariant_interval", 64),
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rates": [float(rate) for rate in self.rates],
            "seed": self.seed,
            "invariant_interval": self.invariant_interval,
        }


@dataclass(frozen=True)
class OutputSpec:
    """What each result carries beyond cycles/instructions/requests."""

    include_counters: bool = False

    def __post_init__(self) -> None:
        _require_bool(self.include_counters, "output.include_counters")

    @classmethod
    def from_dict(cls, obj: Any) -> "OutputSpec":
        if not isinstance(obj, dict):
            raise BadFieldError(
                f"'output' must be an object, got {type(obj).__name__}")
        _reject_unknown_keys(obj, ("include_counters",), "output")
        return cls(include_counters=obj.get("include_counters", False))

    def to_dict(self) -> Dict[str, Any]:
        return {"include_counters": self.include_counters}


@dataclass(frozen=True)
class SweepPoint:
    """One explicit (workload, design, track_lifetimes) point."""

    workload: str
    design: MMUDesign
    track_lifetimes: bool = False

    @classmethod
    def from_dict(cls, obj: Any, where: str) -> "SweepPoint":
        if not isinstance(obj, dict):
            raise BadFieldError(
                f"{where} must be an object, got {type(obj).__name__}")
        _reject_unknown_keys(
            obj, ("workload", "design", "track_lifetimes"), where)
        return cls(
            workload=_resolve_workload(obj.get("workload"), where),
            design=_resolve_design(obj.get("design"), where),
            track_lifetimes=_require_bool(
                obj.get("track_lifetimes", False),
                f"{where}.track_lifetimes"),
        )

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "workload": self.workload,
            "design": design_to_wire(self.design),
        }
        if self.track_lifetimes:
            out["track_lifetimes"] = True
        return out


def _resolve_workload(name: Any, where: str) -> str:
    if not isinstance(name, str):
        raise BadFieldError(
            f"{where}: workload must be a string, got {type(name).__name__}")
    if name not in registry.WORKLOADS:
        raise UnknownWorkloadError(
            f"{where}: unknown workload {name!r}; known workloads: "
            f"{', '.join(sorted(registry.WORKLOADS))}")
    return name


def _validate_scale(scale: Any) -> Optional[float]:
    if scale is None:
        return None
    if isinstance(scale, bool) or not isinstance(scale, (int, float)):
        raise BadScaleError(
            f"'scale' must be a positive number or null, "
            f"got {scale!r}")
    if not scale > 0:
        raise BadScaleError(f"'scale' must be positive, got {scale}")
    return float(scale)


def _validate_overrides(config: Dict[str, Any]) -> None:
    """Scalar SoCConfig overrides only, same contract as the service."""
    if not isinstance(config, dict):
        raise BadFieldError(
            f"'config' must be an object of SoCConfig field overrides, "
            f"got {type(config).__name__}")
    base = SoCConfig()
    field_names = {f.name for f in dataclasses.fields(SoCConfig)}
    for key, value in config.items():
        if key not in field_names:
            raise BadFieldError(f"config: unknown SoCConfig field {key!r}")
        current = getattr(base, key)
        if isinstance(current, bool) or \
                not isinstance(current, (int, float, type(None))):
            raise BadFieldError(
                f"config: SoCConfig field {key!r} is not a scalar; only "
                f"scalar fields can be overridden in a spec")
        if value is not None and (
                isinstance(value, bool)
                or not isinstance(value, (int, float))):
            raise BadFieldError(
                f"config: override for {key!r} must be a number or null, "
                f"got {type(value).__name__}")
    try:
        dataclasses.replace(base, **config)
    except (TypeError, ValueError) as exc:
        raise BadFieldError(f"config: invalid override: {exc}")


# -- the spec itself ------------------------------------------------------

_TOP_LEVEL_KEYS = ("version", "name", "workloads", "designs", "points",
                   "scale", "config", "track_lifetimes", "check_invariants",
                   "faults", "output")


@dataclass(frozen=True)
class SweepSpec:
    """One complete, validated, serializable experiment plan.

    Exactly one enumeration mode is set: a ``workloads × designs`` grid
    (expanded workload-major, matching the figure drivers) or an
    explicit ``points`` list (order preserved).  Everything else is
    execution policy shared by every point.
    """

    workloads: Tuple[str, ...] = ()
    designs: Tuple[MMUDesign, ...] = ()
    points: Tuple[SweepPoint, ...] = ()
    scale: Optional[float] = None
    config: Dict[str, Any] = field(default_factory=dict)
    track_lifetimes: bool = False
    check_invariants: bool = False
    faults: Optional[FaultSpec] = None
    output: OutputSpec = field(default_factory=OutputSpec)
    #: Free-form label; excluded from the fingerprint.
    name: Optional[str] = None
    version: int = SPEC_VERSION

    def __post_init__(self) -> None:
        if self.version != SPEC_VERSION:
            raise VersionSkewError(
                f"spec version {self.version!r} is not supported; this "
                f"build reads version {SPEC_VERSION}")
        if self.name is not None and not isinstance(self.name, str):
            raise BadFieldError(
                f"'name' must be a string or null, got {self.name!r}")
        if self.points and (self.workloads or self.designs):
            raise ConflictingFieldsError(
                "give either a workloads×designs grid or an explicit "
                "'points' list, not both")
        if not self.points:
            if not self.workloads or not self.designs:
                raise BadFieldError(
                    "spec needs either non-empty 'workloads' and 'designs' "
                    "(a grid) or a non-empty 'points' list")
        for index, workload in enumerate(self.workloads):
            _resolve_workload(workload, f"workloads[{index}]")
        for index, design in enumerate(self.designs):
            if not isinstance(design, MMUDesign):
                raise BadFieldError(
                    f"designs[{index}] must be an MMUDesign, "
                    f"got {type(design).__name__}")
        names_seen: Dict[str, MMUDesign] = {}
        for design in self._all_designs():
            prior = names_seen.setdefault(design.name, design)
            if prior != design:
                raise ConflictingFieldsError(
                    f"two different designs share the name "
                    f"{design.name!r}; results are keyed by design name, "
                    f"so names must be unique within a spec")
        _validate_scale(self.scale)
        _validate_overrides(self.config)
        _require_bool(self.track_lifetimes, "'track_lifetimes'")
        _require_bool(self.check_invariants, "'check_invariants'")
        if self.faults is not None:
            if self.track_lifetimes or any(
                    p.track_lifetimes for p in self.points):
                raise ConflictingFieldsError(
                    "a fault-plan sweep never tracks lifetimes "
                    "(chaos runs are not cached); drop 'track_lifetimes'")

    def _all_designs(self) -> Iterable[MMUDesign]:
        if self.points:
            return (p.design for p in self.points)
        return iter(self.designs)

    # -- construction -----------------------------------------------------
    @classmethod
    def grid(cls, workloads: Iterable[str], designs: Iterable,
             **kwargs: Any) -> "SweepSpec":
        """A workloads×designs grid spec.

        ``designs`` entries may be :class:`MMUDesign` objects or preset
        slugs/names (resolved through the registry, like JSON specs).
        """
        resolved = tuple(
            design if isinstance(design, MMUDesign)
            else _resolve_design(design, f"designs[{index}]")
            for index, design in enumerate(designs))
        return cls(workloads=tuple(workloads), designs=resolved, **kwargs)

    @classmethod
    def explicit(cls, points: Iterable[Tuple], **kwargs: Any) -> "SweepSpec":
        """An explicit-points spec from ``(workload, design[, track])`` tuples.

        Each design may be an :class:`MMUDesign` or a preset slug/name.
        """
        resolved = []
        for index, point in enumerate(points):
            if len(point) == 2:
                workload, design = point
                track = False
            else:
                workload, design, track = point
            if not isinstance(design, MMUDesign):
                design = _resolve_design(design, f"points[{index}].design")
            resolved.append(SweepPoint(workload, design, bool(track)))
        return cls(points=tuple(resolved), **kwargs)

    @classmethod
    def from_dict(cls, obj: Any) -> "SweepSpec":
        """Parse and strictly validate a decoded JSON spec."""
        if not isinstance(obj, dict):
            raise BadFieldError(
                f"a sweep spec must be a JSON object, "
                f"got {type(obj).__name__}")
        _reject_unknown_keys(obj, _TOP_LEVEL_KEYS, "spec")
        if "version" not in obj:
            raise VersionSkewError(
                f"spec has no 'version' field; this build reads "
                f"version {SPEC_VERSION}")
        version = obj["version"]
        if isinstance(version, bool) or not isinstance(version, int):
            raise VersionSkewError(
                f"'version' must be an integer, got {version!r}")
        workloads = obj.get("workloads", [])
        if not isinstance(workloads, list):
            raise BadFieldError(
                f"'workloads' must be an array of workload names, "
                f"got {type(workloads).__name__}")
        raw_designs = obj.get("designs", [])
        if not isinstance(raw_designs, list):
            raise BadFieldError(
                f"'designs' must be an array of design slugs or inline "
                f"design objects, got {type(raw_designs).__name__}")
        designs = tuple(_resolve_design(entry, f"designs[{index}]")
                        for index, entry in enumerate(raw_designs))
        raw_points = obj.get("points", [])
        if not isinstance(raw_points, list):
            raise BadFieldError(
                f"'points' must be an array of point objects, "
                f"got {type(raw_points).__name__}")
        points = tuple(SweepPoint.from_dict(entry, f"points[{index}]")
                       for index, entry in enumerate(raw_points))
        config = obj.get("config", {})
        faults = (FaultSpec.from_dict(obj["faults"])
                  if obj.get("faults") is not None else None)
        output = (OutputSpec.from_dict(obj["output"])
                  if obj.get("output") is not None else OutputSpec())
        return cls(
            version=version,
            name=obj.get("name"),
            workloads=tuple(workloads),
            designs=designs,
            points=points,
            scale=obj.get("scale"),
            config=dict(config) if isinstance(config, dict) else config,
            track_lifetimes=obj.get("track_lifetimes", False),
            check_invariants=obj.get("check_invariants", False),
            faults=faults,
            output=output,
        )

    @classmethod
    def from_json(cls, text: str) -> "SweepSpec":
        try:
            decoded = json.loads(text)
        except ValueError as exc:
            raise BadFieldError(f"spec is not valid JSON: {exc}")
        return cls.from_dict(decoded)

    # -- serialization ----------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON-ready form (defaults omitted, designs as wire form)."""
        out: Dict[str, Any] = {"version": self.version}
        if self.name is not None:
            out["name"] = self.name
        if self.points:
            out["points"] = [p.to_dict() for p in self.points]
        else:
            out["workloads"] = list(self.workloads)
            out["designs"] = [design_to_wire(d) for d in self.designs]
        if self.scale is not None:
            out["scale"] = self.scale
        if self.config:
            out["config"] = dict(self.config)
        if self.track_lifetimes:
            out["track_lifetimes"] = True
        if self.check_invariants:
            out["check_invariants"] = True
        if self.faults is not None:
            out["faults"] = self.faults.to_dict()
        if self.output != OutputSpec():
            out["output"] = self.output.to_dict()
        return out

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True) + "\n"

    def fingerprint(self) -> str:
        """Stable SHA-256 of the canonical form, ``name`` excluded."""
        canonical = self.to_dict()
        canonical.pop("name", None)
        blob = json.dumps(canonical, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    # -- expansion --------------------------------------------------------
    def resolved_points(self) -> List[Tuple[str, MMUDesign, bool]]:
        """The full point list, ready for ``ResultCache.run_many``.

        Grid mode expands workload-major (all designs for the first
        workload, then the next), matching the figure drivers' native
        enumeration order.
        """
        if self.points:
            return [(p.workload, p.design, p.track_lifetimes)
                    for p in self.points]
        return [(w, d, self.track_lifetimes)
                for w in self.workloads for d in self.designs]

    def fault_points(self) -> List[Tuple[str, MMUDesign, float]]:
        """The fault grid: rate innermost, matching the chaos driver."""
        if self.faults is None:
            raise ValueError("spec has no fault plan")
        return [(workload, design, rate)
                for workload, design, _track in self.resolved_points()
                for rate in self.faults.rates]

    def apply_config(self, base: SoCConfig) -> SoCConfig:
        """``base`` with this spec's scalar overrides applied."""
        if not self.config:
            return base
        return dataclasses.replace(base, **self.config)


# -- running a (non-fault) spec through a ResultCache ---------------------

@dataclass
class SweepOutcome:
    """Results of one :func:`run_sweep`, in spec point order."""

    spec: SweepSpec
    points: List[Tuple[str, MMUDesign, bool]]
    results: List[Any]
    simulations_run: int
    scale: float

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready report (``--sweep-out``); honours output selection."""
        include_counters = self.spec.output.include_counters
        points = []
        for (workload, design, track), result in zip(self.points,
                                                     self.results):
            entry: Dict[str, Any] = {
                "workload": workload,
                "design": design.name,
                "design_slug": design_slug(design.name),
                "track_lifetimes": track,
                "cycles": result.cycles,
                "instructions": result.instructions,
                "requests": result.requests,
            }
            if include_counters:
                entry["counters"] = dict(result.counters)
            points.append(entry)
        return {
            "name": self.spec.name,
            "fingerprint": self.spec.fingerprint(),
            "scale": self.scale,
            "simulations_run": self.simulations_run,
            "points": points,
        }

    def render(self) -> str:
        label = self.spec.name or "unnamed"
        header = (f"{'workload':14s} {'design':28s} {'cycles':>14s} "
                  f"{'instructions':>13s} {'requests':>10s}")
        lines = [
            f"Sweep {label!r} (fingerprint {self.spec.fingerprint()[:12]}, "
            f"scale {self.scale:g}): {len(self.points)} point(s), "
            f"{self.simulations_run} simulated, "
            f"{len(self.points) - self.simulations_run} from cache",
            "",
            header,
            "-" * len(header),
        ]
        for (workload, design, _track), result in zip(self.points,
                                                      self.results):
            lines.append(
                f"{workload:14s} {design.name:28s} {result.cycles:14.0f} "
                f"{result.instructions:13d} {result.requests:10d}")
        return "\n".join(lines)


def run_sweep(spec: SweepSpec, cache, trace_ctx=None) -> SweepOutcome:
    """Run a non-fault spec through a ``ResultCache`` (memo/disk tiers apply).

    The cache's scale/config/auditing are temporarily overridden by the
    spec's and restored afterwards, exactly as the service does per
    request.  Fault-plan specs run through
    :func:`repro.experiments.chaos.run_spec` instead (fault injection
    mutates page tables and must never populate the caches).
    """
    if spec.faults is not None:
        raise ValueError(
            "fault-plan specs run through chaos.run_spec, not run_sweep")
    saved = (cache.scale, cache.config, cache.check_invariants)
    before = cache.simulations_run
    try:
        if spec.scale is not None:
            cache.scale = spec.scale
        cache.config = spec.apply_config(cache.config)
        if spec.check_invariants:
            cache.check_invariants = True
        effective = cache.effective_scale()
        points = spec.resolved_points()
        results = cache.run_many(points, trace_ctx=trace_ctx)
    finally:
        cache.scale, cache.config, cache.check_invariants = saved
    return SweepOutcome(
        spec=spec, points=points, results=results,
        simulations_run=cache.simulations_run - before, scale=effective)
