"""Tables 1 and 2: configuration summaries.

These "experiments" render the simulated configuration so runs are
self-documenting and the values can be asserted against the paper.
"""

from __future__ import annotations

from repro.analysis.report import format_table, section
from repro.system.config import SoCConfig
from repro.system.designs import TABLE2_DESIGNS


__all__ = ["main", "render_table1", "render_table2"]

def render_table1(config: SoCConfig = None) -> str:
    """Table 1: simulation configuration details."""
    cfg = config if config is not None else SoCConfig()
    rows = [
        ["GPU", f"{cfg.n_cus} CUs, {cfg.lanes_per_cu} lanes per CU, "
                f"{cfg.frequency_ghz * 1000:.0f} MHz"],
        ["L1 GPU cache", f"per-CU {cfg.l1.size_bytes // 1024}KB, "
                         f"write-through no allocate"],
        ["L2 GPU cache", f"shared {cfg.l2.size_bytes // (1024 * 1024)}MB, "
                         f"{cfg.l2.n_banks} banks, write-back, "
                         f"{cfg.l2.line_size}B lines"],
        ["TLBs", f"{cfg.per_cu_tlb_entries}-entry per-CU TLBs (4KB pages)"],
        ["IOMMU", f"shared TLB ({cfg.iommu.shared_tlb_entries}-entry), "
                  f"{cfg.iommu.ptw_threads} concurrent PTW, "
                  f"{cfg.iommu.pwc_size_bytes // 1024}KB page-walk cache"],
        ["DRAM, NoC", f"{cfg.dram_bandwidth_gbps:.0f} GB/s; dance-hall GPU NoC; "
                      f"PCIe-protocol GPU↔IOMMU latency "
                      f"{cfg.interconnect.gpu_to_iommu:.0f}+"
                      f"{cfg.interconnect.iommu_to_gpu:.0f} cycles"],
    ]
    return section("Table 1: simulation configuration",
                   format_table(["component", "configuration"], rows))


def render_table2() -> str:
    """Table 2: evaluated MMU design configurations."""
    rows = []
    for d in TABLE2_DESIGNS:
        per_cu = ("Infinite size" if d.per_cu_tlb_entries is None and d.ideal
                  else "-" if d.per_cu_tlb_entries is None
                  else f"{d.per_cu_tlb_entries}-entry")
        iommu = ("Infinite size" if d.iommu_entries is None
                 else f"{d.iommu_entries}-entry")
        if d.fbt_as_second_level_tlb:
            iommu += " +16K-entry FBT"
        bw = ("Infinite" if d.iommu_bandwidth == float("inf")
              else f"{d.iommu_bandwidth:g} Access/Cycle")
        rows.append([d.name, per_cu, iommu, bw])
    return section("Table 2: evaluated MMU design configurations",
                   format_table(["Design", "Per-CU TLB", "IOMMU TLB", "B/W Limit"],
                                rows))


def main() -> None:
    print(render_table1())
    print(render_table2())


if __name__ == "__main__":
    main()
