"""GPU substrate: compute units, coalescer, scratchpad."""

from repro.gpu.coalescer import CoalescedRequest, Coalescer
from repro.gpu.cu import ComputeUnit
from repro.gpu.scratchpad import Scratchpad

__all__ = ["CoalescedRequest", "Coalescer", "ComputeUnit", "Scratchpad"]
