"""Memory-access coalescer.

Each CU coalesces its 32 lanes' addresses into the minimum number of
cache-line requests before consulting the TLB (§2.1: "The TLB is
consulted after the per-lane accesses have been coalesced").  Regular
workloads coalesce a whole warp into one or two requests; divergent
scatter/gather instructions produce tens of requests to different lines
— and often different *pages*, which is what stresses translation.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.memsys.addressing import DEFAULT_LINE_SIZE, PAGE_SIZE

__all__ = ["CoalescedRequest", "Coalescer", "coalesce_arrays"]

_LINES_PER_PAGE = PAGE_SIZE // DEFAULT_LINE_SIZE


class CoalescedRequest:
    """One line-sized request produced by coalescing a warp access.

    Immutable by convention and shared freely: the per-trace coalescing
    cache replays the same request objects under every MMU design.
    ``vpn`` is precomputed at construction — the hierarchies read it on
    every access, and deriving it there cost a division per request.
    """

    __slots__ = ("line_addr", "is_write", "n_lanes", "vpn")

    def __init__(self, line_addr: int, is_write: bool, n_lanes: int) -> None:
        self.line_addr = line_addr  # virtual line address
        self.is_write = is_write
        self.n_lanes = n_lanes  # how many lanes this request serves
        self.vpn = line_addr // _LINES_PER_PAGE

    @property
    def byte_addr(self) -> int:
        return self.line_addr * DEFAULT_LINE_SIZE

    def __repr__(self) -> str:
        return (
            f"CoalescedRequest(line_addr={self.line_addr!r}, "
            f"is_write={self.is_write!r}, n_lanes={self.n_lanes!r})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CoalescedRequest):
            return NotImplemented
        return (
            self.line_addr == other.line_addr
            and self.is_write == other.is_write
            and self.n_lanes == other.n_lanes
        )

    def __hash__(self) -> int:
        return hash((self.line_addr, self.is_write, self.n_lanes))


class Coalescer:
    """Merges lane addresses into per-line requests."""

    def __init__(self, line_size: int = DEFAULT_LINE_SIZE) -> None:
        if line_size <= 0:
            raise ValueError("line size must be positive")
        self.line_size = line_size
        self.instructions = 0
        self.requests = 0

    def coalesce(self, addresses: Sequence[int], is_write: bool = False) -> List[CoalescedRequest]:
        """Coalesce one instruction's lane addresses.

        Requests come out in first-appearance order (the order lanes are
        serviced), each annotated with how many lanes it satisfies.
        """
        lane_counts: dict = {}
        for addr in addresses:
            line = addr // self.line_size
            lane_counts[line] = lane_counts.get(line, 0) + 1
        requests = [
            CoalescedRequest(line_addr=line, is_write=is_write, n_lanes=count)
            for line, count in lane_counts.items()
        ]
        self.instructions += 1
        self.requests += len(requests)
        return requests

    def mean_divergence(self) -> float:
        """Average requests per coalesced instruction so far."""
        return self.requests / self.instructions if self.instructions else 0.0


def coalesce_arrays(lanes, lane_counts, line_size: int = DEFAULT_LINE_SIZE):
    """Batch-coalesce many instructions' lane addresses at once.

    ``lanes`` concatenates every instruction's lane addresses;
    ``lane_counts[i]`` says how many of them belong to instruction
    ``i``.  Returns NumPy arrays ``(req_line, req_lanes,
    inst_req_counts)`` — the coalesced line addresses and their lane
    counts, concatenated in instruction order, plus the number of
    requests each instruction produced.

    Order and counts match :meth:`Coalescer.coalesce` exactly (distinct
    lines in first-appearance order, each annotated with the number of
    lanes it serves): per-instruction dict insertion order is the order
    of each line's first lane, which the group-boundary construction
    below reproduces with two ``lexsort`` passes instead of one Python
    dict per instruction.
    """
    import numpy as np

    if line_size <= 0:
        raise ValueError("line size must be positive")
    lanes = np.asarray(lanes, dtype=np.int64)
    lane_counts = np.asarray(lane_counts, dtype=np.int64)
    n_insts = len(lane_counts)
    if int(lane_counts.sum()) != lanes.size:
        raise ValueError(
            f"lane array holds {lanes.size} addresses but lane_counts "
            f"claims {int(lane_counts.sum())}")
    if lanes.size == 0:
        return (np.zeros(0, np.int64), np.zeros(0, np.int64),
                np.zeros(n_insts, np.int64))
    inst_id = np.repeat(np.arange(n_insts, dtype=np.int64), lane_counts)
    lines = lanes // line_size
    lane_idx = np.arange(lanes.size, dtype=np.int64)
    # Sort lanes by (instruction, line, arrival); each (instruction,
    # line) run is then one coalesced request whose first element is
    # the line's first-appearing lane.
    order = np.lexsort((lane_idx, lines, inst_id))
    s_inst = inst_id[order]
    s_line = lines[order]
    s_idx = lane_idx[order]
    boundary = np.empty(lanes.size, dtype=bool)
    boundary[0] = True
    boundary[1:] = (s_inst[1:] != s_inst[:-1]) | (s_line[1:] != s_line[:-1])
    starts = np.flatnonzero(boundary)
    group_counts = np.diff(np.append(starts, lanes.size))
    # Restore first-appearance order within each instruction by sorting
    # the groups on (instruction, first lane arrival).
    first_arrival = s_idx[starts]
    order2 = np.lexsort((first_arrival, s_inst[starts]))
    req_line = s_line[starts][order2]
    req_lanes = group_counts[order2]
    inst_req_counts = np.bincount(
        s_inst[starts], minlength=n_insts).astype(np.int64)
    return req_line, req_lanes, inst_req_counts
