"""Memory-access coalescer.

Each CU coalesces its 32 lanes' addresses into the minimum number of
cache-line requests before consulting the TLB (§2.1: "The TLB is
consulted after the per-lane accesses have been coalesced").  Regular
workloads coalesce a whole warp into one or two requests; divergent
scatter/gather instructions produce tens of requests to different lines
— and often different *pages*, which is what stresses translation.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.memsys.addressing import DEFAULT_LINE_SIZE, PAGE_SIZE

__all__ = ["CoalescedRequest", "Coalescer"]

_LINES_PER_PAGE = PAGE_SIZE // DEFAULT_LINE_SIZE


class CoalescedRequest:
    """One line-sized request produced by coalescing a warp access.

    Immutable by convention and shared freely: the per-trace coalescing
    cache replays the same request objects under every MMU design.
    ``vpn`` is precomputed at construction — the hierarchies read it on
    every access, and deriving it there cost a division per request.
    """

    __slots__ = ("line_addr", "is_write", "n_lanes", "vpn")

    def __init__(self, line_addr: int, is_write: bool, n_lanes: int) -> None:
        self.line_addr = line_addr  # virtual line address
        self.is_write = is_write
        self.n_lanes = n_lanes  # how many lanes this request serves
        self.vpn = line_addr // _LINES_PER_PAGE

    @property
    def byte_addr(self) -> int:
        return self.line_addr * DEFAULT_LINE_SIZE

    def __repr__(self) -> str:
        return (
            f"CoalescedRequest(line_addr={self.line_addr!r}, "
            f"is_write={self.is_write!r}, n_lanes={self.n_lanes!r})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CoalescedRequest):
            return NotImplemented
        return (
            self.line_addr == other.line_addr
            and self.is_write == other.is_write
            and self.n_lanes == other.n_lanes
        )

    def __hash__(self) -> int:
        return hash((self.line_addr, self.is_write, self.n_lanes))


class Coalescer:
    """Merges lane addresses into per-line requests."""

    def __init__(self, line_size: int = DEFAULT_LINE_SIZE) -> None:
        if line_size <= 0:
            raise ValueError("line size must be positive")
        self.line_size = line_size
        self.instructions = 0
        self.requests = 0

    def coalesce(self, addresses: Sequence[int], is_write: bool = False) -> List[CoalescedRequest]:
        """Coalesce one instruction's lane addresses.

        Requests come out in first-appearance order (the order lanes are
        serviced), each annotated with how many lanes it satisfies.
        """
        lane_counts: dict = {}
        for addr in addresses:
            line = addr // self.line_size
            lane_counts[line] = lane_counts.get(line, 0) + 1
        requests = [
            CoalescedRequest(line_addr=line, is_write=is_write, n_lanes=count)
            for line, count in lane_counts.items()
        ]
        self.instructions += 1
        self.requests += len(requests)
        return requests

    def mean_divergence(self) -> float:
        """Average requests per coalesced instruction so far."""
        return self.requests / self.instructions if self.instructions else 0.0
