"""Memory-access coalescer.

Each CU coalesces its 32 lanes' addresses into the minimum number of
cache-line requests before consulting the TLB (§2.1: "The TLB is
consulted after the per-lane accesses have been coalesced").  Regular
workloads coalesce a whole warp into one or two requests; divergent
scatter/gather instructions produce tens of requests to different lines
— and often different *pages*, which is what stresses translation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.memsys.addressing import DEFAULT_LINE_SIZE, PAGE_SIZE


@dataclass(frozen=True)
class CoalescedRequest:
    """One line-sized request produced by coalescing a warp access."""

    line_addr: int  # virtual line address
    is_write: bool
    n_lanes: int  # how many lanes this request serves

    @property
    def byte_addr(self) -> int:
        return self.line_addr * DEFAULT_LINE_SIZE

    @property
    def vpn(self) -> int:
        return self.byte_addr // PAGE_SIZE


class Coalescer:
    """Merges lane addresses into per-line requests."""

    def __init__(self, line_size: int = DEFAULT_LINE_SIZE) -> None:
        if line_size <= 0:
            raise ValueError("line size must be positive")
        self.line_size = line_size
        self.instructions = 0
        self.requests = 0

    def coalesce(self, addresses: Sequence[int], is_write: bool = False) -> List[CoalescedRequest]:
        """Coalesce one instruction's lane addresses.

        Requests come out in first-appearance order (the order lanes are
        serviced), each annotated with how many lanes it satisfies.
        """
        lane_counts: dict = {}
        for addr in addresses:
            line = addr // self.line_size
            lane_counts[line] = lane_counts.get(line, 0) + 1
        requests = [
            CoalescedRequest(line_addr=line, is_write=is_write, n_lanes=count)
            for line, count in lane_counts.items()
        ]
        self.instructions += 1
        self.requests += len(requests)
        return requests

    def mean_divergence(self) -> float:
        """Average requests per coalesced instruction so far."""
        return self.requests / self.instructions if self.instructions else 0.0
