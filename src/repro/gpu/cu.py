"""Compute-unit timing state.

GPUs tolerate memory latency by keeping many requests in flight per CU
(§1: up to 40 execution contexts).  We model this with an
*outstanding-request window*: a CU issues one coalesced request per
cycle as long as it has fewer than ``window`` requests in flight; when
the window is full, issue stalls until the oldest outstanding request
completes.  This is the mechanism by which serialization at the shared
IOMMU TLB turns into lost performance — latency only hurts once it
exceeds what the window can hide.
"""

from __future__ import annotations

import heapq
from typing import List

from repro.gpu.coalescer import Coalescer
from repro.gpu.scratchpad import Scratchpad


__all__ = ["ComputeUnit"]

class ComputeUnit:
    """Issue/outstanding-request bookkeeping for one CU."""

    def __init__(
        self,
        cu_id: int,
        window: int = 64,
        issue_interval: float = 4.0,
        scratchpad: Scratchpad = None,
    ) -> None:
        if window <= 0:
            raise ValueError("outstanding-request window must be positive")
        if issue_interval <= 0:
            raise ValueError("issue interval must be positive")
        self.cu_id = cu_id
        self.window = window
        self.issue_interval = issue_interval
        self.scratchpad = scratchpad if scratchpad is not None else Scratchpad()
        self.coalescer = Coalescer()
        self._outstanding: List[float] = []  # completion times, min-heap
        self.next_issue_time = 0.0
        self.last_completion = 0.0
        self.stall_cycles = 0.0
        self.requests_issued = 0

    def in_flight(self) -> int:
        return len(self._outstanding)

    def earliest_issue(self, now: float) -> float:
        """Earliest cycle a new request can issue, given the window."""
        t = now if now > self.next_issue_time else self.next_issue_time
        if len(self._outstanding) >= self.window:
            oldest = self._outstanding[0]
            if oldest > t:
                self.stall_cycles += oldest - t
                t = oldest
        return t

    def issue(self, issue_time: float, completion_time: float, gap: float = 1.0) -> None:
        """Record a request issued at ``issue_time`` completing at ``completion_time``.

        ``gap`` is the pipeline occupancy until the *next* request can
        issue: 1 cycle between coalesced requests of one instruction,
        ``issue_interval`` cycles after an instruction's last request
        (modelling the compute between memory instructions).
        """
        if completion_time < issue_time:
            raise ValueError("completion cannot precede issue")
        # Retire anything that finished before this issue.
        while self._outstanding and self._outstanding[0] <= issue_time:
            heapq.heappop(self._outstanding)
        heapq.heappush(self._outstanding, completion_time)
        if completion_time > self.last_completion:
            self.last_completion = completion_time
        self.next_issue_time = issue_time + gap
        self.requests_issued += 1

    def drain_time(self) -> float:
        """Completion time of the last outstanding request."""
        if self._outstanding:
            return max(self._outstanding)
        return self.last_completion
