"""Per-CU scratchpad memory.

A software-managed local store (LDS/shared memory).  Accesses complete
in a short fixed latency and never consult the TLB or caches (§2.1) —
which is why scratchpad-heavy workloads like ``nw`` and ``pathfinder``
show high *infinite-TLB* miss ratios in Figure 2: their few global
accesses are bursty loads/stores at kernel boundaries.
"""

from __future__ import annotations


__all__ = ["Scratchpad"]

class Scratchpad:
    """Fixed-latency local memory attached to one CU."""

    def __init__(self, size_bytes: int = 64 * 1024, latency: float = 2.0) -> None:
        if size_bytes <= 0:
            raise ValueError("scratchpad size must be positive")
        if latency < 0:
            raise ValueError("latency must be nonnegative")
        self.size_bytes = size_bytes
        self.latency = latency
        self.accesses = 0

    def access(self, now: float) -> float:
        """Service one scratchpad instruction; return its completion time."""
        self.accesses += 1
        return now + self.latency
