"""Memory-system substrate: caches, TLBs, page tables, IOMMU, DRAM."""

from repro.memsys.address_space import AddressSpace, Mapping, System
from repro.memsys.addressing import (
    DEFAULT_LINE_SIZE,
    PAGE_SIZE,
    line_address,
    line_index_in_page,
    lines_per_page,
    page_number,
)
from repro.memsys.cache import Cache, CacheConfig, CacheLine
from repro.memsys.directory import CoherenceProbe, Directory
from repro.memsys.dram import DRAM
from repro.memsys.interconnect import InterconnectConfig
from repro.memsys.iommu import IOMMU, IOMMUConfig, TranslationOutcome
from repro.memsys.page_table import FrameAllocator, PageTable, WalkResult
from repro.memsys.page_table_walker import PageTableWalker, TimedWalk
from repro.memsys.page_walk_cache import PageWalkCache
from repro.memsys.permissions import (
    PageFault,
    PermissionFault,
    Permissions,
    ReadWriteSynonymFault,
)
from repro.memsys.tlb import TLB, TLBEntry

__all__ = [
    "AddressSpace", "Mapping", "System",
    "DEFAULT_LINE_SIZE", "PAGE_SIZE",
    "line_address", "line_index_in_page", "lines_per_page", "page_number",
    "Cache", "CacheConfig", "CacheLine",
    "CoherenceProbe", "Directory",
    "DRAM", "InterconnectConfig",
    "IOMMU", "IOMMUConfig", "TranslationOutcome",
    "FrameAllocator", "PageTable", "WalkResult",
    "PageTableWalker", "TimedWalk", "PageWalkCache",
    "PageFault", "PermissionFault", "Permissions", "ReadWriteSynonymFault",
    "TLB", "TLBEntry",
]
