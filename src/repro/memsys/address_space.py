"""Process address spaces and a minimal OS-like memory mapper.

The workload generators (``repro.workloads``) lay out their data
structures — CSR graph arrays, matrices, grids — in a process's virtual
address space through this module.  It plays the role the OS plays in
the paper's full-system simulation: building page tables, backing pages
with physical frames, and (for synonym experiments) mapping the same
frames at multiple virtual addresses, optionally across address spaces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.memsys.addressing import PAGE_SIZE, page_number
from repro.memsys.page_table import FrameAllocator, PageTable
from repro.memsys.permissions import PageFault, Permissions


__all__ = ["AddressSpace", "Mapping", "System"]


@dataclass
class Mapping:
    """A contiguous virtual allocation."""

    base_va: int
    n_pages: int
    permissions: Permissions
    large: bool = False  # backed by 2 MB pages

    @property
    def size_bytes(self) -> int:
        return self.n_pages * PAGE_SIZE

    @property
    def end_va(self) -> int:
        return self.base_va + self.size_bytes

    def contains(self, va: int) -> bool:
        return self.base_va <= va < self.end_va


class AddressSpace:
    """One process's virtual address space (one ASID, one page table)."""

    def __init__(
        self,
        asid: int,
        frame_allocator: Optional[FrameAllocator] = None,
        base_va: int = 0x1000_0000,
    ) -> None:
        self.asid = asid
        self.frames = frame_allocator if frame_allocator is not None else FrameAllocator()
        self.page_table = PageTable(self.frames)
        self._next_va = base_va
        self.mappings: List[Mapping] = []

    # -- allocation -------------------------------------------------------
    def mmap(
        self,
        n_pages: int,
        permissions: Permissions = Permissions.READ_WRITE,
        align_pages: int = 1,
        large_pages: bool = False,
    ) -> Mapping:
        """Allocate ``n_pages`` of fresh, physically-backed virtual memory.

        With ``large_pages=True`` the allocation is rounded up to whole
        2 MB pages, virtually aligned, and backed by physically
        contiguous, naturally aligned frames mapped at the page-
        directory level (§4.3, "Large Page Support").
        """
        if n_pages <= 0:
            raise ValueError("must allocate at least one page")
        if align_pages <= 0:
            raise ValueError("alignment must be positive")
        if large_pages:
            from repro.memsys.addressing import BASE_PAGES_PER_LARGE
            chunk = BASE_PAGES_PER_LARGE
            n_pages = ((n_pages + chunk - 1) // chunk) * chunk
            align_pages = max(align_pages, chunk)
        align_bytes = align_pages * PAGE_SIZE
        base = ((self._next_va + align_bytes - 1) // align_bytes) * align_bytes
        base_vpn = page_number(base)
        if large_pages:
            from repro.memsys.addressing import BASE_PAGES_PER_LARGE
            for i in range(0, n_pages, BASE_PAGES_PER_LARGE):
                ppn = self.frames.allocate_contiguous(
                    BASE_PAGES_PER_LARGE, align=BASE_PAGES_PER_LARGE)
                self.page_table.map_large(base_vpn + i, ppn, permissions)
        else:
            for i in range(n_pages):
                self.page_table.map(base_vpn + i, self.frames.allocate(),
                                    permissions)
        self._next_va = base + n_pages * PAGE_SIZE
        mapping = Mapping(base_va=base, n_pages=n_pages,
                          permissions=permissions, large=large_pages)
        self.mappings.append(mapping)
        return mapping

    def alloc_array(self, n_elements: int, element_size: int,
                    permissions: Permissions = Permissions.READ_WRITE) -> Mapping:
        """Allocate a page-aligned array of ``n_elements``."""
        if n_elements <= 0 or element_size <= 0:
            raise ValueError("array dimensions must be positive")
        n_bytes = n_elements * element_size
        n_pages = (n_bytes + PAGE_SIZE - 1) // PAGE_SIZE
        return self.mmap(n_pages, permissions)

    def map_synonym(
        self,
        of: Mapping,
        permissions: Optional[Permissions] = None,
    ) -> Mapping:
        """Map a second virtual range onto the *same* physical frames.

        This creates virtual-address synonyms within this address space
        — the situation the backward table's leading-VPN discipline
        exists to handle (§4.1).
        """
        perms = permissions if permissions is not None else of.permissions
        base = self._next_va
        base_vpn = page_number(base)
        source_vpn = page_number(of.base_va)
        for i in range(of.n_pages):
            translation = self.page_table.lookup(source_vpn + i)
            if translation is None:
                raise ValueError(f"source mapping page {source_vpn + i:#x} is not mapped")
            ppn, _ = translation
            self.page_table.map(base_vpn + i, ppn, perms)
        self._next_va = base + of.size_bytes
        mapping = Mapping(base_va=base, n_pages=of.n_pages, permissions=perms)
        self.mappings.append(mapping)
        return mapping

    def share_into(self, other: "AddressSpace", mapping: Mapping) -> Mapping:
        """Map this space's ``mapping`` frames into ``other`` (cross-ASID sharing)."""
        base = other._next_va
        base_vpn = page_number(base)
        source_vpn = page_number(mapping.base_va)
        for i in range(mapping.n_pages):
            translation = self.page_table.lookup(source_vpn + i)
            if translation is None:
                raise ValueError(f"source page {source_vpn + i:#x} is not mapped")
            ppn, _ = translation
            other.page_table.map(base_vpn + i, ppn, mapping.permissions)
        other._next_va = base + mapping.size_bytes
        shared = Mapping(base_va=base, n_pages=mapping.n_pages, permissions=mapping.permissions)
        other.mappings.append(shared)
        return shared

    # -- OS-style page events (fault injection / chaos testing) -------------
    def remap_page(self, vpn: int) -> int:
        """Move one 4 KB page to a fresh physical frame (page migration).

        Keeps the page's permissions; returns the new PPN.  The caller is
        responsible for the accompanying TLB shootdown (or, for designs
        that tolerate it, deliberately skipping one).
        """
        translation = self.page_table.lookup(vpn)
        if translation is None:
            raise PageFault(vpn, self.asid)
        _, permissions = translation
        if not self.page_table.unmap(vpn):
            raise ValueError(
                f"page {vpn:#x} is part of a 2 MB mapping and cannot be "
                f"remapped at 4 KB granularity")
        new_ppn = self.frames.allocate()
        self.page_table.map(vpn, new_ppn, permissions)
        return new_ppn

    def unmap_page(self, vpn: int) -> Permissions:
        """Page out one 4 KB page; returns its prior permissions."""
        translation = self.page_table.lookup(vpn)
        if translation is None:
            raise PageFault(vpn, self.asid)
        _, permissions = translation
        if not self.page_table.unmap(vpn):
            raise ValueError(
                f"page {vpn:#x} is part of a 2 MB mapping and cannot be "
                f"unmapped at 4 KB granularity")
        return permissions

    def page_in(self, vpn: int,
                permissions: Permissions = Permissions.READ_WRITE) -> int:
        """Back a previously unmapped page with a fresh frame."""
        new_ppn = self.frames.allocate()
        self.page_table.map(vpn, new_ppn, permissions)
        return new_ppn

    # -- introspection ------------------------------------------------------
    def translate(self, va: int) -> Optional[int]:
        """Physical byte address for ``va``, or None if unmapped."""
        entry = self.page_table.lookup(page_number(va))
        if entry is None:
            return None
        ppn, _ = entry
        return ppn * PAGE_SIZE + va % PAGE_SIZE

    def footprint_pages(self) -> int:
        """Total mapped pages across all allocations."""
        return sum(m.n_pages for m in self.mappings)


class System:
    """A set of address spaces sharing one physical memory.

    GPUs "execute a small number of applications at a time"
    (Observation 5); most experiments use a single address space, but
    multi-process runs (homonyms/synonyms across ASIDs) construct
    several spaces through one :class:`System`.
    """

    def __init__(self) -> None:
        self.frames = FrameAllocator()
        self.spaces: Dict[int, AddressSpace] = {}

    def create_address_space(self, asid: Optional[int] = None) -> AddressSpace:
        if asid is None:
            asid = len(self.spaces)
        if asid in self.spaces:
            raise ValueError(f"asid {asid} already exists")
        space = AddressSpace(asid, frame_allocator=self.frames)
        self.spaces[asid] = space
        return space
