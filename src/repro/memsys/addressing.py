"""Address arithmetic shared across the memory system.

All simulated addresses are plain Python integers (byte addresses).
Caches operate on *line addresses* (byte address >> line bits) and the
virtual-memory machinery on *page numbers* (byte address >> page bits).
The SoC in Table 1 uses 128-byte cache lines and 4 KB pages, giving 32
lines per page — which is why the backward table's per-page bit vector
is 32 bits wide.
"""

from __future__ import annotations

__all__ = [
    "BASE_PAGES_PER_LARGE",
    "DEFAULT_LINE_SIZE",
    "LARGE_PAGE_SHIFT",
    "LARGE_PAGE_SIZE",
    "PAGE_SHIFT",
    "PAGE_SIZE",
    "compose_address",
    "is_power_of_two",
    "large_page_base_vpn",
    "large_page_number",
    "line_address",
    "line_base",
    "line_index_in_page",
    "lines_per_page",
    "log2_int",
    "page_number",
    "page_offset",
    "translate_line_address",
]

PAGE_SIZE = 4096
PAGE_SHIFT = 12

# x86-64-style 2 MB large pages: one page-directory-level mapping
# covering 512 base pages (§4.3, "Large Page Support").
BASE_PAGES_PER_LARGE = 512
LARGE_PAGE_SIZE = PAGE_SIZE * BASE_PAGES_PER_LARGE
LARGE_PAGE_SHIFT = 21

DEFAULT_LINE_SIZE = 128


def large_page_number(addr: int) -> int:
    """2 MB large-page number containing byte address ``addr``."""
    return addr // LARGE_PAGE_SIZE


def large_page_base_vpn(vpn: int) -> int:
    """First 4 KB page number of the large page containing ``vpn``."""
    return vpn - vpn % BASE_PAGES_PER_LARGE


def is_power_of_two(value: int) -> bool:
    """True when ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def log2_int(value: int) -> int:
    """Exact integer log2; raises for non powers of two."""
    if not is_power_of_two(value):
        raise ValueError(f"{value} is not a positive power of two")
    return value.bit_length() - 1


def page_number(addr: int, page_size: int = PAGE_SIZE) -> int:
    """Page number containing byte address ``addr``."""
    return addr // page_size


def page_offset(addr: int, page_size: int = PAGE_SIZE) -> int:
    """Offset of ``addr`` within its page."""
    return addr % page_size


def line_address(addr: int, line_size: int = DEFAULT_LINE_SIZE) -> int:
    """Line address (byte address divided by the line size)."""
    return addr // line_size

def line_base(addr: int, line_size: int = DEFAULT_LINE_SIZE) -> int:
    """Byte address of the start of the line containing ``addr``."""
    return (addr // line_size) * line_size


def lines_per_page(line_size: int = DEFAULT_LINE_SIZE, page_size: int = PAGE_SIZE) -> int:
    """Number of cache lines in one page (32 for the Table 1 geometry)."""
    if page_size % line_size != 0:
        raise ValueError("page size must be a multiple of the line size")
    return page_size // line_size


def line_index_in_page(
    addr: int, line_size: int = DEFAULT_LINE_SIZE, page_size: int = PAGE_SIZE
) -> int:
    """Which line of its page the byte address ``addr`` falls in."""
    return (addr % page_size) // line_size


def compose_address(page: int, offset: int, page_size: int = PAGE_SIZE) -> int:
    """Byte address from a page number and in-page offset."""
    if not 0 <= offset < page_size:
        raise ValueError(f"offset {offset} outside page of size {page_size}")
    return page * page_size + offset


def translate_line_address(
    line_addr: int,
    from_page: int,
    to_page: int,
    line_size: int = DEFAULT_LINE_SIZE,
    page_size: int = PAGE_SIZE,
) -> int:
    """Re-home a line address from one page to another, keeping the offset.

    Used for reverse translation: a physical line address within
    ``from_page`` becomes the corresponding virtual line address within
    ``to_page`` (and vice versa).
    """
    lpp = lines_per_page(line_size, page_size)
    if line_addr // lpp != from_page:
        raise ValueError(
            f"line address {line_addr} is not within page {from_page}"
        )
    return to_page * lpp + line_addr % lpp
