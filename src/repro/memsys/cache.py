"""Set-associative cache model.

The same mechanical cache backs every cache-like structure in the SoC:
the per-CU 32 KB L1s (write-through, no write-allocate), the shared 2 MB
8-banked L2 (write-back), and the 8 KB page-walk cache.  Whether the
cache is indexed by virtual or physical line addresses is the *caller's*
choice — the cache just stores line addresses plus per-line metadata
(dirty bit, page permissions, and for virtual caches the owning virtual
page, which is what the extra "virtual tag" bits in §4.3 pay for).

Replacement is LRU within a set.  Eviction returns the victim so the
hierarchy can write back dirty data and keep the backward table's
inclusion bit vectors up to date.

This module is the innermost ring of the simulation hot path — every
coalesced request performs one to three cache lookups — so the access
methods are deliberately flat: set selection is a bitmask (the
power-of-two set count makes ``%`` a bit slice, as in hardware), the
resident-line count is maintained incrementally instead of summed on
demand, and :class:`CacheLine` uses ``__slots__`` to keep per-line
records small and attribute access cheap.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.memsys.addressing import is_power_of_two, lines_per_page
from repro.memsys.permissions import Permissions


__all__ = ["Cache", "CacheConfig", "CacheLine"]


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and policy of one cache.

    ``size_bytes``/``line_size``/``associativity`` must give a
    power-of-two number of sets so simple modulo indexing is a bit
    slice, as in hardware.
    """

    size_bytes: int
    line_size: int = 128
    associativity: int = 8
    n_banks: int = 1
    write_back: bool = True
    write_allocate: bool = True

    def __post_init__(self) -> None:
        if self.size_bytes % (self.line_size * self.associativity) != 0:
            raise ValueError("cache size must divide evenly into sets")
        if not is_power_of_two(self.n_sets):
            raise ValueError(f"number of sets ({self.n_sets}) must be a power of two")
        if self.n_banks < 1:
            raise ValueError("need at least one bank")

    @property
    def n_lines(self) -> int:
        return self.size_bytes // self.line_size

    @property
    def n_sets(self) -> int:
        return self.n_lines // self.associativity


class CacheLine:
    """Metadata stored with each resident line."""

    __slots__ = ("line_addr", "dirty", "permissions", "page")

    def __init__(
        self,
        line_addr: int,
        dirty: bool = False,
        permissions: Permissions = Permissions.READ_WRITE,
        page: Optional[int] = None,  # owning page number (virtual for VCs)
    ) -> None:
        self.line_addr = line_addr
        self.dirty = dirty
        self.permissions = permissions
        self.page = page

    def __repr__(self) -> str:
        return (
            f"CacheLine(line_addr={self.line_addr!r}, dirty={self.dirty!r}, "
            f"permissions={self.permissions!r}, page={self.page!r})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CacheLine):
            return NotImplemented
        return (
            self.line_addr == other.line_addr
            and self.dirty == other.dirty
            and self.permissions == other.permissions
            and self.page == other.page
        )


class Cache:
    """An LRU set-associative cache of line addresses."""

    def __init__(self, config: CacheConfig, name: str = "cache") -> None:
        self.config = config
        self.name = name
        self._sets: List[OrderedDict[int, CacheLine]] = [
            OrderedDict() for _ in range(config.n_sets)
        ]
        # Power-of-two set count (validated by CacheConfig): indexing is
        # a bitmask, exactly the bit slice hardware uses.
        self._set_mask = config.n_sets - 1
        self._bank_mask = (
            config.n_banks - 1 if is_power_of_two(config.n_banks) else None
        )
        self._associativity = config.associativity
        self._n_resident = 0
        # page number -> count of resident lines, for fast page invalidation
        self._page_lines: Dict[int, int] = {}
        self.hits = 0
        self.misses = 0

    # -- indexing -------------------------------------------------------
    def set_index(self, line_addr: int) -> int:
        return line_addr & self._set_mask

    def bank_of(self, line_addr: int) -> int:
        """Bank selected by the low-order line-address bits.

        Low-order interleaving sends consecutive lines to different
        banks, so streaming accesses spread across the banked L2 instead
        of serializing on one bank.  (Because the set count is a larger
        power of two, these are the same bits that *start* the set
        index — the bank is a slice of the set bits, not bits above
        them.)
        """
        mask = self._bank_mask
        if mask is not None:
            return line_addr & mask
        return line_addr % self.config.n_banks

    # -- queries --------------------------------------------------------
    def contains(self, line_addr: int) -> bool:
        """Probe without touching LRU state or hit/miss counters."""
        return line_addr in self._sets[line_addr & self._set_mask]

    def peek(self, line_addr: int) -> Optional[CacheLine]:
        """Return the resident line's metadata without LRU update."""
        return self._sets[line_addr & self._set_mask].get(line_addr)

    def __len__(self) -> int:
        return self._n_resident

    def resident_lines(self) -> Iterable[CacheLine]:
        """Iterate over every resident line (test/diagnostic helper)."""
        for cache_set in self._sets:
            yield from cache_set.values()

    def resident_pages(self) -> Dict[int, int]:
        """Map of page number → number of resident lines from that page."""
        return dict(self._page_lines)

    # -- access path ----------------------------------------------------
    def lookup(self, line_addr: int) -> Optional[CacheLine]:
        """Access a line: on hit, refresh LRU and return it; else None."""
        cache_set = self._sets[line_addr & self._set_mask]
        line = cache_set.get(line_addr)
        if line is None:
            self.misses += 1
            return None
        cache_set.move_to_end(line_addr)
        self.hits += 1
        return line

    def insert(
        self,
        line_addr: int,
        dirty: bool = False,
        permissions: Permissions = Permissions.READ_WRITE,
        page: Optional[int] = None,
    ) -> Optional[CacheLine]:
        """Fill ``line_addr``; return the evicted victim line, if any.

        Inserting a line that is already resident refreshes its LRU
        position and merges the dirty bit (a write-back cache must not
        lose dirtiness on a refill).
        """
        cache_set = self._sets[line_addr & self._set_mask]
        existing = cache_set.get(line_addr)
        if existing is not None:
            existing.dirty = existing.dirty or dirty
            existing.permissions = permissions
            cache_set.move_to_end(line_addr)
            return None
        victim = None
        if len(cache_set) >= self._associativity:
            _, victim = cache_set.popitem(last=False)
            self._n_resident -= 1
            if victim.page is not None:
                self._forget_page_line(victim)
        cache_set[line_addr] = CacheLine(line_addr, dirty, permissions, page)
        self._n_resident += 1
        if page is not None:
            page_lines = self._page_lines
            page_lines[page] = page_lines.get(page, 0) + 1
        return victim

    def mark_dirty(self, line_addr: int) -> bool:
        """Set the dirty bit of a resident line; False if not resident."""
        line = self._sets[line_addr & self._set_mask].get(line_addr)
        if line is None:
            return False
        line.dirty = True
        return True

    # -- invalidation ---------------------------------------------------
    def invalidate_line(self, line_addr: int) -> Optional[CacheLine]:
        """Drop one line; return it (caller handles write-back) or None."""
        cache_set = self._sets[line_addr & self._set_mask]
        line = cache_set.pop(line_addr, None)
        if line is not None:
            self._n_resident -= 1
            if line.page is not None:
                self._forget_page_line(line)
        return line

    def invalidate_page(self, page: int) -> List[CacheLine]:
        """Drop every resident line belonging to ``page``; return them.

        Used for FBT-entry evictions and TLB shootdowns, where all data
        cached under a virtual page must leave the hierarchy.
        """
        if self._page_lines.get(page, 0) == 0:
            return []
        dropped: List[CacheLine] = []
        for cache_set in self._sets:
            for line_addr in [a for a, ln in cache_set.items() if ln.page == page]:
                dropped.append(cache_set.pop(line_addr))
        self._n_resident -= len(dropped)
        self._page_lines.pop(page, None)
        return dropped

    def invalidate_all(self) -> List[CacheLine]:
        """Flush the whole cache; return all previously resident lines."""
        dropped: List[CacheLine] = []
        for cache_set in self._sets:
            dropped.extend(cache_set.values())
            cache_set.clear()
        self._n_resident = 0
        self._page_lines.clear()
        return dropped

    def _forget_page_line(self, line: CacheLine) -> None:
        remaining = self._page_lines.get(line.page, 0) - 1
        if remaining > 0:
            self._page_lines[line.page] = remaining
        else:
            self._page_lines.pop(line.page, None)

    # -- stats ----------------------------------------------------------
    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def hit_ratio(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def lines_of_page_resident(self, page: int) -> int:
        """How many lines of ``page`` are currently resident."""
        return self._page_lines.get(page, 0)

    def max_lines_per_page(self) -> int:
        """Upper bound used to size per-page bit vectors."""
        return lines_per_page(self.config.line_size)
