"""Set-associative cache model.

The same mechanical cache backs every cache-like structure in the SoC:
the per-CU 32 KB L1s (write-through, no write-allocate), the shared 2 MB
8-banked L2 (write-back), and the 8 KB page-walk cache.  Whether the
cache is indexed by virtual or physical line addresses is the *caller's*
choice — the cache just stores line addresses plus per-line metadata
(dirty bit, page permissions, and for virtual caches the owning virtual
page, which is what the extra "virtual tag" bits in §4.3 pay for).

Replacement is LRU within a set.  Eviction returns the victim so the
hierarchy can write back dirty data and keep the backward table's
inclusion bit vectors up to date.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.memsys.addressing import is_power_of_two, lines_per_page
from repro.memsys.permissions import Permissions


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and policy of one cache.

    ``size_bytes``/``line_size``/``associativity`` must give a
    power-of-two number of sets so simple modulo indexing is a bit
    slice, as in hardware.
    """

    size_bytes: int
    line_size: int = 128
    associativity: int = 8
    n_banks: int = 1
    write_back: bool = True
    write_allocate: bool = True

    def __post_init__(self) -> None:
        if self.size_bytes % (self.line_size * self.associativity) != 0:
            raise ValueError("cache size must divide evenly into sets")
        if not is_power_of_two(self.n_sets):
            raise ValueError(f"number of sets ({self.n_sets}) must be a power of two")
        if self.n_banks < 1:
            raise ValueError("need at least one bank")

    @property
    def n_lines(self) -> int:
        return self.size_bytes // self.line_size

    @property
    def n_sets(self) -> int:
        return self.n_lines // self.associativity


@dataclass
class CacheLine:
    """Metadata stored with each resident line."""

    line_addr: int
    dirty: bool = False
    permissions: Permissions = Permissions.READ_WRITE
    page: Optional[int] = None  # owning page number (virtual for VCs)


class Cache:
    """An LRU set-associative cache of line addresses."""

    def __init__(self, config: CacheConfig, name: str = "cache") -> None:
        self.config = config
        self.name = name
        self._sets: List[OrderedDict[int, CacheLine]] = [
            OrderedDict() for _ in range(config.n_sets)
        ]
        # page number -> count of resident lines, for fast page invalidation
        self._page_lines: Dict[int, int] = {}
        self.hits = 0
        self.misses = 0

    # -- indexing -------------------------------------------------------
    def set_index(self, line_addr: int) -> int:
        return line_addr % self.config.n_sets

    def bank_of(self, line_addr: int) -> int:
        """Bank selected by low-order line-address bits (above set bits)."""
        return line_addr % self.config.n_banks

    # -- queries --------------------------------------------------------
    def contains(self, line_addr: int) -> bool:
        """Probe without touching LRU state or hit/miss counters."""
        return line_addr in self._sets[self.set_index(line_addr)]

    def peek(self, line_addr: int) -> Optional[CacheLine]:
        """Return the resident line's metadata without LRU update."""
        return self._sets[self.set_index(line_addr)].get(line_addr)

    def __len__(self) -> int:
        return sum(len(s) for s in self._sets)

    def resident_lines(self) -> Iterable[CacheLine]:
        """Iterate over every resident line (test/diagnostic helper)."""
        for cache_set in self._sets:
            yield from cache_set.values()

    def resident_pages(self) -> Dict[int, int]:
        """Map of page number → number of resident lines from that page."""
        return dict(self._page_lines)

    # -- access path ----------------------------------------------------
    def lookup(self, line_addr: int) -> Optional[CacheLine]:
        """Access a line: on hit, refresh LRU and return it; else None."""
        cache_set = self._sets[self.set_index(line_addr)]
        line = cache_set.get(line_addr)
        if line is None:
            self.misses += 1
            return None
        cache_set.move_to_end(line_addr)
        self.hits += 1
        return line

    def insert(
        self,
        line_addr: int,
        dirty: bool = False,
        permissions: Permissions = Permissions.READ_WRITE,
        page: Optional[int] = None,
    ) -> Optional[CacheLine]:
        """Fill ``line_addr``; return the evicted victim line, if any.

        Inserting a line that is already resident refreshes its LRU
        position and merges the dirty bit (a write-back cache must not
        lose dirtiness on a refill).
        """
        cache_set = self._sets[self.set_index(line_addr)]
        existing = cache_set.get(line_addr)
        if existing is not None:
            existing.dirty = existing.dirty or dirty
            existing.permissions = permissions
            cache_set.move_to_end(line_addr)
            return None
        victim = None
        if len(cache_set) >= self.config.associativity:
            _, victim = cache_set.popitem(last=False)
            self._forget_page_line(victim)
        line = CacheLine(line_addr=line_addr, dirty=dirty, permissions=permissions, page=page)
        cache_set[line_addr] = line
        if page is not None:
            self._page_lines[page] = self._page_lines.get(page, 0) + 1
        return victim

    def mark_dirty(self, line_addr: int) -> bool:
        """Set the dirty bit of a resident line; False if not resident."""
        line = self.peek(line_addr)
        if line is None:
            return False
        line.dirty = True
        return True

    # -- invalidation ---------------------------------------------------
    def invalidate_line(self, line_addr: int) -> Optional[CacheLine]:
        """Drop one line; return it (caller handles write-back) or None."""
        cache_set = self._sets[self.set_index(line_addr)]
        line = cache_set.pop(line_addr, None)
        if line is not None:
            self._forget_page_line(line)
        return line

    def invalidate_page(self, page: int) -> List[CacheLine]:
        """Drop every resident line belonging to ``page``; return them.

        Used for FBT-entry evictions and TLB shootdowns, where all data
        cached under a virtual page must leave the hierarchy.
        """
        if self._page_lines.get(page, 0) == 0:
            return []
        dropped: List[CacheLine] = []
        for cache_set in self._sets:
            for line_addr in [a for a, ln in cache_set.items() if ln.page == page]:
                dropped.append(cache_set.pop(line_addr))
        self._page_lines.pop(page, None)
        return dropped

    def invalidate_all(self) -> List[CacheLine]:
        """Flush the whole cache; return all previously resident lines."""
        dropped: List[CacheLine] = []
        for cache_set in self._sets:
            dropped.extend(cache_set.values())
            cache_set.clear()
        self._page_lines.clear()
        return dropped

    def _forget_page_line(self, line: CacheLine) -> None:
        if line.page is None:
            return
        remaining = self._page_lines.get(line.page, 0) - 1
        if remaining > 0:
            self._page_lines[line.page] = remaining
        else:
            self._page_lines.pop(line.page, None)

    # -- stats ----------------------------------------------------------
    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def hit_ratio(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def lines_of_page_resident(self, page: int) -> int:
        """How many lines of ``page`` are currently resident."""
        return self._page_lines.get(page, 0)

    def max_lines_per_page(self) -> int:
        """Upper bound used to size per-page bit vectors."""
        return lines_per_page(self.config.line_size)
