"""CPU-side coherence directory (stub).

The paper's SoC keeps CPU and GPU caches coherent through a directory
that addresses the GPU with *physical* addresses.  For a virtual cache
hierarchy those probes must be reverse-translated at the backward table
(§4.1, step ④), and the BT — being fully inclusive of the GPU caches —
doubles as a coherence filter (like the region buffer of heterogeneous
system coherence).

This module models only what the FBT needs to be exercised: a registry
of physically-addressed lines the GPU holds, and probe generation.  The
interesting machinery (reverse translation, filtering) lives in
:class:`repro.core.fbt.ForwardBackwardTable`.
"""

from __future__ import annotations

from typing import Optional, Set

from repro.engine.stats import Counters


__all__ = ["CoherenceProbe", "Directory"]

class Directory:
    """Tracks which physical lines the GPU may hold and issues probes."""

    def __init__(self) -> None:
        self._gpu_lines: Set[int] = set()
        self.counters = Counters()

    def record_gpu_fill(self, physical_line: int) -> None:
        """The GPU fetched ``physical_line`` into its hierarchy."""
        self._gpu_lines.add(physical_line)
        self.counters.add("directory.fills")

    def record_gpu_writeback(self, physical_line: int) -> None:
        """The GPU wrote back / dropped ``physical_line``."""
        self._gpu_lines.discard(physical_line)
        self.counters.add("directory.writebacks")

    def gpu_may_hold(self, physical_line: int) -> bool:
        return physical_line in self._gpu_lines

    def make_probe(self, physical_line: int) -> "CoherenceProbe":
        """Build a CPU-initiated probe for a physical line."""
        self.counters.add("directory.probes")
        return CoherenceProbe(physical_line=physical_line)


class CoherenceProbe:
    """A physically-addressed invalidation/downgrade request to the GPU."""

    def __init__(self, physical_line: int) -> None:
        self.physical_line = physical_line
        self.filtered: Optional[bool] = None  # set by the FBT
        self.forwarded_virtual_line: Optional[int] = None
