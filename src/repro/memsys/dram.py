"""DRAM timing model.

Table 1 gives 192 GB/s of memory bandwidth.  At the 700 MHz GPU clock
that is ≈274 bytes per cycle; a 128-byte line fill therefore costs a
little under half a cycle of bandwidth on top of a fixed access latency.
DRAM is modelled as a single bandwidth-limited link — enough to make
memory-bound phases show up without modelling channels/rows.
"""

from __future__ import annotations

from repro.engine.resources import BandwidthLink


__all__ = ["DRAM"]

class DRAM:
    """Fixed-latency, bandwidth-limited main memory."""

    def __init__(
        self,
        latency_cycles: float = 160.0,
        bandwidth_gbps: float = 192.0,
        frequency_ghz: float = 0.7,
        line_size: int = 128,
    ) -> None:
        if bandwidth_gbps <= 0:
            raise ValueError("bandwidth must be positive")
        bytes_per_cycle = bandwidth_gbps / frequency_ghz
        self.line_size = line_size
        self._link = BandwidthLink(latency=latency_cycles, bytes_per_cycle=bytes_per_cycle)

    @property
    def reads(self) -> int:
        return self._link.total_requests

    @property
    def bytes_transferred(self) -> int:
        return self._link.total_bytes

    def access_line(self, now: float) -> float:
        """Fetch (or write back) one cache line; return completion time."""
        return self._link.request(now, self.line_size)

    def access(self, now: float, n_bytes: int) -> float:
        """Transfer ``n_bytes``; return completion time."""
        return self._link.request(now, n_bytes)
