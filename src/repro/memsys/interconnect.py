"""On-chip interconnect latencies.

Table 1: a dance-hall NoC inside the GPU (CUs to L2 banks) and a point-
to-point network between the GPU and the rest of the SoC.  Crucially,
translation requests to the IOMMU travel over the PCIe *protocol* even
on-die, adding transfer latency to every private-TLB miss (§2.1, [22]).
Latencies here are one-way fixed costs; contention is modelled at the
endpoint servers, not in the network.
"""

from __future__ import annotations

from dataclasses import dataclass


__all__ = ["InterconnectConfig"]


@dataclass(frozen=True)
class InterconnectConfig:
    """One-way latencies (GPU cycles) between SoC components."""

    l1_to_l2: float = 20.0       # CU/L1 to a shared-L2 bank (dance-hall NoC)
    l2_to_dram: float = 0.0      # folded into the DRAM latency
    gpu_to_iommu: float = 100.0  # PCIe-protocol translation request
    iommu_to_gpu: float = 100.0  # translation response
    l2_to_fbt: float = 10.0      # §5: "10 cycle interconnect latency between a GPU L2 cache and FBT"
    fbt_lookup: float = 5.0      # §5: "5 cycles for FBT lookups"

    def __post_init__(self) -> None:
        for name in (
            "l1_to_l2", "l2_to_dram", "gpu_to_iommu",
            "iommu_to_gpu", "l2_to_fbt", "fbt_lookup",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"latency {name} must be nonnegative")

    @property
    def iommu_round_trip(self) -> float:
        """Request + response latency for a translation service request."""
        return self.gpu_to_iommu + self.iommu_to_gpu
