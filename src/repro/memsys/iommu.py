"""The I/O memory-management unit (IOMMU).

The IOMMU holds the structure the whole paper revolves around: a TLB
shared by all compute units, with a *bandwidth limit* (one access per
cycle in the baseline — footnote 2 points out prior work unrealistically
assumed infinite bandwidth).  Requests that miss go to the multi-
threaded page-table walker through the page-walk cache.  In the virtual
cache design ("VC With OPT") the forward-backward table is additionally
consulted on shared-TLB misses as a second-level TLB, which hides most
page walks (§4.1 reports ≈74% of shared TLB misses hit in the FBT).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Protocol

from repro.engine.resources import BankedServer, ThroughputServer
from repro.engine.stats import Counters, IntervalSampler
from repro.memsys.page_table import PageTable
from repro.memsys.page_table_walker import PageTableWalker
from repro.memsys.page_walk_cache import PageWalkCache
from repro.memsys.permissions import Permissions
from repro.memsys.tlb import TLB


__all__ = ["IOMMU", "IOMMUConfig", "SecondLevelTLB", "TranslationOutcome"]

class SecondLevelTLB(Protocol):
    """What the IOMMU needs from an FBT acting as a second-level TLB."""

    def forward_translate(self, asid: int, vpn: int) -> Optional[tuple]:
        """Return ``(ppn, permissions)`` if (asid, vpn) is a leading page."""


@dataclass(frozen=True)
class IOMMUConfig:
    """Sizing and timing of the IOMMU (Table 1 defaults)."""

    shared_tlb_entries: Optional[int] = 512
    bandwidth: float = 1.0  # shared-TLB accesses accepted per cycle
    tlb_latency: float = 4.0  # large associative structure
    ptw_threads: int = 16
    pwc_size_bytes: int = 8192
    pwc_hit_latency: float = 2.0
    pwc_memory_latency: float = 100.0
    # §3.2's "multi-banked large IOMMU TLB" alternative: with n_banks>1
    # each bank accepts ``bandwidth`` accesses/cycle, but requests
    # conflict per bank.  ``bank_select`` picks the VPN bits used:
    # "low" (vpn % n) interleaves pages; "high" mirrors the paper's
    # observation that banking by higher-order address bits makes
    # conflicts common (a whole region maps to one bank).
    n_banks: int = 1
    bank_select: str = "low"

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError("IOMMU bandwidth must be positive")
        if self.n_banks < 1:
            raise ValueError("need at least one IOMMU TLB bank")
        if self.bank_select not in ("low", "high"):
            raise ValueError("bank_select must be 'low' or 'high'")


@dataclass(slots=True)
class TranslationOutcome:
    """A completed translation, with timing and provenance.

    ``slots=True``: one outcome is allocated per IOMMU translation —
    the whole-hierarchy-miss hot path — so it carries no per-instance
    ``__dict__``.
    """

    vpn: int
    ppn: int
    permissions: Permissions
    source: str  # "shared_tlb" | "fbt" | "walk"
    arrival: float
    finish: float
    is_large: bool = False
    large_base_vpn: int = 0
    large_base_ppn: int = 0

    @property
    def latency(self) -> float:
        return self.finish - self.arrival


class IOMMU:
    """Shared TLB + page-table walker + page-walk cache (+ optional FBT)."""

    SAMPLE_INTERVAL_US = 1.0  # the paper samples access rates per microsecond

    def __init__(
        self,
        config: IOMMUConfig,
        page_tables: Dict[int, PageTable],
        frequency_ghz: float = 0.7,
        second_level: Optional[SecondLevelTLB] = None,
        obs=None,
    ) -> None:
        if not page_tables:
            raise ValueError("IOMMU needs at least one page table")
        self.config = config
        self.page_tables = dict(page_tables)
        self.shared_tlb = TLB(capacity=config.shared_tlb_entries, name="iommu-tlb")
        if config.n_banks > 1:
            self.port = BankedServer(config.n_banks, rate_per_bank=config.bandwidth)
            self._port_banks = self.port.banks
        else:
            self.port = ThroughputServer(rate=config.bandwidth)
            self._port_banks = None
        self.unlimited_bandwidth = config.bandwidth == float("inf")
        # Hot-path scalars, hoisted out of the config for ``translate``.
        self._n_port_banks = config.n_banks
        self._bank_select_low = config.bank_select == "low"
        self._tlb_latency = config.tlb_latency
        self.pwc = PageWalkCache(
            size_bytes=config.pwc_size_bytes,
            hit_latency=config.pwc_hit_latency,
            memory_latency=config.pwc_memory_latency,
        )
        self._walkers = {
            asid: PageTableWalker(table, self.pwc, config.ptw_threads)
            for asid, table in self.page_tables.items()
        }
        self.second_level = second_level
        interval_cycles = self.SAMPLE_INTERVAL_US * 1000.0 * frequency_ghz
        self.access_sampler = IntervalSampler(interval_cycles)
        self._counters = Counters()
        # Exact float total of queueing waits; the ``iommu.queue_cycles``
        # counter is round(total) so sub-cycle waits are not truncated
        # away per request.
        self.queue_cycles = 0.0
        # Deferred hot-path event counts (flushed via the ``counters``
        # property; only nonzero counts materialize, matching the
        # key-presence semantics of per-event ``Counters.add``).
        self._n_accesses = 0
        self._n_tlb_hits = 0
        self._n_tlb_misses = 0
        self._n_fbt_hits = 0
        self._n_fbt_misses = 0
        self._n_walks = 0
        # ``iommu.queue_cycles`` exists exactly when a translation has
        # ever been serviced (it may legitimately be zero).
        self._ever_translated = False

        # Observability (repro.obs): latency histograms + request tracing.
        # All hot-path instrumentation is guarded so obs=None costs one
        # attribute check per translation.
        self._tracer = obs.tracer if obs is not None else None
        self._queue_hist = None
        self._walk_hist = None
        self._translate_hist = None
        # Windowed time series (obs.metrics.timeline); None unless the
        # caller enabled a timeline before building the hierarchy.
        self._timeline = obs.metrics.timeline if obs is not None else None
        if obs is not None:
            metrics = obs.metrics
            self._queue_hist = metrics.histogram("iommu.queue_delay")
            self._walk_hist = metrics.histogram("iommu.walk_latency")
            self._translate_hist = metrics.histogram("iommu.translate_latency")
            ptw_hist = metrics.histogram("iommu.ptw_queue_delay")
            for walker in self._walkers.values():
                walker.threads.delay_histogram = ptw_hist

    # -- counters ---------------------------------------------------------
    @property
    def counters(self) -> Counters:
        """The IOMMU's counter bag, with pending hot-path deltas flushed."""
        self._flush_counters()
        return self._counters

    def _flush_counters(self) -> None:
        counters = self._counters
        if self._n_accesses:
            counters.add("iommu.accesses", self._n_accesses)
            self._n_accesses = 0
        if self._ever_translated:
            counters.set("iommu.queue_cycles", round(self.queue_cycles))
        if self._n_tlb_hits:
            counters.add("iommu.tlb_hits", self._n_tlb_hits)
            self._n_tlb_hits = 0
        if self._n_tlb_misses:
            counters.add("iommu.tlb_misses", self._n_tlb_misses)
            self._n_tlb_misses = 0
        if self._n_fbt_hits:
            counters.add("iommu.fbt_hits", self._n_fbt_hits)
            self._n_fbt_hits = 0
        if self._n_fbt_misses:
            counters.add("iommu.fbt_misses", self._n_fbt_misses)
            self._n_fbt_misses = 0
        if self._n_walks:
            counters.add("iommu.walks", self._n_walks)
            self._n_walks = 0

    # -- helpers ----------------------------------------------------------
    def _tlb_key(self, asid: int, vpn: int) -> int:
        # Homonym-safe key: the shared TLB is effectively ASID-tagged.
        return (asid << 52) | vpn

    def _bank_of(self, vpn: int) -> int:
        if self.config.bank_select == "low":
            return vpn % self.config.n_banks
        # Higher-order bits: 2 MB regions map to one bank.
        return (vpn >> 9) % self.config.n_banks

    def walker(self, asid: int = 0) -> PageTableWalker:
        return self._walkers[asid]

    # -- translation path ---------------------------------------------------
    def translate(self, vpn: int, now: float, asid: int = 0) -> TranslationOutcome:
        """Translate ``vpn`` arriving at the IOMMU at time ``now``.

        Models the paper's serialization: the request first queues for
        the shared TLB port, then (on a miss) consults the FBT if one is
        attached as a second-level TLB, and finally walks the page table.
        Raises :class:`PageFault` for unmapped pages (handled by the CPU
        in the real system).
        """
        (ppn, permissions, finish, source, is_large, large_base_vpn,
         large_base_ppn) = self.translate_parts(vpn, now, asid)
        return TranslationOutcome(
            vpn=vpn, ppn=ppn, permissions=permissions, source=source,
            arrival=now, finish=finish, is_large=is_large,
            large_base_vpn=large_base_vpn, large_base_ppn=large_base_ppn,
        )

    def translate_parts(self, vpn: int, now: float, asid: int = 0) -> tuple:
        """:meth:`translate` without the outcome object.

        Returns ``(ppn, permissions, finish, source, is_large,
        large_base_vpn, large_base_ppn)``; the compiled access closures
        consume the tuple directly, skipping one allocation per
        whole-hierarchy miss.
        """
        # Inlined ``access_sampler.record(now)`` — one dict upsert per
        # translation is hot enough to skip the method dispatch.
        sampler = self.access_sampler
        window = int(now // sampler.interval_cycles)
        counts = sampler._window_counts
        counts[window] = counts.get(window, 0) + 1
        if window > sampler._max_window:
            sampler._max_window = window
        self._n_accesses += 1
        self._ever_translated = True
        if self.unlimited_bandwidth:
            service_start = now
        elif self._port_banks is not None:
            # Inlined ``_bank_of`` + ``BankedServer.request`` dispatch.
            if self._bank_select_low:
                bank = vpn % self._n_port_banks
            else:
                bank = (vpn >> 9) % self._n_port_banks
            service_start = self._port_banks[bank].request(now)
        else:
            service_start = self.port.request(now)
        self.queue_cycles += service_start - now
        if self._queue_hist is not None:
            self._queue_hist.record(service_start - now)
        timeline = self._timeline
        if timeline is not None:
            timeline.record("iommu.accesses", now)
            wait = service_start - now
            if wait:
                # Summed waits per epoch; epoch-mean queue depth follows
                # by Little's law (sum / epoch_cycles) at render time.
                timeline.record("iommu.queue_wait", now, wait)
            if not self.unlimited_bandwidth:
                # Port occupancy: each accepted access holds its
                # (banked) port for 1/rate cycles.
                timeline.record("iommu.busy", service_start,
                                1.0 / self.config.bandwidth)
        tracer = self._tracer
        tracing = tracer is not None and tracer.enabled
        if tracing:
            tracer.emit("iommu.enter", now, vpn=vpn, asid=asid)
            tracer.emit("iommu.dequeue", service_start, vpn=vpn,
                        wait=service_start - now)
        t = service_start + self._tlb_latency

        # Inlined ``shared_tlb.lookup`` (micro-memo + LRU probe); the
        # counter and memo updates mirror :meth:`TLB.lookup` exactly.
        key = (asid << 52) | vpn
        tlb = self.shared_tlb
        if key == tlb._memo_key:
            tlb.hits += 1
            entry = tlb._memo_entry
            if tlb.lifetimes is not None:
                tlb.lifetimes.on_access(key, t)
        else:
            entry = tlb._entries.get(key)
            if entry is None:
                tlb.misses += 1
            else:
                tlb._entries.move_to_end(key)
                tlb.hits += 1
                tlb._memo_key = key
                tlb._memo_entry = entry
                if tlb.lifetimes is not None:
                    tlb.lifetimes.on_access(key, t)
        if entry is not None:
            self._n_tlb_hits += 1
            if timeline is not None:
                timeline.record("iommu.tlb_hits", t)
            if self._translate_hist is not None:
                self._translate_hist.record(t - now)
            if tracing:
                tracer.emit("iommu.tlb_hit", t, vpn=vpn)
            return (entry.ppn, entry.permissions, t, "shared_tlb",
                    entry.is_large, entry.large_base_vpn,
                    entry.large_base_ppn)
        return self._translate_miss_parts(key, vpn, t, now, asid)

    def _translate_miss_parts(self, key: int, vpn: int, t: float, now: float,
                              asid: int) -> tuple:
        """Shared-TLB-miss tail of :meth:`translate_parts`.

        Split out so compiled hot paths can inline the (far more common)
        shared-TLB-hit prologue and only pay a method call on a miss.
        """
        timeline = self._timeline
        tracer = self._tracer
        tracing = tracer is not None and tracer.enabled
        self._n_tlb_misses += 1

        if self.second_level is not None:
            # FBT-as-second-level-TLB: one more associative lookup.
            t += self.config.tlb_latency
            hit = self.second_level.forward_translate(asid, vpn)
            if hit is not None:
                ppn, permissions = hit
                self._n_fbt_hits += 1
                if timeline is not None:
                    timeline.record("iommu.fbt_hits", t)
                if self._translate_hist is not None:
                    self._translate_hist.record(t - now)
                if tracing:
                    tracer.emit("iommu.fbt_hit", t, vpn=vpn)
                self.shared_tlb.insert(key, ppn, permissions, t)
                return (ppn, permissions, t, "fbt", False, 0, 0)
            self._n_fbt_misses += 1

        if tracing:
            tracer.emit("walk.start", t, vpn=vpn, asid=asid)
        walk = self._walkers[asid].walk(vpn, t)
        self._n_walks += 1
        if timeline is not None:
            timeline.record("iommu.walks", t)
        if self._walk_hist is not None:
            self._walk_hist.record(walk.finish - t)
        if self._translate_hist is not None:
            self._translate_hist.record(walk.finish - now)
        if tracing:
            tracer.emit("walk.finish", walk.finish, vpn=vpn,
                        latency=walk.finish - t)
        self.shared_tlb.insert(
            key, walk.result.ppn, walk.result.permissions, walk.finish,
            is_large=walk.result.is_large,
            large_base_vpn=walk.result.large_base_vpn,
            large_base_ppn=walk.result.large_base_ppn,
        )
        result = walk.result
        return (result.ppn, result.permissions, walk.finish, "walk",
                result.is_large, result.large_base_vpn, result.large_base_ppn)

    # -- shootdown ------------------------------------------------------------
    def invalidate(self, vpn: int, asid: int = 0) -> bool:
        """Drop one shared-TLB translation (part of a TLB shootdown)."""
        return self.shared_tlb.invalidate(self._tlb_key(asid, vpn))

    def invalidate_all(self) -> int:
        """Drop every shared-TLB translation."""
        return self.shared_tlb.invalidate_all()
