"""An x86-64-style four-level radix page table.

The IOMMU's page-table walker in the paper walks real per-process radix
tables; the page-walk cache works because consecutive walks share upper-
level directory entries.  To preserve that locality structure we build
an actual radix tree whose interior nodes occupy physical frames — a
walk returns the *physical addresses of the node entries it touched*,
and the walker plays those addresses against the page-walk cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.memsys.addressing import PAGE_SIZE
from repro.memsys.permissions import PageFault, Permissions

__all__ = [
    "BITS_PER_LEVEL",
    "ENTRIES_PER_NODE",
    "FrameAllocator",
    "LEVELS",
    "PTE_SIZE",
    "PageTable",
    "WalkResult",
]

LEVELS = 4
BITS_PER_LEVEL = 9
ENTRIES_PER_NODE = 1 << BITS_PER_LEVEL
PTE_SIZE = 8


class FrameAllocator:
    """Hands out physical page frames sequentially.

    A deliberately simple physical memory manager: frames are never
    freed (simulated workloads allocate once and run).  Separate
    allocators are *not* needed for page-table versus data frames — they
    share one physical address space, as on real hardware.
    """

    def __init__(self, first_frame: int = 1) -> None:
        if first_frame < 0:
            raise ValueError("first frame must be nonnegative")
        self._next = first_frame

    @property
    def frames_allocated(self) -> int:
        return self._next

    def allocate(self) -> int:
        """Allocate and return a fresh physical frame number."""
        frame = self._next
        self._next += 1
        return frame

    def allocate_contiguous(self, n_frames: int, align: int = 1) -> int:
        """Allocate ``n_frames`` contiguous frames at an aligned base.

        Large pages need physically contiguous, naturally aligned
        backing (512 frames aligned to 512 for a 2 MB page).
        """
        if n_frames <= 0:
            raise ValueError("must allocate at least one frame")
        if align <= 0:
            raise ValueError("alignment must be positive")
        base = ((self._next + align - 1) // align) * align
        self._next = base + n_frames
        return base


@dataclass
class WalkResult:
    """Outcome of a successful page-table walk."""

    vpn: int
    ppn: int
    permissions: Permissions
    # Physical byte addresses of the PTEs read, root level first.  The
    # page-table walker replays these against the page-walk cache.
    node_addresses: Tuple[int, ...] = ()
    # Large-page mappings resolve one level early (3 PTE reads, not 4)
    # and cover 512 base pages from the aligned base VPN/PPN.
    is_large: bool = False
    large_base_vpn: int = 0
    large_base_ppn: int = 0


class _Node:
    """One interior node (512 entries) occupying a physical frame."""

    __slots__ = ("frame", "children", "leaves", "large_leaves")

    def __init__(self, frame: int) -> None:
        self.frame = frame
        self.children: Dict[int, "_Node"] = {}
        self.leaves: Dict[int, Tuple[int, Permissions]] = {}
        # Page-directory-level 2 MB mappings: index → (base ppn, perms).
        self.large_leaves: Dict[int, Tuple[int, Permissions]] = {}

    def entry_address(self, index: int) -> int:
        """Physical byte address of entry ``index`` within this node."""
        return self.frame * PAGE_SIZE + index * PTE_SIZE


def _level_indices(vpn: int) -> List[int]:
    """The four 9-bit radix indices of ``vpn``, root level first."""
    indices = []
    for level in range(LEVELS - 1, -1, -1):
        indices.append((vpn >> (level * BITS_PER_LEVEL)) & (ENTRIES_PER_NODE - 1))
    return indices


class PageTable:
    """A four-level radix page table for one address space."""

    def __init__(self, frame_allocator: FrameAllocator) -> None:
        self._frames = frame_allocator
        self._root = _Node(frame_allocator.allocate())
        self.n_mappings = 0
        self.n_large_mappings = 0

    # -- construction ----------------------------------------------------
    def map(self, vpn: int, ppn: int, permissions: Permissions = Permissions.READ_WRITE) -> None:
        """Install or replace the translation ``vpn → ppn``."""
        if vpn < 0 or ppn < 0:
            raise ValueError("page numbers must be nonnegative")
        indices = _level_indices(vpn)
        node = self._root
        for depth, index in enumerate(indices[:-1]):
            if depth == 2 and index in node.large_leaves:
                raise ValueError(
                    f"vpn {vpn:#x} is covered by a 2MB mapping; unmap it first"
                )
            child = node.children.get(index)
            if child is None:
                child = _Node(self._frames.allocate())
                node.children[index] = child
            node = child
        if indices[-1] not in node.leaves:
            self.n_mappings += 1
        node.leaves[indices[-1]] = (ppn, permissions)

    def map_large(self, vpn: int, ppn: int,
                  permissions: Permissions = Permissions.READ_WRITE) -> None:
        """Install a 2 MB mapping at the page-directory level.

        ``vpn`` and ``ppn`` are base-page numbers and must be aligned to
        the 512-page large-page boundary; the backing frames must be
        physically contiguous (use ``FrameAllocator.allocate_contiguous``).
        """
        if vpn % ENTRIES_PER_NODE or ppn % ENTRIES_PER_NODE:
            raise ValueError("large mappings must be 512-page aligned")
        indices = _level_indices(vpn)
        node = self._root
        for index in indices[:2]:
            child = node.children.get(index)
            if child is None:
                child = _Node(self._frames.allocate())
                node.children[index] = child
            node = child
        pd_index = indices[2]
        child = node.children.get(pd_index)
        if child is not None and child.leaves:
            raise ValueError(
                f"large mapping at vpn {vpn:#x} would shadow existing 4KB mappings"
            )
        if pd_index not in node.large_leaves:
            self.n_large_mappings += 1
        node.large_leaves[pd_index] = (ppn, permissions)

    def unmap(self, vpn: int) -> bool:
        """Remove a translation; True if one existed."""
        node = self._find_leaf_node(vpn)
        if node is None:
            return False
        removed = node.leaves.pop(_level_indices(vpn)[-1], None)
        if removed is None:
            return False
        self.n_mappings -= 1
        return True

    def set_permissions(self, vpn: int, permissions: Permissions) -> None:
        """Change the permissions of an existing mapping."""
        node = self._find_leaf_node(vpn)
        leaf_index = _level_indices(vpn)[-1]
        if node is None or leaf_index not in node.leaves:
            raise PageFault(vpn)
        ppn, _ = node.leaves[leaf_index]
        node.leaves[leaf_index] = (ppn, permissions)

    # -- walking ----------------------------------------------------------
    def walk(self, vpn: int) -> WalkResult:
        """Walk the tree for ``vpn``; raise :class:`PageFault` if unmapped.

        Returns the translation plus the physical addresses of all four
        PTEs read along the way.
        """
        indices = _level_indices(vpn)
        node = self._root
        touched = []
        for depth, index in enumerate(indices[:-1]):
            touched.append(node.entry_address(index))
            if depth == 2:
                large = node.large_leaves.get(index)
                if large is not None:
                    base_ppn, permissions = large
                    offset = vpn % ENTRIES_PER_NODE
                    return WalkResult(
                        vpn=vpn,
                        ppn=base_ppn + offset,
                        permissions=permissions,
                        node_addresses=tuple(touched),  # one level fewer
                        is_large=True,
                        large_base_vpn=vpn - offset,
                        large_base_ppn=base_ppn,
                    )
            child = node.children.get(index)
            if child is None:
                raise PageFault(vpn)
            node = child
        touched.append(node.entry_address(indices[-1]))
        leaf = node.leaves.get(indices[-1])
        if leaf is None:
            raise PageFault(vpn)
        ppn, permissions = leaf
        return WalkResult(
            vpn=vpn, ppn=ppn, permissions=permissions, node_addresses=tuple(touched)
        )

    def lookup(self, vpn: int) -> Optional[Tuple[int, Permissions]]:
        """Translation for ``vpn`` without walk bookkeeping, or None."""
        indices = _level_indices(vpn)
        node = self._root
        for depth, index in enumerate(indices[:-1]):
            if depth == 2:
                large = node.large_leaves.get(index)
                if large is not None:
                    base_ppn, permissions = large
                    return base_ppn + vpn % ENTRIES_PER_NODE, permissions
            node = node.children.get(index)
            if node is None:
                return None
        return node.leaves.get(indices[-1])

    def _find_leaf_node(self, vpn: int) -> Optional[_Node]:
        node = self._root
        for index in _level_indices(vpn)[:-1]:
            node = node.children.get(index)
            if node is None:
                return None
        return node
