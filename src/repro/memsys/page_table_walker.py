"""Multi-threaded page-table walker (PTW).

The baseline IOMMU supports 16 concurrent page-table walks to absorb the
queueing delay of frequent shared-TLB misses (Table 1, [22, 37, 47]).
Each walk serially reads the four PTE levels through the page-walk
cache; a walk occupies one walker thread for its whole latency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.resources import ThreadPool
from repro.memsys.page_table import PageTable, WalkResult
from repro.memsys.page_walk_cache import PageWalkCache


__all__ = ["PageTableWalker", "TimedWalk"]


@dataclass
class TimedWalk:
    """A completed walk with its timing."""

    result: WalkResult
    start: float
    finish: float

    @property
    def latency(self) -> float:
        return self.finish - self.start


class PageTableWalker:
    """Walks a page table with bounded concurrency through a PWC."""

    def __init__(
        self,
        page_table: PageTable,
        pwc: PageWalkCache = None,
        n_threads: int = 16,
    ) -> None:
        self.page_table = page_table
        self.pwc = pwc if pwc is not None else PageWalkCache()
        self.threads = ThreadPool(n_threads)
        self.walks = 0
        self.total_latency = 0.0
        self.memory_accesses = 0

    def walk(self, vpn: int, now: float) -> TimedWalk:
        """Perform a timed walk; raises :class:`PageFault` if unmapped.

        The functional walk (which PTEs exist) happens against the real
        radix tree; the PWC then prices the PTE reads; the thread pool
        serializes when all 16 walkers are busy.
        """
        result = self.page_table.walk(vpn)
        service, mem_accesses = self.pwc.walk_latency(result.node_addresses)
        finish = self.threads.request(now, service)
        self.walks += 1
        self.total_latency += finish - now
        self.memory_accesses += mem_accesses
        return TimedWalk(result=result, start=now, finish=finish)

    def mean_latency(self) -> float:
        """Average observed walk latency including thread queueing."""
        return self.total_latency / self.walks if self.walks else 0.0
