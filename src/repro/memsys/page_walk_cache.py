"""Page-walk cache (PWC).

An 8 KB physical cache dedicated to page-table entries (Table 1).  Upper
level page-directory entries are shared by many walks, so caching them
collapses most of a four-level walk to a single memory access — prior
work found this is important for high-performance GPU translation, and
the baseline IOMMU includes it.

Only the three directory levels are cached; leaf PTEs are not (each leaf
covers just one 4 KB page, so caching it would duplicate the TLB's job).
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.memsys.cache import Cache, CacheConfig


__all__ = ["PageWalkCache"]

class PageWalkCache:
    """A small physical cache consulted for each page-table node access."""

    def __init__(
        self,
        size_bytes: int = 8192,
        line_size: int = 64,
        associativity: int = 8,
        hit_latency: float = 2.0,
        memory_latency: float = 100.0,
        cache_leaf_level: bool = False,
    ) -> None:
        self._cache = Cache(
            CacheConfig(
                size_bytes=size_bytes,
                line_size=line_size,
                associativity=associativity,
                write_back=False,
                write_allocate=True,
            ),
            name="pwc",
        )
        self.hit_latency = hit_latency
        self.memory_latency = memory_latency
        self.cache_leaf_level = cache_leaf_level

    @property
    def hits(self) -> int:
        return self._cache.hits

    @property
    def misses(self) -> int:
        return self._cache.misses

    def walk_latency(self, node_addresses: Sequence[int]) -> Tuple[float, int]:
        """Serial latency of reading the given PTE chain through the PWC.

        Returns ``(latency_cycles, memory_accesses)``.  The last address
        is the leaf PTE, which always goes to memory unless
        ``cache_leaf_level`` is set.
        """
        latency = 0.0
        memory_accesses = 0
        n = len(node_addresses)
        for i, addr in enumerate(node_addresses):
            is_leaf = i == n - 1
            if is_leaf and not self.cache_leaf_level:
                latency += self.memory_latency
                memory_accesses += 1
                continue
            line = addr // self._cache.config.line_size
            if self._cache.lookup(line) is not None:
                latency += self.hit_latency
            else:
                latency += self.memory_latency
                memory_accesses += 1
                self._cache.insert(line)
        return latency, memory_accesses
