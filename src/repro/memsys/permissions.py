"""Page permissions.

Virtual caches must carry page permissions with each cache line because
the TLB — where a physical hierarchy performs its permission check — is
no longer on the access path (§4.1, "the permissions of the virtual page
are maintained with each cache line").
"""

from __future__ import annotations

import enum


__all__ = [
    "PageFault",
    "PermissionFault",
    "Permissions",
    "ReadWriteSynonymFault",
]

class Permissions(enum.IntFlag):
    """Read/write/execute permission bits of a page mapping."""

    NONE = 0
    READ = 1
    WRITE = 2
    EXECUTE = 4

    READ_ONLY = READ
    READ_WRITE = READ | WRITE

    def allows(self, is_write: bool) -> bool:
        """Whether this permission set admits the given access type.

        Hot path: tests the raw ``_value_`` int against the READ/WRITE
        bit instead of going through ``IntFlag.__and__``, which
        constructs a composite enum member per call.  The members are
        interned singletons, so every cache line and TLB entry shares
        the same handful of objects and this check is a plain int test.
        """
        return bool(self._value_ & (2 if is_write else 1))


class PermissionFault(Exception):
    """An access violated its page's permissions."""

    def __init__(self, vpn: int, is_write: bool, permissions: Permissions) -> None:
        kind = "write" if is_write else "read"
        super().__init__(
            f"{kind} access to virtual page {vpn:#x} violates permissions {permissions!r}"
        )
        self.vpn = vpn
        self.is_write = is_write
        self.permissions = permissions


class PageFault(Exception):
    """No valid translation exists for a virtual page."""

    def __init__(self, vpn: int, asid: int = 0) -> None:
        super().__init__(f"page fault: no mapping for virtual page {vpn:#x} (asid {asid})")
        self.vpn = vpn
        self.asid = asid


class ReadWriteSynonymFault(Exception):
    """A read-write synonym access was detected at the FBT (§4.2).

    GPUs lack precise exceptions, so the design conservatively faults
    rather than attempting replay/rollback when a synonymous access
    touches a physical page that has been written (or writes a page that
    has synonymous readers).
    """

    def __init__(self, ppn: int, leading_vpn: int, vpn: int) -> None:
        super().__init__(
            f"read-write synonym on physical page {ppn:#x}: leading vpn {leading_vpn:#x}, "
            f"synonymous access via vpn {vpn:#x}"
        )
        self.ppn = ppn
        self.leading_vpn = leading_vpn
        self.vpn = vpn
