"""Translation lookaside buffers.

Models both the small per-CU L1 TLBs (32/64/128 entries, fully
associative, LRU) and the large shared IOMMU TLB (512 or 16K entries).
``capacity=None`` gives the infinite TLB used for the "inf" bars of
Figure 2 and the IDEAL MMU of Figure 4.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.engine.stats import LifetimeTracker
from repro.memsys.permissions import Permissions


__all__ = ["TLB", "TLBEntry"]

class TLBEntry:
    """One cached translation.

    ``__slots__``: TLB entries are allocated on every fill and probed on
    every translation, so they carry no per-instance ``__dict__``.
    """

    __slots__ = ("vpn", "ppn", "permissions", "is_large",
                 "large_base_vpn", "large_base_ppn")

    def __init__(
        self,
        vpn: int,
        ppn: int,
        permissions: Permissions = Permissions.READ_WRITE,
        # Large-page provenance (carried so downstream structures — the
        # FBT above all — can apply their large-page policy on hits too).
        is_large: bool = False,
        large_base_vpn: int = 0,
        large_base_ppn: int = 0,
    ) -> None:
        self.vpn = vpn
        self.ppn = ppn
        self.permissions = permissions
        self.is_large = is_large
        self.large_base_vpn = large_base_vpn
        self.large_base_ppn = large_base_ppn

    def __repr__(self) -> str:
        return (
            f"TLBEntry(vpn={self.vpn!r}, ppn={self.ppn!r}, "
            f"permissions={self.permissions!r}, is_large={self.is_large!r}, "
            f"large_base_vpn={self.large_base_vpn!r}, "
            f"large_base_ppn={self.large_base_ppn!r})"
        )


class TLB:
    """A fully-associative, LRU translation buffer.

    An optional :class:`LifetimeTracker` records entry residence times
    (insertion → eviction), which the Appendix (Figure 12) compares
    against cache-data lifetimes to explain why virtual caches filter
    TLB misses.

    A direct-mapped *last-translation micro-memo* (``_memo_key`` /
    ``_memo_entry``) sits in front of the full probe: a single tag
    compare against the most recently used key.  The memo is exactly one
    entry — never wider — because a memo hit skips the LRU refresh, and
    only the MRU key can do that without perturbing eviction order (it
    is already at the recency-list tail, so ``move_to_end`` would be a
    no-op).  Every hit and fill path updates the memo and every
    invalidation path clears it, so the invariant "the memo holds the
    MRU key, or nothing" holds even when shootdowns bypass the hierarchy
    (the chaos fault injector invalidates TLBs directly).  Counters are
    attributed identically on memo and full-probe hits, so simulation
    outputs stay bit-identical.
    """

    def __init__(
        self,
        capacity: Optional[int] = None,
        name: str = "tlb",
        lifetimes: Optional[LifetimeTracker] = None,
    ) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("TLB capacity must be positive (or None for infinite)")
        self.capacity = capacity
        self.name = name
        self.lifetimes = lifetimes
        self._entries: OrderedDict[int, TLBEntry] = OrderedDict()
        self.hits = 0
        self.misses = 0
        # Keys are nonnegative ASID-qualified page numbers; -1 never matches.
        self._memo_key = -1
        self._memo_entry: Optional[TLBEntry] = None

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, vpn: int) -> bool:
        return vpn in self._entries

    # -- access path ----------------------------------------------------
    def lookup(self, vpn: int, now: float = 0.0) -> Optional[TLBEntry]:
        """Translate ``vpn``: LRU-refreshing hit, or None on miss."""
        if vpn == self._memo_key:
            # Memo hit: the key is already MRU, so the LRU refresh is
            # skipped as a provable no-op; counters unchanged vs a probe.
            self.hits += 1
            if self.lifetimes is not None:
                self.lifetimes.on_access(vpn, now)
            return self._memo_entry
        entry = self._entries.get(vpn)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(vpn)
        self.hits += 1
        self._memo_key = vpn
        self._memo_entry = entry
        if self.lifetimes is not None:
            self.lifetimes.on_access(vpn, now)
        return entry

    def insert(
        self,
        vpn: int,
        ppn: int,
        permissions: Permissions = Permissions.READ_WRITE,
        now: float = 0.0,
        is_large: bool = False,
        large_base_vpn: int = 0,
        large_base_ppn: int = 0,
    ) -> Optional[TLBEntry]:
        """Fill a translation; return the LRU victim entry, if any."""
        existing = self._entries.get(vpn)
        if existing is not None:
            existing.ppn = ppn
            existing.permissions = permissions
            existing.is_large = is_large
            existing.large_base_vpn = large_base_vpn
            existing.large_base_ppn = large_base_ppn
            self._entries.move_to_end(vpn)
            self._memo_key = vpn
            self._memo_entry = existing
            return None
        victim = None
        if self.capacity is not None and len(self._entries) >= self.capacity:
            _, victim = self._entries.popitem(last=False)
            if self.lifetimes is not None:
                self.lifetimes.on_evict(victim.vpn, now)
        entry = TLBEntry(vpn=vpn, ppn=ppn, permissions=permissions,
                         is_large=is_large,
                         large_base_vpn=large_base_vpn,
                         large_base_ppn=large_base_ppn)
        self._entries[vpn] = entry
        # The fill is the new MRU; this also covers the capacity-1 case
        # where the evicted victim was the memoized key.
        self._memo_key = vpn
        self._memo_entry = entry
        if self.lifetimes is not None:
            self.lifetimes.on_insert(vpn, now)
        return victim

    # -- shootdown ------------------------------------------------------
    def invalidate(self, vpn: int, now: float = 0.0) -> bool:
        """Single-entry shootdown; True if an entry was dropped.

        Clears the micro-memo when it holds the shot-down key, so a
        remap/unmap can never be served a stale memoized translation.
        """
        if vpn == self._memo_key:
            self._memo_key = -1
            self._memo_entry = None
        entry = self._entries.pop(vpn, None)
        if entry is None:
            return False
        if self.lifetimes is not None:
            self.lifetimes.on_evict(vpn, now)
        return True

    def invalidate_all(self, now: float = 0.0) -> int:
        """All-entry shootdown; returns the number of entries dropped."""
        self._memo_key = -1
        self._memo_entry = None
        dropped = len(self._entries)
        if self.lifetimes is not None:
            for vpn in self._entries:
                self.lifetimes.on_evict(vpn, now)
        self._entries.clear()
        return dropped

    # -- stats ----------------------------------------------------------
    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def miss_ratio(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0
