"""Observability: tracing, metrics, run manifests, and profiling.

This package is the simulator's measurement layer.  The paper's claims
are about *where time goes* — queueing at the shared IOMMU TLB port,
not walk latency — and flat end-of-run counters cannot show that.  The
four pieces here can:

* :mod:`repro.obs.tracer` — structured per-request event tracing
  (JSON-lines), zero-overhead when disabled;
* :mod:`repro.obs.metrics` — a hierarchical registry of counters,
  gauges, and log-scale latency histograms (p50/p95/p99);
* :mod:`repro.obs.manifest` — JSON run artifacts (config, workload,
  design, git SHA, wall-clock, all metrics);
* :mod:`repro.obs.profiler` — host wall-clock spans around pipeline
  stages.

:class:`Observability` bundles them so one object threads through the
hierarchy constructors, the IOMMU, and ``simulate()``:

>>> from repro.obs import Observability, RecordingTracer
>>> obs = Observability(tracer=RecordingTracer())
>>> # hierarchy = VC_WITH_OPT.build(config, page_tables, obs=obs)
>>> # result = simulate(trace, hierarchy, config, obs=obs)

Attaching an ``Observability`` never changes simulated timing: the
instrumentation only *observes* the timestamps the timing model already
computes.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.manifest import (
    build_manifest,
    git_sha,
    load_manifest,
    write_manifest,
)
from repro.obs.metrics import LatencyHistogram, MetricsRegistry, MetricsScope
from repro.obs.profiler import Profiler, Span
from repro.obs.promexp import render_prometheus, validate_exposition
from repro.obs.timeline import Timeline
from repro.obs.trace_context import ContextTracer, TraceContext
from repro.obs.tracer import (
    NULL_TRACER,
    JsonLinesTracer,
    NullTracer,
    RecordingTracer,
)

__all__ = [
    "NULL_TRACER",
    "ContextTracer",
    "JsonLinesTracer",
    "LatencyHistogram",
    "MetricsRegistry",
    "MetricsScope",
    "NullTracer",
    "Observability",
    "Profiler",
    "RecordingTracer",
    "Span",
    "Timeline",
    "TraceContext",
    "build_manifest",
    "git_sha",
    "load_manifest",
    "render_prometheus",
    "validate_exposition",
    "write_manifest",
]


class Observability:
    """A tracer + metrics registry (+ optional profiler) travelling together.

    Components accept ``obs=None``; when None they skip all
    instrumentation (the zero-overhead default).  When attached, the
    tracer may still be :data:`NULL_TRACER` — metrics and manifests
    work without tracing.
    """

    def __init__(
        self,
        tracer=None,
        metrics: Optional[MetricsRegistry] = None,
        profiler: Optional[Profiler] = None,
    ) -> None:
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.profiler = profiler

    @property
    def tracing(self) -> bool:
        """True when the attached tracer actually records events."""
        return self.tracer.enabled

    def with_fields(self, **fields) -> "Observability":
        """A view whose tracer stamps ``fields`` onto every event.

        Metrics and profiler are *shared* with this bundle — only the
        tracer is wrapped (see :class:`~repro.obs.trace_context.ContextTracer`),
        which is how a trace context binds to the events a simulation
        emits.  When tracing is off this returns ``self`` unchanged,
        preserving the zero-overhead path.
        """
        if not fields or not self.tracer.enabled:
            return self
        return Observability(
            tracer=ContextTracer(self.tracer, **fields),
            metrics=self.metrics,
            profiler=self.profiler,
        )

    def close(self) -> None:
        """Release the tracer's sink (flushes a file-backed trace)."""
        self.tracer.close()
