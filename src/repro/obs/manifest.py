"""Run manifests: a JSON artifact that makes a simulation reproducible.

A manifest records everything needed to re-run and audit one
``simulate()`` call (or one CLI experiment invocation): the full SoC
configuration, the workload and MMU design names, the git revision the
simulator was built from, host wall-clock, and every collected metric —
counters, gauges, and latency-histogram summaries (p50/p95/p99).  The
``BENCH_*.json`` trajectories in ``benchmarks/`` become reproducible
once each point carries one of these.

Manifests are plain dicts serialized with sorted keys, so identical
runs produce byte-identical artifacts (see the ``Counters.as_dict``
ordering guarantee in :mod:`repro.engine.stats`).
"""

from __future__ import annotations

import dataclasses
import json
import subprocess
import time
from pathlib import Path
from typing import Any, Dict, Optional, Union

__all__ = [
    "SCHEMA_VERSION",
    "build_manifest",
    "git_sha",
    "load_manifest",
    "write_manifest",
]

SCHEMA_VERSION = 1


def _coerce(obj: Any) -> Any:
    """JSON fallback for numpy scalars that leak in via counters/metrics."""
    if hasattr(obj, "item"):
        return obj.item()
    raise TypeError(f"Object of type {type(obj).__name__} is not JSON serializable")


def git_sha(repo_root: Optional[Union[str, Path]] = None) -> Optional[str]:
    """The current git commit hash, or None outside a repo / without git."""
    if repo_root is None:
        repo_root = Path(__file__).resolve().parent
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(repo_root),
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip() or None


def _config_dict(config: Any) -> Any:
    """Dataclass configs → nested dicts; anything else passes through."""
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        return dataclasses.asdict(config)
    return config


def build_manifest(
    result: Any = None,
    config: Any = None,
    metrics: Any = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble a manifest dict for one simulation (or experiment) run.

    ``result`` is a :class:`~repro.system.run.SimulationResult` (or
    None for experiment-level manifests), ``config`` a
    :class:`~repro.system.config.SoCConfig`, ``metrics`` a
    :class:`~repro.obs.metrics.MetricsRegistry`; ``extra`` merges
    caller-specific keys (scale, experiment names, trace path...).
    """
    manifest: Dict[str, Any] = {
        "schema_version": SCHEMA_VERSION,
        "created_unix": time.time(),
        "git_sha": git_sha(),
    }
    if config is not None:
        manifest["config"] = _config_dict(config)
    if result is not None:
        manifest["run"] = {
            "workload": result.workload,
            "design": result.design,
            "cycles": result.cycles,
            "instructions": result.instructions,
            "requests": result.requests,
            "wall_clock_seconds": result.wall_clock_seconds,
        }
        manifest["counters"] = dict(sorted(result.counters.items()))
        if result.iommu_rate is not None:
            manifest["iommu_rate"] = {
                "mean": result.iommu_rate.mean,
                "std": result.iommu_rate.std,
                "max": result.iommu_rate.maximum,
                "n_samples": result.iommu_rate.n_samples,
            }
    if metrics is not None:
        manifest["metrics"] = metrics.snapshot()
    if extra:
        manifest.update(extra)
    return manifest


def write_manifest(path: Union[str, Path], manifest: Dict[str, Any]) -> Path:
    """Serialize ``manifest`` to ``path`` with sorted keys; return the path."""
    path = Path(path)
    path.write_text(
        json.dumps(manifest, indent=2, sort_keys=True, default=_coerce) + "\n",
        encoding="utf-8")
    return path


def load_manifest(path: Union[str, Path]) -> Dict[str, Any]:
    """Read a manifest previously written by :func:`write_manifest`."""
    return json.loads(Path(path).read_text(encoding="utf-8"))
