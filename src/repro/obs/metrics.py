"""Hierarchical metrics: counters, gauges, and log-scale latency histograms.

The flat :class:`~repro.engine.stats.Counters` bag answers "how many",
but the paper's argument is about *distributions* — how long requests
queue at the shared IOMMU TLB port, how long page walks take, how long
a request lives end to end.  :class:`LatencyHistogram` records those
distributions in geometrically spaced buckets (bounded relative error,
O(1) inserts, sparse storage), and :class:`MetricsRegistry` names and
owns every instrument so one ``snapshot()`` captures a whole run.

Names are dot-namespaced (``iommu.queue_delay``); :meth:`MetricsRegistry.scope`
returns a prefixed view so a component can register ``queue_delay``
without knowing where it sits in the hierarchy.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional

from repro.engine.stats import Counters
from repro.obs.timeline import Timeline


__all__ = ["LatencyHistogram", "MetricsRegistry", "MetricsScope"]

class LatencyHistogram:
    """A log-scale histogram of nonnegative values.

    Buckets are geometric with ``sub_buckets_per_octave`` buckets per
    power of two (default 8 → ≈ ±4.4% relative error at the geometric
    bucket midpoint).  Values ≤ 0 land in a dedicated zero bucket, so
    "no queueing delay" is represented exactly.  ``count``, ``total``,
    ``min`` and ``max`` are tracked exactly regardless of bucketing.
    """

    def __init__(self, sub_buckets_per_octave: int = 8) -> None:
        if sub_buckets_per_octave < 1:
            raise ValueError("need at least one bucket per octave")
        self.sub_buckets_per_octave = sub_buckets_per_octave
        self._log_growth = math.log(2.0) / sub_buckets_per_octave
        self._buckets: Dict[int, int] = {}
        self._zero_count = 0
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def record(self, value: float, count: int = 1) -> None:
        """Add ``count`` observations of ``value``."""
        self.count += count
        self.total += value * count
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if value <= 0.0:
            self._zero_count += count
            return
        index = math.floor(math.log(value) / self._log_growth)
        self._buckets[index] = self._buckets.get(index, 0) + count

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Value at the ``p``-th percentile (0–100), ±one bucket width.

        Returns the geometric midpoint of the bucket holding the rank,
        clamped to the exact observed ``[min, max]`` range.
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        if self.count == 0:
            return 0.0
        if p == 100.0:
            return self.max  # exact: the maximum is tracked outside buckets
        rank = max(1, math.ceil(p / 100.0 * self.count))
        cumulative = self._zero_count
        if rank <= cumulative:
            return 0.0
        for index in sorted(self._buckets):
            cumulative += self._buckets[index]
            if cumulative >= rank:
                midpoint = math.exp((index + 0.5) * self._log_growth)
                return min(max(midpoint, self.min), self.max)
        return self.max  # floating-point slack: rank beyond the last bucket

    def quantiles(self) -> Dict[str, float]:
        """The p50/p95/p99 summary every latency export carries."""
        return {
            "p50": self.percentile(50.0),
            "p95": self.percentile(95.0),
            "p99": self.percentile(99.0),
        }

    def as_dict(self) -> Dict[str, float]:
        """JSON-ready summary: count, mean, min/max, p50/p95/p99."""
        summary: Dict[str, float] = {
            "count": self.count,
            "mean": self.mean,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
        }
        summary.update(self.quantiles())
        return summary

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold another histogram's observations into this one.

        Bucket-exact: merging preserves every count, the zero bucket,
        and the exact min/max, so parent-process aggregation over
        per-worker histograms matches recording everything in one
        registry.  Both histograms must share a bucket layout.
        """
        if other.sub_buckets_per_octave != self.sub_buckets_per_octave:
            raise ValueError(
                "cannot merge histograms with different bucket layouts "
                f"({self.sub_buckets_per_octave} vs "
                f"{other.sub_buckets_per_octave} sub-buckets per octave)"
            )
        self.count += other.count
        self.total += other.total
        self._zero_count += other._zero_count
        for index, count in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + count
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max

    def reset(self) -> None:
        self._buckets.clear()
        self._zero_count = 0
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None


class MetricsRegistry:
    """Named counters, gauges, and histograms for one simulated run.

    Wraps a :class:`~repro.engine.stats.Counters` bag (``registry.counters``
    keeps the exact ``add``/``as_dict`` interface the rest of the
    simulator already uses) and adds gauges and latency histograms
    beside it.  Instruments are created on first use and shared by
    name, so two components asking for ``iommu.queue_delay`` aggregate
    into the same histogram.
    """

    def __init__(self, counters: Optional[Counters] = None) -> None:
        self.counters = counters if counters is not None else Counters()
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, LatencyHistogram] = {}
        #: Optional per-epoch time series (see :meth:`enable_timeline`).
        #: Instrumented components capture this reference at
        #: construction, so leaving it ``None`` costs nothing per event.
        self.timeline: Optional[Timeline] = None

    def enable_timeline(
        self, epoch_cycles: float = 1024.0, max_epochs: int = 512
    ) -> Timeline:
        """Attach (or return the existing) windowed timeline.

        Must be called before the hierarchy is built — components grab
        ``metrics.timeline`` in their constructors.
        """
        if self.timeline is None:
            self.timeline = Timeline(epoch_cycles=epoch_cycles,
                                     max_epochs=max_epochs)
        return self.timeline

    # -- instruments ------------------------------------------------------
    def add(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` (delegates to the wrapped bag)."""
        self.counters.add(name, amount)

    def set_gauge(self, name: str, value: float) -> None:
        """Set point-in-time gauge ``name`` to ``value``."""
        self._gauges[name] = value

    def histogram(self, name: str, sub_buckets_per_octave: int = 8) -> LatencyHistogram:
        """Get (or create) the histogram registered under ``name``."""
        hist = self._histograms.get(name)
        if hist is None:
            hist = LatencyHistogram(sub_buckets_per_octave)
            self._histograms[name] = hist
        return hist

    def scope(self, prefix: str) -> "MetricsScope":
        """A view that prepends ``prefix.`` to every instrument name."""
        return MetricsScope(self, prefix)

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one (parallel-run aggregation).

        Counters add, histograms merge bucket-exactly, and gauges take
        the other registry's value (point-in-time semantics: last write
        wins, as if the worker had written through this registry).
        """
        self.counters.merge(other.counters)
        for name, value in other.gauges().items():
            self._gauges[name] = value
        for name, hist in other.histograms().items():
            self.histogram(name, hist.sub_buckets_per_octave).merge(hist)
        if other.timeline is not None:
            if self.timeline is None:
                self.timeline = Timeline(
                    epoch_cycles=other.timeline.epoch_cycles,
                    max_epochs=other.timeline.max_epochs)
            self.timeline.merge(other.timeline)

    # -- export -----------------------------------------------------------
    def gauges(self) -> Dict[str, float]:
        return dict(sorted(self._gauges.items()))

    def histograms(self) -> Dict[str, LatencyHistogram]:
        return dict(sorted(self._histograms.items()))

    def snapshot(self) -> Dict[str, Any]:
        """One JSON-ready dict of everything, with deterministic key order.

        The ``timeline`` key appears only when a timeline is attached,
        keeping snapshots byte-identical for runs that never opt in.
        """
        out: Dict[str, Any] = {
            "counters": self.counters.as_dict(),
            "gauges": self.gauges(),
            "histograms": {
                name: hist.as_dict() for name, hist in self.histograms().items()
            },
        }
        if self.timeline is not None:
            out["timeline"] = self.timeline.as_dict()
        return out

    def reset(self) -> None:
        self.counters.reset()
        self._gauges.clear()
        for hist in self._histograms.values():
            hist.reset()
        if self.timeline is not None:
            self.timeline.reset()


class MetricsScope:
    """A prefixed view onto a :class:`MetricsRegistry`."""

    def __init__(self, registry: MetricsRegistry, prefix: str) -> None:
        self._registry = registry
        self._prefix = prefix.rstrip(".") + "."

    def add(self, name: str, amount: int = 1) -> None:
        self._registry.add(self._prefix + name, amount)

    def set_gauge(self, name: str, value: float) -> None:
        self._registry.set_gauge(self._prefix + name, value)

    def histogram(self, name: str, sub_buckets_per_octave: int = 8) -> LatencyHistogram:
        return self._registry.histogram(self._prefix + name, sub_buckets_per_octave)

    def scope(self, prefix: str) -> "MetricsScope":
        return MetricsScope(self._registry, self._prefix + prefix)
