"""Pipeline profiling: wall-clock spans around experiment stages.

Unlike the tracer and the metrics registry — which observe *simulated*
time — the profiler measures the simulator itself: how many host
seconds each stage of an experiment pipeline (trace synthesis, each
(workload × design) simulation, rendering) actually took.  The CLI's
``--profile`` flag attaches one :class:`Profiler` to the run and prints
:meth:`Profiler.report` at the end.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, List


__all__ = ["Profiler", "Span"]


@dataclass
class Span:
    """One completed (or still-open) profiling span."""

    name: str
    depth: int
    start: float
    duration: float = 0.0


class Profiler:
    """Nestable wall-clock spans with a tree-shaped text report."""

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self._depth = 0

    @contextmanager
    def span(self, name: str) -> Iterator[Span]:
        """Time the enclosed block; spans nest with ``with`` structure."""
        entry = Span(name=name, depth=self._depth, start=time.perf_counter())
        self.spans.append(entry)  # appended on entry: report keeps call order
        self._depth += 1
        try:
            yield entry
        finally:
            self._depth -= 1
            entry.duration = time.perf_counter() - entry.start

    @property
    def total_seconds(self) -> float:
        """Wall-clock accounted to top-level spans."""
        return sum(s.duration for s in self.spans if s.depth == 0)

    def report(self) -> str:
        """Aligned tree of spans with durations and top-level percentages."""
        if not self.spans:
            return "profile: no spans recorded"
        total = self.total_seconds or 1e-12
        width = max(2 * s.depth + len(s.name) for s in self.spans)
        lines = ["profile (wall-clock):"]
        for s in self.spans:
            label = "  " * s.depth + s.name
            line = f"  {label:<{width}}  {s.duration:8.3f}s"
            if s.depth == 0:
                line += f"  {100.0 * s.duration / total:5.1f}%"
            lines.append(line)
        lines.append(f"  {'total':<{width}}  {self.total_seconds:8.3f}s")
        return "\n".join(lines)
