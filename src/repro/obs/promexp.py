"""Prometheus text exposition for a :class:`~repro.obs.metrics.MetricsRegistry`.

Renders the registry's counters, gauges, and log-scale latency
histograms in the `text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_
(version 0.0.4) that every Prometheus-compatible scraper understands,
so the experiment service's ``/metrics`` endpoint can feed a real
monitoring stack without new dependencies.

Mapping rules:

* Dot-namespaced names become underscore metric names with a
  ``repro_`` prefix: ``service.tier.memo`` → ``repro_service_tier_memo``.
  Counters additionally get the conventional ``_total`` suffix.
* :class:`~repro.obs.metrics.LatencyHistogram`'s geometric buckets are
  exported cumulatively.  Each occupied bucket with index ``i`` has
  upper bound ``exp((i + 1) * log(2)/sub_buckets_per_octave)``; the
  dedicated zero bucket exports as ``le="0"``, and ``le="+Inf"``
  always equals ``_count``.  ``_sum`` is the histogram's exact total.
* HELP text and label values are escaped per the format's rules
  (backslash, newline, and — for label values — double quote).

:func:`validate_exposition` is a strict line-level parser used by the
tests and the CI telemetry smoke job to prove the endpoint emits
well-formed exposition (including bucket cumulativity).
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import LatencyHistogram, MetricsRegistry


__all__ = [
    "CONTENT_TYPE",
    "histogram_buckets",
    "prometheus_name",
    "render_prometheus",
    "validate_exposition",
]

#: The Content-Type a conforming scrape response carries.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>[^ ]+)(?: [0-9]+)?$"
)


def prometheus_name(name: str, prefix: str = "repro") -> str:
    """Map a dot-namespaced instrument name to a Prometheus metric name."""
    flat = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    candidate = f"{prefix}_{flat}" if prefix else flat
    if not _NAME_OK.match(candidate):
        candidate = "_" + candidate
    return candidate


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(text: str) -> str:
    return (
        text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def histogram_buckets(hist: LatencyHistogram) -> List[Tuple[float, int]]:
    """Cumulative ``(upper_bound, count)`` pairs for one histogram.

    Bounds are the exact geometric bucket upper edges the histogram
    already uses, so exposition loses no precision beyond the bucket
    width itself.  The terminal ``(inf, count)`` entry is always
    present.
    """
    out: List[Tuple[float, int]] = []
    cumulative = 0
    if hist._zero_count:
        cumulative += hist._zero_count
        out.append((0.0, cumulative))
    for index in sorted(hist._buckets):
        cumulative += hist._buckets[index]
        out.append((math.exp((index + 1) * hist._log_growth), cumulative))
    out.append((math.inf, hist.count))
    return out


def render_prometheus(
    registry: MetricsRegistry,
    help_text: Optional[Dict[str, str]] = None,
) -> str:
    """The whole registry as one exposition document (trailing newline).

    ``help_text`` optionally maps *original* (dot-namespaced)
    instrument names to HELP strings; instruments without an entry get
    a generic one naming their origin.
    """
    helps = help_text or {}
    lines: List[str] = []

    for name, value in registry.counters.as_dict().items():
        metric = prometheus_name(name) + "_total"
        help_line = helps.get(name, f"Counter {name} from the repro simulator.")
        lines.append(f"# HELP {metric} {_escape_help(help_line)}")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(value)}")

    for name, value in registry.gauges().items():
        metric = prometheus_name(name)
        help_line = helps.get(name, f"Gauge {name} from the repro simulator.")
        lines.append(f"# HELP {metric} {_escape_help(help_line)}")
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(value)}")

    for name, hist in registry.histograms().items():
        metric = prometheus_name(name)
        help_line = helps.get(
            name, f"Latency histogram {name} from the repro simulator.")
        lines.append(f"# HELP {metric} {_escape_help(help_line)}")
        lines.append(f"# TYPE {metric} histogram")
        for bound, cumulative in histogram_buckets(hist):
            le = _escape_label_value(_format_value(bound))
            lines.append(
                f'{metric}_bucket{{le="{le}"}} {_format_value(cumulative)}')
        lines.append(f"{metric}_sum {_format_value(hist.total)}")
        lines.append(f"{metric}_count {_format_value(hist.count)}")

    return "\n".join(lines) + "\n"


def _parse_labels(raw: str) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    pattern = re.compile(
        r'\s*(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<val>(?:[^"\\]|\\.)*)"\s*(?:,|$)')
    pos = 0
    while pos < len(raw):
        match = pattern.match(raw, pos)
        if match is None:
            raise ValueError(f"malformed label set: {raw!r}")
        value = match.group("val")
        value = (
            value.replace("\\\\", "\x00")
            .replace('\\"', '"')
            .replace("\\n", "\n")
            .replace("\x00", "\\")
        )
        labels[match.group("key")] = value
        pos = match.end()
    return labels


def validate_exposition(text: str) -> Dict[str, Dict[str, object]]:
    """Parse exposition text strictly; raise ``ValueError`` on any defect.

    Checks the line grammar, that every sample is preceded by a TYPE
    declaration for its family, that histogram ``_bucket`` series are
    cumulative in increasing ``le`` order and end with ``+Inf`` equal
    to ``_count``.  Returns ``{family: {"type": ..., "samples":
    {name_or_le: value}}}`` for follow-on assertions.
    """
    families: Dict[str, Dict[str, object]] = {}
    for lineno, line in enumerate(text.split("\n"), start=1):
        if not line:
            continue
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            parts = line.split(" ", 3)
            if len(parts) < 4 and parts[1] == "TYPE":
                raise ValueError(f"line {lineno}: malformed TYPE: {line!r}")
            if parts[1] == "TYPE":
                family, kind = parts[2], parts[3]
                if kind not in ("counter", "gauge", "histogram", "summary",
                                "untyped"):
                    raise ValueError(
                        f"line {lineno}: unknown metric type {kind!r}")
                families[family] = {"type": kind, "samples": {}}
            continue
        if line.startswith("#"):
            continue  # comment
        match = _SAMPLE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample: {line!r}")
        name = match.group("name")
        family = re.sub(r"_(bucket|sum|count)$", "", name)
        owner = families.get(name) and name or family
        if owner not in families and name not in families:
            raise ValueError(
                f"line {lineno}: sample {name!r} has no TYPE declaration")
        target = families.get(name, families.get(family))
        labels = _parse_labels(match.group("labels") or "")
        raw_value = match.group("value")
        value = float(raw_value) if raw_value not in ("+Inf", "-Inf", "NaN") \
            else {"+Inf": math.inf, "-Inf": -math.inf, "NaN": math.nan}[raw_value]
        key = labels.get("le", name)
        samples: Dict[str, float] = target["samples"]  # type: ignore[assignment]
        if key in samples and "le" in labels:
            raise ValueError(f"line {lineno}: duplicate bucket le={key!r}")
        samples[key] = value

    for family, info in families.items():
        if info["type"] != "histogram":
            continue
        samples: Dict[str, float] = info["samples"]  # type: ignore[assignment]
        bounds = [k for k in samples if k not in (f"{family}_sum",
                                                  f"{family}_count")]
        if "+Inf" not in bounds:
            raise ValueError(f"{family}: histogram missing +Inf bucket")
        ordered = sorted(bounds, key=lambda k: float(k.replace("+Inf", "inf")))
        last = -math.inf
        for le in ordered:
            if samples[le] < last:
                raise ValueError(
                    f"{family}: bucket le={le} not cumulative "
                    f"({samples[le]} < {last})")
            last = samples[le]
        count = samples.get(f"{family}_count")
        if count is not None and samples["+Inf"] != count:
            raise ValueError(
                f"{family}: +Inf bucket {samples['+Inf']} != _count {count}")
    return families
