"""Prometheus text exposition for a :class:`~repro.obs.metrics.MetricsRegistry`.

Renders the registry's counters, gauges, and log-scale latency
histograms in the `text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_
(version 0.0.4) that every Prometheus-compatible scraper understands,
so the experiment service's ``/metrics`` endpoint can feed a real
monitoring stack without new dependencies.

Mapping rules:

* Dot-namespaced names become underscore metric names with a
  ``repro_`` prefix: ``service.tier.memo`` → ``repro_service_tier_memo``.
  Counters additionally get the conventional ``_total`` suffix.
* :class:`~repro.obs.metrics.LatencyHistogram`'s geometric buckets are
  exported cumulatively.  Each occupied bucket with index ``i`` has
  upper bound ``exp((i + 1) * log(2)/sub_buckets_per_octave)``; the
  dedicated zero bucket exports as ``le="0"``, and ``le="+Inf"``
  always equals ``_count``.  ``_sum`` is the histogram's exact total.
* HELP text and label values are escaped per the format's rules
  (backslash, newline, and — for label values — double quote).
* Instrument names may carry an inline label set in brackets —
  ``gateway.forwarded[replica=r0]`` — which renders as a labelled
  sample of the ``repro_gateway_forwarded_total`` family.  This is how
  the sharding gateway exports per-replica counters and latency
  histograms from one flat :class:`MetricsRegistry`.

:func:`merge_expositions` stitches several exposition documents into
one, stamping extra labels onto every sample — the gateway uses it to
re-export each replica's scrape under a ``replica="..."`` label next to
its own metrics.

:func:`validate_exposition` is a strict line-level parser used by the
tests and the CI telemetry/shard smoke jobs to prove the endpoints emit
well-formed exposition (including per-label-set bucket cumulativity).
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import LatencyHistogram, MetricsRegistry


__all__ = [
    "CONTENT_TYPE",
    "histogram_buckets",
    "merge_expositions",
    "prometheus_name",
    "render_prometheus",
    "split_instrument_labels",
    "validate_exposition",
]

#: The Content-Type a conforming scrape response carries.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>[^ ]+)(?: [0-9]+)?$"
)


_BRACKET_LABELS = re.compile(r"^(?P<base>[^\[\]]+)\[(?P<labels>[^\]]*)\]$")


def split_instrument_labels(name: str) -> Tuple[str, Dict[str, str]]:
    """Split ``base[k=v,...]`` into ``(base, labels)``.

    Instrument names without a bracket suffix return ``(name, {})``, so
    this is safe to apply to every registry entry.  Label values are
    taken verbatim (no quoting inside the brackets).
    """
    match = _BRACKET_LABELS.match(name)
    if match is None:
        return name, {}
    labels: Dict[str, str] = {}
    for part in match.group("labels").split(","):
        if not part:
            continue
        key, _, value = part.partition("=")
        labels[key.strip()] = value.strip()
    return match.group("base"), labels


def prometheus_name(name: str, prefix: str = "repro") -> str:
    """Map a dot-namespaced instrument name to a Prometheus metric name."""
    flat = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    candidate = f"{prefix}_{flat}" if prefix else flat
    if not _NAME_OK.match(candidate):
        candidate = "_" + candidate
    return candidate


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(text: str) -> str:
    return (
        text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def histogram_buckets(hist: LatencyHistogram) -> List[Tuple[float, int]]:
    """Cumulative ``(upper_bound, count)`` pairs for one histogram.

    Bounds are the exact geometric bucket upper edges the histogram
    already uses, so exposition loses no precision beyond the bucket
    width itself.  The terminal ``(inf, count)`` entry is always
    present.
    """
    out: List[Tuple[float, int]] = []
    cumulative = 0
    if hist._zero_count:
        cumulative += hist._zero_count
        out.append((0.0, cumulative))
    for index in sorted(hist._buckets):
        cumulative += hist._buckets[index]
        out.append((math.exp((index + 1) * hist._log_growth), cumulative))
    out.append((math.inf, hist.count))
    return out


def _render_labels(labels: Dict[str, str], le: Optional[str] = None) -> str:
    """``{k="v",...}`` with ``le`` forced last, or ``""`` when empty."""
    pairs = [(k, labels[k]) for k in sorted(labels) if k != "le"]
    if le is not None:
        pairs.append(("le", le))
    elif "le" in labels:
        pairs.append(("le", labels["le"]))
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in pairs)
    return "{" + inner + "}"


def render_prometheus(
    registry: MetricsRegistry,
    help_text: Optional[Dict[str, str]] = None,
) -> str:
    """The whole registry as one exposition document (trailing newline).

    ``help_text`` optionally maps *original* (dot-namespaced, without
    any bracket label suffix) instrument names to HELP strings;
    instruments without an entry get a generic one naming their origin.
    Instruments named ``base[k=v,...]`` collapse into one family per
    ``base`` with the bracket content as sample labels (HELP/TYPE
    emitted once, at the family's first sample).
    """
    helps = help_text or {}
    lines: List[str] = []
    declared: set = set()

    def _declare(metric: str, kind: str, help_line: str) -> None:
        if metric in declared:
            return
        declared.add(metric)
        lines.append(f"# HELP {metric} {_escape_help(help_line)}")
        lines.append(f"# TYPE {metric} {kind}")

    for name, value in registry.counters.as_dict().items():
        base, labels = split_instrument_labels(name)
        metric = prometheus_name(base) + "_total"
        _declare(metric, "counter",
                 helps.get(base, f"Counter {base} from the repro simulator."))
        lines.append(
            f"{metric}{_render_labels(labels)} {_format_value(value)}")

    for name, value in registry.gauges().items():
        base, labels = split_instrument_labels(name)
        metric = prometheus_name(base)
        _declare(metric, "gauge",
                 helps.get(base, f"Gauge {base} from the repro simulator."))
        lines.append(
            f"{metric}{_render_labels(labels)} {_format_value(value)}")

    for name, hist in registry.histograms().items():
        base, labels = split_instrument_labels(name)
        metric = prometheus_name(base)
        _declare(metric, "histogram",
                 helps.get(base,
                           f"Latency histogram {base} from the repro "
                           f"simulator."))
        label_text = _render_labels(labels)
        for bound, cumulative in histogram_buckets(hist):
            le = _escape_label_value(_format_value(bound))
            bucket_labels = _render_labels(labels, le=le)
            lines.append(
                f"{metric}_bucket{bucket_labels} {_format_value(cumulative)}")
        lines.append(f"{metric}_sum{label_text} {_format_value(hist.total)}")
        lines.append(f"{metric}_count{label_text} {_format_value(hist.count)}")

    return "\n".join(lines) + "\n"


def _parse_labels(raw: str) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    pattern = re.compile(
        r'\s*(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<val>(?:[^"\\]|\\.)*)"\s*(?:,|$)')
    pos = 0
    while pos < len(raw):
        match = pattern.match(raw, pos)
        if match is None:
            raise ValueError(f"malformed label set: {raw!r}")
        value = match.group("val")
        value = (
            value.replace("\\\\", "\x00")
            .replace('\\"', '"')
            .replace("\\n", "\n")
            .replace("\x00", "\\")
        )
        labels[match.group("key")] = value
        pos = match.end()
    return labels


def _parse_document(text: str):
    """Parse exposition text into ordered family records.

    Each record is ``{"type": ..., "help": ..., "samples": [(name,
    labels, value_text), ...]}``; samples attach to the histogram base
    family when a ``_bucket``/``_sum``/``_count`` suffix matches a
    declared histogram, otherwise to their own name.  Raises
    ``ValueError`` on grammar defects; semantic checks (cumulativity
    etc.) live in :func:`validate_exposition`.
    """
    families: "Dict[str, Dict[str, object]]" = {}
    for lineno, line in enumerate(text.split("\n"), start=1):
        if not line:
            continue
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            parts = line.split(" ", 3)
            if len(parts) < 4 and parts[1] == "TYPE":
                raise ValueError(f"line {lineno}: malformed TYPE: {line!r}")
            family = parts[2]
            record = families.setdefault(
                family, {"type": None, "help": None, "samples": []})
            if parts[1] == "TYPE":
                kind = parts[3]
                if kind not in ("counter", "gauge", "histogram", "summary",
                                "untyped"):
                    raise ValueError(
                        f"line {lineno}: unknown metric type {kind!r}")
                record["type"] = kind
            else:
                record["help"] = parts[3] if len(parts) > 3 else ""
            continue
        if line.startswith("#"):
            continue  # comment
        match = _SAMPLE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample: {line!r}")
        name = match.group("name")
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        if name in families and families[name]["type"] is not None:
            family = name
        elif base in families and families[base]["type"] == "histogram":
            family = base
        else:
            raise ValueError(
                f"line {lineno}: sample {name!r} has no TYPE declaration")
        labels = _parse_labels(match.group("labels") or "")
        families[family]["samples"].append(
            (name, labels, match.group("value")))
    return families


def merge_expositions(
    parts: List[Tuple[str, Dict[str, str]]],
) -> str:
    """Stitch several exposition documents into one, stamping labels.

    ``parts`` is ``[(text, extra_labels), ...]``; every sample of a
    part gets its ``extra_labels`` merged in (overriding same-named
    sample labels, which a well-behaved scrape never carries).  The
    gateway uses this to export each replica's ``/metrics`` scrape
    under ``replica="..."`` next to its own families.  Families that
    appear in several parts keep the first HELP text and must agree on
    their TYPE (``ValueError`` otherwise).
    """
    merged: "Dict[str, Dict[str, object]]" = {}
    order: List[str] = []
    for text, extra in parts:
        for family, record in _parse_document(text).items():
            target = merged.get(family)
            if target is None:
                target = {"type": record["type"], "help": record["help"],
                          "samples": []}
                merged[family] = target
                order.append(family)
            else:
                if (record["type"] is not None
                        and target["type"] is not None
                        and record["type"] != target["type"]):
                    raise ValueError(
                        f"family {family}: conflicting types "
                        f"{target['type']!r} vs {record['type']!r}")
                if target["type"] is None:
                    target["type"] = record["type"]
                if target["help"] is None:
                    target["help"] = record["help"]
            for name, labels, value in record["samples"]:
                stamped = dict(labels)
                if extra:
                    stamped.update(extra)
                target["samples"].append((name, stamped, value))
    lines: List[str] = []
    for family in order:
        record = merged[family]
        if record["help"] is not None:
            lines.append(f"# HELP {family} {record['help']}")
        lines.append(f"# TYPE {family} {record['type'] or 'untyped'}")
        for name, labels, value in record["samples"]:
            lines.append(f"{name}{_render_labels(labels)} {value}")
    return "\n".join(lines) + "\n"


def validate_exposition(text: str) -> Dict[str, Dict[str, object]]:
    """Parse exposition text strictly; raise ``ValueError`` on any defect.

    Checks the line grammar, that every sample is preceded by a TYPE
    declaration for its family, and that histogram ``_bucket`` series
    — *per distinct non-``le`` label set* — are cumulative in
    increasing ``le`` order and end with ``+Inf`` equal to the matching
    ``_count``.  Returns ``{family: {"type": ..., "samples":
    {name_or_le: value}, "labels": {(key, value), ...}}}`` for
    follow-on assertions; ``samples`` is the legacy flat view (last
    sample wins when label sets collide), ``labels`` collects every
    non-``le`` label pair seen on the family.
    """
    parsed = _parse_document(text)
    families: Dict[str, Dict[str, object]] = {}
    for family, record in parsed.items():
        if record["type"] is None:
            continue  # HELP-only stray; no samples can have attached
        samples: Dict[str, float] = {}
        label_pairs: set = set()
        series: Dict[Tuple, Dict[str, float]] = {}
        scalars: Dict[Tuple, float] = {}
        for name, labels, raw_value in record["samples"]:
            value = (float(raw_value)
                     if raw_value not in ("+Inf", "-Inf", "NaN")
                     else {"+Inf": math.inf, "-Inf": -math.inf,
                           "NaN": math.nan}[raw_value])
            sig = tuple(sorted(
                (k, v) for k, v in labels.items() if k != "le"))
            label_pairs.update(sig)
            if (name.endswith("_bucket") and record["type"] == "histogram"
                    and "le" in labels):
                group = series.setdefault(sig, {})
                le = labels["le"]
                if le in group:
                    raise ValueError(f"duplicate bucket le={le!r}"
                                     f" in {family}")
                group[le] = value
            else:
                key = (name, sig)
                if key in scalars:
                    raise ValueError(
                        f"duplicate sample {name!r} labels {dict(sig)!r}")
                scalars[key] = value
            samples[labels.get("le", name)] = value
        info: Dict[str, object] = {
            "type": record["type"], "samples": samples,
            "labels": label_pairs,
        }
        families[family] = info
        if record["type"] != "histogram":
            continue
        if record["samples"] and not series:
            raise ValueError(f"{family}: histogram missing +Inf bucket")
        for sig, group in series.items():
            if "+Inf" not in group:
                raise ValueError(
                    f"{family}: histogram missing +Inf bucket "
                    f"(labels {dict(sig)!r})")
            ordered = sorted(
                group, key=lambda k: float(k.replace("+Inf", "inf")))
            last = -math.inf
            for le in ordered:
                if group[le] < last:
                    raise ValueError(
                        f"{family}: bucket le={le} not cumulative "
                        f"({group[le]} < {last})")
                last = group[le]
            count = scalars.get((f"{family}_count", sig))
            if count is not None and group["+Inf"] != count:
                raise ValueError(
                    f"{family}: +Inf bucket {group['+Inf']} != _count "
                    f"{count}")
    return families

