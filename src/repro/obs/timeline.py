"""Windowed time-series counters sampled per simulated-cycle epoch.

End-of-run counters say the virtual hierarchy filtered 66% of private
TLB misses; they cannot say *when* the IOMMU queue was deep or whether
the filter rate degraded as the working set grew.  A :class:`Timeline`
records named series bucketed into fixed-width epochs of simulated
cycles, so a dashboard can plot IOMMU queue depth, service occupancy,
and L1/L2 virtual-hit filter rate against simulated time.

Design constraints mirror the rest of ``obs``:

* **Bounded memory.**  Epochs start at ``epoch_cycles`` wide and the
  whole timeline automatically coarsens (doubling the epoch width and
  pairwise-merging buckets) whenever any series would exceed
  ``max_epochs`` buckets, so arbitrarily long runs keep O(max_epochs)
  storage per series.
* **Cheap hot path.**  ``record`` is one floor-divide and one dict
  update; instrumented components hold a direct ``Timeline`` reference
  (or ``None``) captured at construction, so runs without a timeline
  pay a single ``is None`` test.
* **Mergeable.**  Two timelines with power-of-two-related epoch widths
  merge exactly (the finer one is coarsened first), matching the
  parallel-run aggregation story of :class:`~repro.obs.metrics.MetricsRegistry`.

Series values are *sums per epoch*.  Rates and averages are derived at
render time: e.g. mean IOMMU queue depth over an epoch is, by Little's
law, the summed queue-wait cycles divided by the epoch width.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


__all__ = ["Timeline"]


class Timeline:
    """Named per-epoch accumulators over simulated time."""

    def __init__(self, epoch_cycles: float = 1024.0, max_epochs: int = 512) -> None:
        if epoch_cycles <= 0:
            raise ValueError("epoch_cycles must be positive")
        if max_epochs < 2:
            raise ValueError("need at least two epochs")
        self.epoch_cycles = float(epoch_cycles)
        self.max_epochs = max_epochs
        self._series: Dict[str, Dict[int, float]] = {}

    def record(self, name: str, t: float, amount: float = 1.0) -> None:
        """Add ``amount`` to series ``name`` in the epoch containing ``t``."""
        buckets = self._series.get(name)
        if buckets is None:
            buckets = self._series[name] = {}
        index = int(t // self.epoch_cycles)
        buckets[index] = buckets.get(index, 0.0) + amount
        if len(buckets) > self.max_epochs:
            self._coarsen()

    def _coarsen(self) -> None:
        """Double the epoch width, pairwise-merging every series' buckets."""
        self.epoch_cycles *= 2.0
        for name, buckets in self._series.items():
            merged: Dict[int, float] = {}
            for index, value in buckets.items():
                half = index >> 1
                merged[half] = merged.get(half, 0.0) + value
            self._series[name] = merged

    def coarsen_to(self, epoch_cycles: float) -> None:
        """Coarsen until the epoch width reaches ``epoch_cycles``.

        Only power-of-two multiples of the current width are reachable;
        anything else raises ``ValueError`` (exactness over convenience —
        resampling to unrelated widths would smear counts).
        """
        if epoch_cycles < self.epoch_cycles:
            raise ValueError("cannot refine a timeline, only coarsen")
        while self.epoch_cycles < epoch_cycles:
            self._coarsen()
        if self.epoch_cycles != epoch_cycles:
            raise ValueError(
                f"epoch width {epoch_cycles} is not a power-of-two multiple "
                f"of {self.epoch_cycles / 2.0}"
            )

    # -- export -----------------------------------------------------------
    def names(self) -> List[str]:
        """All recorded series names, sorted."""
        return sorted(self._series)

    def series(self, name: str) -> List[Tuple[float, float]]:
        """Series ``name`` as sorted ``(epoch_start_cycles, sum)`` pairs."""
        buckets = self._series.get(name, {})
        return [
            (index * self.epoch_cycles, buckets[index])
            for index in sorted(buckets)
        ]

    def rate_series(
        self, numerator: str, denominator: str
    ) -> List[Tuple[float, float]]:
        """Per-epoch ``numerator/denominator`` ratio (epochs with data only).

        The workhorse for filter-rate plots: e.g. the virtual-cache
        filter rate is ``1 - rate(vc.l2_misses, vc.accesses)`` per
        epoch.  Epochs where the denominator is absent or zero are
        skipped.
        """
        num = self._series.get(numerator, {})
        den = self._series.get(denominator, {})
        out: List[Tuple[float, float]] = []
        for index in sorted(den):
            total = den[index]
            if total:
                out.append(
                    (index * self.epoch_cycles, num.get(index, 0.0) / total)
                )
        return out

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready form: epoch width plus ``[[t, sum], ...]`` per series."""
        return {
            "epoch_cycles": self.epoch_cycles,
            "series": {
                name: [[t, v] for t, v in self.series(name)]
                for name in self.names()
            },
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Timeline":
        """Rebuild a timeline exported by :meth:`as_dict`."""
        timeline = cls(epoch_cycles=float(payload["epoch_cycles"]))
        width = timeline.epoch_cycles
        for name, points in payload.get("series", {}).items():  # type: ignore[union-attr]
            buckets = timeline._series.setdefault(name, {})
            for t, value in points:
                buckets[int(round(float(t) / width))] = float(value)
        return timeline

    def merge(self, other: "Timeline") -> None:
        """Fold another timeline in, coarsening to the wider epoch first."""
        if other.epoch_cycles > self.epoch_cycles:
            self.coarsen_to(other.epoch_cycles)
        elif other.epoch_cycles < self.epoch_cycles:
            # Coarsen a scratch copy; merging must not mutate ``other``.
            scratch = Timeline.from_dict(other.as_dict())
            scratch.max_epochs = other.max_epochs
            scratch.coarsen_to(self.epoch_cycles)
            other = scratch
        for name, buckets in other._series.items():
            mine = self._series.setdefault(name, {})
            for index, value in buckets.items():
                mine[index] = mine.get(index, 0.0) + value

    def reset(self) -> None:
        """Drop every series (epoch width is kept)."""
        self._series.clear()
