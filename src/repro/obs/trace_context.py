"""Trace propagation: contexts, span identity, and field-binding tracers.

A *trace* is the set of events emitted on behalf of one logical
request, stitched together by a shared ``trace`` id.  Within a trace,
*spans* name units of work (the HTTP request, the queue wait, a pool
worker's simulation) and nest via ``parent`` links, so a JSON-lines
trace file can be rebuilt into a tree by ``repro-experiment trace
show`` (see :mod:`repro.obs.trace_view`).

:class:`TraceContext` is the propagation token: an immutable
(trace id, span id, parent id) triple that travels from
:class:`~repro.service.client.ServiceClient` as HTTP headers, through
the server's inflight bookkeeping, into
:meth:`~repro.experiments.common.ResultCache.run_many` and its pool
workers.  :class:`ContextTracer` wraps any tracer and stamps the bound
``trace``/``span`` fields onto every emitted event, so instrumented
components (IOMMU, caches, ``simulate()``) join the trace without
knowing it exists.

Span records are ordinary events with ``ev="span"`` plus ``name``,
``dur`` (seconds or cycles, per the emitter), ``span`` (own id) and
``parent``; they are emitted when the unit of work finishes.
"""

from __future__ import annotations

import string
import uuid
from dataclasses import dataclass, replace
from typing import Any, Dict, Mapping, Optional


__all__ = [
    "ContextTracer",
    "TRACE_HEADER",
    "PARENT_HEADER",
    "TraceContext",
    "new_span_id",
    "valid_trace_id",
]

#: HTTP header carrying the trace id (client → server).
TRACE_HEADER = "X-Trace-Id"
#: HTTP header carrying the caller's span id (client → server).
PARENT_HEADER = "X-Parent-Span"

_HEX = set(string.hexdigits)


def new_span_id() -> str:
    """A fresh 8-hex-char span id."""
    return uuid.uuid4().hex[:8]


def valid_trace_id(value: Any) -> bool:
    """True for a plausible propagated id: 1-32 hex chars.

    The server validates inbound headers with this before adopting a
    caller-supplied trace id, so a malformed header degrades to a
    server-generated id instead of polluting the trace stream.
    """
    return (
        isinstance(value, str)
        and 0 < len(value) <= 32
        and all(c in _HEX for c in value)
    )


@dataclass(frozen=True)
class TraceContext:
    """An immutable propagation token: trace id + span id + parent link."""

    trace_id: str
    span_id: str
    parent_id: Optional[str] = None

    @classmethod
    def new(cls) -> "TraceContext":
        """A fresh root context (new trace, new root span, no parent)."""
        return cls(trace_id=uuid.uuid4().hex[:16], span_id=new_span_id())

    @classmethod
    def from_headers(cls, headers: Mapping[str, str]) -> "TraceContext":
        """Adopt a caller's context from HTTP headers, or mint a root one.

        Header names are matched case-insensitively.  An invalid or
        missing trace id yields a brand-new root context.
        """
        folded = {k.lower(): v for k, v in headers.items()}
        trace_id = folded.get(TRACE_HEADER.lower())
        if not valid_trace_id(trace_id):
            return cls.new()
        parent = folded.get(PARENT_HEADER.lower())
        if not valid_trace_id(parent):
            parent = None
        return cls(trace_id=trace_id, span_id=new_span_id(), parent_id=parent)

    def child(self) -> "TraceContext":
        """A new span in the same trace, parented to this one."""
        return replace(self, span_id=new_span_id(), parent_id=self.span_id)

    def headers(self) -> Dict[str, str]:
        """The outbound HTTP headers propagating this context."""
        return {TRACE_HEADER: self.trace_id, PARENT_HEADER: self.span_id}

    def fields(self) -> Dict[str, str]:
        """Event fields binding an emission to this context's span."""
        return {"trace": self.trace_id, "span": self.span_id}

    def span_fields(self) -> Dict[str, Any]:
        """Event fields identifying this context *as* a span record."""
        out: Dict[str, Any] = {"trace": self.trace_id, "span": self.span_id}
        if self.parent_id is not None:
            out["parent"] = self.parent_id
        return out

    def to_wire(self) -> Dict[str, Any]:
        """A picklable/JSON-able form for crossing process boundaries."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
        }

    @classmethod
    def from_wire(cls, payload: Mapping[str, Any]) -> "TraceContext":
        """Rebuild a context serialized by :meth:`to_wire`."""
        return cls(
            trace_id=payload["trace_id"],
            span_id=payload["span_id"],
            parent_id=payload.get("parent_id"),
        )


class ContextTracer:
    """A tracer wrapper that stamps bound fields onto every event.

    Instrumented components keep calling ``tracer.emit(ev, t, ...)``;
    the wrapper adds the bound ``trace``/``span`` (or any other)
    fields before forwarding to the inner sink.  Explicit fields in an
    ``emit`` call win over bound ones, so span records can carry their
    own ``span``/``parent`` identity through a bound tracer.
    """

    enabled = True

    def __init__(self, inner, **bound: Any) -> None:
        self._inner = inner
        self._bound = bound

    @property
    def inner(self):
        """The wrapped sink (for unwrap-and-rebind)."""
        return self._inner

    @property
    def bound(self) -> Dict[str, Any]:
        """A copy of the bound fields."""
        return dict(self._bound)

    def emit(self, event: str, t: float, **fields: Any) -> None:
        """Forward the event with bound fields merged in (explicit wins)."""
        merged = dict(self._bound)
        merged.update(fields)
        self._inner.emit(event, t, **merged)

    def close(self) -> None:
        """Close the wrapped sink."""
        self._inner.close()
