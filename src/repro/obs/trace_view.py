"""Trace stitching and rendering for ``repro-experiment trace show``.

The telemetry pipeline writes JSON-lines trace files where every event
may carry ``trace``/``span``/``parent`` fields (see
:mod:`repro.obs.trace_context`).  This module rebuilds those flat
streams into per-trace span trees and renders them as an ASCII
outline:

.. code-block:: text

    trace 4f2a9c01d3e88ab2 · 3 spans · 41 events
    └── service.request POST /v1/simulate  dur=0.1841s
        └── service.point bfs/baseline-512 [computed]  dur=0.1792s
            └── worker.simulate bfs/baseline-512  dur=0.1714s  · 38 events

Span records are events with ``ev == "span"``; all other events are
attached to their enclosing span (via the ``span`` field) and shown as
aggregate counts, keeping the output readable even for million-event
simulation traces.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Any, Dict, IO, Iterable, List, Optional, Union


__all__ = [
    "load_events",
    "render_trace",
    "render_traces",
    "stitch",
]

#: Trace id bucket for events that carry no ``trace`` field.
UNTRACED = "-"


def load_events(source: Union[str, IO[str]]) -> List[Dict[str, Any]]:
    """Read a JSON-lines trace file (path or file-like) into event dicts.

    Blank lines are skipped; a malformed line raises ``ValueError``
    naming the line number, so a truncated trace fails loudly instead
    of rendering a silently incomplete tree.
    """
    if hasattr(source, "read"):
        fh: IO[str] = source
        owns = False
    else:
        fh = open(source, "r", encoding="utf-8")
        owns = True
    events: List[Dict[str, Any]] = []
    try:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"line {lineno}: not valid JSON: {line[:80]!r}") from exc
            if not isinstance(record, dict) or "ev" not in record:
                raise ValueError(f"line {lineno}: not a trace event: {line[:80]!r}")
            events.append(record)
    finally:
        if owns:
            fh.close()
    return events


def stitch(events: Iterable[Dict[str, Any]]) -> Dict[str, List[Dict[str, Any]]]:
    """Group events by trace id (events without one land under ``"-"``)."""
    traces: Dict[str, List[Dict[str, Any]]] = {}
    for event in events:
        traces.setdefault(str(event.get("trace", UNTRACED)), []).append(event)
    return traces


_SPAN_IDENTITY_KEYS = ("ev", "t", "trace", "span", "parent", "name", "dur")


def _span_label(span: Dict[str, Any]) -> str:
    parts = [str(span.get("name", "span"))]
    for key in ("method", "path", "workload", "design", "tier", "status"):
        if key in span:
            parts.append(str(span[key]))
    label = " ".join(parts)
    extras = []
    if "dur" in span:
        extras.append(f"dur={float(span['dur']):.4g}s")
    for key in sorted(span):
        if key in _SPAN_IDENTITY_KEYS or key in (
                "method", "path", "workload", "design", "tier", "status"):
            continue
        extras.append(f"{key}={span[key]}")
    if extras:
        label += "  " + "  ".join(extras)
    return label


def render_trace(trace_id: str, events: List[Dict[str, Any]]) -> str:
    """One trace as an ASCII span tree with per-span event summaries."""
    spans = [e for e in events if e.get("ev") == "span" and "span" in e]
    plain = [e for e in events if e.get("ev") != "span"]
    by_id = {str(s["span"]): s for s in spans}

    children: Dict[Optional[str], List[Dict[str, Any]]] = {}
    for span in spans:
        parent = span.get("parent")
        key = str(parent) if parent is not None and str(parent) in by_id else None
        children.setdefault(key, []).append(span)
    for bucket in children.values():
        bucket.sort(key=lambda s: (float(s.get("t", 0.0)), str(s.get("span"))))

    attached: Dict[str, Counter] = {}
    loose = Counter()
    for event in plain:
        owner = str(event.get("span", ""))
        if owner in by_id:
            attached.setdefault(owner, Counter())[str(event["ev"])] += 1
        else:
            loose[str(event["ev"])] += 1

    lines = [
        f"trace {trace_id} · {len(spans)} span{'s' if len(spans) != 1 else ''}"
        f" · {len(events)} events"
    ]

    def summarize(counter: Counter) -> str:
        top = counter.most_common(4)
        bits = [f"{name}×{n}" for name, n in top]
        if len(counter) > 4:
            bits.append(f"+{len(counter) - 4} more")
        return ", ".join(bits)

    def walk(span: Dict[str, Any], prefix: str, is_last: bool) -> None:
        branch = "└── " if is_last else "├── "
        label = _span_label(span)
        own = attached.get(str(span["span"]))
        if own:
            label += f"  · {sum(own.values())} events ({summarize(own)})"
        lines.append(prefix + branch + label)
        deeper = prefix + ("    " if is_last else "│   ")
        kids = children.get(str(span["span"]), [])
        for i, kid in enumerate(kids):
            walk(kid, deeper, i == len(kids) - 1)

    roots = children.get(None, [])
    for i, root in enumerate(roots):
        walk(root, "", i == len(roots) - 1)
    if loose:
        lines.append(
            f"(unparented) {sum(loose.values())} events ({summarize(loose)})")
    return "\n".join(lines)


def render_traces(
    events: Iterable[Dict[str, Any]], trace_id: Optional[str] = None
) -> str:
    """Render every trace in the stream (or just ``trace_id``)."""
    traces = stitch(events)
    if trace_id is not None:
        if trace_id not in traces:
            known = ", ".join(sorted(traces)) or "(none)"
            raise ValueError(f"trace {trace_id!r} not found; traces: {known}")
        picked = {trace_id: traces[trace_id]}
    else:
        picked = traces
    blocks = [
        render_trace(tid, evs)
        for tid, evs in sorted(picked.items())
        if tid != UNTRACED or trace_id == UNTRACED
    ]
    untraced = traces.get(UNTRACED)
    if trace_id is None and untraced:
        blocks.append(
            f"(no trace id) {len(untraced)} events not part of any trace")
    return "\n\n".join(blocks) + "\n"
