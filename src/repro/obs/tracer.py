"""Structured request tracing.

A tracer is an *event sink*: instrumented components call
``tracer.emit(event, t, **fields)`` at interesting points of a memory
request's path (CU issue → L1 hit/miss → virtual-cache hit / IOMMU
queue enter/exit → page walk → completion).  Three sinks are provided:

* :data:`NULL_TRACER` — the shared disabled tracer.  Every instrumented
  call site guards with ``if tracer.enabled:`` so a disabled run pays
  one attribute check per event and nothing else.
* :class:`JsonLinesTracer` — serializes each event as one JSON object
  per line (`JSON lines <https://jsonlines.org>`_), the format the CLI's
  ``--trace-out`` writes.
* :class:`RecordingTracer` — keeps events in memory, for tests and
  interactive analysis.

Events are flat dictionaries with two mandatory keys — ``ev`` (the
event name, dot-namespaced like counter names: ``iommu.dequeue``) and
``t`` (simulated time in cycles) — plus free-form context fields
(``cu``, ``vpn``, ``wait``, ...).  Tracing is strictly observational:
attaching a tracer never changes simulated timing, and
``tests/test_obs.py`` pins that down with a bit-identical regression
test.
"""

from __future__ import annotations

import json
from typing import IO, Any, Dict, List, Union


__all__ = ["JsonLinesTracer", "NULL_TRACER", "NullTracer", "RecordingTracer"]

def _coerce(obj: Any) -> Any:
    """JSON fallback for numpy scalars (trace fields come from numpy-backed
    workload arrays)."""
    if hasattr(obj, "item"):
        return obj.item()
    raise TypeError(f"Object of type {type(obj).__name__} is not JSON serializable")


class NullTracer:
    """The disabled tracer: ``enabled`` is False and ``emit`` is a no-op."""

    enabled = False

    def emit(self, event: str, t: float, **fields: Any) -> None:
        """Discard the event."""

    def close(self) -> None:
        """Nothing to release."""


#: Shared do-nothing tracer used wherever tracing is switched off.
NULL_TRACER = NullTracer()


class JsonLinesTracer:
    """Writes one JSON object per event to a file or file-like sink.

    ``sink`` may be a path (opened for writing, closed by
    :meth:`close`) or any object with a ``write`` method (left open —
    the caller owns it).  Usable as a context manager.
    """

    enabled = True

    def __init__(self, sink: Union[str, IO[str]]) -> None:
        if hasattr(sink, "write"):
            self._fh: IO[str] = sink
            self._owns_fh = False
        else:
            self._fh = open(sink, "w", encoding="utf-8")
            self._owns_fh = True
        self.events_emitted = 0

    def emit(self, event: str, t: float, **fields: Any) -> None:
        record: Dict[str, Any] = {"ev": event, "t": t}
        record.update(fields)
        self._fh.write(json.dumps(record, default=_coerce) + "\n")
        self.events_emitted += 1

    def close(self) -> None:
        if self._owns_fh and not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "JsonLinesTracer":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class RecordingTracer:
    """Keeps every event in an in-memory list (``.events``)."""

    enabled = True

    def __init__(self) -> None:
        self.events: List[Dict[str, Any]] = []

    def emit(self, event: str, t: float, **fields: Any) -> None:
        record: Dict[str, Any] = {"ev": event, "t": t}
        record.update(fields)
        self.events.append(record)

    def close(self) -> None:
        """Nothing to release (events stay available)."""

    def of_type(self, event: str) -> List[Dict[str, Any]]:
        """All recorded events with name ``event``."""
        return [e for e in self.events if e["ev"] == event]
