"""Robustness layer: fault injection, invariant auditing, checkpointing.

Three independent tools that together back the chaos-testing story:

* :mod:`repro.robustness.fault_plan` — deterministic VM-event fault
  injection (shootdowns, remaps, unmaps, permission downgrades) driven
  through any hierarchy's shootdown paths;
* :mod:`repro.robustness.invariants` — opt-in structural audits of the
  FBT/ASDT/cache state, failing fast with a diagnostic dump;
* :mod:`repro.robustness.checkpoint` — crash-safe checkpoint/resume for
  experiment sweeps.
"""

from repro.robustness.checkpoint import CheckpointStore, append_record, load_records
from repro.robustness.fault_plan import KINDS, FaultEvent, FaultInjector, FaultPlan
from repro.robustness.invariants import (
    InvariantAuditor,
    InvariantViolation,
    audit_hierarchy,
    check_hierarchy,
)

__all__ = [
    "CheckpointStore",
    "KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "InvariantAuditor",
    "InvariantViolation",
    "append_record",
    "audit_hierarchy",
    "check_hierarchy",
    "load_records",
]
