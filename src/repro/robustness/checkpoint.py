"""Crash-safe sweep checkpointing.

``ResultCache.run_many`` appends each completed point to a checkpoint
file as it lands, so a sweep killed at any moment — including mid-write —
restarts with zero lost work.  The format is an append-only sequence of
self-verifying records:

    magic ``RPCK`` | u32 payload length | 16-byte SHA-256 prefix | payload

where the payload is the pickled ``(fingerprint, result)`` pair.  Loads
verify each record's digest and stop at the first damaged one, truncating
the file back to the last good boundary so subsequent appends never land
inside torn garbage.  Fingerprints are the same
:func:`~repro.experiments.disk_cache.point_fingerprint` strings the disk
cache uses, so a checkpoint is portable across processes and sessions.

The record framing itself is exposed as :func:`append_record` /
:func:`load_records` so other durable logs (the service's job journal in
:mod:`repro.service.jobs`) reuse the exact same digest-verified format
and torn-tail repair instead of inventing a second one.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import struct
from typing import Dict, List, Tuple

__all__ = ["CheckpointStore", "MAGIC", "append_record", "load_records"]

MAGIC = b"RPCK"
_LEN = struct.Struct("<I")
_DIGEST_BYTES = 16
_HEADER_BYTES = len(MAGIC) + _LEN.size + _DIGEST_BYTES


def append_record(path: str, payload: object) -> None:
    """Durably append one pickled, digest-framed record to ``path``.

    The write is flushed and fsynced before returning, so a record that
    :func:`load_records` later replays was definitely on disk when the
    caller moved on.
    """
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    record = (MAGIC + _LEN.pack(len(blob))
              + hashlib.sha256(blob).digest()[:_DIGEST_BYTES]
              + blob)
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "ab") as handle:
        handle.write(record)
        handle.flush()
        os.fsync(handle.fileno())


def load_records(path: str) -> Tuple[List[object], int]:
    """Replay every intact record in ``path``; repair any torn tail.

    Returns ``(records, repaired_bytes)``.  Damaged or torn records end
    the scan; the file is truncated back to the last intact boundary so
    future appends stay parseable.  A missing file reads as empty.
    """
    records: List[object] = []
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except FileNotFoundError:
        return records, 0
    offset = 0
    good_end = 0
    while offset + _HEADER_BYTES <= len(data):
        if data[offset:offset + len(MAGIC)] != MAGIC:
            break
        length_at = offset + len(MAGIC)
        (length,) = _LEN.unpack(data[length_at:length_at + _LEN.size])
        digest_at = length_at + _LEN.size
        payload_at = digest_at + _DIGEST_BYTES
        payload_end = payload_at + length
        if payload_end > len(data):
            break  # torn tail: the final append was interrupted
        payload = data[payload_at:payload_end]
        if hashlib.sha256(payload).digest()[:_DIGEST_BYTES] != \
                data[digest_at:payload_at]:
            break
        try:
            records.append(pickle.loads(payload))
        except Exception:
            break
        offset = good_end = payload_end
    repaired = 0
    if good_end < len(data):
        repaired = len(data) - good_end
        with open(path, "rb+") as handle:
            handle.truncate(good_end)
    return records, repaired


class CheckpointStore:
    """Append-only store of completed sweep points."""

    def __init__(self, path) -> None:
        self.path = os.fspath(path)
        self.appended = 0
        self.loaded = 0
        # Bytes discarded by torn-tail repair on the last load().
        self.repaired_bytes = 0

    def append(self, fingerprint: str, result) -> None:
        """Durably record one completed point."""
        append_record(self.path, (fingerprint, result))
        self.appended += 1

    def load(self) -> Dict[str, object]:
        """Replay the checkpoint: fingerprint → result (later wins).

        Damaged or torn records end the scan; the file is truncated back
        to the last intact record so future appends never land inside
        torn garbage.
        """
        records, self.repaired_bytes = load_records(self.path)
        results: Dict[str, object] = {}
        self.loaded = 0
        for record in records:
            try:
                fingerprint, result = record
            except (TypeError, ValueError):
                continue
            results[str(fingerprint)] = result
            self.loaded += 1
        return results
