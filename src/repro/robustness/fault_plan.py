"""Deterministic VM-event fault injection (chaos testing).

The paper's transparency claim (§4) is that the virtual hierarchy stays
correct under the full set of hostile OS events: TLB shootdowns, page
migrations (remap), page-outs (unmap), and permission downgrades —
including remaps the OS performs *without* the shootdown reaching the
GPU first, which the FBT discovers on the next translation
(``fbt.stale_remaps``).  A :class:`FaultPlan` turns a seed and a fault
rate into a reproducible schedule of such events, and a
:class:`FaultInjector` wraps any hierarchy to interleave them into the
access stream, playing the OS's role in the resulting page faults
(page-in on access to an unmapped page, permission restore + shootdown
on a write to a downgraded page).

Everything is keyed off ``random.Random(str)`` seeding, which hashes the
seed string with SHA-512 independent of ``PYTHONHASHSEED`` — the same
``(trace, rate, seed)`` always yields the same plan.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.engine.stats import Counters
from repro.memsys.addressing import page_number
from repro.memsys.permissions import PageFault, PermissionFault, Permissions

_ASID_SHIFT = 52

#: Every fault kind the injector knows how to drive.
KINDS: Tuple[str, ...] = (
    "shootdown", "remap", "silent_remap", "unmap", "permission_downgrade",
)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled VM event, fired before access number ``index``."""

    index: int
    kind: str
    vpn: int
    asid: int = 0


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible schedule of VM events for one trace."""

    events: Tuple[FaultEvent, ...] = ()
    seed: int = 0
    rate: float = 0.0

    #: Distinct pages considered as fault targets (bounds plan-build cost
    #: on huge traces; the first pages touched are the ones that matter).
    MAX_CANDIDATE_PAGES = 512

    def __len__(self) -> int:
        return len(self.events)

    def counts_by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    @classmethod
    def for_trace(
        cls,
        trace,
        rate: float,
        seed: int = 0,
        asid: int = 0,
        kinds: Tuple[str, ...] = KINDS,
    ) -> "FaultPlan":
        """Build a plan injecting ``rate`` events per coalesced request.

        Targets are pages the trace actually touches, restricted to 4 KB
        (non-large) mappings — remap/unmap at 4 KB granularity inside a
        2 MB mapping is not a legal OS operation.
        """
        if rate < 0:
            raise ValueError("fault rate must be nonnegative")
        unknown = set(kinds) - set(KINDS)
        if unknown:
            raise ValueError(f"unknown fault kinds: {sorted(unknown)}")
        small_ranges = [
            (page_number(m.base_va), page_number(m.base_va) + m.n_pages)
            for m in trace.address_space.mappings if not m.large
        ]
        candidates: List[int] = []
        seen = set()
        n_requests = 0
        for stream in trace.coalesced_per_cu():
            for requests in stream:
                if requests is None:
                    continue
                for request in requests:
                    n_requests += 1
                    vpn = request.vpn
                    if vpn not in seen:
                        seen.add(vpn)
                        if (len(candidates) < cls.MAX_CANDIDATE_PAGES
                                and any(lo <= vpn < hi
                                        for lo, hi in small_ranges)):
                            candidates.append(vpn)
        n_events = min(int(round(rate * n_requests)), n_requests)
        if n_events == 0 or not candidates:
            return cls(events=(), seed=seed, rate=rate)
        rng = random.Random(f"faultplan:{seed}:{rate!r}:{trace.name}")
        indices = sorted(rng.sample(range(n_requests), n_events))
        events = tuple(
            FaultEvent(index=index, kind=rng.choice(kinds),
                       vpn=rng.choice(candidates), asid=asid)
            for index in indices
        )
        return cls(events=events, seed=seed, rate=rate)


class FaultInjector:
    """Wrap a hierarchy, interleaving a :class:`FaultPlan` into accesses.

    The wrapper is transparent to :func:`~repro.system.run.simulate`:
    attribute access falls through to the wrapped hierarchy, ``counters``
    merges the hierarchy's bag with the injector's ``chaos.*`` event
    counts, and ``audit_target`` lets the invariant auditor inspect the
    real hierarchy.  The injector also plays OS: accesses that hit an
    injected unmap or permission downgrade fault, and the handler pages
    the data back in / restores the permissions (with the mandatory
    shootdown — the caches and TLBs were filled with the downgraded
    permissions before the fault surfaced) and retries.
    """

    #: OS-retry bound per access; a loop here means the handlers failed
    #: to clear the fault and the simulation must not spin forever.
    MAX_OS_RETRIES = 8

    def __init__(self, hierarchy, plan: FaultPlan, address_space,
                 asid: int = 0, tracer=None, trace_ctx=None) -> None:
        self._inner = hierarchy
        self.audit_target = hierarchy
        self.plan = plan
        self._space = address_space
        self._events = plan.events
        self._next_event = 0
        self._n_accesses = 0
        self._chaos = Counters()
        # Pages the injector unmapped / downgraded, with their original
        # permissions, keyed by (asid, vpn) of the *access* stream.
        self._paged_out: Dict[Tuple[int, int], Permissions] = {}
        self._downgraded: Dict[Tuple[int, int], Permissions] = {}
        self._default_asid = asid
        # Optional telemetry: every applied fault becomes a span in the
        # trace stream (child of ``trace_ctx`` when one is given).
        self._tracer = tracer
        self._trace_ctx = trace_ctx

    def __getattr__(self, name):
        inner = self.__dict__.get("_inner")
        if inner is None:
            raise AttributeError(name)
        return getattr(inner, name)

    @property
    def counters(self) -> Counters:
        merged = Counters()
        merged.merge(self._inner.counters.as_dict())
        merged.merge(self._chaos.as_dict())
        return merged

    def finish(self, now: float) -> None:
        self._inner.finish(now)

    # -- the access path --------------------------------------------------
    def access(self, cu_id: int, request, now: float, asid: int = 0) -> float:
        events = self._events
        i = self._next_event
        if i < len(events) and events[i].index <= self._n_accesses:
            while i < len(events) and events[i].index <= self._n_accesses:
                self._apply(events[i], now)
                i += 1
            self._next_event = i
        self._n_accesses += 1

        inner_access = self._inner.access
        for _ in range(self.MAX_OS_RETRIES):
            try:
                return inner_access(cu_id, request, now, asid=asid)
            except PageFault as fault:
                self._handle_page_fault(fault, asid)
            except PermissionFault as fault:
                self._handle_permission_fault(fault, asid, now)
        raise RuntimeError(
            f"access to vpn {request.vpn:#x} still faulting after "
            f"{self.MAX_OS_RETRIES} OS fault-handling retries"
        )

    # -- OS fault handlers -------------------------------------------------
    def _handle_page_fault(self, fault: PageFault, asid: int) -> None:
        permissions = self._paged_out.pop((asid, fault.vpn), None)
        if permissions is None:
            # Not one of ours: a genuine bug, surface it.
            raise fault
        self._space.page_in(fault.vpn, permissions)
        self._chaos.add("chaos.page_ins")

    def _handle_permission_fault(self, fault: PermissionFault, asid: int,
                                 now: float) -> None:
        original = self._downgraded.pop((asid, fault.vpn), None)
        if original is None:
            raise fault
        self._space.page_table.set_permissions(fault.vpn, original)
        # TLBs and cache lines were filled with the downgraded
        # permissions before the fault propagated; they must go.
        self._inner.shootdown(asid, fault.vpn, now)
        self._chaos.add("chaos.permission_restores")

    # -- event application -------------------------------------------------
    def _apply(self, event: FaultEvent, now: float) -> None:
        self._chaos.add("chaos.events")
        kind, vpn, asid = event.kind, event.vpn, event.asid
        if self._tracer is not None:
            fields: Dict[str, object] = {
                "name": f"chaos.{kind}", "dur": 0.0, "kind": kind,
                "vpn": vpn, "asid": asid, "index": event.index,
            }
            if self._trace_ctx is not None:
                fields.update(self._trace_ctx.child().span_fields())
            self._tracer.emit("span", now, **fields)
        key = (asid, vpn)
        page_table = self._space.page_table

        if kind == "shootdown":
            self._inner.shootdown(asid, vpn, now)
            self._chaos.add("chaos.shootdowns")
            return

        # The remaining kinds manipulate the mapping itself; they only
        # make sense while the page is actually mapped.
        if key in self._paged_out or page_table.lookup(vpn) is None:
            self._chaos.add("chaos.skipped")
            return

        if kind == "remap":
            # The OS protocol: shoot the translation down everywhere,
            # then migrate the page to a new frame.
            self._inner.shootdown(asid, vpn, now)
            self._space.remap_page(vpn)
            self._chaos.add("chaos.remaps")
        elif kind == "silent_remap":
            if getattr(self._inner, "handles_stale_remap", False):
                # Only the translations are dropped — the FBT keeps its
                # stale entry and must detect the remap itself on the
                # next translation (fbt.stale_remaps).
                self._space.remap_page(vpn)
                self._invalidate_translations(asid, vpn, now)
                self._chaos.add("chaos.silent_remaps")
            else:
                # Designs without stale-remap detection get the full
                # shootdown protocol instead.
                self._inner.shootdown(asid, vpn, now)
                self._space.remap_page(vpn)
                self._chaos.add("chaos.remaps")
        elif kind == "unmap":
            current = self._space.unmap_page(vpn)
            self._inner.shootdown(asid, vpn, now)
            # Page back in with the pre-downgrade permissions if a
            # downgrade was pending on this page.
            self._paged_out[key] = self._downgraded.pop(key, current)
            self._chaos.add("chaos.unmaps")
        elif kind == "permission_downgrade":
            if key in self._downgraded:
                self._chaos.add("chaos.skipped")
                return
            translation = page_table.lookup(vpn)
            _, permissions = translation
            if not permissions & Permissions.WRITE:
                self._chaos.add("chaos.skipped")
                return
            self._downgraded[key] = permissions
            page_table.set_permissions(vpn, Permissions.READ_ONLY)
            self._inner.shootdown(asid, vpn, now)
            self._chaos.add("chaos.permission_downgrades")
        else:  # pragma: no cover - plans are validated at build time
            raise ValueError(f"unknown fault kind {kind!r}")

    def _invalidate_translations(self, asid: int, vpn: int,
                                 now: float) -> None:
        """Drop only the *translations* for a page (silent remap)."""
        inner = self._inner
        key = (asid << _ASID_SHIFT) | vpn
        for tlb in getattr(inner, "per_cu_tlbs", None) or ():
            tlb.invalidate(key, now)
        iommu = getattr(inner, "iommu", None)
        if iommu is not None:
            iommu.invalidate(vpn, asid)


__all__ = ["KINDS", "FaultEvent", "FaultPlan", "FaultInjector"]
