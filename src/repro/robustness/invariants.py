"""Simulator invariant auditing (opt-in ``--check-invariants``).

The virtual-cache design rests on structural invariants the paper states
but a simulator can silently violate (§4.1–§4.2): every physical page
with data anywhere in the hierarchy has exactly one *leading* virtual
page, the FT and BT stay a bijection, BT line bit-vectors mirror L2
residency exactly, and the per-L1 invalidation filters count exactly the
lines each L1 holds.  A bug in any of these produces *subtly wrong
figures*, not crashes — data served under two virtual names, inclusion
orders that miss lines, filters that stop flushing.

:func:`audit_hierarchy` recomputes all of this from first principles
(walking the caches line by line) and returns a list of violation
strings; :func:`check_hierarchy` raises :class:`InvariantViolation` with
a diagnostic dump.  The audit is strictly read-only — it never touches
LRU order, hit/miss counters, or FT/BT lookup statistics — so auditing
mid-run cannot perturb simulated behaviour.

The checks are deliberately exhaustive rather than fast; they run only
under ``--check-invariants`` (every N instructions plus once at end of
run) and never on the default hot path.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

__all__ = [
    "InvariantAuditor",
    "InvariantViolation",
    "MAX_REPORTED",
    "audit_hierarchy",
    "check_hierarchy",
]

_ASID_SHIFT = 52
_ASID_MASK = (1 << _ASID_SHIFT) - 1

#: Violations reported in full before the dump truncates.
MAX_REPORTED = 25


class InvariantViolation(AssertionError):
    """A structural invariant failed; carries a diagnostic dump."""

    def __init__(self, hierarchy, where: str, problems: List[str]) -> None:
        self.where = where
        self.problems = list(problems)
        super().__init__(_diagnostic_dump(hierarchy, where, self.problems))


def _diagnostic_dump(hierarchy, where: str, problems: List[str]) -> str:
    shown = problems[:MAX_REPORTED]
    lines = [
        f"{len(problems)} invariant violation(s) in "
        f"{type(hierarchy).__name__} at {where}:",
    ]
    lines.extend(f"  - {p}" for p in shown)
    if len(problems) > len(shown):
        lines.append(f"  ... and {len(problems) - len(shown)} more")
    lines.append("state: " + _state_summary(hierarchy))
    return "\n".join(lines)


def _state_summary(hierarchy) -> str:
    parts = []
    l1s = getattr(hierarchy, "l1s", None)
    if l1s:
        parts.append(f"l1 lines={[len(l1) for l1 in l1s]}")
    l2 = getattr(hierarchy, "l2", None)
    if l2 is not None:
        parts.append(f"l2 lines={len(l2)}")
    fbt = getattr(hierarchy, "fbt", None)
    if fbt is not None:
        parts.append(fbt.state_summary())
    asdt = getattr(hierarchy, "asdt", None)
    if asdt is not None:
        parts.append(f"ASDT entries={len(asdt)}")
    tlbs = getattr(hierarchy, "per_cu_tlbs", None)
    if tlbs:
        parts.append(f"tlb entries={[len(t) for t in tlbs]}")
    return ", ".join(parts) if parts else "(no inspectable state)"


def _split_page(page: int) -> Tuple[int, int]:
    return page >> _ASID_SHIFT, page & _ASID_MASK


# -- generic cache bookkeeping -------------------------------------------

def _audit_cache(cache, label: str) -> List[str]:
    """Recount a :class:`~repro.memsys.cache.Cache`'s derived state."""
    problems: List[str] = []
    n_resident = 0
    page_counts: Dict[int, int] = {}
    for set_index, cache_set in enumerate(cache._sets):
        if len(cache_set) > cache._associativity:
            problems.append(
                f"{label}: set {set_index} holds {len(cache_set)} lines "
                f"(associativity {cache._associativity})")
        for line_addr, line in cache_set.items():
            n_resident += 1
            if line.line_addr != line_addr:
                problems.append(
                    f"{label}: line keyed {line_addr:#x} records "
                    f"line_addr {line.line_addr:#x}")
            if (line_addr & cache._set_mask) != set_index:
                problems.append(
                    f"{label}: line {line_addr:#x} stored in set "
                    f"{set_index}, indexes to {line_addr & cache._set_mask}")
            if line.page is not None:
                page_counts[line.page] = page_counts.get(line.page, 0) + 1
    if n_resident != cache._n_resident:
        problems.append(
            f"{label}: resident-line count {cache._n_resident} but "
            f"{n_resident} lines are actually resident")
    if page_counts != cache._page_lines:
        extra = set(cache._page_lines) - set(page_counts)
        missing = set(page_counts) - set(cache._page_lines)
        problems.append(
            f"{label}: per-page line counts diverge from residency "
            f"(stale pages: {sorted(extra)[:4]}, "
            f"untracked pages: {sorted(missing)[:4]})")
    return problems


def _audit_tlbs(hierarchy) -> List[str]:
    problems: List[str] = []
    for tlb in getattr(hierarchy, "per_cu_tlbs", None) or ():
        if tlb.capacity is not None and len(tlb) > tlb.capacity:
            problems.append(
                f"{tlb.name}: {len(tlb)} entries exceed capacity "
                f"{tlb.capacity}")
    iommu = getattr(hierarchy, "iommu", None)
    if iommu is not None:
        shared = iommu.shared_tlb
        if shared.capacity is not None and len(shared) > shared.capacity:
            problems.append(
                f"{shared.name}: {len(shared)} entries exceed capacity "
                f"{shared.capacity}")
    return problems


# -- full virtual hierarchy (FBT) ----------------------------------------

def _audit_virtual(h) -> List[str]:
    problems: List[str] = []
    problems += _audit_cache(h.l2, "vl2")
    problems += _audit_tlbs(h)
    lpp = h._lpp
    fbt = h.fbt
    ft_items = fbt.ft.items()
    bt_entries = fbt.bt.entries()
    counter_mode = fbt.large_page_policy == fbt.COUNTER_POLICY

    # FT ↔ BT bijection: same cardinality, every FT key names its entry's
    # leading page, every BT entry is reachable from the FT, and each
    # physical page appears exactly once.
    if len(ft_items) != len(bt_entries):
        problems.append(
            f"FT has {len(ft_items)} entries but BT has {len(bt_entries)} — "
            f"the tables must pair 1:1")
    ft_index = dict(ft_items)
    for key, entry in ft_items:
        if entry.leading_key != key:
            problems.append(
                f"FT key {key} maps to BT entry leading {entry.leading_key}")
        if fbt.bt.peek(entry.ppn) is not entry:
            problems.append(
                f"FT entry for {key} (ppn {entry.ppn:#x}) is not the live "
                f"BT entry for that ppn")
    leading_seen: Set[Tuple[int, int]] = set()
    for entry in bt_entries:
        if entry.leading_key in leading_seen:
            problems.append(
                f"leading page {entry.leading_key} owned by two BT entries — "
                f"a physical line would be reachable under two leading VPNs")
        leading_seen.add(entry.leading_key)
        if ft_index.get(entry.leading_key) is not entry:
            problems.append(
                f"BT entry ppn {entry.ppn:#x} (leading {entry.leading_key}) "
                f"has no matching FT entry")

    def entry_for(asid: int, vpn: int):
        entry = ft_index.get((asid, vpn))
        if entry is None and counter_mode:
            from repro.memsys.addressing import large_page_base_vpn
            entry = ft_index.get((asid, large_page_base_vpn(vpn)))
        return entry

    # L2 inclusion: each resident virtual line resolves through the FT to
    # exactly one BT entry, and bit-vector entries mirror residency exactly.
    observed_bits: Dict[int, Set[int]] = {}
    observed_counts: Dict[int, int] = {}
    for line in h.l2.resident_lines():
        asid = line.line_addr >> _ASID_SHIFT
        vline = line.line_addr & _ASID_MASK
        vpn, index = divmod(vline, lpp)
        if line.page != ((asid << _ASID_SHIFT) | vpn):
            problems.append(
                f"vl2 line {line.line_addr:#x} records page {line.page}, "
                f"expected {(asid << _ASID_SHIFT) | vpn:#x}")
        entry = entry_for(asid, vpn)
        if entry is None:
            problems.append(
                f"vl2 line {line.line_addr:#x} (asid {asid}, vpn {vpn:#x}) "
                f"has no FBT entry — inclusion broken")
            continue
        if entry.tracking == "bitvector":
            observed_bits.setdefault(id(entry), set()).add(index)
        else:
            observed_counts[id(entry)] = observed_counts.get(id(entry), 0) + 1
    for entry in bt_entries:
        if entry.tracking == "bitvector":
            expected = observed_bits.get(id(entry), set())
            recorded = {i for i in range(lpp) if entry.line_bits & (1 << i)}
            if recorded != expected:
                problems.append(
                    f"BT entry ppn {entry.ppn:#x} bit vector marks lines "
                    f"{sorted(recorded)} but the L2 holds {sorted(expected)}")
            if entry.line_count != len(recorded):
                problems.append(
                    f"BT entry ppn {entry.ppn:#x} line_count "
                    f"{entry.line_count} != popcount {len(recorded)}")
        else:
            # Counter-mode entries are conservative upper bounds (§4.3).
            observed = observed_counts.get(id(entry), 0)
            if entry.line_count < observed:
                problems.append(
                    f"counter-mode BT entry ppn {entry.ppn:#x} counts "
                    f"{entry.line_count} lines but the L2 holds {observed}")
            if entry.line_count < 0:
                problems.append(
                    f"counter-mode BT entry ppn {entry.ppn:#x} has negative "
                    f"line_count {entry.line_count}")

    # L1 side: each filter counts exactly the lines its L1 holds, and
    # every cached page is still covered by a live FBT entry.
    for cu_id, (l1, fltr) in enumerate(zip(h.l1s, h.filters)):
        problems += _audit_cache(l1, f"vl1[{cu_id}]")
        counts: Dict[Tuple[int, int], int] = {}
        for line in l1.resident_lines():
            if line.page is None:
                problems.append(
                    f"vl1[{cu_id}] line {line.line_addr:#x} has no owning page")
                continue
            asid, vpn = _split_page(line.page)
            key_vpn = (line.line_addr & _ASID_MASK) // lpp
            if (line.line_addr >> _ASID_SHIFT, key_vpn) != (asid, vpn):
                problems.append(
                    f"vl1[{cu_id}] line {line.line_addr:#x} belongs to page "
                    f"({asid}, {vpn:#x}) but its key encodes "
                    f"({line.line_addr >> _ASID_SHIFT}, {key_vpn:#x})")
            counts[(asid, vpn)] = counts.get((asid, vpn), 0) + 1
            if entry_for(asid, vpn) is None:
                problems.append(
                    f"vl1[{cu_id}] holds a line of (asid {asid}, vpn "
                    f"{vpn:#x}) with no FBT entry — a shootdown would miss it")
        snapshot = fltr.snapshot()
        if snapshot != counts:
            stale = set(snapshot) - set(counts)
            untracked = set(counts) - set(snapshot)
            wrong = {k for k in set(snapshot) & set(counts)
                     if snapshot[k] != counts[k]}
            problems.append(
                f"invalidation filter[{cu_id}] diverges from L1 residency "
                f"(stale: {sorted(stale)[:4]}, untracked: "
                f"{sorted(untracked)[:4]}, miscounted: {sorted(wrong)[:4]})")

    # Synonym remap tables must only point at live leading pages.
    for srt in getattr(h, "srts", None) or ():
        for source, target in srt.entries():
            if ft_index.get(target) is None:
                problems.append(
                    f"{srt.name}: remap {source} → {target} targets a dead "
                    f"leading page")
    return problems


# -- L1-only virtual hierarchy (ASDT) ------------------------------------

def _audit_l1_only(h) -> List[str]:
    problems: List[str] = []
    problems += _audit_cache(h.l2, "l2")
    problems += _audit_tlbs(h)
    asdt = h.asdt
    by_ppn = asdt._by_ppn
    by_leading = asdt._by_leading

    if len(by_ppn) != len(by_leading):
        problems.append(
            f"ASDT: {len(by_ppn)} ppn entries but {len(by_leading)} leading "
            f"keys — the indexes must pair 1:1")
    for ppn, entry in by_ppn.items():
        if entry.ppn != ppn:
            problems.append(
                f"ASDT entry keyed ppn {ppn:#x} records ppn {entry.ppn:#x}")
        if by_leading.get((entry.leading_asid, entry.leading_vpn)) != ppn:
            problems.append(
                f"ASDT leading index for ({entry.leading_asid}, "
                f"{entry.leading_vpn:#x}) does not point back at ppn {ppn:#x}")
        if entry.resident_lines <= 0:
            problems.append(
                f"ASDT entry ppn {ppn:#x} has {entry.resident_lines} "
                f"resident lines but is still tracked")
    for key, ppn in by_leading.items():
        entry = by_ppn.get(ppn)
        if entry is None or (entry.leading_asid, entry.leading_vpn) != key:
            problems.append(
                f"ASDT leading key {key} points at ppn {ppn:#x} which does "
                f"not lead back")

    counts: Dict[Tuple[int, int], int] = {}
    for cu_id, l1 in enumerate(h.l1s):
        problems += _audit_cache(l1, f"vl1[{cu_id}]")
        for line in l1.resident_lines():
            if line.page is None:
                problems.append(
                    f"vl1[{cu_id}] line {line.line_addr:#x} has no owning page")
                continue
            key = _split_page(line.page)
            counts[key] = counts.get(key, 0) + 1
            if key not in by_leading:
                problems.append(
                    f"vl1[{cu_id}] holds a line of leading page {key} the "
                    f"ASDT does not track")
    for ppn, entry in by_ppn.items():
        key = (entry.leading_asid, entry.leading_vpn)
        if counts.get(key, 0) != entry.resident_lines:
            problems.append(
                f"ASDT entry ppn {ppn:#x} counts {entry.resident_lines} "
                f"resident lines but the L1s hold {counts.get(key, 0)}")
    return problems


# -- physical hierarchy ---------------------------------------------------

def _audit_physical(h) -> List[str]:
    problems: List[str] = []
    for cu_id, l1 in enumerate(getattr(h, "l1s", None) or ()):
        problems += _audit_cache(l1, f"l1[{cu_id}]")
    l2 = getattr(h, "l2", None)
    if l2 is not None:
        problems += _audit_cache(l2, "l2")
    problems += _audit_tlbs(h)
    return problems


# -- entry points ---------------------------------------------------------

def audit_hierarchy(hierarchy) -> List[str]:
    """All invariant violations in ``hierarchy`` (empty list = clean).

    Dispatches on the hierarchy's class; wrappers (the chaos fault
    injector) expose the real hierarchy via an ``audit_target``
    attribute.
    """
    from repro.core.l1_only import L1OnlyVirtualHierarchy
    from repro.core.virtual_hierarchy import VirtualCacheHierarchy

    target = getattr(hierarchy, "audit_target", hierarchy)
    if isinstance(target, VirtualCacheHierarchy):
        return _audit_virtual(target)
    if isinstance(target, L1OnlyVirtualHierarchy):
        return _audit_l1_only(target)
    return _audit_physical(target)


def check_hierarchy(hierarchy, where: str = "audit") -> None:
    """Raise :class:`InvariantViolation` if any invariant is broken."""
    problems = audit_hierarchy(hierarchy)
    if problems:
        raise InvariantViolation(
            getattr(hierarchy, "audit_target", hierarchy), where, problems)


class InvariantAuditor:
    """Periodic audit driver used by ``simulate(check_invariants=True)``."""

    def __init__(self, interval: int = 2048) -> None:
        if interval < 1:
            raise ValueError("audit interval must be >= 1")
        self.interval = interval
        self.audits = 0

    def audit(self, hierarchy, where: str) -> None:
        self.audits += 1
        check_hierarchy(hierarchy, where)
