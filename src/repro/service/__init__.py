"""Simulation-as-a-service: a long-lived batching server over the result cache.

PRs 1–4 made one experiment process fast (hot-path overhaul), parallel
(``run_many`` over a process pool), durable (disk cache + crash-safe
checkpoints), and observable (tracing + metrics) — but every consumer
still had to fork the whole CLI.  This package turns that machinery
into a service, the same way the paper's virtual hierarchy filters
translation traffic before the shared IOMMU TLB: requests are filtered
through the warm in-memory memo and the persistent disk cache, and only
genuine misses reach the simulation pool.

* :mod:`repro.service.protocol` — the JSON wire protocol: design-name
  resolution, request validation, and result payloads with cache-tier
  provenance (``memo`` / ``disk`` / ``computed``).
* :mod:`repro.service.server` — :class:`ExperimentService`, a stdlib
  ``asyncio`` HTTP server with single-flight request coalescing, wave
  batching into :meth:`ResultCache.run_many`, ``/metrics`` +
  ``/healthz`` endpoints, and graceful drain on SIGTERM.
* :mod:`repro.service.client` — :class:`ServiceClient`, a stdlib-only
  typed client (submit/poll/fetch and synchronous simulate).
* :mod:`repro.service.http11` — the shared HTTP/1.1 framing both the
  server and the gateway speak.
* :mod:`repro.service.gateway` — :class:`ShardGateway`, a
  consistent-hash front door that shards the point-fingerprint
  keyspace across N replicas (``repro-experiment serve --replicas N``),
  health-checks and evicts/re-admits them, and hedges in-flight points
  to the rebuilt ring so a killed replica costs zero client failures.

Start a server with ``repro-experiment serve --port 8000 --jobs 4
--cache-dir ~/.cache/repro``, or embed one in-process::

    from repro.service import ExperimentService, ServiceClient

    service = ExperimentService(jobs=2, scale=0.05)
    host, port = service.start_in_thread()
    with ServiceClient(host, port) as client:
        reply = client.simulate([{"workload": "bfs", "design": "Baseline 512"}])
        print(reply.points[0].tier)   # "computed", then "memo" on a rerun
    service.shutdown()
"""

from __future__ import annotations

from repro.service.chaosnet import ChaosProxy, NetFaultPlan
from repro.service.client import (
    HealthReport,
    JobReply,
    PointReply,
    ServiceClient,
    ServiceError,
    SimulateReply,
    TransportError,
    parse_target,
)
from repro.service.gateway import (
    HashRing,
    Replica,
    ReplicaError,
    ShardGateway,
    launch_local_gateway,
    replicas_from_urls,
    run_gateway,
    spawn_subprocess_replicas,
    spawn_thread_replicas,
)
from repro.service.jobs import JobJournal
from repro.service.protocol import (
    DESIGNS_BY_NAME,
    PointSpec,
    ProtocolError,
    design_slug,
    resolve_design,
)
from repro.service.server import ExperimentService

__all__ = [
    "ChaosProxy",
    "DESIGNS_BY_NAME",
    "ExperimentService",
    "HashRing",
    "HealthReport",
    "JobJournal",
    "JobReply",
    "NetFaultPlan",
    "PointReply",
    "PointSpec",
    "ProtocolError",
    "Replica",
    "ReplicaError",
    "ServiceClient",
    "ServiceError",
    "ShardGateway",
    "SimulateReply",
    "TransportError",
    "design_slug",
    "launch_local_gateway",
    "parse_target",
    "replicas_from_urls",
    "resolve_design",
    "run_gateway",
    "spawn_subprocess_replicas",
    "spawn_thread_replicas",
]
