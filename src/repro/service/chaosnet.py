"""Network chaos: a seeded fault-injecting TCP proxy for the service.

PR 4's :mod:`repro.robustness.fault_plan` injects *VM-level* events
(shootdowns, remaps) into the simulator; this module injects the
*network-level* faults a sharded deployment actually meets, between the
gateway and its replicas (or between a client and a server):

========== ==========================================================
kind       what the wire does
========== ==========================================================
latency    the first response is delayed by a seeded interval
reset      the response is cut mid-body with a hard TCP RST
blackhole  the request is swallowed; the connection hangs, then drops
slowloris  the response head trickles out a few bytes at a time
corrupt    response bytes are flipped in transit (length preserved)
truncate   the response stops short of its ``Content-Length``
========== ==========================================================

Faults are assigned per accepted connection by :class:`NetFaultPlan`,
seeded with the same string-keyed :class:`random.Random` idiom as
``FaultPlan`` (PYTHONHASHSEED-independent), so a chaos run is
reproducible: the Nth connection through the proxy always draws the
same fault for the same seed.  ``corrupt`` is the nasty one — the bytes
still frame as valid HTTP — and is exactly what the end-to-end
``X-Content-Digest`` check exists to catch: under every fault kind the
client must see *zero wrong results*, only retryable errors.

Drive it standalone (``ChaosProxy(...).start_in_thread()``) or through
``repro-experiment chaos --net`` (see
:mod:`repro.experiments.netchaos`).
"""

from __future__ import annotations

import asyncio
import random
import socket
import struct
import threading
from typing import Dict, List, Optional, Tuple

__all__ = ["ChaosProxy", "NET_KINDS", "NetFaultPlan"]

#: Every network fault kind the proxy can inject.
NET_KINDS = ("latency", "reset", "blackhole", "slowloris", "corrupt",
             "truncate")

_CHUNK = 65536


class NetFaultPlan:
    """Deterministic per-connection fault assignment.

    ``rates`` maps fault kind → probability per accepted connection
    (the remainder is a clean pass-through).  Decisions depend only on
    ``(seed, connection_index)``, via string-seeded ``random.Random``
    (SHA-512 based, independent of PYTHONHASHSEED), so the same plan
    replays identically.
    """

    def __init__(self, rates: Dict[str, float], seed: int = 0) -> None:
        for kind, rate in rates.items():
            if kind not in NET_KINDS:
                raise ValueError(
                    f"unknown net fault kind {kind!r}; "
                    f"known: {', '.join(NET_KINDS)}")
            if not 0.0 <= float(rate) <= 1.0:
                raise ValueError(f"rate for {kind!r} must be in [0, 1]")
        if sum(float(r) for r in rates.values()) > 1.0:
            raise ValueError("fault rates must sum to <= 1.0")
        self.rates = {kind: float(rates.get(kind, 0.0))
                      for kind in NET_KINDS}
        self.seed = seed

    def fault_for(self, index: int) -> Optional[str]:
        """The fault (or None) drawn by the ``index``-th connection."""
        roll = random.Random(f"chaosnet:{self.seed}:{index}").random()
        acc = 0.0
        for kind in NET_KINDS:
            acc += self.rates[kind]
            if roll < acc:
                return kind
        return None

    def params_rng(self, index: int) -> random.Random:
        """Seeded RNG for the fault's parameters (delay, cut point, …)."""
        return random.Random(f"chaosnet-params:{self.seed}:{index}")


class ChaosProxy:
    """A TCP proxy that injects :data:`NET_KINDS` faults per connection.

    Point it at an upstream ``(host, port)``, then connect through
    ``(proxy.host, proxy.port)``.  Fault magnitudes are bounded so a
    chaos suite stays fast: black-holes hold for ``hold_s`` then drop
    (they do not hang for the peer's full timeout), and slow-loris
    trickles only the first ``trickle_cap`` bytes.

    ``counts`` tallies injected faults by kind (plus ``"clean"``), the
    ground truth a resilience suite checks its observed error rate
    against.
    """

    def __init__(self, upstream_host: str, upstream_port: int,
                 plan: NetFaultPlan,
                 host: str = "127.0.0.1", port: int = 0,
                 latency_s: float = 0.2, hold_s: float = 1.0,
                 trickle_bytes: int = 32, trickle_delay_s: float = 0.02,
                 trickle_cap: int = 256) -> None:
        self.upstream_host = upstream_host
        self.upstream_port = upstream_port
        self.plan = plan
        self.host = host
        self.port = port
        self.latency_s = latency_s
        self.hold_s = hold_s
        self.trickle_bytes = trickle_bytes
        self.trickle_delay_s = trickle_delay_s
        self.trickle_cap = trickle_cap
        self.connections = 0
        self.counts: Dict[str, int] = {kind: 0 for kind in NET_KINDS}
        self.counts["clean"] = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle --------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self.host, self.port

    async def _serve_until_stopped(self) -> None:
        await self._stop_event.wait()
        self._server.close()
        await self._server.wait_closed()

    def start_in_thread(self, timeout: float = 10.0) -> Tuple[str, int]:
        """Run the proxy on its own event-loop thread; returns the address."""
        started = threading.Event()
        failure: List[BaseException] = []

        def _run() -> None:
            loop = asyncio.new_event_loop()
            try:
                asyncio.set_event_loop(loop)
                loop.run_until_complete(self.start())
            except BaseException as exc:
                failure.append(exc)
                started.set()
                loop.close()
                return
            started.set()
            try:
                loop.run_until_complete(self._serve_until_stopped())
            finally:
                loop.close()

        self._thread = threading.Thread(
            target=_run, name="repro-chaosnet", daemon=True)
        self._thread.start()
        if not started.wait(timeout):
            raise RuntimeError("chaos proxy did not start in time")
        if failure:
            raise failure[0]
        return self.host, self.port

    def shutdown(self, timeout: float = 10.0) -> None:
        if self._loop is not None and not self._loop.is_closed():
            try:
                self._loop.call_soon_threadsafe(self._stop_event.set)
            except RuntimeError:
                pass
        if self._thread is not None:
            self._thread.join(timeout)

    # -- per-connection fault machinery -----------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        index = self.connections
        self.connections += 1
        fault = self.plan.fault_for(index)
        self.counts[fault or "clean"] += 1
        rng = self.plan.params_rng(index)
        try:
            if fault == "blackhole":
                await self._blackhole(reader, writer, rng)
                return
            try:
                up_reader, up_writer = await asyncio.open_connection(
                    self.upstream_host, self.upstream_port)
            except OSError:
                self._close(writer)
                return
            up = asyncio.ensure_future(self._pump_up(reader, up_writer))
            down = asyncio.ensure_future(
                self._pump_down(up_reader, writer, fault, rng))
            try:
                await asyncio.gather(up, down, return_exceptions=True)
            finally:
                self._close(up_writer)
        finally:
            self._close(writer)

    async def _blackhole(self, reader: asyncio.StreamReader,
                         writer: asyncio.StreamWriter,
                         rng: random.Random) -> None:
        """Swallow the request, hang for a bounded interval, then drop."""
        hold = self.hold_s * (0.5 + rng.random())
        try:
            await asyncio.wait_for(reader.read(_CHUNK), timeout=hold)
            await asyncio.sleep(hold)
        except (asyncio.TimeoutError, OSError):
            pass

    async def _pump_up(self, reader: asyncio.StreamReader,
                       up_writer: asyncio.StreamWriter) -> None:
        """Relay client → upstream unmodified (faults hit responses)."""
        try:
            while True:
                chunk = await reader.read(_CHUNK)
                if not chunk:
                    break
                up_writer.write(chunk)
                await up_writer.drain()
            if up_writer.can_write_eof():
                up_writer.write_eof()
        except (OSError, asyncio.IncompleteReadError, RuntimeError):
            pass

    async def _pump_down(self, up_reader: asyncio.StreamReader,
                         writer: asyncio.StreamWriter,
                         fault: Optional[str],
                         rng: random.Random) -> None:
        """Relay upstream → client, injecting ``fault`` on the first burst."""
        first = True
        try:
            while True:
                chunk = await up_reader.read(_CHUNK)
                if not chunk:
                    break
                if first and fault == "latency":
                    await asyncio.sleep(self.latency_s * (0.5 + rng.random()))
                elif first and fault == "reset":
                    cut = max(1, int(len(chunk) * rng.uniform(0.2, 0.8)))
                    writer.write(chunk[:cut])
                    await writer.drain()
                    self._abort(writer)
                    return
                elif first and fault == "truncate":
                    cut = max(1, int(len(chunk) * rng.uniform(0.3, 0.9)))
                    writer.write(chunk[:cut])
                    await writer.drain()
                    # FIN now, not at connection teardown: the peer must
                    # see the short body immediately, not after waiting
                    # out its own read timeout for bytes that never come.
                    if writer.can_write_eof():
                        writer.write_eof()
                    return  # clean FIN short of Content-Length
                elif first and fault == "slowloris":
                    head = chunk[:self.trickle_cap]
                    for at in range(0, len(head), self.trickle_bytes):
                        writer.write(head[at:at + self.trickle_bytes])
                        await writer.drain()
                        await asyncio.sleep(self.trickle_delay_s)
                    chunk = chunk[len(head):]
                if fault == "corrupt" and len(chunk) > 1:
                    # Flip the last byte: inside the JSON body, so the
                    # frame stays parseable and only the end-to-end
                    # digest can tell the payload is garbage.
                    chunk = chunk[:-1] + bytes([chunk[-1] ^ 0xFF])
                if chunk:
                    writer.write(chunk)
                    await writer.drain()
                first = False
        except (OSError, RuntimeError):
            pass

    @staticmethod
    def _abort(writer: asyncio.StreamWriter) -> None:
        """Close with a hard RST so the peer sees ConnectionResetError."""
        sock = writer.get_extra_info("socket")
        try:
            if sock is not None:
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                                struct.pack("ii", 1, 0))
        except OSError:
            pass
        try:
            writer.close()
        except Exception:
            pass

    @staticmethod
    def _close(writer: asyncio.StreamWriter) -> None:
        try:
            writer.close()
        except Exception:
            pass
