"""A stdlib-only typed client for the experiment service.

:class:`ServiceClient` wraps :mod:`http.client` so examples, tests, and
scripts talk to a running :class:`~repro.service.server.ExperimentService`
without any third-party dependency:

>>> with ServiceClient("127.0.0.1", 8123) as client:          # doctest: +SKIP
...     reply = client.simulate([{"workload": "bfs",
...                               "design": "baseline-512"}])
...     print(reply.points[0].tier, reply.points[0].cycles)
...     job = client.submit([{"workload": "bfs", "design": "vc-with-opt"}])
...     done = client.wait(job)                               # poll → fetch
...     print(done.points[0].tier)

Server-side rejections (bad request, unknown design, sweep failures,
a draining server) raise :class:`ServiceError` carrying the HTTP
status, the machine-readable error code, and the decoded body.
Connection-level failures — refused connects, mid-body disconnects,
corrupted response bodies — raise :class:`TransportError` (a
:class:`ServiceError` subclass) with the failure phase and partial-read
context instead of leaking raw ``ConnectionResetError`` /
``IncompleteReadError`` out of the client.

Resilience knobs (all default off/conservative):

* ``deadline_ms`` — every request carries ``X-Deadline-Ms``; the server
  answers 504 instead of computing work nobody will wait for, and the
  gateway decrements the budget across hops.
* ``retries`` / ``retry_budget_s`` — jittered-exponential-backoff
  retries for *idempotent* requests on transport errors, 429 sheds
  (honoring ``Retry-After``), and 503s, bounded by a wall-clock budget.
  Job submits are never retried: a duplicate submit is a duplicate job.
"""

from __future__ import annotations

import http.client
import json
import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Union

from repro.obs.trace_context import TraceContext
from repro.service.http11 import body_digest

__all__ = [
    "HealthReport",
    "JobReply",
    "PointReply",
    "ServiceClient",
    "ServiceError",
    "SimulateReply",
    "TransportError",
    "parse_target",
]


def parse_target(target: str) -> "tuple[str, int]":
    """Parse ``HOST:PORT`` (IPv6 as ``[ADDR]:PORT``) into ``(host, port)``.

    Accepts an optional ``http://`` prefix and trailing slash so a
    pasted URL works too.  Bracketed IPv6 literals lose their brackets
    (``[::1]:8000`` → ``("::1", 8000)``), which is what both
    :class:`ServiceClient` and :mod:`http.client` expect.  Raises
    ``ValueError`` with a human-readable reason on anything else —
    including a bare host with no port, the historical foot-gun
    ``rpartition(":")`` silently mangled.
    """
    text = target.strip()
    for prefix in ("http://", "https://"):
        if text.startswith(prefix):
            text = text[len(prefix):]
            break
    text = text.rstrip("/")
    if text.startswith("["):  # bracketed IPv6 literal
        addr, bracket, rest = text[1:].partition("]")
        if not bracket or not addr:
            raise ValueError(f"{target!r}: unterminated '[' in host")
        if not rest.startswith(":"):
            raise ValueError(f"{target!r}: missing ':PORT' after {addr!r}")
        host, port_text = addr, rest[1:]
    else:
        host, sep, port_text = text.rpartition(":")
        if not sep:
            raise ValueError(
                f"{target!r}: missing ':PORT' (expected HOST:PORT)")
        if ":" in host:
            raise ValueError(
                f"{target!r}: IPv6 hosts must be bracketed, "
                f"like [{host}]:{port_text}")
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"{target!r}: port {port_text!r} is not an integer")
    if not 1 <= port <= 65535:
        raise ValueError(f"{target!r}: port {port} out of range 1-65535")
    return host or "127.0.0.1", port


class ServiceError(RuntimeError):
    """An error response from the service (HTTP status >= 400)."""

    def __init__(self, status: int, code: str, message: str,
                 body: Optional[Dict[str, Any]] = None) -> None:
        super().__init__(f"HTTP {status} [{code}]: {message}")
        self.status = status
        self.code = code
        self.message = message
        self.body = body if body is not None else {}


class TransportError(ServiceError):
    """A connection-level failure: no (trustworthy) HTTP response.

    ``phase`` records how far the exchange got (``"send"``,
    ``"read-status"``, ``"read-body"``, or ``"verify"`` for a body whose
    ``X-Content-Digest`` did not match — corruption in transit), and
    ``bytes_read`` how much of the body arrived before the failure.
    Retry logic classifies on exactly this: a transport error never
    carries data, so an idempotent request can always be retried, while
    a non-idempotent one must surface the error to its caller.
    """

    def __init__(self, phase: str, bytes_read: int = 0,
                 cause: Optional[BaseException] = None,
                 message: Optional[str] = None) -> None:
        detail = message or (f"{type(cause).__name__}: {cause}" if cause
                             else "connection failed")
        super().__init__(
            0, "transport",
            f"{detail} (phase={phase}, bytes_read={bytes_read})")
        self.phase = phase
        self.bytes_read = bytes_read
        self.cause = cause


@dataclass(frozen=True)
class PointReply:
    """One resolved experiment point, with its cache-tier provenance."""

    workload: str
    design: str
    tier: str  # "memo" | "disk" | "computed"
    coalesced: bool
    cycles: float
    instructions: int
    requests: int
    fingerprint: str
    scale: float
    wall_clock_seconds: float
    counters: Optional[Dict[str, int]] = None

    @classmethod
    def from_json(cls, raw: Dict[str, Any]) -> "PointReply":
        return cls(
            workload=raw["workload"],
            design=raw["design"],
            tier=raw["tier"],
            coalesced=raw["coalesced"],
            cycles=raw["cycles"],
            instructions=raw["instructions"],
            requests=raw["requests"],
            fingerprint=raw["fingerprint"],
            scale=raw["scale"],
            wall_clock_seconds=raw["wall_clock_seconds"],
            counters=raw.get("counters"),
        )


@dataclass(frozen=True)
class SimulateReply:
    """The response to one simulate call (or one finished job)."""

    trace_id: str
    points: List[PointReply]
    wall_seconds: float
    simulations_run_total: int

    @classmethod
    def from_json(cls, raw: Dict[str, Any]) -> "SimulateReply":
        return cls(
            trace_id=raw["trace_id"],
            points=[PointReply.from_json(p) for p in raw["points"]],
            wall_seconds=raw["wall_seconds"],
            simulations_run_total=raw["simulations_run_total"],
        )


@dataclass(frozen=True)
class JobReply:
    """One poll of an asynchronous job."""

    job_id: str
    status: str  # "running" | "done" | "failed"
    n_points: int
    result: Optional[SimulateReply] = None
    raw_result: Optional[Dict[str, Any]] = None

    @property
    def done(self) -> bool:
        return self.status != "running"


@dataclass(frozen=True)
class HealthReport:
    """The decoded ``/healthz`` payload."""

    status: str
    queue_depth: int
    inflight_points: int
    simulations_run: int
    pool: Dict[str, Any]
    raw: Dict[str, Any] = field(repr=False, default_factory=dict)


PointLike = Union[Dict[str, Any], Iterable]


def _normalize_points(points: Iterable[PointLike]) -> List[Dict[str, Any]]:
    """Accept dicts or (workload, design[, track_lifetimes]) tuples."""
    normalized: List[Dict[str, Any]] = []
    for point in points:
        if isinstance(point, dict):
            normalized.append(point)
            continue
        parts = list(point)
        if len(parts) not in (2, 3):
            raise ValueError(
                "tuple points must be (workload, design[, track_lifetimes])")
        spec: Dict[str, Any] = {"workload": parts[0], "design": parts[1]}
        if len(parts) == 3:
            spec["track_lifetimes"] = bool(parts[2])
        normalized.append(spec)
    return normalized


class ServiceClient:
    """Blocking HTTP client for the simulation service (stdlib only)."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8000,
                 timeout: float = 600.0,
                 trace_ctx: Optional[TraceContext] = None,
                 deadline_ms: Optional[float] = None,
                 retries: int = 0,
                 retry_budget_s: float = 10.0,
                 backoff_base: float = 0.05,
                 retry_seed: int = 0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        #: When set, every request carries this trace's id (each request
        #: becomes a child span); when None each request starts a fresh
        #: server-side trace.
        self.trace_ctx = trace_ctx
        #: Default per-request deadline budget sent as ``X-Deadline-Ms``
        #: (None = no deadline); :meth:`simulate` can override per call.
        self.deadline_ms = deadline_ms
        #: Backoff retries for idempotent requests beyond the single
        #: free stale-keepalive retry (0 = the historical behavior).
        self.retries = retries
        #: Wall-clock ceiling across one request's retries: once spent,
        #: the last error surfaces no matter how many retries remain.
        self.retry_budget_s = retry_budget_s
        self.backoff_base = backoff_base
        self._rng = random.Random(f"client-retry:{retry_seed}")
        #: The trace id of the most recent request (from the server's
        #: ``X-Trace-Id`` response header) — stitch with ``trace show``.
        self.last_trace_id: Optional[str] = None
        self.retries_performed = 0
        self._conn: Optional[http.client.HTTPConnection] = None

    # -- plumbing ---------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout)
        return self._conn

    def _trace_headers(self) -> Dict[str, str]:
        if self.trace_ctx is None:
            return {}
        return self.trace_ctx.headers()

    def _attempt(self, method: str, path: str, payload: Optional[bytes],
                 headers: Dict[str, str]):
        """One HTTP exchange; all connection-level failures become typed."""
        conn = self._connection()
        phase = "send"
        try:
            conn.request(method, path, body=payload, headers=headers)
            phase = "read-status"
            response = conn.getresponse()
            phase = "read-body"
            raw = response.read()
        except (http.client.HTTPException, ConnectionError, OSError) as exc:
            self.close()
            partial = getattr(exc, "partial", b"")
            raise TransportError(phase, len(partial or b""), cause=exc)
        digest = response.getheader("X-Content-Digest")
        if digest is not None and digest != body_digest(raw):
            # The bytes arrived but are not what the server sent: treat
            # exactly like a dead connection, never like data.
            self.close()
            raise TransportError(
                "verify", len(raw),
                message="response body failed X-Content-Digest check "
                        "(corrupted in transit)")
        trace_id = response.getheader("X-Trace-Id")
        if trace_id and trace_id != "-":
            self.last_trace_id = trace_id
        return response, raw

    @staticmethod
    def _retry_after_hint(response, raw: bytes) -> Optional[float]:
        header = response.getheader("Retry-After")
        if header is not None:
            try:
                return max(0.0, float(header))
            except ValueError:
                pass
        try:
            hint = json.loads(raw.decode("utf-8")).get("retry_after")
            return max(0.0, float(hint)) if hint is not None else None
        except (UnicodeDecodeError, ValueError, AttributeError):
            return None

    def _backoff(self, attempt: int, retry_after: Optional[float],
                 budget_deadline: float,
                 abs_deadline: Optional[float]) -> bool:
        """Sleep before retry ``attempt``; False when no budget remains."""
        delay = self.backoff_base * (2 ** attempt)
        delay *= 0.5 + self._rng.random()  # jitter into [0.5x, 1.5x)
        if retry_after is not None:
            delay = max(delay, retry_after)
        now = time.monotonic()
        if now + delay > budget_deadline:
            return False
        if abs_deadline is not None and now + delay >= abs_deadline:
            return False  # the deadline would expire before the retry
        time.sleep(delay)
        self.retries_performed += 1
        return True

    def _raw_request(self, method: str, path: str,
                     payload: Optional[bytes],
                     headers: Dict[str, str],
                     idempotent: bool = True,
                     abs_deadline: Optional[float] = None):
        """One logical exchange: free stale-keepalive retry + budgeted
        backoff retries (idempotent requests only)."""
        budget_deadline = time.monotonic() + self.retry_budget_s
        attempt = 0
        free_retry_used = False
        while True:
            if abs_deadline is not None:
                remaining_ms = (abs_deadline - time.monotonic()) * 1000.0
                if remaining_ms <= 0:
                    raise ServiceError(
                        504, "deadline_exceeded",
                        "client-side deadline exhausted before the "
                        "request was sent")
                headers = dict(headers)
                headers["X-Deadline-Ms"] = format(remaining_ms, ".3f")
            reused = self._conn is not None
            try:
                response, raw = self._attempt(method, path, payload, headers)
            except TransportError:
                if not idempotent:
                    raise
                # A server that closed a kept-alive socket between calls
                # looks like a dead connection; retry once on a fresh
                # one, free — the historical pre-retry behavior.
                if reused and not free_retry_used:
                    free_retry_used = True
                    continue
                if attempt >= self.retries or not self._backoff(
                        attempt, None, budget_deadline, abs_deadline):
                    raise
                attempt += 1
                continue
            if (response.status in (429, 503) and idempotent
                    and attempt < self.retries):
                hint = self._retry_after_hint(response, raw)
                if self._backoff(attempt, hint, budget_deadline,
                                 abs_deadline):
                    attempt += 1
                    continue
            return response, raw

    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, Any]] = None,
                 idempotent: bool = True,
                 deadline_ms: Optional[float] = None) -> Dict[str, Any]:
        payload = None if body is None else json.dumps(body).encode("utf-8")
        headers = {"Content-Type": "application/json"} if payload else {}
        headers["Accept"] = "application/json"
        headers.update(self._trace_headers())
        budget = deadline_ms if deadline_ms is not None else self.deadline_ms
        abs_deadline = (time.monotonic() + budget / 1000.0
                        if budget is not None else None)
        response, raw = self._raw_request(
            method, path, payload, headers,
            idempotent=idempotent, abs_deadline=abs_deadline)
        try:
            decoded = json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError):
            raise ServiceError(response.status, "bad_payload",
                               f"undecodable response body: {raw[:200]!r}")
        if response.status >= 400:
            raise ServiceError(
                response.status,
                decoded.get("error", "error"),
                decoded.get("message", f"HTTP {response.status}"),
                decoded,
            )
        return decoded

    def close(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            finally:
                self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- API --------------------------------------------------------------
    def simulate(self, points: Iterable[PointLike],
                 scale: Optional[float] = None,
                 config: Optional[Dict[str, Any]] = None,
                 include_counters: bool = False,
                 deadline_ms: Optional[float] = None) -> SimulateReply:
        """Run (or fetch) points synchronously; blocks until the wave lands.

        ``deadline_ms`` overrides the client-wide deadline budget for
        this one call.  Simulate is idempotent (points are
        fingerprint-keyed), so it participates in retry policy.
        """
        body: Dict[str, Any] = {"points": _normalize_points(points)}
        if scale is not None:
            body["scale"] = scale
        if config is not None:
            body["config"] = config
        if include_counters:
            body["include_counters"] = True
        return SimulateReply.from_json(
            self._request("POST", "/v1/simulate", body,
                          deadline_ms=deadline_ms))

    def submit(self, points: Iterable[PointLike],
               scale: Optional[float] = None,
               config: Optional[Dict[str, Any]] = None) -> str:
        """Submit an asynchronous job; returns its id for :meth:`poll`.

        Submits are **not idempotent** — a retried submit is a second
        job — so this call never retries, and it always uses a fresh
        connection so a stale kept-alive socket cannot force the
        ambiguous did-it-arrive case.
        """
        body: Dict[str, Any] = {"points": _normalize_points(points)}
        if scale is not None:
            body["scale"] = scale
        if config is not None:
            body["config"] = config
        self.close()  # fresh connection: no stale-keepalive ambiguity
        return self._request("POST", "/v1/jobs", body,
                             idempotent=False)["job_id"]

    def sweep(self, spec: Any) -> str:
        """Submit a :class:`~repro.experiments.sweepspec.SweepSpec` as a job.

        ``spec`` is a ``SweepSpec`` (or its already-serialized dict
        form).  Like :meth:`submit`, a sweep submit is not idempotent:
        it never retries and always uses a fresh connection.  Returns
        the job id for :meth:`poll`/:meth:`wait`.
        """
        if hasattr(spec, "to_dict"):
            spec = spec.to_dict()
        body = {"sweep": spec}
        self.close()  # fresh connection: no stale-keepalive ambiguity
        return self._request("POST", "/v1/sweep", body,
                             idempotent=False)["job_id"]

    def poll(self, job_id: str) -> JobReply:
        """Fetch a job's status (and its result once finished)."""
        raw = self._request("GET", f"/v1/jobs/{job_id}")
        result = raw.get("result")
        return JobReply(
            job_id=raw["job_id"],
            status=raw["status"],
            n_points=raw["n_points"],
            result=(SimulateReply.from_json(result)
                    if raw["status"] == "done" and result else None),
            raw_result=result,
        )

    def wait(self, job_id: str, poll_interval: float = 0.05,
             timeout: float = 600.0) -> SimulateReply:
        """Poll until a job finishes; raise on failure or timeout."""
        deadline = time.monotonic() + timeout
        while True:
            reply = self.poll(job_id)
            if reply.status == "done":
                assert reply.result is not None
                return reply.result
            if reply.status == "failed":
                raise ServiceError(
                    500, "sweep_failed",
                    f"job {job_id} failed", reply.raw_result or {})
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still running after {timeout}s")
            time.sleep(poll_interval)

    def healthz(self) -> HealthReport:
        raw = self._request("GET", "/healthz")
        return HealthReport(
            status=raw["status"],
            queue_depth=raw["queue_depth"],
            inflight_points=raw["inflight_points"],
            simulations_run=raw["simulations_run"],
            pool=raw["pool"],
            raw=raw,
        )

    def metrics(self) -> Dict[str, Any]:
        """The server's full metrics snapshot (counters/gauges/histograms)."""
        return self._request("GET", "/metrics")

    def metrics_text(self) -> str:
        """The server's metrics in Prometheus text exposition format."""
        headers = {"Accept": "text/plain"}
        headers.update(self._trace_headers())
        response, raw = self._raw_request("GET", "/metrics", None, headers)
        if response.status >= 400:
            raise ServiceError(response.status, "error",
                               f"HTTP {response.status} from /metrics")
        return raw.decode("utf-8")

    def drain(self) -> None:
        """Ask the server to drain gracefully (same path as SIGTERM)."""
        self._request("POST", "/v1/drain")
