"""A stdlib-only typed client for the experiment service.

:class:`ServiceClient` wraps :mod:`http.client` so examples, tests, and
scripts talk to a running :class:`~repro.service.server.ExperimentService`
without any third-party dependency:

>>> with ServiceClient("127.0.0.1", 8123) as client:          # doctest: +SKIP
...     reply = client.simulate([{"workload": "bfs",
...                               "design": "baseline-512"}])
...     print(reply.points[0].tier, reply.points[0].cycles)
...     job = client.submit([{"workload": "bfs", "design": "vc-with-opt"}])
...     done = client.wait(job)                               # poll → fetch
...     print(done.points[0].tier)

Server-side rejections (bad request, unknown design, sweep failures,
a draining server) raise :class:`ServiceError` carrying the HTTP
status, the machine-readable error code, and the decoded body.
"""

from __future__ import annotations

import http.client
import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Union

from repro.obs.trace_context import TraceContext

__all__ = [
    "HealthReport",
    "JobReply",
    "PointReply",
    "ServiceClient",
    "ServiceError",
    "SimulateReply",
    "parse_target",
]


def parse_target(target: str) -> "tuple[str, int]":
    """Parse ``HOST:PORT`` (IPv6 as ``[ADDR]:PORT``) into ``(host, port)``.

    Accepts an optional ``http://`` prefix and trailing slash so a
    pasted URL works too.  Bracketed IPv6 literals lose their brackets
    (``[::1]:8000`` → ``("::1", 8000)``), which is what both
    :class:`ServiceClient` and :mod:`http.client` expect.  Raises
    ``ValueError`` with a human-readable reason on anything else —
    including a bare host with no port, the historical foot-gun
    ``rpartition(":")`` silently mangled.
    """
    text = target.strip()
    for prefix in ("http://", "https://"):
        if text.startswith(prefix):
            text = text[len(prefix):]
            break
    text = text.rstrip("/")
    if text.startswith("["):  # bracketed IPv6 literal
        addr, bracket, rest = text[1:].partition("]")
        if not bracket or not addr:
            raise ValueError(f"{target!r}: unterminated '[' in host")
        if not rest.startswith(":"):
            raise ValueError(f"{target!r}: missing ':PORT' after {addr!r}")
        host, port_text = addr, rest[1:]
    else:
        host, sep, port_text = text.rpartition(":")
        if not sep:
            raise ValueError(
                f"{target!r}: missing ':PORT' (expected HOST:PORT)")
        if ":" in host:
            raise ValueError(
                f"{target!r}: IPv6 hosts must be bracketed, "
                f"like [{host}]:{port_text}")
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"{target!r}: port {port_text!r} is not an integer")
    if not 1 <= port <= 65535:
        raise ValueError(f"{target!r}: port {port} out of range 1-65535")
    return host or "127.0.0.1", port


class ServiceError(RuntimeError):
    """An error response from the service (HTTP status >= 400)."""

    def __init__(self, status: int, code: str, message: str,
                 body: Optional[Dict[str, Any]] = None) -> None:
        super().__init__(f"HTTP {status} [{code}]: {message}")
        self.status = status
        self.code = code
        self.message = message
        self.body = body if body is not None else {}


@dataclass(frozen=True)
class PointReply:
    """One resolved experiment point, with its cache-tier provenance."""

    workload: str
    design: str
    tier: str  # "memo" | "disk" | "computed"
    coalesced: bool
    cycles: float
    instructions: int
    requests: int
    fingerprint: str
    scale: float
    wall_clock_seconds: float
    counters: Optional[Dict[str, int]] = None

    @classmethod
    def from_json(cls, raw: Dict[str, Any]) -> "PointReply":
        return cls(
            workload=raw["workload"],
            design=raw["design"],
            tier=raw["tier"],
            coalesced=raw["coalesced"],
            cycles=raw["cycles"],
            instructions=raw["instructions"],
            requests=raw["requests"],
            fingerprint=raw["fingerprint"],
            scale=raw["scale"],
            wall_clock_seconds=raw["wall_clock_seconds"],
            counters=raw.get("counters"),
        )


@dataclass(frozen=True)
class SimulateReply:
    """The response to one simulate call (or one finished job)."""

    trace_id: str
    points: List[PointReply]
    wall_seconds: float
    simulations_run_total: int

    @classmethod
    def from_json(cls, raw: Dict[str, Any]) -> "SimulateReply":
        return cls(
            trace_id=raw["trace_id"],
            points=[PointReply.from_json(p) for p in raw["points"]],
            wall_seconds=raw["wall_seconds"],
            simulations_run_total=raw["simulations_run_total"],
        )


@dataclass(frozen=True)
class JobReply:
    """One poll of an asynchronous job."""

    job_id: str
    status: str  # "running" | "done" | "failed"
    n_points: int
    result: Optional[SimulateReply] = None
    raw_result: Optional[Dict[str, Any]] = None

    @property
    def done(self) -> bool:
        return self.status != "running"


@dataclass(frozen=True)
class HealthReport:
    """The decoded ``/healthz`` payload."""

    status: str
    queue_depth: int
    inflight_points: int
    simulations_run: int
    pool: Dict[str, Any]
    raw: Dict[str, Any] = field(repr=False, default_factory=dict)


PointLike = Union[Dict[str, Any], Iterable]


def _normalize_points(points: Iterable[PointLike]) -> List[Dict[str, Any]]:
    """Accept dicts or (workload, design[, track_lifetimes]) tuples."""
    normalized: List[Dict[str, Any]] = []
    for point in points:
        if isinstance(point, dict):
            normalized.append(point)
            continue
        parts = list(point)
        if len(parts) not in (2, 3):
            raise ValueError(
                "tuple points must be (workload, design[, track_lifetimes])")
        spec: Dict[str, Any] = {"workload": parts[0], "design": parts[1]}
        if len(parts) == 3:
            spec["track_lifetimes"] = bool(parts[2])
        normalized.append(spec)
    return normalized


class ServiceClient:
    """Blocking HTTP client for the simulation service (stdlib only)."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8000,
                 timeout: float = 600.0,
                 trace_ctx: Optional[TraceContext] = None) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        #: When set, every request carries this trace's id (each request
        #: becomes a child span); when None each request starts a fresh
        #: server-side trace.
        self.trace_ctx = trace_ctx
        #: The trace id of the most recent request (from the server's
        #: ``X-Trace-Id`` response header) — stitch with ``trace show``.
        self.last_trace_id: Optional[str] = None
        self._conn: Optional[http.client.HTTPConnection] = None

    # -- plumbing ---------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout)
        return self._conn

    def _trace_headers(self) -> Dict[str, str]:
        if self.trace_ctx is None:
            return {}
        return self.trace_ctx.headers()

    def _raw_request(self, method: str, path: str,
                     payload: Optional[bytes],
                     headers: Dict[str, str]):
        """One HTTP exchange with a single stale-keepalive retry."""
        for attempt in (1, 2):
            conn = self._connection()
            try:
                conn.request(method, path, body=payload, headers=headers)
                response = conn.getresponse()
                raw = response.read()
                break
            except (http.client.HTTPException, ConnectionError, OSError):
                # A server that closed a kept-alive socket between calls
                # looks like a dead connection; retry once on a fresh one.
                self.close()
                if attempt == 2:
                    raise
        trace_id = response.getheader("X-Trace-Id")
        if trace_id and trace_id != "-":
            self.last_trace_id = trace_id
        return response, raw

    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        payload = None if body is None else json.dumps(body).encode("utf-8")
        headers = {"Content-Type": "application/json"} if payload else {}
        headers["Accept"] = "application/json"
        headers.update(self._trace_headers())
        response, raw = self._raw_request(method, path, payload, headers)
        try:
            decoded = json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError):
            raise ServiceError(response.status, "bad_payload",
                               f"undecodable response body: {raw[:200]!r}")
        if response.status >= 400:
            raise ServiceError(
                response.status,
                decoded.get("error", "error"),
                decoded.get("message", f"HTTP {response.status}"),
                decoded,
            )
        return decoded

    def close(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            finally:
                self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- API --------------------------------------------------------------
    def simulate(self, points: Iterable[PointLike],
                 scale: Optional[float] = None,
                 config: Optional[Dict[str, Any]] = None,
                 include_counters: bool = False) -> SimulateReply:
        """Run (or fetch) points synchronously; blocks until the wave lands."""
        body: Dict[str, Any] = {"points": _normalize_points(points)}
        if scale is not None:
            body["scale"] = scale
        if config is not None:
            body["config"] = config
        if include_counters:
            body["include_counters"] = True
        return SimulateReply.from_json(
            self._request("POST", "/v1/simulate", body))

    def submit(self, points: Iterable[PointLike],
               scale: Optional[float] = None,
               config: Optional[Dict[str, Any]] = None) -> str:
        """Submit an asynchronous job; returns its id for :meth:`poll`."""
        body: Dict[str, Any] = {"points": _normalize_points(points)}
        if scale is not None:
            body["scale"] = scale
        if config is not None:
            body["config"] = config
        return self._request("POST", "/v1/jobs", body)["job_id"]

    def poll(self, job_id: str) -> JobReply:
        """Fetch a job's status (and its result once finished)."""
        raw = self._request("GET", f"/v1/jobs/{job_id}")
        result = raw.get("result")
        return JobReply(
            job_id=raw["job_id"],
            status=raw["status"],
            n_points=raw["n_points"],
            result=(SimulateReply.from_json(result)
                    if raw["status"] == "done" and result else None),
            raw_result=result,
        )

    def wait(self, job_id: str, poll_interval: float = 0.05,
             timeout: float = 600.0) -> SimulateReply:
        """Poll until a job finishes; raise on failure or timeout."""
        deadline = time.monotonic() + timeout
        while True:
            reply = self.poll(job_id)
            if reply.status == "done":
                assert reply.result is not None
                return reply.result
            if reply.status == "failed":
                raise ServiceError(
                    500, "sweep_failed",
                    f"job {job_id} failed", reply.raw_result or {})
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still running after {timeout}s")
            time.sleep(poll_interval)

    def healthz(self) -> HealthReport:
        raw = self._request("GET", "/healthz")
        return HealthReport(
            status=raw["status"],
            queue_depth=raw["queue_depth"],
            inflight_points=raw["inflight_points"],
            simulations_run=raw["simulations_run"],
            pool=raw["pool"],
            raw=raw,
        )

    def metrics(self) -> Dict[str, Any]:
        """The server's full metrics snapshot (counters/gauges/histograms)."""
        return self._request("GET", "/metrics")

    def metrics_text(self) -> str:
        """The server's metrics in Prometheus text exposition format."""
        headers = {"Accept": "text/plain"}
        headers.update(self._trace_headers())
        response, raw = self._raw_request("GET", "/metrics", None, headers)
        if response.status >= 400:
            raise ServiceError(response.status, "error",
                               f"HTTP {response.status} from /metrics")
        return raw.decode("utf-8")

    def drain(self) -> None:
        """Ask the server to drain gracefully (same path as SIGTERM)."""
        self._request("POST", "/v1/drain")
