"""A consistent-hash sharding gateway in front of experiment replicas.

PR 5 built one batching :class:`~repro.service.server.ExperimentService`
over one process pool; this module scales it *out* the same way the
paper scales translation bandwidth: partition the request stream before
the shared resource.  The gateway consistent-hashes each point's disk
cache fingerprint (the identity already shared by the memo, the disk
tier, checkpoints, and single-flight coalescing) across N worker
replicas, so every fingerprint has exactly one home replica whose
in-memory memo stays hot for it — while a *shared* disk-cache directory
lets any replica serve any point after one pickle read when the ring
moves.

Request life through the gateway::

    client ──POST /v1/simulate──> gateway
        │ parse + fingerprint (route memo caches body → plan)
        ▼
    HashRing.lookup(fingerprint) per point ──> owner replica groups
        │ single owner: forward the body, pass the reply through raw
        │ several owners: fan out sub-requests, merge point payloads
        ▼
    pooled keep-alive connection to each replica (X-Trace-Id flows
    through, so the client → gateway → replica → worker spans stitch
    into one tree)

Replica management: a background health loop (interval jittered ±20%
so probes never fall into lockstep) probes every replica's
``/healthz``; K consecutive probe failures, a dead managed subprocess,
or a connection-level forward failure **evicts** the replica (the ring
is rebuilt without it) and in-flight points **hedge** to their new
owner on the rebuilt ring, so a killed replica costs zero
client-visible failures.  A replica whose probe recovers is
**re-admitted** and the ring takes it back.  With ``supervise=True``
(the CLI default) a dead *managed* replica is **respawned** in place
with capped exponential backoff, and a flap detector gives up (and
raises the ``gateway.alarms.flapping`` metric) on a replica that keeps
dying right after each respawn.  Deterministic per-point simulation
failures (HTTP 500 from a healthy replica) pass through unhedged —
retrying those would just fail again; so do a replica's 429 shed
(hedging an overloaded pool amplifies the overload) and 504 deadline
verdicts.  Every replica reply is verified against its
``X-Content-Digest`` before the gateway will forward it.

Replicas come from three sources: :func:`spawn_thread_replicas`
(in-process services on their own event-loop threads — tests and
embedding), :func:`spawn_subprocess_replicas` (``repro-experiment
serve`` children — real CPU isolation, the ``--replicas N`` CLI path),
or :func:`replicas_from_urls` (externally managed services via
``--replica-urls``).  ``/metrics`` merges the gateway's own labelled
counters with every healthy replica's scrape re-exported under a
``replica="..."`` label (see :func:`repro.obs.promexp.merge_expositions`);
``/healthz`` reports per-replica health and the ring membership;
``/v1/drain`` (or SIGTERM under the CLI) drains the gateway *and* every
managed replica, exiting 0.
"""

from __future__ import annotations

import asyncio
import json
import os
import random
import signal
import subprocess
import sys
import tempfile
import threading
import time
import uuid
from bisect import bisect_right
from collections import OrderedDict
from hashlib import sha256
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.experiments.sweepspec import design_to_wire
from repro.obs import Observability
from repro.obs.promexp import CONTENT_TYPE as _PROM_CONTENT_TYPE
from repro.obs.promexp import merge_expositions, render_prometheus
from repro.obs.trace_context import TraceContext
from repro.service import http11, protocol
from repro.service.client import parse_target
from repro.service.http11 import Raw
from repro.service.protocol import ProtocolError
from repro.system.config import SoCConfig
from repro.workloads import registry

__all__ = [
    "HashRing",
    "Replica",
    "ReplicaError",
    "ShardGateway",
    "launch_local_gateway",
    "replicas_from_urls",
    "run_gateway",
    "spawn_subprocess_replicas",
    "spawn_thread_replicas",
]

#: Virtual nodes per replica: enough for ~±10% key balance at 3
#: replicas without making ring rebuilds expensive.
DEFAULT_VNODES = 64

#: Completed gateway job records kept for polling before eviction.
_MAX_JOBS = 1024

#: Idle keep-alive connections pooled per replica.
_MAX_POOL_PER_REPLICA = 32

#: Largest request body the route memo will cache a plan for.
_MAX_MEMO_BODY = 64 * 1024


class HashRing:
    """An immutable consistent-hash ring with virtual nodes.

    Each member contributes ``vnodes`` tokens (SHA-256 of
    ``"member#i"``); a key maps to the member owning the first token
    clockwise of the key's own hash.  Adding or removing one member
    therefore moves only ~1/N of the keyspace — the property the
    gateway's memo locality depends on, and what the ring-stability
    tests assert.  Topology changes build a *new* ring, so lookups
    never observe a half-updated table.
    """

    __slots__ = ("members", "vnodes", "_tokens", "_owners")

    def __init__(self, members: Sequence[str],
                 vnodes: int = DEFAULT_VNODES) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.members: Tuple[str, ...] = tuple(sorted(set(members)))
        self.vnodes = vnodes
        pairs = sorted(
            (sha256(f"{member}#{i}".encode("utf-8")).hexdigest(), member)
            for member in self.members for i in range(vnodes))
        self._tokens: List[str] = [token for token, _ in pairs]
        self._owners: List[str] = [owner for _, owner in pairs]

    def __len__(self) -> int:
        return len(self.members)

    def lookup(self, key: str) -> str:
        """The member owning ``key``; raises ``LookupError`` when empty."""
        if not self._tokens:
            raise LookupError("hash ring has no members")
        point = sha256(key.encode("utf-8")).hexdigest()
        index = bisect_right(self._tokens, point)
        if index == len(self._tokens):
            index = 0
        return self._owners[index]


class Replica:
    """One worker replica: its address plus the gateway's view of it.

    The supervision fields track the respawn state machine (see
    :meth:`ShardGateway._supervise`): ``respawn`` is a factory that
    re-creates the worker in place (set by the spawn helpers, ``None``
    for externally managed URLs), ``backoff_s`` the current capped
    exponential respawn delay, and ``rapid_deaths`` counts deaths that
    struck within the flap window of a (re)spawn — the flap detector
    gives up on the replica after too many of those.
    """

    __slots__ = ("id", "host", "port", "service", "process", "healthy",
                 "evictions", "last_error", "pool", "respawn",
                 "probe_failures", "respawns", "backoff_s", "backoff_until",
                 "spawned_at", "death_at", "rapid_deaths", "given_up",
                 "respawning")

    def __init__(self, replica_id: str, host: str, port: int,
                 service: Optional[Any] = None,
                 process: Optional["subprocess.Popen"] = None,
                 respawn: Optional[Callable[[], None]] = None) -> None:
        self.id = replica_id
        self.host = host
        self.port = port
        #: An in-thread :class:`ExperimentService` the gateway manages.
        self.service = service
        #: A ``repro-experiment serve`` child the gateway manages.
        self.process = process
        #: Rebuilds this worker in place (new service/process + port).
        self.respawn = respawn
        self.healthy = True
        self.evictions = 0
        self.last_error: Optional[str] = None
        #: Consecutive failed health probes (reset by any success).
        self.probe_failures = 0
        self.respawns = 0
        self.backoff_s = 0.0  # armed by the gateway's supervision config
        self.backoff_until = 0.0
        self.spawned_at = time.monotonic()
        self.death_at: Optional[float] = None
        self.rapid_deaths = 0
        self.given_up = False
        self.respawning = False
        #: Idle keep-alive ``(reader, writer)`` pairs to this replica.
        self.pool: List[Tuple[asyncio.StreamReader, asyncio.StreamWriter]] = []

    @property
    def managed(self) -> bool:
        return self.service is not None or self.process is not None

    def describe(self) -> Dict[str, Any]:
        mode = ("thread" if self.service is not None
                else "subprocess" if self.process is not None else "url")
        return {
            "host": self.host, "port": self.port, "mode": mode,
            "healthy": self.healthy, "evictions": self.evictions,
            "last_error": self.last_error,
            "respawns": self.respawns,
            "rapid_deaths": self.rapid_deaths,
            "given_up": self.given_up,
        }


class ReplicaError(RuntimeError):
    """A connection-level failure talking to one replica (hedgeable)."""


def spawn_thread_replicas(
    count: int,
    cache_dir: Optional[str],
    scale: Optional[float] = None,
    jobs: int = 1,
    batch_window: float = 0.01,
    max_batch: int = 64,
    check_invariants: bool = False,
    obs_factory: Optional[Callable[[int], Observability]] = None,
    max_inflight: Optional[int] = None,
) -> List[Replica]:
    """Start ``count`` in-process services sharing one disk cache dir.

    Each replica carries a ``respawn`` factory that rebuilds the
    service in place (fresh thread, fresh port) — the hook the
    gateway's supervisor uses when ``supervise=True``.
    """
    from repro.service.server import ExperimentService

    def _start(index: int) -> Tuple[Any, str, int]:
        service = ExperimentService(
            port=0, jobs=jobs, scale=scale, cache_dir=cache_dir,
            batch_window=batch_window, max_batch=max_batch,
            check_invariants=check_invariants, max_inflight=max_inflight,
            obs=obs_factory(index) if obs_factory is not None else None)
        host, port = service.start_in_thread()
        return service, host, port

    replicas: List[Replica] = []
    try:
        for index in range(count):
            service, host, port = _start(index)
            replica = Replica(f"r{index}", host, port, service=service)

            def _respawn(replica: Replica = replica,
                         index: int = index) -> None:
                service, host, port = _start(index)
                replica.service = service
                replica.host, replica.port = host, port

            replica.respawn = _respawn
            replicas.append(replica)
    except BaseException:
        for replica in replicas:
            replica.service.shutdown()
        raise
    return replicas


def spawn_subprocess_replicas(
    count: int,
    cache_dir: Optional[str],
    scale: Optional[float] = None,
    jobs: int = 1,
    batch_window: float = 0.01,
    max_batch: int = 64,
    check_invariants: bool = False,
    max_inflight: Optional[int] = None,
) -> List[Replica]:
    """Start ``count`` ``repro-experiment serve`` children on free ports.

    Each child prints its listen banner on stdout; the port is parsed
    from it.  The children share ``cache_dir`` (the shared disk tier)
    and are SIGTERM-drained by the gateway at shutdown.  Each replica
    carries a ``respawn`` factory that starts a fresh child in place,
    used by the gateway supervisor when ``supervise=True``.
    """
    env = dict(os.environ)
    src_root = str(Path(__file__).resolve().parents[2])
    env["PYTHONPATH"] = src_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")

    def _start(index: int) -> Tuple["subprocess.Popen", int]:
        cmd = [
            sys.executable, "-u", "-c",
            "from repro.experiments.cli import main; "
            "raise SystemExit(main())",
            "serve", "--port", "0", "--jobs", str(jobs),
            "--batch-window", str(batch_window),
            "--max-batch", str(max_batch),
        ]
        if cache_dir:
            cmd += ["--cache-dir", cache_dir]
        if scale is not None:
            cmd += ["--scale", str(scale)]
        if check_invariants:
            cmd += ["--check-invariants"]
        if max_inflight is not None:
            cmd += ["--max-inflight", str(max_inflight)]
        process = subprocess.Popen(
            cmd, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env)
        banner = process.stdout.readline()
        if "listening on http://" not in banner:
            tail = banner + (process.stdout.read() or "")
            process.kill()
            process.wait(10)
            raise RuntimeError(
                f"replica r{index} failed to start: {tail.strip()!r}")
        return process, int(banner.strip().rsplit(":", 1)[1])

    replicas: List[Replica] = []
    try:
        for index in range(count):
            process, port = _start(index)
            replica = Replica(f"r{index}", "127.0.0.1", port, process=process)

            def _respawn(replica: Replica = replica,
                         index: int = index) -> None:
                process, port = _start(index)
                replica.process = process
                replica.port = port

            replica.respawn = _respawn
            replicas.append(replica)
    except BaseException:
        for replica in replicas:
            replica.process.terminate()
        raise
    return replicas


def replicas_from_urls(urls: Sequence[str]) -> List[Replica]:
    """Wrap externally managed services (``--replica-urls``) as replicas.

    The gateway health-checks, routes to, and hedges across these, but
    never starts or stops them.  Raises ``ValueError`` on a malformed
    ``HOST:PORT`` entry (IPv6 bracketed, ``http://`` prefix allowed).
    """
    replicas = []
    for index, url in enumerate(urls):
        host, port = parse_target(url)
        replicas.append(Replica(f"r{index}", host, port))
    return replicas


class _RoutePlan:
    """A parsed+fingerprinted request body, cached by the route memo."""

    __slots__ = ("fingerprints", "raw_points", "extras")

    def __init__(self, fingerprints: List[str], raw_points: List[Dict],
                 extras: Dict[str, Any]) -> None:
        self.fingerprints = fingerprints
        self.raw_points = raw_points
        self.extras = extras

    def sub_body(self, indices: Sequence[int]) -> bytes:
        """The forwardable body for a subset of this plan's points."""
        body = dict(self.extras)
        body["points"] = [self.raw_points[i] for i in indices]
        return json.dumps(body).encode("utf-8")


class ShardGateway:
    """The consistent-hash front door over a set of experiment replicas.

    Speaks the exact :mod:`repro.service.protocol` dialect the plain
    service does (``/v1/simulate``, ``/v1/jobs``, ``/healthz``,
    ``/metrics``, ``/v1/drain``), so :class:`ServiceClient` and the
    loadtest drive it unchanged.  ``scale`` must match the replicas'
    default scale — fingerprints are computed gateway-side for routing
    and replica-side for memoization, and they must agree.

    Lifecycle mirrors :class:`ExperimentService`: ``await start()``,
    :meth:`start_in_thread`/:meth:`shutdown`, or :meth:`serve_forever`
    (CLI; SIGTERM drains the gateway and every managed replica).
    """

    def __init__(
        self,
        replicas: Sequence[Replica],
        host: str = "127.0.0.1",
        port: int = 0,
        scale: Optional[float] = None,
        config: Optional[SoCConfig] = None,
        check_invariants: bool = False,
        vnodes: int = DEFAULT_VNODES,
        health_interval: float = 0.5,
        connect_timeout: float = 5.0,
        forward_timeout: float = 600.0,
        route_memo_size: int = 1024,
        obs: Optional[Observability] = None,
        supervise: bool = False,
        probe_failure_threshold: int = 3,
        respawn_backoff_base: float = 0.5,
        respawn_backoff_max: float = 30.0,
        flap_window: float = 5.0,
        flap_threshold: int = 3,
        health_jitter: float = 0.2,
    ) -> None:
        if not replicas:
            raise ValueError("gateway needs at least one replica")
        ids = [replica.id for replica in replicas]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate replica ids: {ids}")
        if probe_failure_threshold < 1:
            raise ValueError("probe_failure_threshold must be >= 1")
        self.replicas = list(replicas)
        self._by_id = {replica.id: replica for replica in self.replicas}
        self.host = host
        self.port = port
        self.vnodes = vnodes
        self.ring = HashRing(ids, vnodes=vnodes)
        self.health_interval = health_interval
        self.connect_timeout = connect_timeout
        self.forward_timeout = forward_timeout
        #: Respawn dead managed replicas (the CLI path turns this on;
        #: it stays off by default so embedders and fault-injection
        #: tests can kill a replica and have it *stay* dead).
        self.supervise = supervise
        self.probe_failure_threshold = probe_failure_threshold
        self.respawn_backoff_base = respawn_backoff_base
        self.respawn_backoff_max = respawn_backoff_max
        self.flap_window = flap_window
        self.flap_threshold = flap_threshold
        self.health_jitter = health_jitter
        self._health_rng = random.Random(
            f"gateway-health:{len(self.replicas)}:{vnodes}")
        for replica in self.replicas:
            replica.backoff_s = respawn_backoff_base
        self.obs = obs if obs is not None else Observability()
        # Parsing defaults — must mirror the replicas' so the gateway
        # fingerprints exactly what they memoize under.
        self._base_scale = (scale if scale is not None
                            else registry.default_scale())
        self._base_config = config if config is not None else SoCConfig()
        self._check_invariants = check_invariants

        self._route_memo: "OrderedDict[bytes, _RoutePlan]" = OrderedDict()
        self._route_memo_size = route_memo_size
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._health_task: Optional[asyncio.Task] = None
        self._drained_event: Optional[asyncio.Event] = None
        self._jobs: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._writers: set = set()
        self._busy_requests = 0
        self._draining = False
        self._started_at = time.time()
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle --------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Bind the listener and start the health loop; returns (host, port)."""
        self._loop = asyncio.get_running_loop()
        self._drained_event = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._health_task = self._loop.create_task(self._health_loop())
        self._started_at = time.time()
        return self.host, self.port

    def request_drain(self) -> None:
        """Begin graceful shutdown of the gateway and managed replicas."""
        if self._draining or self._loop is None:
            return
        self._draining = True
        self._loop.create_task(self._drain())

    async def _drain(self) -> None:
        if self._server is not None:
            self._server.close()
        while (self._busy_requests
               or any(record["status"] == "running"
                      for record in self._jobs.values())):
            await asyncio.sleep(0.01)
        if self._health_task is not None:
            self._health_task.cancel()
            try:
                await self._health_task
            except asyncio.CancelledError:
                pass
        # Stop the replicas this gateway owns (thread services join
        # their loops; subprocesses get SIGTERM and drain themselves).
        await asyncio.get_running_loop().run_in_executor(
            None, self._stop_managed_replicas)
        for replica in self.replicas:
            self._drop_pool(replica)
        for writer in list(self._writers):
            try:
                writer.close()
            except Exception:
                pass
        if self._server is not None:
            await self._server.wait_closed()
        self._drained_event.set()

    def _stop_managed_replicas(self) -> None:
        for replica in self.replicas:
            if replica.service is not None:
                try:
                    replica.service.shutdown()
                except Exception:
                    pass
            elif replica.process is not None:
                process = replica.process
                try:
                    if process.poll() is None:
                        process.send_signal(signal.SIGTERM)
                    process.wait(60)
                except subprocess.TimeoutExpired:
                    process.kill()
                    process.wait(10)
                except Exception:
                    pass

    async def serve_until_drained(self) -> None:
        """Block until a drain (SIGTERM, /v1/drain, or shutdown()) finishes."""
        await self._drained_event.wait()

    def start_in_thread(self, timeout: float = 30.0) -> Tuple[str, int]:
        """Run the gateway on a dedicated event-loop thread."""
        started = threading.Event()
        failure: List[BaseException] = []

        def _run() -> None:
            loop = asyncio.new_event_loop()
            try:
                asyncio.set_event_loop(loop)
                loop.run_until_complete(self.start())
            except BaseException as exc:
                failure.append(exc)
                started.set()
                loop.close()
                return
            started.set()
            try:
                loop.run_until_complete(self.serve_until_drained())
                loop.run_until_complete(loop.shutdown_default_executor())
            finally:
                loop.close()

        self._thread = threading.Thread(
            target=_run, name="repro-gateway", daemon=True)
        self._thread.start()
        if not started.wait(timeout):
            raise RuntimeError("gateway did not start in time")
        if failure:
            raise failure[0]
        return self.host, self.port

    def shutdown(self, timeout: float = 120.0) -> None:
        """Drain a :meth:`start_in_thread` gateway and join its thread."""
        if self._loop is not None and not self._loop.is_closed():
            try:
                self._loop.call_soon_threadsafe(self.request_drain)
            except RuntimeError:
                pass
        if self._thread is not None:
            self._thread.join(timeout)

    async def _amain(self) -> None:
        await self.start()
        print(f"repro-gateway listening on http://{self.host}:{self.port}",
              flush=True)
        for replica in self.replicas:
            mode = replica.describe()["mode"]
            print(f"repro-gateway replica {replica.id} -> "
                  f"{replica.host}:{replica.port} ({mode})", flush=True)
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self.request_drain)
            except NotImplementedError:  # pragma: no cover - non-POSIX
                pass
        await self.serve_until_drained()
        print("repro-gateway drained cleanly", flush=True)

    def serve_forever(self) -> int:
        """The CLI entry: serve until SIGTERM/SIGINT drains the tree."""
        asyncio.run(self._amain())
        return 0

    # -- ring + replica health --------------------------------------------
    def _rebuild_ring(self) -> None:
        self.ring = HashRing(
            [replica.id for replica in self.replicas if replica.healthy],
            vnodes=self.vnodes)

    def _evict(self, replica: Replica, reason: str) -> None:
        """Take a replica out of the ring (idempotent)."""
        replica.last_error = reason
        if not replica.healthy:
            return
        replica.healthy = False
        replica.evictions += 1
        self._drop_pool(replica)
        self._rebuild_ring()
        metrics = self.obs.metrics
        metrics.add("gateway.evictions")
        metrics.add(f"gateway.evictions[replica={replica.id}]")
        if self.obs.tracing:
            self.obs.tracer.emit("event", time.time(), name="gateway.evict",
                                 replica=replica.id, reason=reason)

    def _readmit(self, replica: Replica) -> None:
        if replica.healthy:
            return
        replica.healthy = True
        replica.last_error = None
        self._rebuild_ring()
        self.obs.metrics.add("gateway.readmissions")
        if self.obs.tracing:
            self.obs.tracer.emit("event", time.time(),
                                 name="gateway.readmit", replica=replica.id)

    async def _health_loop(self) -> None:
        while True:
            # ±health_jitter: N gateways (or one gateway's many probes)
            # must not fall into lockstep and thundering-herd the
            # replicas at a fixed cadence.
            jitter = 1.0 + self.health_jitter * (
                2.0 * self._health_rng.random() - 1.0)
            await asyncio.sleep(self.health_interval * max(0.0, jitter))
            if self._draining:
                return
            await self._probe_replicas()

    async def _probe_replicas(self) -> None:
        for replica in list(self.replicas):
            if self._draining:
                return
            if (replica.process is not None
                    and replica.process.poll() is not None):
                # A reaped child is unambiguous death: evict now, no
                # probe-failure grace.
                self._evict(replica, f"process exited with code "
                                     f"{replica.process.returncode}")
                if self.supervise:
                    await self._supervise(replica)
                continue
            try:
                status, _headers, raw = await self._replica_request(
                    replica, "GET", "/healthz", b"", {})
                payload = json.loads(raw.decode("utf-8"))
                healthy = status == 200 and payload.get("status") == "ok"
                reason = (f"healthz reported status={status} "
                          f"state={payload.get('status')!r}")
            except (ReplicaError, ValueError, UnicodeDecodeError) as exc:
                healthy = False
                reason = f"healthz probe failed: {exc}"
            if healthy:
                replica.probe_failures = 0
                if (time.monotonic() - replica.spawned_at >= self.flap_window
                        and (replica.rapid_deaths
                             or replica.backoff_s
                             != self.respawn_backoff_base)):
                    # Stable for a full flap window: forgive its past.
                    replica.rapid_deaths = 0
                    replica.backoff_s = self.respawn_backoff_base
                self._readmit(replica)
                continue
            replica.probe_failures += 1
            self.obs.metrics.add("gateway.probe_failures")
            if (replica.healthy and replica.probe_failures
                    < self.probe_failure_threshold):
                # One flaky probe is not a verdict: a *healthy* replica
                # is only evicted after K consecutive failures.  Dead
                # subprocesses and forward failures still evict at once.
                continue
            self._evict(replica, reason)
            if self.supervise:
                await self._supervise(replica)

    async def _supervise(self, replica: Replica) -> None:
        """Respawn a dead managed replica: capped backoff + flap detector.

        First tick after a death classifies it (a death within
        ``flap_window`` of the last spawn is "rapid"; ``flap_threshold``
        rapid deaths in a row trips the give-up alarm) and arms the
        backoff timer; later ticks respawn once the timer expires.
        Re-admission then happens through the normal probe path once
        the fresh worker answers ``/healthz``.
        """
        if (replica.respawn is None or replica.given_up
                or replica.respawning or self._draining):
            return
        now = time.monotonic()
        if replica.death_at is None:
            replica.death_at = now
            if now - replica.spawned_at < self.flap_window:
                replica.rapid_deaths += 1
                if replica.rapid_deaths >= self.flap_threshold:
                    replica.given_up = True
                    replica.last_error = (
                        f"flapping: {replica.rapid_deaths} rapid deaths; "
                        f"supervisor gave up")
                    metrics = self.obs.metrics
                    metrics.add("gateway.alarms.flapping")
                    metrics.add(
                        f"gateway.alarms.flapping[replica={replica.id}]")
                    if self.obs.tracing:
                        self.obs.tracer.emit(
                            "event", time.time(), name="gateway.flap_alarm",
                            replica=replica.id,
                            rapid_deaths=replica.rapid_deaths)
                    return
            else:
                replica.rapid_deaths = 0
            replica.backoff_until = now + replica.backoff_s
            replica.backoff_s = min(replica.backoff_s * 2,
                                    self.respawn_backoff_max)
            return
        if now < replica.backoff_until:
            return
        replica.respawning = True
        try:
            await asyncio.get_running_loop().run_in_executor(
                None, replica.respawn)
        except Exception as exc:
            replica.last_error = f"respawn failed: {exc}"
            replica.backoff_until = time.monotonic() + replica.backoff_s
            replica.backoff_s = min(replica.backoff_s * 2,
                                    self.respawn_backoff_max)
            self.obs.metrics.add("gateway.respawn_failures")
            return
        finally:
            replica.respawning = False
        replica.respawns += 1
        replica.spawned_at = time.monotonic()
        replica.death_at = None
        replica.probe_failures = 0
        metrics = self.obs.metrics
        metrics.add("gateway.respawns")
        metrics.add(f"gateway.respawns[replica={replica.id}]")
        if self.obs.tracing:
            self.obs.tracer.emit(
                "event", time.time(), name="gateway.respawn",
                replica=replica.id, respawns=replica.respawns)

    # -- replica HTTP (pooled keep-alive connections) ---------------------
    def _drop_pool(self, replica: Replica) -> None:
        while replica.pool:
            _reader, writer = replica.pool.pop()
            try:
                writer.close()
            except Exception:
                pass

    async def _replica_request(
        self, replica: Replica, method: str, path: str, body: bytes,
        headers: Dict[str, str], timeout: Optional[float] = None,
    ) -> Tuple[int, Dict[str, str], bytes]:
        """One exchange with a replica; raises :class:`ReplicaError`.

        Idle pooled connections are tried first; a stale one (the
        replica closed it between requests) falls through to the next,
        and finally to a fresh connection whose failure is the real
        verdict.  ``timeout`` overrides ``forward_timeout`` (deadline
        clamping).
        """
        request = http11.format_request(
            method, path, replica.host, replica.port, body, headers)
        while replica.pool:
            reader, writer = replica.pool.pop()
            try:
                return await self._exchange(replica, reader, writer, request,
                                            timeout)
            except (OSError, ValueError, EOFError, asyncio.TimeoutError):
                try:
                    writer.close()
                except Exception:
                    pass
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(replica.host, replica.port),
                self.connect_timeout)
        except (OSError, asyncio.TimeoutError) as exc:
            raise ReplicaError(
                f"{replica.id}: connect to {replica.host}:{replica.port} "
                f"failed: {type(exc).__name__}: {exc}")
        try:
            return await self._exchange(replica, reader, writer, request,
                                        timeout)
        except (OSError, ValueError, EOFError, asyncio.TimeoutError) as exc:
            try:
                writer.close()
            except Exception:
                pass
            raise ReplicaError(
                f"{replica.id}: request failed: {type(exc).__name__}: {exc}")

    async def _exchange(
        self, replica: Replica, reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter, request: bytes,
        timeout: Optional[float] = None,
    ) -> Tuple[int, Dict[str, str], bytes]:
        writer.write(request)
        await writer.drain()
        status, headers, raw = await asyncio.wait_for(
            http11.read_response(reader),
            self.forward_timeout if timeout is None else timeout)
        if not http11.verify_body_digest(headers, raw):
            # Bytes got mangled between the replica and us: treat the
            # connection as poisoned, never forward the payload.
            self.obs.metrics.add("gateway.digest_failures")
            raise ValueError(
                "replica response failed the X-Content-Digest check "
                "(corrupted in transit)")
        if (headers.get("connection", "").lower() == "close"
                or len(replica.pool) >= _MAX_POOL_PER_REPLICA):
            try:
                writer.close()
            except Exception:
                pass
        else:
            replica.pool.append((reader, writer))
        return status, headers, raw

    # -- routing ----------------------------------------------------------
    def _plan(self, body: bytes) -> _RoutePlan:
        """Parse+fingerprint a request body, memoized on the raw bytes."""
        plan = self._route_memo.get(body)
        if plan is not None:
            self._route_memo.move_to_end(body)
            self.obs.metrics.add("gateway.route_memo.hits")
            return plan
        decoded = self._decode(body)
        if "sweep" in decoded:
            # A sweep is expanded gateway-side into plain simulate
            # points, so each lands on its fingerprint's home replica;
            # non-preset designs travel inline in their wire form.
            spec, specs = protocol.parse_sweep_request(
                decoded, self._base_scale, self._base_config,
                check_invariants=self._check_invariants)
            raw_points: List[Dict] = [
                {"workload": workload, "design": design_to_wire(design),
                 "track_lifetimes": track}
                for workload, design, track in spec.resolved_points()]
            extras: Dict[str, Any] = {}
            if spec.scale is not None:
                extras["scale"] = spec.scale
            if spec.config:
                extras["config"] = dict(spec.config)
            if spec.output.include_counters:
                extras["include_counters"] = True
        else:
            specs = protocol.parse_simulate_request(
                decoded, self._base_scale, self._base_config,
                check_invariants=self._check_invariants)
            if "points" in decoded:
                raw_points = list(decoded["points"])
            else:
                raw_points = [decoded]
            extras = {key: decoded[key]
                      for key in ("scale", "config", "include_counters")
                      if key in decoded}
        plan = _RoutePlan([spec.fingerprint for spec in specs],
                          raw_points, extras)
        self.obs.metrics.add("gateway.route_memo.misses")
        if len(body) <= _MAX_MEMO_BODY:
            self._route_memo[body] = plan
            while len(self._route_memo) > self._route_memo_size:
                self._route_memo.popitem(last=False)
        return plan

    @staticmethod
    def _decode(body: bytes) -> Any:
        try:
            decoded = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(
                400, protocol.ERROR_BAD_REQUEST,
                f"request body is not valid JSON: {exc}")
        if not isinstance(decoded, dict):
            raise ProtocolError(
                400, protocol.ERROR_BAD_REQUEST,
                f"request body must be a JSON object, "
                f"got {type(decoded).__name__}")
        return decoded

    def _owner(self, fingerprint: str) -> Replica:
        try:
            return self._by_id[self.ring.lookup(fingerprint)]
        except LookupError:
            raise ProtocolError(
                503, protocol.ERROR_NO_REPLICAS,
                "no healthy replicas left in the ring")

    def _forward_headers(self, ctx: TraceContext,
                         accept: str = "application/json") -> Dict[str, str]:
        child = ctx.child()
        headers = {"Content-Type": "application/json", "Accept": accept}
        headers.update(child.headers())
        return headers

    async def _forward(self, replica: Replica, body: bytes,
                       ctx: TraceContext,
                       deadline: Optional[float] = None) -> Tuple[int, bytes]:
        """POST one simulate sub-request to a replica, with telemetry.

        With a deadline, the remaining budget is decremented into the
        forwarded ``X-Deadline-Ms`` (each hop sees only what is left)
        and the forward timeout is clamped to it — plus a grace second
        so the replica gets to answer 504 itself with a useful message.
        """
        headers = self._forward_headers(ctx)
        timeout = None
        if deadline is not None:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ProtocolError(
                    504, protocol.ERROR_DEADLINE,
                    "deadline exhausted before the gateway could forward")
            headers["X-Deadline-Ms"] = format(remaining * 1000.0, ".3f")
            timeout = min(self.forward_timeout, remaining + 1.0)
        started = time.perf_counter()
        status, _headers, raw = await self._replica_request(
            replica, "POST", "/v1/simulate", body, headers, timeout=timeout)
        duration = time.perf_counter() - started
        metrics = self.obs.metrics
        metrics.add(f"gateway.forwarded[replica={replica.id}]")
        metrics.histogram(
            f"gateway.forward_seconds[replica={replica.id}]").record(duration)
        if self.obs.tracing:
            self.obs.tracer.emit(
                "span", time.time(), name="gateway.forward", dur=duration,
                replica=replica.id, status=status, **ctx.span_fields())
        return status, raw

    async def _forward_group(
        self, replica: Replica, indices: List[int], plan: _RoutePlan,
        ctx: TraceContext, attempts: int,
        deadline: Optional[float] = None,
    ) -> Dict[int, Dict[str, Any]]:
        """Resolve one owner group, hedging to the rebuilt ring on failure.

        Connection-level failures and 503-draining replies evict the
        replica and re-shard the group's points over the surviving
        ring (they may now split across several owners).  A 429 shed
        and a 504 deadline pass through *without* hedging — the
        replica is healthy, it is the load (or the clock) that is the
        problem, and piling the same points onto its peers would make
        both worse.  Anything else — including per-point simulation
        failures — is the replica's answer and passes through.
        """
        body = plan.sub_body(indices)
        try:
            status, raw = await self._forward(replica, body, ctx, deadline)
        except ReplicaError as exc:
            self._evict(replica, str(exc))
            return await self._hedge(indices, plan, ctx, attempts, str(exc),
                                     deadline)
        if status == 503:
            self._evict(replica, "replica is draining (503)")
            return await self._hedge(indices, plan, ctx, attempts,
                                     f"{replica.id} draining", deadline)
        if status == 429:
            metrics = self.obs.metrics
            metrics.add("gateway.sheds")
            metrics.add(f"gateway.sheds[replica={replica.id}]")
            retry_after: Optional[float] = None
            try:
                hint = json.loads(raw.decode("utf-8")).get("retry_after")
                if isinstance(hint, (int, float)):
                    retry_after = float(hint)
            except (UnicodeDecodeError, ValueError):
                pass
            raise ProtocolError(
                429, protocol.ERROR_OVERLOADED,
                f"replica {replica.id} shed the request (overloaded)",
                retry_after=retry_after)
        if status == 504:
            self.obs.metrics.add("gateway.deadline_exceeded")
            raise ProtocolError(
                504, protocol.ERROR_DEADLINE,
                f"replica {replica.id} gave up: deadline exceeded")
        try:
            payload = json.loads(raw.decode("utf-8"))
            points = payload["points"]
            if not isinstance(points, list) or len(points) != len(indices):
                raise ValueError(f"expected {len(indices)} points, "
                                 f"got {len(points)}")
        except (UnicodeDecodeError, ValueError, KeyError, TypeError) as exc:
            raise ProtocolError(
                502, protocol.ERROR_INTERNAL,
                f"replica {replica.id} returned an undecodable reply: {exc}")
        return dict(zip(indices, points))

    async def _hedge(self, indices: List[int], plan: _RoutePlan,
                     ctx: TraceContext, attempts: int, reason: str,
                     deadline: Optional[float] = None,
                     ) -> Dict[int, Dict[str, Any]]:
        if attempts >= len(self.replicas):
            raise ProtocolError(
                503, protocol.ERROR_NO_REPLICAS,
                f"every replica failed this request (last: {reason})")
        self.obs.metrics.add("gateway.hedged_points", len(indices))
        return await self._shard_and_forward(indices, plan, ctx, attempts + 1,
                                             deadline)

    async def _shard_and_forward(
        self, indices: Sequence[int], plan: _RoutePlan, ctx: TraceContext,
        attempts: int = 0, deadline: Optional[float] = None,
    ) -> Dict[int, Dict[str, Any]]:
        """Group ``indices`` by ring owner and forward the groups."""
        groups: "OrderedDict[str, List[int]]" = OrderedDict()
        for index in indices:
            owner = self._owner(plan.fingerprints[index])
            groups.setdefault(owner.id, []).append(index)
        results = await asyncio.gather(*(
            self._forward_group(self._by_id[owner_id], group, plan, ctx,
                                attempts, deadline)
            for owner_id, group in groups.items()))
        merged: Dict[int, Dict[str, Any]] = {}
        for result in results:
            merged.update(result)
        return merged

    # -- endpoints --------------------------------------------------------
    async def _simulate(self, body: bytes, ctx: TraceContext,
                        deadline: Optional[float] = None) -> Tuple[int, Any]:
        plan = self._plan(body)
        started = time.perf_counter()
        indices = list(range(len(plan.fingerprints)))
        owners = {self._owner(fp).id for fp in plan.fingerprints}
        metrics = self.obs.metrics
        if len(owners) == 1:
            # Single-owner request (the common case for a sharded hot
            # stream): forward and pass the reply through verbatim.
            metrics.add("gateway.route.single")
            replica = self._by_id[next(iter(owners))]
            result = await self._forward_group(replica, indices, plan, ctx,
                                               0, deadline)
        else:
            metrics.add("gateway.route.split")
            result = await self._shard_and_forward(indices, plan, ctx,
                                                   deadline=deadline)
        points = [result[index] for index in indices]
        failures = [
            {"workload": point.get("workload"), "design": point.get("design"),
             "fingerprint": point.get("fingerprint"),
             "reason": point["error"]}
            for point in points if "error" in point]
        payload: Dict[str, Any] = {
            "trace_id": ctx.trace_id,
            "points": points,
            "wall_seconds": time.perf_counter() - started,
            "simulations_run_total": await self._simulations_total(),
        }
        if failures:
            payload["error"] = protocol.ERROR_SWEEP_FAILED
            payload["message"] = (
                f"{len(failures)} of {len(points)} point(s) failed")
            payload["failures"] = failures
            return 500, payload
        return 200, payload

    async def _simulations_total(self) -> int:
        """Sum of the healthy replicas' lifetime simulation counters.

        Cached per call site only by virtue of ``/healthz`` being
        cheap; a replica that cannot be probed contributes 0 rather
        than failing the response.
        """
        total = 0
        for replica in self.replicas:
            if not replica.healthy:
                continue
            try:
                _status, _headers, raw = await self._replica_request(
                    replica, "GET", "/healthz", b"", {})
                total += int(json.loads(raw).get("simulations_run", 0))
            except (ReplicaError, ValueError, TypeError):
                pass
        return total

    def _submit_job(self, body: bytes,
                    ctx: TraceContext) -> Tuple[int, Dict[str, Any]]:
        plan = self._plan(body)  # validate before accepting
        job_id = uuid.uuid4().hex
        record: Dict[str, Any] = {
            "job_id": job_id,
            "status": "running",
            "trace_id": ctx.trace_id,
            "submitted_unix": time.time(),
            "n_points": len(plan.fingerprints),
            "result": None,
        }
        self._jobs[job_id] = record
        while len(self._jobs) > _MAX_JOBS:
            self._evict_one_job()
        self._loop.create_task(self._run_job(record, body, ctx))
        self.obs.metrics.add("gateway.jobs.submitted")
        return 202, {"job_id": job_id, "status": "running",
                     "n_points": len(plan.fingerprints),
                     "trace_id": ctx.trace_id}

    def _evict_one_job(self) -> None:
        for job_id, record in self._jobs.items():
            if record["status"] != "running":
                del self._jobs[job_id]
                return
        self._jobs.popitem(last=False)

    async def _run_job(self, record: Dict[str, Any], body: bytes,
                       ctx: TraceContext) -> None:
        try:
            status, payload = await self._simulate(body, ctx)
        except ProtocolError as exc:
            status, payload = exc.status, exc.body()
        except Exception as exc:  # the job must always settle
            status, payload = 500, {"error": protocol.ERROR_INTERNAL,
                                    "message": f"{type(exc).__name__}: {exc}"}
        record["result"] = payload
        record["status"] = "done" if status == 200 else "failed"
        record["completed_unix"] = time.time()

    def _job_status(self, job_id: str) -> Tuple[int, Dict[str, Any]]:
        record = self._jobs.get(job_id)
        if record is None:
            raise ProtocolError(404, protocol.ERROR_NOT_FOUND,
                                f"unknown job {job_id!r}")
        payload = {key: record[key] for key in
                   ("job_id", "status", "n_points", "submitted_unix")}
        if record["status"] != "running":
            payload["result"] = record["result"]
            payload["completed_unix"] = record["completed_unix"]
        return 200, payload

    def _health_payload(self) -> Dict[str, Any]:
        healthy = sum(1 for replica in self.replicas if replica.healthy)
        return {
            "status": "draining" if self._draining else "ok",
            "uptime_seconds": time.time() - self._started_at,
            "busy_requests": self._busy_requests,
            "jobs_running": sum(1 for r in self._jobs.values()
                                if r["status"] == "running"),
            # ServiceClient.healthz() compatibility — the gateway holds
            # no queue or simulator of its own.
            "queue_depth": 0,
            "inflight_points": 0,
            "simulations_run": 0,
            "pool": {"replicas_healthy": healthy,
                     "replicas_total": len(self.replicas)},
            "supervise": self.supervise,
            "replicas": {replica.id: replica.describe()
                         for replica in self.replicas},
            "ring": {"members": list(self.ring.members),
                     "vnodes": self.vnodes},
            "scale": self._base_scale,
        }

    async def _metrics_response(self, headers: Dict[str, str]
                                ) -> Tuple[int, Any]:
        metrics = self.obs.metrics
        metrics.set_gauge("gateway.replicas_total", len(self.replicas))
        metrics.set_gauge(
            "gateway.replicas_healthy",
            sum(1 for replica in self.replicas if replica.healthy))
        metrics.set_gauge("gateway.uptime_seconds",
                          time.time() - self._started_at)
        if "application/json" in headers.get("accept", ""):
            replicas: Dict[str, Any] = {}
            for replica in self.replicas:
                if not replica.healthy:
                    replicas[replica.id] = None
                    continue
                try:
                    status, _h, raw = await self._replica_request(
                        replica, "GET", "/metrics", b"",
                        {"Accept": "application/json"})
                    replicas[replica.id] = (json.loads(raw)
                                            if status == 200 else None)
                except (ReplicaError, ValueError):
                    replicas[replica.id] = None
            return 200, {"gateway": metrics.snapshot(), "replicas": replicas}
        # Prometheus text: the gateway's own families plus every healthy
        # replica's scrape re-labelled with replica="...".
        parts: List[Tuple[str, Dict[str, str]]] = [
            (render_prometheus(metrics), {})]
        for replica in self.replicas:
            if not replica.healthy:
                continue
            try:
                status, _h, raw = await self._replica_request(
                    replica, "GET", "/metrics", b"", {"Accept": "text/plain"})
                if status == 200:
                    parts.append((raw.decode("utf-8"),
                                  {"replica": replica.id}))
            except (ReplicaError, UnicodeDecodeError):
                pass  # an unscrapable replica is simply absent
        text = merge_expositions(parts)
        return 200, Raw(text.encode("utf-8"), _PROM_CONTENT_TYPE)

    # -- HTTP layer -------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self._writers.add(writer)
        try:
            while True:
                request = await http11.read_request(reader)
                if request is None:
                    break
                method, path, headers, body = request
                self._busy_requests += 1
                try:
                    status, payload, trace_id, extra = await self._route(
                        method, path, headers, body)
                    keep_alive = (headers.get("connection", "").lower()
                                  != "close")
                    await http11.write_response(
                        writer, status, payload, keep_alive, trace_id,
                        extra_headers=extra)
                finally:
                    self._busy_requests -= 1
                if not keep_alive:
                    break
        except (asyncio.IncompleteReadError, ConnectionResetError,
                BrokenPipeError, asyncio.LimitOverrunError):
            pass
        finally:
            self._writers.discard(writer)
            try:
                writer.close()
            except Exception:
                pass

    async def _route(self, method: str, path: str, headers: Dict[str, str],
                     body: bytes) -> Tuple[int, Any, str, Dict[str, str]]:
        ctx = TraceContext.from_headers(headers)
        metrics = self.obs.metrics
        metrics.add("gateway.requests")
        started = time.perf_counter()
        extra: Dict[str, str] = {}
        try:
            status, payload = await self._dispatch(
                method, path, headers, body, ctx)
        except ProtocolError as exc:
            status, payload, extra = exc.status, exc.body(), exc.headers()
        except (KeyboardInterrupt, SystemExit):
            raise
        except BaseException as exc:
            metrics.add("gateway.errors.internal")
            status, payload = 500, {
                "error": protocol.ERROR_INTERNAL,
                "message": f"{type(exc).__name__}: {exc}",
            }
        if isinstance(payload, dict):
            payload.setdefault("trace_id", ctx.trace_id)
        metrics.add(f"gateway.http.{status}")
        duration = time.perf_counter() - started
        metrics.histogram("gateway.request_seconds").record(duration)
        if self.obs.tracing:
            self.obs.tracer.emit(
                "span", time.time(), name="gateway.request", dur=duration,
                method=method, path=path, status=status,
                **ctx.span_fields())
        return status, payload, ctx.trace_id, extra

    async def _dispatch(self, method: str, path: str,
                        headers: Dict[str, str], body: bytes,
                        ctx: TraceContext) -> Tuple[int, Any]:
        if path == "/healthz":
            self._require(method, "GET")
            return 200, self._health_payload()
        if path == "/metrics":
            self._require(method, "GET")
            return await self._metrics_response(headers)
        if path == "/v1/simulate":
            self._require(method, "POST")
            self._reject_if_draining()
            return await self._simulate(
                body, ctx, deadline=protocol.parse_deadline_header(headers))
        if path == "/v1/jobs":
            self._require(method, "POST")
            self._reject_if_draining()
            return self._submit_job(body, ctx)
        if path == "/v1/sweep":
            self._require(method, "POST")
            self._reject_if_draining()
            decoded = self._decode(body)
            if "sweep" not in decoded:
                raise ProtocolError(
                    400, protocol.ERROR_BAD_REQUEST,
                    "request needs a 'sweep' object (a SweepSpec)")
            return self._submit_job(body, ctx)
        if path.startswith("/v1/jobs/"):
            self._require(method, "GET")
            return self._job_status(path[len("/v1/jobs/"):])
        if path == "/v1/drain":
            self._require(method, "POST")
            self.request_drain()
            return 202, {"status": "draining"}
        raise ProtocolError(404, protocol.ERROR_NOT_FOUND,
                            f"no route for {path!r}")

    @staticmethod
    def _require(method: str, expected: str) -> None:
        if method != expected:
            raise ProtocolError(
                405, protocol.ERROR_BAD_REQUEST,
                f"method {method} not allowed here (use {expected})")

    def _reject_if_draining(self) -> None:
        if self._draining:
            self.obs.metrics.add("gateway.rejected.draining")
            raise ProtocolError(
                503, protocol.ERROR_DRAINING,
                "gateway is draining; no new work accepted")


def launch_local_gateway(
    replica_count: int,
    mode: str = "thread",
    cache_dir: Optional[str] = None,
    scale: Optional[float] = None,
    jobs: int = 1,
    batch_window: float = 0.01,
    max_batch: int = 64,
    host: str = "127.0.0.1",
    port: int = 0,
    health_interval: float = 0.5,
    check_invariants: bool = False,
    vnodes: int = DEFAULT_VNODES,
    obs: Optional[Observability] = None,
    max_inflight: Optional[int] = None,
    supervise: bool = False,
    **gateway_kwargs: Any,
) -> ShardGateway:
    """Spawn ``replica_count`` local replicas and a running gateway.

    ``mode`` is ``"thread"`` (in-process services — tests, notebooks)
    or ``"subprocess"`` (``repro-experiment serve`` children — real
    isolation).  The returned gateway is already serving on its own
    thread; :meth:`ShardGateway.shutdown` drains the whole tree.
    Extra keyword arguments (``flap_window``, ``respawn_backoff_base``,
    …) pass straight to :class:`ShardGateway`.
    """
    if mode == "thread":
        replicas = spawn_thread_replicas(
            replica_count, cache_dir, scale=scale, jobs=jobs,
            batch_window=batch_window, max_batch=max_batch,
            check_invariants=check_invariants, max_inflight=max_inflight)
    elif mode == "subprocess":
        replicas = spawn_subprocess_replicas(
            replica_count, cache_dir, scale=scale, jobs=jobs,
            batch_window=batch_window, max_batch=max_batch,
            check_invariants=check_invariants, max_inflight=max_inflight)
    else:
        raise ValueError(f"unknown replica mode {mode!r} "
                         f"(use 'thread' or 'subprocess')")
    gateway = ShardGateway(
        replicas, host=host, port=port, scale=scale,
        check_invariants=check_invariants, vnodes=vnodes,
        health_interval=health_interval, obs=obs, supervise=supervise,
        **gateway_kwargs)
    try:
        gateway.start_in_thread()
    except BaseException:
        gateway._stop_managed_replicas()
        raise
    return gateway


def run_gateway(
    host: str = "127.0.0.1",
    port: int = 8000,
    replicas: int = 2,
    replica_urls: Optional[Sequence[str]] = None,
    jobs: int = 1,
    scale: Optional[float] = None,
    cache_dir: Optional[str] = None,
    check_invariants: bool = False,
    batch_window: float = 0.01,
    max_batch: int = 64,
    health_interval: float = 0.5,
    max_inflight: Optional[int] = None,
    supervise: bool = True,
    trace_out: Optional[str] = None,
    metrics_out: Optional[str] = None,
) -> int:
    """Build and run a sharded service until SIGTERM drains it (CLI path).

    With ``replica_urls`` the gateway fronts externally managed
    services; otherwise it spawns ``replicas`` ``repro-experiment
    serve`` subprocesses sharing ``cache_dir`` (a throwaway temporary
    directory when unset) and SIGTERM-drains them on exit.  Managed
    replicas are supervised by default: a dead child is respawned with
    capped exponential backoff, and a flapping one trips the give-up
    alarm (``--no-supervise`` turns this off).
    """
    obs = None
    if trace_out or metrics_out:
        from repro.obs import JsonLinesTracer

        tracer = JsonLinesTracer(trace_out) if trace_out else None
        obs = Observability(tracer=tracer)
    own_cache = None
    if replica_urls:
        replica_list = replicas_from_urls(replica_urls)
    else:
        if replicas < 1:
            raise ValueError("--replicas must be >= 1")
        if cache_dir is None:
            own_cache = tempfile.TemporaryDirectory(prefix="repro-gateway-")
            cache_dir = own_cache.name
            print(f"repro-gateway: shared disk cache at {cache_dir} "
                  f"(temporary)", flush=True)
        replica_list = spawn_subprocess_replicas(
            replicas, cache_dir, scale=scale, jobs=jobs,
            batch_window=batch_window, max_batch=max_batch,
            check_invariants=check_invariants, max_inflight=max_inflight)
    gateway = ShardGateway(
        replica_list, host=host, port=port, scale=scale,
        check_invariants=check_invariants, health_interval=health_interval,
        obs=obs, supervise=supervise)
    try:
        return gateway.serve_forever()
    finally:
        if obs is not None:
            obs.close()
        if metrics_out:
            with open(metrics_out, "w", encoding="utf-8") as handle:
                json.dump(gateway.obs.metrics.snapshot(), handle,
                          indent=2, sort_keys=True)
                handle.write("\n")
        if own_cache is not None:
            own_cache.cleanup()
