"""Minimal hand-rolled HTTP/1.1 framing shared by the service and gateway.

:class:`~repro.service.server.ExperimentService` (PR 5) carries its
traffic over a deliberately small HTTP/1.1 subset — one request line,
lower-cased headers, ``Content-Length`` bodies, keep-alive by default —
implemented directly on :mod:`asyncio` streams so the service stays
stdlib-only.  The sharding gateway (PR 7) speaks the same dialect on
both sides: it *parses* requests from clients and *issues* requests to
replicas.  This module is that shared dialect, factored out so the two
servers cannot drift apart:

* :func:`read_request` / :func:`write_response` — the server side,
  exactly as ``ExperimentService`` has always framed it.
* :func:`format_request` / :func:`read_response` — the client side the
  gateway uses to forward requests over pooled keep-alive connections.
* :class:`Raw` — a pass-through (non-JSON) response body, e.g. the
  Prometheus text exposition or a replica response forwarded verbatim.

Limits are intentionally conservative: bodies are capped at
:data:`MAX_BODY_BYTES` and header blocks at :data:`MAX_HEADER_LINES`
lines; anything outside the subset reads as a malformed message
(``None`` from :func:`read_request`, :class:`ValueError` from
:func:`read_response`) and the connection is dropped.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
from typing import Any, Dict, Optional, Tuple

__all__ = [
    "DIGEST_HEADER",
    "MAX_BODY_BYTES",
    "MAX_HEADER_LINES",
    "REASONS",
    "Raw",
    "body_digest",
    "format_request",
    "read_request",
    "read_response",
    "verify_body_digest",
    "write_response",
]

#: Largest request or response body either server will frame.
MAX_BODY_BYTES = 8 * 1024 * 1024
#: Most header lines read before the message is declared malformed.
MAX_HEADER_LINES = 100

REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error", 502: "Bad Gateway",
    503: "Service Unavailable", 504: "Gateway Timeout",
}

#: Response header carrying a SHA-256 digest of the body so receivers
#: can distinguish a corrupted-in-transit body from a genuine reply.
DIGEST_HEADER = "x-content-digest"


def body_digest(body: bytes) -> str:
    """``sha256=<hex>`` digest value for a response body."""
    return "sha256=" + hashlib.sha256(body).hexdigest()


def verify_body_digest(headers: Dict[str, str], body: bytes) -> bool:
    """True unless ``headers`` carries a digest that does not match ``body``.

    Responses without the header verify trivially (the peer predates the
    digest or is not ours); a present-but-wrong digest is the signature
    of in-transit corruption and must be treated as a transport error,
    never surfaced as data.
    """
    claimed = headers.get(DIGEST_HEADER)
    return claimed is None or claimed == body_digest(body)


class Raw:
    """A non-JSON response body (e.g. Prometheus text exposition)."""

    __slots__ = ("body", "content_type")

    def __init__(self, body: bytes, content_type: str) -> None:
        self.body = body
        self.content_type = content_type


async def read_request(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
    """Read one request; ``None`` on EOF or a malformed message.

    Returns ``(method, path, headers, body)`` with header names
    lower-cased and any query string stripped from the path.
    """
    line = await reader.readline()
    if not line:
        return None
    try:
        method, target, _version = line.decode("ascii").split(None, 2)
    except (UnicodeDecodeError, ValueError):
        return None
    headers = await _read_headers(reader)
    if headers is None:
        return None
    body = b""
    length = headers.get("content-length")
    if length is not None:
        try:
            n = int(length)
        except ValueError:
            return None
        if not 0 <= n <= MAX_BODY_BYTES:
            return None
        body = await reader.readexactly(n)
    return method, target.split("?", 1)[0], headers, body


async def _read_headers(
    reader: asyncio.StreamReader,
) -> Optional[Dict[str, str]]:
    headers: Dict[str, str] = {}
    for _ in range(MAX_HEADER_LINES):
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            return headers
        name, _, value = raw.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    return None


async def write_response(writer: asyncio.StreamWriter, status: int,
                         payload: Any, keep_alive: bool,
                         trace_id: str = "-",
                         extra_headers: Optional[Dict[str, str]] = None,
                         ) -> None:
    """Serialize ``payload`` (JSON unless :class:`Raw`) and write it.

    Every response carries an ``X-Content-Digest`` of its body so the
    client and gateway can reject bodies corrupted in transit.
    ``extra_headers`` (e.g. ``Retry-After`` on a 429) are emitted
    verbatim after the standard block.
    """
    if isinstance(payload, Raw):
        body, content_type = payload.body, payload.content_type
    else:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        content_type = "application/json"
    extra = "".join(f"{name}: {value}\r\n"
                    for name, value in (extra_headers or {}).items())
    head = (
        f"HTTP/1.1 {status} {REASONS.get(status, 'Unknown')}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        f"X-Trace-Id: {trace_id}\r\n"
        f"X-Content-Digest: {body_digest(body)}\r\n"
        f"{extra}"
        f"\r\n"
    ).encode("ascii")
    writer.write(head + body)
    await writer.drain()


def format_request(method: str, path: str, host: str, port: int,
                   body: bytes = b"",
                   headers: Optional[Dict[str, str]] = None) -> bytes:
    """Frame one client-side request the way :func:`read_request` expects."""
    extra = "".join(f"{name}: {value}\r\n"
                    for name, value in (headers or {}).items())
    host_text = f"[{host}]" if ":" in host else host
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: {host_text}:{port}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"{extra}"
        f"\r\n"
    ).encode("ascii")
    return head + body


async def read_response(
    reader: asyncio.StreamReader,
) -> Tuple[int, Dict[str, str], bytes]:
    """Read one response; raises on EOF or a malformed message.

    Returns ``(status, headers, body)``.  Raises
    :class:`asyncio.IncompleteReadError` when the peer closed
    mid-message (the gateway's cue to retry on a fresh connection) and
    :class:`ValueError` when the frame itself is malformed.
    """
    line = await reader.readline()
    if not line:
        raise asyncio.IncompleteReadError(b"", None)
    try:
        _version, status_text, _reason = line.decode("ascii").split(None, 2)
        status = int(status_text)
    except (UnicodeDecodeError, ValueError):
        raise ValueError(f"malformed status line: {line!r}")
    headers = await _read_headers(reader)
    if headers is None:
        raise ValueError("header block too large")
    length = headers.get("content-length")
    body = b""
    if length is not None:
        try:
            n = int(length)
        except ValueError:
            raise ValueError(f"bad Content-Length: {length!r}")
        if not 0 <= n <= MAX_BODY_BYTES:
            raise ValueError(f"Content-Length out of range: {n}")
        body = await reader.readexactly(n)
    return status, headers, body
