"""Durable job journal for the service's ``/v1/jobs`` API.

Without a journal, jobs die with the process: a sweep submitted as a
job and killed mid-run is simply gone, and its finished results vanish
too.  :class:`JobJournal` persists the job lifecycle as an append-only
log of digest-verified RPCK records (the exact framing
:mod:`repro.robustness.checkpoint` uses for sweep checkpoints,
including fsync-per-append and torn-tail repair):

* ``("submitted", job_id, body_bytes, trace_id, submitted_at)`` — the
  raw request body, appended *before* the submit is acknowledged, so an
  acknowledged job is on disk by definition.
* ``("finished", job_id, status, payload, completed_at)`` — the final
  job payload (``done`` or ``failed``), appended when the job settles.

On restart the server replays the journal: finished jobs are served
from their recorded payloads, and submitted-but-unfinished jobs are
re-validated and re-run (their points are fingerprint-keyed, so any
work that reached the disk cache before the crash is not recomputed).
A journal whose tail was torn by the crash repairs itself on load.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional, Tuple

from repro.robustness.checkpoint import append_record, load_records

__all__ = ["JobJournal", "ReplayedJob"]


class ReplayedJob:
    """One job reconstructed from the journal on restart."""

    __slots__ = ("job_id", "body", "trace_id", "submitted_at",
                 "status", "payload", "completed_at")

    def __init__(self, job_id: str, body: bytes, trace_id: str,
                 submitted_at: float) -> None:
        self.job_id = job_id
        self.body = body
        self.trace_id = trace_id
        self.submitted_at = submitted_at
        self.status: Optional[str] = None
        self.payload: Optional[Dict[str, Any]] = None
        self.completed_at: Optional[float] = None

    @property
    def finished(self) -> bool:
        return self.status is not None


class JobJournal:
    """Append-only, crash-safe record of every job the server accepted."""

    def __init__(self, path) -> None:
        self.path = os.fspath(path)
        self.appended = 0
        self.replayed = 0
        self.repaired_bytes = 0

    def record_submitted(self, job_id: str, body: bytes,
                         trace_id: str, submitted_at: float) -> None:
        """Durably log a submit before it is acknowledged to the client."""
        append_record(self.path,
                      ("submitted", job_id, body, trace_id, submitted_at))
        self.appended += 1

    def record_finished(self, job_id: str, status: str,
                        payload: Dict[str, Any],
                        completed_at: float) -> None:
        """Durably log a job's terminal payload (``done`` or ``failed``)."""
        append_record(self.path,
                      ("finished", job_id, status, payload, completed_at))
        self.appended += 1

    def replay(self) -> List[ReplayedJob]:
        """Reconstruct the job table from the journal, in submit order.

        Records that fail digest verification (or a torn tail) end the
        scan and the file is truncated back to the last good boundary;
        malformed-but-intact records are skipped.  A ``finished`` record
        without its ``submitted`` record is dropped — it cannot be
        served without the identity the submit carried.
        """
        records, self.repaired_bytes = load_records(self.path)
        jobs: Dict[str, ReplayedJob] = {}
        order: List[str] = []
        for record in records:
            kind, fields = _parse(record)
            if kind == "submitted":
                job_id, body, trace_id, submitted_at = fields
                if job_id not in jobs:
                    jobs[job_id] = ReplayedJob(
                        job_id, body, trace_id, submitted_at)
                    order.append(job_id)
            elif kind == "finished":
                job_id, status, payload, completed_at = fields
                job = jobs.get(job_id)
                if job is not None:
                    job.status = status
                    job.payload = payload
                    job.completed_at = completed_at
        self.replayed = len(order)
        return [jobs[job_id] for job_id in order]


def _parse(record: Any) -> Tuple[Optional[str], Tuple]:
    """Classify one replayed record; ``(None, ())`` for malformed shapes."""
    if not isinstance(record, tuple) or len(record) != 5:
        return None, ()
    kind = record[0]
    if kind == "submitted":
        _, job_id, body, trace_id, submitted_at = record
        if isinstance(job_id, str) and isinstance(body, bytes) \
                and isinstance(trace_id, str) \
                and isinstance(submitted_at, (int, float)):
            return "submitted", (job_id, body, trace_id, float(submitted_at))
    elif kind == "finished":
        _, job_id, status, payload, completed_at = record
        if isinstance(job_id, str) and isinstance(status, str) \
                and isinstance(payload, dict) \
                and isinstance(completed_at, (int, float)):
            return "finished", (job_id, status, payload, float(completed_at))
    return None, ()
