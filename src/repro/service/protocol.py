"""Wire protocol for the simulation service.

The server and client speak plain JSON over HTTP.  This module owns
everything both sides must agree on without importing each other:

* **Design resolution** — experiment points name their MMU design as a
  string; :func:`resolve_design` accepts either the canonical Table 2
  name (``"VC With OPT"``) or its URL-friendly slug (``"vc-with-opt"``)
  and returns the frozen :class:`~repro.system.designs.MMUDesign`.
* **Request validation** — :func:`parse_simulate_request` turns a
  decoded JSON body into validated :class:`PointSpec` records, raising
  :class:`ProtocolError` (which carries the HTTP status to answer
  with) on anything malformed: unknown workloads or designs, bad
  scales, non-scalar config overrides.
* **Result payloads** — :func:`result_payload` serializes one slim
  :class:`~repro.system.run.SimulationResult` plus its cache-tier
  provenance (``memo`` — served from the in-process memo; ``disk`` —
  loaded from the persistent cache; ``computed`` — a fresh simulation
  ran for this request).

Every point's identity is the same complete fingerprint the disk cache
uses (:func:`~repro.experiments.disk_cache.point_fingerprint`), so
single-flight coalescing, the disk cache, and sweep checkpoints all
agree on what "the same point" means.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.experiments import sweepspec
from repro.experiments.disk_cache import point_fingerprint
from repro.system.config import SoCConfig
from repro.system.designs import (
    DESIGNS_BY_NAME,
    MMUDesign,
    PRESET_DESIGNS,
    design_from_dict,
    design_slug,
)
from repro.system.run import SimulationResult
from repro.workloads import registry

__all__ = [
    "DESIGNS_BY_NAME",
    "ERROR_BAD_REQUEST",
    "ERROR_DEADLINE",
    "ERROR_DRAINING",
    "ERROR_INTERNAL",
    "ERROR_NOT_FOUND",
    "ERROR_NO_REPLICAS",
    "ERROR_OVERLOADED",
    "ERROR_SWEEP_FAILED",
    "PointSpec",
    "ProtocolError",
    "design_slug",
    "parse_deadline_header",
    "parse_simulate_request",
    "parse_sweep_request",
    "resolve_design",
    "resolve_workload",
    "result_payload",
]

#: Machine-readable error codes carried in every error body.
ERROR_BAD_REQUEST = "bad_request"
ERROR_NOT_FOUND = "not_found"
ERROR_DRAINING = "draining"
ERROR_SWEEP_FAILED = "sweep_failed"
ERROR_INTERNAL = "internal_error"
#: The sharding gateway ran out of healthy replicas for a request.
ERROR_NO_REPLICAS = "no_replicas"
#: Admission control shed the request: accepting it would push the
#: server past its ``max_inflight`` point budget.  Answered with 429
#: and a ``Retry-After`` hint.
ERROR_OVERLOADED = "overloaded"
#: The caller's ``X-Deadline-Ms`` budget ran out before (or while)
#: computing the request; answered with 504 instead of dead work.
ERROR_DEADLINE = "deadline_exceeded"

#: Hard cap on points per request: a service request is an experiment
#: wave, not an unbounded sweep (run those through the CLI).
MAX_POINTS_PER_REQUEST = 256


class ProtocolError(ValueError):
    """A request the service must reject, with the HTTP status to use.

    ``retry_after`` (seconds, optional) is surfaced as a ``Retry-After``
    header so shed requests (429) carry a concrete back-off hint.
    """

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        retry_after: "float | None" = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message
        self.retry_after = retry_after

    def body(self) -> Dict[str, Any]:
        body: Dict[str, Any] = {"error": self.code, "message": self.message}
        if self.retry_after is not None:
            body["retry_after"] = self.retry_after
        return body

    def headers(self) -> Dict[str, str]:
        """Extra response headers this error carries (may be empty)."""
        if self.retry_after is None:
            return {}
        return {"Retry-After": format(max(0.0, self.retry_after), ".3f")}


def parse_deadline_header(headers: Mapping[str, str]) -> Optional[float]:
    """Parse ``X-Deadline-Ms`` into an absolute ``time.monotonic`` instant.

    Returns ``None`` when the header is absent.  A non-numeric value is
    a 400; a budget that is already spent (``<= 0``) is answered 504
    up front — accepting it would only produce dead work.
    """
    value = headers.get("x-deadline-ms")
    if value is None:
        return None
    try:
        ms = float(value)
    except (TypeError, ValueError):
        raise ProtocolError(
            400, ERROR_BAD_REQUEST,
            f"X-Deadline-Ms must be a number of milliseconds, got {value!r}")
    if ms <= 0:
        raise ProtocolError(
            504, ERROR_DEADLINE,
            "deadline already exhausted on arrival (X-Deadline-Ms <= 0)")
    return time.monotonic() + ms / 1000.0


def resolve_design(name: Any) -> MMUDesign:
    """Look up a design by canonical name or slug; 400 on anything else.

    An inline design object (the :func:`~repro.system.designs.design_to_dict`
    shape) is also accepted — the gateway forwards non-preset sweep
    designs to replicas in that form.
    """
    if isinstance(name, dict):
        try:
            return design_from_dict(name)
        except ValueError as exc:
            raise ProtocolError(
                400, ERROR_BAD_REQUEST, f"invalid inline design: {exc}")
    if not isinstance(name, str):
        raise ProtocolError(
            400, ERROR_BAD_REQUEST,
            f"point 'design' must be a string or design object, "
            f"got {type(name).__name__}")
    design = DESIGNS_BY_NAME.get(name) or DESIGNS_BY_NAME.get(design_slug(name))
    if design is None:
        known = sorted({design_slug(d.name) for d in PRESET_DESIGNS})
        raise ProtocolError(
            400, ERROR_BAD_REQUEST,
            f"unknown design {name!r}; known designs: {', '.join(known)}")
    return design


def resolve_workload(name: Any) -> str:
    """Validate a workload name against the registry; 400 on anything else."""
    if not isinstance(name, str):
        raise ProtocolError(
            400, ERROR_BAD_REQUEST,
            f"point 'workload' must be a string, got {type(name).__name__}")
    if name not in registry.WORKLOADS:
        raise ProtocolError(
            400, ERROR_BAD_REQUEST,
            f"unknown workload {name!r}; known workloads: "
            f"{', '.join(sorted(registry.WORKLOADS))}")
    return name


def config_with_overrides(base: SoCConfig, overrides: Any) -> SoCConfig:
    """Apply scalar top-level ``SoCConfig`` overrides from a request.

    Only plain int/float/bool fields may be overridden over the wire
    (``n_cus``, ``cu_window``, ``dram_latency``, …); nested structures
    (cache/IOMMU configs) would need their own schema and are rejected
    so a typo cannot silently build a half-default config.
    """
    if not isinstance(overrides, dict):
        raise ProtocolError(
            400, ERROR_BAD_REQUEST,
            f"'config' must be an object of field overrides, "
            f"got {type(overrides).__name__}")
    field_names = {f.name for f in dataclasses.fields(SoCConfig)}
    clean: Dict[str, Any] = {}
    for key, value in overrides.items():
        if key not in field_names:
            raise ProtocolError(
                400, ERROR_BAD_REQUEST, f"unknown SoCConfig field {key!r}")
        current = getattr(base, key)
        if isinstance(current, bool) or \
                not isinstance(current, (int, float, type(None))):
            raise ProtocolError(
                400, ERROR_BAD_REQUEST,
                f"SoCConfig field {key!r} is not a scalar; only scalar "
                f"fields can be overridden over the wire")
        if value is not None and (
                isinstance(value, bool) or not isinstance(value, (int, float))):
            raise ProtocolError(
                400, ERROR_BAD_REQUEST,
                f"override for {key!r} must be a number or null, "
                f"got {type(value).__name__}")
        clean[key] = value
    try:
        return dataclasses.replace(base, **clean)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(
            400, ERROR_BAD_REQUEST, f"invalid config override: {exc}")


@dataclass(frozen=True)
class PointSpec:
    """One fully resolved experiment point a request asks for.

    ``fingerprint`` is the complete identity (workload, scale, design,
    lifetimes, invariant auditing, config hash) shared with the disk
    cache and checkpoint layers; the server keys single-flight
    coalescing on it.
    """

    workload: str
    design: MMUDesign
    track_lifetimes: bool
    scale: float
    config: SoCConfig
    check_invariants: bool
    fingerprint: str

    @classmethod
    def build(
        cls,
        workload: str,
        design: MMUDesign,
        track_lifetimes: bool,
        scale: float,
        config: SoCConfig,
        check_invariants: bool,
    ) -> "PointSpec":
        return cls(
            workload=workload,
            design=design,
            track_lifetimes=track_lifetimes,
            scale=scale,
            config=config,
            check_invariants=check_invariants,
            fingerprint=point_fingerprint(
                workload, scale, design, track_lifetimes, config,
                check_invariants=check_invariants),
        )


def _parse_scale(raw: Any, default: float) -> float:
    if raw is None:
        return default
    if isinstance(raw, bool) or not isinstance(raw, (int, float)):
        raise ProtocolError(
            400, ERROR_BAD_REQUEST,
            f"'scale' must be a number, got {type(raw).__name__}")
    scale = float(raw)
    if not scale > 0:
        raise ProtocolError(
            400, ERROR_BAD_REQUEST, f"'scale' must be positive, got {scale}")
    return scale


def parse_simulate_request(
    body: Any,
    default_scale: float,
    base_config: SoCConfig,
    check_invariants: bool = False,
) -> List[PointSpec]:
    """Validate a decoded ``/v1/simulate`` (or job-submit) body.

    Accepts either ``{"points": [{...}, ...]}`` or a single-point
    shorthand ``{"workload": ..., "design": ...}``.  Request-level
    ``scale`` and ``config`` apply to every point.  The returned list
    preserves request order (duplicates included — the server coalesces
    them, the response answers each).
    """
    if not isinstance(body, dict):
        raise ProtocolError(
            400, ERROR_BAD_REQUEST,
            f"request body must be a JSON object, got {type(body).__name__}")
    scale = _parse_scale(body.get("scale"), default_scale)
    config = base_config
    if body.get("config") is not None:
        config = config_with_overrides(base_config, body["config"])

    if "points" in body:
        raw_points = body["points"]
        if not isinstance(raw_points, list) or not raw_points:
            raise ProtocolError(
                400, ERROR_BAD_REQUEST,
                "'points' must be a non-empty array of point objects")
    elif "workload" in body or "design" in body:
        raw_points = [body]
    else:
        raise ProtocolError(
            400, ERROR_BAD_REQUEST,
            "request needs either 'points' or a 'workload'/'design' pair")
    if len(raw_points) > MAX_POINTS_PER_REQUEST:
        raise ProtocolError(
            400, ERROR_BAD_REQUEST,
            f"too many points in one request "
            f"({len(raw_points)} > {MAX_POINTS_PER_REQUEST})")

    specs: List[PointSpec] = []
    for index, raw in enumerate(raw_points):
        if not isinstance(raw, dict):
            raise ProtocolError(
                400, ERROR_BAD_REQUEST,
                f"points[{index}] must be an object, "
                f"got {type(raw).__name__}")
        workload = resolve_workload(raw.get("workload"))
        design = resolve_design(raw.get("design"))
        track = raw.get("track_lifetimes", False)
        if not isinstance(track, bool):
            raise ProtocolError(
                400, ERROR_BAD_REQUEST,
                f"points[{index}].track_lifetimes must be a boolean")
        specs.append(PointSpec.build(
            workload, design, track, scale, config, check_invariants))
    return specs


def parse_sweep_request(
    body: Any,
    default_scale: float,
    base_config: SoCConfig,
    check_invariants: bool = False,
) -> Tuple[sweepspec.SweepSpec, List[PointSpec]]:
    """Validate a ``/v1/sweep`` body: ``{"sweep": {<SweepSpec JSON>}}``.

    The spec's own strict validation runs first (every
    :class:`~repro.experiments.sweepspec.SweepSpecError` maps to 400
    with the spec's message), then service policy applies on top:

    * fault-plan specs are rejected — fault injection mutates page
      tables, so those runs are never cacheable and run CLI-side only;
    * ``check_invariants: true`` requires a server started with
      auditing on, otherwise its fingerprints could never match the
      server's cache tiers;
    * the expanded point list is capped at ``MAX_POINTS_PER_REQUEST``
      like any other request.

    Returns the parsed spec plus its fully resolved points (spec order,
    one :class:`PointSpec` per point).
    """
    if not isinstance(body, dict):
        raise ProtocolError(
            400, ERROR_BAD_REQUEST,
            f"request body must be a JSON object, got {type(body).__name__}")
    unknown = sorted(set(body) - {"sweep"})
    if unknown:
        raise ProtocolError(
            400, ERROR_BAD_REQUEST,
            f"a sweep request carries only a 'sweep' object; unknown "
            f"key(s) {', '.join(map(repr, unknown))}")
    if "sweep" not in body:
        raise ProtocolError(
            400, ERROR_BAD_REQUEST, "request needs a 'sweep' object")
    try:
        spec = sweepspec.SweepSpec.from_dict(body["sweep"])
    except sweepspec.SweepSpecError as exc:
        raise ProtocolError(
            400, ERROR_BAD_REQUEST, f"invalid sweep spec: {exc}")
    if spec.faults is not None:
        raise ProtocolError(
            400, ERROR_BAD_REQUEST,
            "fault-plan sweeps are not served over the wire (fault "
            "injection is never cached); run the spec through "
            "'repro-experiment sweep' instead")
    if spec.check_invariants and not check_invariants:
        raise ProtocolError(
            400, ERROR_BAD_REQUEST,
            "spec requests check_invariants but this server runs without "
            "invariant auditing; start it with --check-invariants")
    scale = spec.scale if spec.scale is not None else default_scale
    try:
        config = spec.apply_config(base_config)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(
            400, ERROR_BAD_REQUEST, f"invalid config override: {exc}")
    points = spec.resolved_points()
    if len(points) > MAX_POINTS_PER_REQUEST:
        raise ProtocolError(
            400, ERROR_BAD_REQUEST,
            f"sweep expands to too many points "
            f"({len(points)} > {MAX_POINTS_PER_REQUEST})")
    return spec, [
        PointSpec.build(workload, design, track, scale, config,
                        check_invariants)
        for workload, design, track in points
    ]


def result_payload(
    spec: PointSpec,
    result: SimulationResult,
    tier: str,
    coalesced: bool,
    include_counters: bool = False,
) -> Dict[str, Any]:
    """JSON-ready payload for one resolved point.

    ``tier`` is the cache tier that satisfied the point for *this*
    request; ``coalesced`` marks points that joined another request's
    in-flight computation rather than starting their own.
    """
    payload: Dict[str, Any] = {
        "workload": spec.workload,
        "design": spec.design.name,
        "design_slug": design_slug(spec.design.name),
        "scale": spec.scale,
        "track_lifetimes": spec.track_lifetimes,
        "fingerprint": spec.fingerprint,
        "tier": tier,
        "coalesced": coalesced,
        "cycles": result.cycles,
        "instructions": result.instructions,
        "requests": result.requests,
        "wall_clock_seconds": result.wall_clock_seconds,
    }
    if include_counters:
        payload["counters"] = dict(result.counters)
    return payload
