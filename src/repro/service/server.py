"""The experiment service: an asyncio HTTP server over :class:`ResultCache`.

Architecture (one request's life)::

    HTTP request ──> parse/validate (protocol.py)
        │                 │ 400 on unknown workload/design/config
        ▼
    single-flight map (fingerprint → in-flight point)
        │ duplicate concurrent points join the existing future
        ▼
    batch queue ──> batcher task: collects points for ``batch_window``
        │           seconds (or ``max_batch``), then runs one *wave*;
        │           at most one wave is admitted per ``batch_window``,
        │           so ``max_batch / batch_window`` is the service's
        │           steady-state admission budget under backlog
        ▼
    wave (executor thread): each point resolved through the cache tiers
        memo  — already in the in-process memo           (0 work)
        disk  — loaded from the persistent DiskCache     (1 pickle read)
        computed — batched into ``ResultCache.run_many`` (simulated, with
                   the PR 4 timeout/retry/checkpoint machinery)
        │
        ▼
    futures resolve ──> JSON response with per-point tier provenance

This is the paper's bandwidth-filtering argument applied to the
simulation fleet itself: the two cache tiers filter repeated experiment
traffic so only genuine misses reach the expensive shared resource (the
process pool), exactly as virtual-cache hits filter translations before
the shared IOMMU TLB.

Endpoints:

* ``POST /v1/simulate`` — run/fetch points, blocking until the wave lands.
* ``POST /v1/jobs`` / ``GET /v1/jobs/<id>`` — submit → poll → fetch.
* ``GET /metrics`` — Prometheus text exposition of the
  :class:`~repro.obs.MetricsRegistry` (per-tier latency histograms,
  tier counters, queue gauges); ``Accept: application/json`` returns
  the raw JSON snapshot instead.
* ``GET /healthz`` — queue depth, in-flight points, pool liveness.
* ``POST /v1/drain`` — programmatic graceful drain (same path as SIGTERM).

Graceful shutdown: SIGTERM (or ``/v1/drain``) stops the listener,
rejects new work with 503, finishes every in-flight wave (delivering
the responses), leaves the crash-safe checkpoint flushed (appends are
fsync'd per point), and exits 0.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
import time
import uuid
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Tuple

from repro.experiments.common import ResultCache, SweepError
from repro.experiments.disk_cache import config_fingerprint
from repro.obs import Observability
from repro.obs.promexp import CONTENT_TYPE as _PROM_CONTENT_TYPE
from repro.obs.promexp import render_prometheus
from repro.obs.trace_context import TraceContext
from repro.service import http11, protocol
from repro.service.http11 import Raw as _Raw
from repro.service.jobs import JobJournal
from repro.service.protocol import PointSpec, ProtocolError
from repro.workloads import registry

__all__ = [
    "ExperimentService",
    "TIER_COMPUTED",
    "TIER_DISK",
    "TIER_MEMO",
    "run_server",
]

TIER_MEMO = "memo"
TIER_DISK = "disk"
TIER_COMPUTED = "computed"

#: Completed job records kept for polling before the oldest are evicted.
_MAX_JOBS = 1024


class _InflightPoint:
    """One unique point travelling from the queue through a wave.

    ``deadline`` is an absolute :func:`time.monotonic` instant after
    which nobody is waiting for this point any more (``None`` = someone
    will wait forever).  Coalescing keeps the *most patient* joiner's
    deadline, so an impatient duplicate can never cancel work another
    client still wants.
    """

    __slots__ = ("spec", "future", "enqueued_at", "ctx", "deadline")

    def __init__(self, spec: PointSpec, future: "asyncio.Future",
                 ctx: Optional[TraceContext] = None,
                 deadline: Optional[float] = None) -> None:
        self.spec = spec
        self.future = future
        self.enqueued_at = time.perf_counter()
        self.ctx = ctx
        self.deadline = deadline


class _PointFailed(RuntimeError):
    """A computed point that did not survive its wave."""

    def __init__(self, spec: PointSpec, reason: str) -> None:
        super().__init__(reason)
        self.spec = spec
        self.reason = reason


class _PointDeadline(_PointFailed):
    """A point abandoned because its caller's deadline budget ran out."""


class ExperimentService:
    """A long-lived batching simulation server over one :class:`ResultCache`.

    The service owns (or adopts) a cache configured exactly like the
    CLI's: ``jobs`` workers per wave, optional ``cache_dir`` disk
    persistence, optional crash-safe ``checkpoint``, per-point
    timeout/retries, and invariant auditing.  ``scale`` fixes the
    default workload scale (requests may override per request).

    Run it three ways: :meth:`serve_forever` (the CLI path, installs
    SIGTERM/SIGINT drain handlers), :meth:`start_in_thread` /
    :meth:`shutdown` (embedding in tests and examples), or ``await
    start()`` inside an existing event loop.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        jobs: int = 1,
        scale: Optional[float] = None,
        cache_dir: Optional[str] = None,
        checkpoint: Optional[str] = None,
        check_invariants: bool = False,
        point_timeout: Optional[float] = None,
        point_retries: int = 2,
        batch_window: float = 0.01,
        max_batch: int = 64,
        max_inflight: Optional[int] = None,
        jobs_journal: Optional[str] = None,
        cache: Optional[ResultCache] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if batch_window < 0:
            raise ValueError("batch_window must be >= 0")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_inflight is not None and max_inflight < 1:
            raise ValueError("max_inflight must be >= 1 (or None)")
        self.host = host
        self.port = port
        self.batch_window = batch_window
        self.max_batch = max_batch
        self.max_inflight = max_inflight
        self.obs = obs if obs is not None else Observability()
        if cache is None:
            cache = ResultCache(
                jobs=jobs, cache_dir=cache_dir, checkpoint=checkpoint,
                check_invariants=check_invariants,
                point_timeout=point_timeout, point_retries=point_retries)
            if scale is not None:
                cache.scale = scale
        elif scale is not None:
            cache.scale = scale
        if cache.obs is None:
            cache.obs = self.obs
        else:
            self.obs = cache.obs
        self.cache = cache
        # Snapshots the request parser validates against; waves restore
        # the cache to these after any per-request override.
        self._base_scale = cache.effective_scale()
        self._base_config = cache.config

        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._queue: "asyncio.Queue[Optional[_InflightPoint]]" = None
        self._batcher_task: Optional[asyncio.Task] = None
        self._drained_event: Optional[asyncio.Event] = None
        self._inflight: Dict[str, _InflightPoint] = {}
        self._jobs: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._journal = JobJournal(jobs_journal) if jobs_journal else None
        self._shed_total = 0
        self._writers: set = set()
        self._active_points = 0
        self._busy_requests = 0
        self._wave_active = False
        self._waves_run = 0
        self._last_wave_error: Optional[str] = None
        self._draining = False
        self._started_at = time.time()
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle --------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Bind the listener and start the batcher; returns (host, port)."""
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue()
        self._drained_event = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._batcher_task = self._loop.create_task(self._batch_loop())
        self._started_at = time.time()
        if self._journal is not None:
            self._replay_journal()
        return self.host, self.port

    def _replay_journal(self) -> None:
        """Rebuild the job table from the journal on restart.

        Finished jobs are served straight from their recorded payloads;
        submitted-but-unfinished jobs (the server died mid-run) are
        re-validated and re-run under their original job IDs and trace
        IDs.  Their points are fingerprint-keyed, so anything that
        reached the disk cache before the crash costs nothing to
        "recompute".
        """
        metrics = self.obs.metrics
        for job in self._journal.replay():
            record: Dict[str, Any] = {
                "job_id": job.job_id,
                "status": "running",
                "trace_id": job.trace_id,
                "submitted_unix": job.submitted_at,
                "n_points": None,
                "result": None,
            }
            if job.finished:
                record["status"] = job.status
                record["result"] = job.payload
                record["completed_unix"] = job.completed_at
                if isinstance(job.payload, dict):
                    record["n_points"] = len(job.payload.get("points") or [])
                metrics.add("service.jobs.recovered")
                self._jobs[job.job_id] = record
                continue
            ctx = TraceContext.from_headers({"x-trace-id": job.trace_id})
            try:
                body = json.loads(job.body.decode("utf-8"))
                specs = self._parse_points(body)
            except (UnicodeDecodeError, json.JSONDecodeError,
                    ProtocolError) as exc:
                record["status"] = "failed"
                record["result"] = {"error": protocol.ERROR_BAD_REQUEST,
                                    "message": f"journal replay: {exc}"}
                record["completed_unix"] = time.time()
                self._jobs[job.job_id] = record
                continue
            record["n_points"] = len(specs)
            self._jobs[job.job_id] = record
            self._loop.create_task(self._run_job(record, body, ctx))
            metrics.add("service.jobs.resumed")
        if self._journal.repaired_bytes:
            metrics.add("service.journal.repaired_bytes",
                        self._journal.repaired_bytes)

    def request_drain(self) -> None:
        """Begin graceful shutdown (idempotent; safe from a signal handler).

        New work is rejected with 503 immediately; in-flight waves
        finish and deliver their responses; the drain completes once
        the queue is empty and every response has been written.
        """
        if self._draining or self._loop is None:
            return
        self._draining = True
        self._loop.create_task(self._drain())

    async def _drain(self) -> None:
        if self._server is not None:
            self._server.close()  # stop accepting new connections
        while (self._active_points or self._busy_requests
               or not self._queue.empty()
               or any(r["status"] == "running"
                      for r in self._jobs.values())):
            await asyncio.sleep(0.01)
        await self._queue.put(None)  # stop the batcher
        if self._batcher_task is not None:
            await self._batcher_task
        # Idle keep-alive connections would outlive the loop otherwise.
        for writer in list(self._writers):
            try:
                writer.close()
            except Exception:
                pass
        if self._server is not None:
            await self._server.wait_closed()
        self._drained_event.set()

    async def serve_until_drained(self) -> None:
        """Block until a drain (SIGTERM, /v1/drain, or shutdown()) finishes."""
        await self._drained_event.wait()

    def start_in_thread(self, timeout: float = 30.0) -> Tuple[str, int]:
        """Run the service on a dedicated event-loop thread; returns the address."""
        started = threading.Event()
        failure: List[BaseException] = []

        def _run() -> None:
            loop = asyncio.new_event_loop()
            try:
                asyncio.set_event_loop(loop)
                loop.run_until_complete(self.start())
            except BaseException as exc:  # surface bind errors to the caller
                failure.append(exc)
                started.set()
                loop.close()
                return
            started.set()
            try:
                loop.run_until_complete(self.serve_until_drained())
                loop.run_until_complete(loop.shutdown_default_executor())
            finally:
                loop.close()

        self._thread = threading.Thread(
            target=_run, name="repro-service", daemon=True)
        self._thread.start()
        if not started.wait(timeout):
            raise RuntimeError("service did not start in time")
        if failure:
            raise failure[0]
        return self.host, self.port

    def shutdown(self, timeout: float = 60.0) -> None:
        """Drain a :meth:`start_in_thread` service and join its thread."""
        if self._loop is not None and not self._loop.is_closed():
            try:
                self._loop.call_soon_threadsafe(self.request_drain)
            except RuntimeError:
                pass  # loop already closed between the check and the call
        if self._thread is not None:
            self._thread.join(timeout)

    async def _amain(self) -> None:
        await self.start()
        print(f"repro-service listening on http://{self.host}:{self.port}",
              flush=True)
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self.request_drain)
            except NotImplementedError:  # pragma: no cover - non-POSIX
                pass
        await self.serve_until_drained()
        print("repro-service drained cleanly", flush=True)

    def serve_forever(self) -> int:
        """The CLI entry: serve until SIGTERM/SIGINT drains us; exit 0."""
        asyncio.run(self._amain())
        return 0

    # -- admission + single-flight + batching -----------------------------
    def _admit(self, specs: List[PointSpec]) -> None:
        """Shed the request with 429 if its new points exceed the budget.

        Only *new* points count: duplicates of in-flight points coalesce
        for free and are never shed, and duplicate fingerprints within
        one request are one point.  The ``Retry-After`` hint is how long
        the wave pipeline needs to drain back under the budget at its
        steady-state rate of ``max_batch`` points per ``batch_window``.
        """
        if self.max_inflight is None:
            return
        fresh = {spec.fingerprint for spec in specs
                 if spec.fingerprint not in self._inflight}
        if self._active_points + len(fresh) <= self.max_inflight:
            return
        excess = self._active_points + len(fresh) - self.max_inflight
        window = max(self.batch_window, 0.01)
        waves_needed = (excess + self.max_batch - 1) // self.max_batch
        retry_after = max(0.05, waves_needed * window)
        self._shed_total += 1
        self.obs.metrics.add("service.requests.shed")
        self.obs.metrics.add("service.points.shed", len(fresh))
        raise ProtocolError(
            429, protocol.ERROR_OVERLOADED,
            f"overloaded: {self._active_points} point(s) in flight "
            f"+ {len(fresh)} new > max_inflight={self.max_inflight}",
            retry_after=retry_after)

    def _enqueue(self, spec: PointSpec,
                 ctx: Optional[TraceContext] = None,
                 deadline: Optional[float] = None,
                 ) -> Tuple[_InflightPoint, bool]:
        """Get the in-flight entry for a point, creating one if needed.

        Returns ``(entry, coalesced)``; ``coalesced`` is True when the
        point joined a computation another request already started.
        """
        entry = self._inflight.get(spec.fingerprint)
        if entry is not None:
            # Keep the most patient deadline: a short-deadline duplicate
            # must not shorten the budget of whoever got here first.
            if deadline is None:
                entry.deadline = None
            elif entry.deadline is not None:
                entry.deadline = max(entry.deadline, deadline)
            self.obs.metrics.add("service.points.coalesced")
            return entry, True
        point_ctx = (ctx.child()
                     if ctx is not None and self.obs.tracing else None)
        entry = _InflightPoint(spec, self._loop.create_future(), point_ctx,
                               deadline)
        self._inflight[spec.fingerprint] = entry
        self._active_points += 1
        self._queue.put_nowait(entry)
        self.obs.metrics.add("service.points.enqueued")
        return entry, False

    async def _batch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            entry = await self._queue.get()
            if entry is None:
                return
            wave_started = loop.time()
            batch = [entry]
            deadline = wave_started + self.batch_window
            # Fire the wave before the earliest caller deadline in the
            # batch: batching latency comes out of their budget too.
            if entry.deadline is not None:
                deadline = min(deadline, entry.deadline)
            while len(batch) < self.max_batch:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                try:
                    nxt = await asyncio.wait_for(self._queue.get(), remaining)
                except asyncio.TimeoutError:
                    break
                if nxt is None:
                    self._queue.put_nowait(None)  # re-arm the stop sentinel
                    break
                batch.append(nxt)
                if nxt.deadline is not None:
                    deadline = min(deadline, nxt.deadline)
            self._wave_active = True
            try:
                await loop.run_in_executor(None, self._execute_wave, batch)
            except BaseException as exc:  # defensive: _execute_wave catches
                self._last_wave_error = f"{type(exc).__name__}: {exc}"
                for item in batch:
                    self._finish_point(
                        item, None, None,
                        _PointFailed(item.spec, self._last_wave_error))
            finally:
                self._wave_active = False
                self._waves_run += 1
            # Pace wave admission: a backlog that fills batches
            # instantly used to fire waves back-to-back, so the
            # configured window never actually bounded admitted load
            # and the server saturated on per-request overhead instead
            # of its wave budget.  Holding the next wave until the
            # window elapses makes max_batch/batch_window a real
            # admission cap (what the sharded loadtest measures);
            # an idle server is unaffected.
            cooldown = wave_started + self.batch_window - loop.time()
            if cooldown > 0:
                await asyncio.sleep(cooldown)

    # -- wave execution (runs on an executor thread) ----------------------
    def _execute_wave(self, batch: List[_InflightPoint]) -> None:
        """Resolve one batch of unique points through the cache tiers."""
        groups: "OrderedDict[Tuple[float, str], List[_InflightPoint]]" = \
            OrderedDict()
        for entry in batch:
            key = (entry.spec.scale, config_fingerprint(entry.spec.config))
            groups.setdefault(key, []).append(entry)
        for (scale, _), entries in groups.items():
            self._run_group(scale, entries)

    def _run_group(self, scale: float, entries: List[_InflightPoint]) -> None:
        cache = self.cache
        saved_scale, saved_config = cache.scale, cache.config
        saved_timeout = cache.point_timeout
        now = time.monotonic()
        expired = [e for e in entries
                   if e.deadline is not None and e.deadline <= now]
        entries = [e for e in entries
                   if e.deadline is None or e.deadline > now]
        for entry in expired:
            # Nobody is waiting any more: answer 504 without paying for
            # even a cache probe.
            self._resolve(entry, None, None, _PointDeadline(
                entry.spec, "deadline exceeded before the wave ran"))
        if not entries:
            return
        try:
            cache.scale = scale
            cache.config = entries[0].spec.config
            # Never compute longer than the most patient caller in this
            # group will wait: clamp the per-point timeout to the widest
            # remaining deadline budget.
            budgets = [e.deadline - now for e in entries
                       if e.deadline is not None]
            if len(budgets) == len(entries):
                clamp = max(budgets)
                cache.point_timeout = (clamp if saved_timeout is None
                                       else min(saved_timeout, clamp))
            tiers: Dict[str, str] = {}
            to_compute: List[_InflightPoint] = []
            disk = cache._disk_cache()
            for entry in entries:
                spec = entry.spec
                key = cache._key(spec.workload, spec.design,
                                 spec.track_lifetimes)
                if key in cache._results:
                    tiers[spec.fingerprint] = TIER_MEMO
                    continue
                cached = disk.load(spec.fingerprint) if disk is not None \
                    else None
                if cached is not None:
                    cache._results[key] = cached
                    tiers[spec.fingerprint] = TIER_DISK
                else:
                    tiers[spec.fingerprint] = TIER_COMPUTED
                    to_compute.append(entry)
            sweep_failures: Dict[Tuple[str, str], str] = {}
            wave_error: Optional[str] = None
            if to_compute:
                # One wave-level span context: the pool workers' spans
                # nest under the first traced point's span.
                wave_ctx = next(
                    (e.ctx for e in to_compute if e.ctx is not None), None)
                try:
                    cache.run_many(
                        [(e.spec.workload, e.spec.design,
                          e.spec.track_lifetimes) for e in to_compute],
                        trace_ctx=(wave_ctx.child()
                                   if wave_ctx is not None else None))
                except SweepError as exc:
                    self._last_wave_error = str(exc)
                    sweep_failures = {
                        (f.workload, f.design): str(f) for f in exc.failures}
                except (KeyboardInterrupt, SystemExit):
                    raise
                except BaseException as exc:
                    wave_error = f"{type(exc).__name__}: {exc}"
                    self._last_wave_error = wave_error
            for entry in entries:
                spec = entry.spec
                key = cache._key(spec.workload, spec.design,
                                 spec.track_lifetimes)
                result = cache._results.get(key)
                if result is not None:
                    self._resolve(entry, tiers[spec.fingerprint], result)
                    continue
                reason = (sweep_failures.get((spec.workload, spec.design.name))
                          or wave_error
                          or "point did not complete")
                if entry.deadline is not None \
                        and time.monotonic() >= entry.deadline:
                    self._resolve(entry, None, None, _PointDeadline(
                        spec, f"deadline exceeded during compute: {reason}"))
                else:
                    self._resolve(entry, None, None,
                                  _PointFailed(spec, reason))
        finally:
            cache.scale, cache.config = saved_scale, saved_config
            cache.point_timeout = saved_timeout

    def _resolve(self, entry: _InflightPoint, tier: Optional[str],
                 result, exc: Optional[BaseException] = None) -> None:
        self._loop.call_soon_threadsafe(
            self._finish_point, entry, tier, result, exc)

    def _finish_point(self, entry: _InflightPoint, tier: Optional[str],
                      result, exc: Optional[BaseException]) -> None:
        """Settle one point's future (always on the event-loop thread)."""
        if self._inflight.pop(entry.spec.fingerprint, None) is not None:
            self._active_points -= 1
        metrics = self.obs.metrics
        latency = time.perf_counter() - entry.enqueued_at
        if entry.future.done():
            return
        if exc is not None:
            metrics.add("service.points.failed")
            entry.future.set_exception(exc)
        else:
            metrics.add(f"service.tier.{tier}")
            metrics.histogram(f"service.latency.{tier}").record(latency)
            entry.future.set_result((result, tier))
        if entry.ctx is not None and self.obs.tracing:
            self.obs.tracer.emit(
                "span", time.time(), name="service.point", dur=latency,
                workload=entry.spec.workload,
                design=entry.spec.design.name,
                tier=tier if exc is None else "failed",
                **entry.ctx.span_fields())

    # -- HTTP layer -------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self._writers.add(writer)
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, headers, body = request
                self._busy_requests += 1
                try:
                    status, payload, trace_id, extra = await self._route(
                        method, path, headers, body)
                    # Established connections stay alive through a drain
                    # (so clients see a clean 503, not a reset); _drain()
                    # force-closes them once the last response is written.
                    keep_alive = (headers.get("connection", "").lower()
                                  != "close")
                    await self._write_response(
                        writer, status, payload, keep_alive, trace_id,
                        extra_headers=extra)
                finally:
                    self._busy_requests -= 1
                if not keep_alive:
                    break
        except (asyncio.IncompleteReadError, ConnectionResetError,
                BrokenPipeError, asyncio.LimitOverrunError):
            pass
        finally:
            self._writers.discard(writer)
            try:
                writer.close()
            except Exception:
                pass

    # Shared HTTP/1.1 framing (also spoken by the sharding gateway).
    _read_request = staticmethod(http11.read_request)

    @staticmethod
    async def _write_response(writer: asyncio.StreamWriter, status: int,
                              payload: Any, keep_alive: bool,
                              trace_id: str = "-",
                              extra_headers: Optional[Dict[str, str]] = None,
                              ) -> None:
        await http11.write_response(writer, status, payload, keep_alive,
                                    trace_id, extra_headers=extra_headers)

    async def _route(self, method: str, path: str, headers: Dict[str, str],
                     body: bytes) -> Tuple[int, Any, str, Dict[str, str]]:
        # Adopt the caller's trace context (X-Trace-Id/X-Parent-Span)
        # when present; otherwise this request starts a fresh trace.
        ctx = TraceContext.from_headers(headers)
        metrics = self.obs.metrics
        metrics.add("service.requests")
        started = time.perf_counter()
        extra: Dict[str, str] = {}
        try:
            status, payload = await self._dispatch(
                method, path, headers, body, ctx)
        except ProtocolError as exc:
            status, payload = exc.status, exc.body()
            extra = exc.headers()
        except (KeyboardInterrupt, SystemExit):
            raise
        except BaseException as exc:
            metrics.add("service.errors.internal")
            status, payload = 500, {
                "error": protocol.ERROR_INTERNAL,
                "message": f"{type(exc).__name__}: {exc}",
            }
        if isinstance(payload, dict):
            payload.setdefault("trace_id", ctx.trace_id)
        metrics.add(f"service.http.{status}")
        dur = time.perf_counter() - started
        metrics.histogram("service.request_seconds").record(dur)
        if self.obs.tracing:
            self.obs.tracer.emit(
                "span", time.time(), name="service.request", dur=dur,
                method=method, path=path, status=status,
                **ctx.span_fields())
        return status, payload, ctx.trace_id, extra

    async def _dispatch(self, method: str, path: str,
                        headers: Dict[str, str], body: bytes,
                        ctx: TraceContext) -> Tuple[int, Any]:
        if path == "/healthz":
            self._require(method, "GET")
            return 200, self._health_payload()
        if path == "/metrics":
            self._require(method, "GET")
            snapshot = self._metrics_payload()
            if "application/json" in headers.get("accept", ""):
                return 200, snapshot
            text = render_prometheus(self.obs.metrics)
            return 200, _Raw(text.encode("utf-8"), _PROM_CONTENT_TYPE)
        if path == "/v1/simulate":
            self._require(method, "POST")
            self._reject_if_draining()
            return await self._simulate(self._decode(body), ctx,
                                        deadline=self._parse_deadline(headers))
        if path == "/v1/jobs":
            self._require(method, "POST")
            self._reject_if_draining()
            return self._submit_job(self._decode(body), ctx, body)
        if path == "/v1/sweep":
            # A sweep is a durable job: the raw spec body is journaled
            # before the 202 ack, so it survives a restart and replays
            # through the same sweep-aware parser.
            self._require(method, "POST")
            self._reject_if_draining()
            decoded = self._decode(body)
            if not isinstance(decoded, dict) or "sweep" not in decoded:
                raise ProtocolError(
                    400, protocol.ERROR_BAD_REQUEST,
                    "request needs a 'sweep' object (a SweepSpec)")
            return self._submit_job(decoded, ctx, body)
        if path.startswith("/v1/jobs/"):
            self._require(method, "GET")
            return self._job_status(path[len("/v1/jobs/"):])
        if path == "/v1/drain":
            self._require(method, "POST")
            self.request_drain()
            return 202, {"status": "draining"}
        raise ProtocolError(404, protocol.ERROR_NOT_FOUND,
                            f"no route for {path!r}")

    @staticmethod
    def _require(method: str, expected: str) -> None:
        if method != expected:
            raise ProtocolError(
                405, protocol.ERROR_BAD_REQUEST,
                f"method {method} not allowed here (use {expected})")

    def _reject_if_draining(self) -> None:
        if self._draining:
            self.obs.metrics.add("service.rejected.draining")
            raise ProtocolError(
                503, protocol.ERROR_DRAINING,
                "service is draining; no new work accepted")

    @staticmethod
    def _decode(body: bytes) -> Any:
        try:
            return json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(
                400, protocol.ERROR_BAD_REQUEST,
                f"request body is not valid JSON: {exc}")

    @staticmethod
    def _parse_deadline(headers: Dict[str, str]) -> Optional[float]:
        """``X-Deadline-Ms`` (remaining budget) → absolute monotonic instant."""
        return protocol.parse_deadline_header(headers)

    # -- endpoints --------------------------------------------------------
    def _parse_points(self, body: Any) -> List[PointSpec]:
        if isinstance(body, dict) and "sweep" in body:
            _spec, specs = protocol.parse_sweep_request(
                body, self._base_scale, self._base_config,
                check_invariants=self.cache.check_invariants)
            return specs
        return protocol.parse_simulate_request(
            body, self._base_scale, self._base_config,
            check_invariants=self.cache.check_invariants)

    async def _simulate(self, body: Any, ctx: TraceContext,
                        deadline: Optional[float] = None,
                        enforce_admission: bool = True,
                        ) -> Tuple[int, Dict[str, Any]]:
        specs = self._parse_points(body)
        if enforce_admission:
            self._admit(specs)
        include_counters = bool(isinstance(body, dict)
                                and body.get("include_counters"))
        if isinstance(body, dict) and isinstance(body.get("sweep"), dict):
            output = body["sweep"].get("output")
            include_counters = include_counters or bool(
                isinstance(output, dict) and output.get("include_counters"))
        started = time.perf_counter()
        entries = [self._enqueue(spec, ctx, deadline) for spec in specs]
        outcomes = await asyncio.gather(
            *(entry.future for entry, _ in entries), return_exceptions=True)
        points: List[Dict[str, Any]] = []
        failures: List[Dict[str, Any]] = []
        all_deadline = True
        for spec, (entry, coalesced), outcome in zip(
                specs, entries, outcomes):
            if isinstance(outcome, BaseException):
                reason = getattr(outcome, "reason", None) or str(outcome)
                is_deadline = isinstance(outcome, _PointDeadline)
                all_deadline = all_deadline and is_deadline
                failures.append({
                    "workload": spec.workload,
                    "design": spec.design.name,
                    "fingerprint": spec.fingerprint,
                    "reason": reason,
                    "deadline_exceeded": is_deadline,
                })
                points.append({
                    "workload": spec.workload,
                    "design": spec.design.name,
                    "fingerprint": spec.fingerprint,
                    "error": reason,
                })
            else:
                result, tier = outcome
                points.append(protocol.result_payload(
                    spec, result, tier, coalesced,
                    include_counters=include_counters))
        payload: Dict[str, Any] = {
            "trace_id": ctx.trace_id,
            "points": points,
            "wall_seconds": time.perf_counter() - started,
            "simulations_run_total": self.cache.simulations_run,
        }
        if failures:
            if all_deadline:
                # Every failure was the caller's budget running out: the
                # honest answer is 504, not a sweep failure.
                self.obs.metrics.add("service.requests.deadline")
                payload["error"] = protocol.ERROR_DEADLINE
                payload["message"] = (
                    f"{len(failures)} of {len(specs)} point(s) exceeded "
                    f"the request deadline")
                payload["failures"] = failures
                return 504, payload
            payload["error"] = protocol.ERROR_SWEEP_FAILED
            payload["message"] = (
                f"{len(failures)} of {len(specs)} point(s) failed")
            payload["failures"] = failures
            return 500, payload
        return 200, payload

    def _submit_job(self, body: Any, ctx: TraceContext,
                    raw_body: bytes = b"") -> Tuple[int, Dict[str, Any]]:
        specs = self._parse_points(body)  # validate before accepting
        self._admit(specs)  # shed at the door, never after journaling
        job_id = uuid.uuid4().hex
        submitted = time.time()
        if self._journal is not None:
            # Journal before acknowledging: an accepted job is on disk
            # by definition, so a crash after the 202 cannot lose it.
            self._journal.record_submitted(
                job_id, raw_body, ctx.trace_id, submitted)
        record: Dict[str, Any] = {
            "job_id": job_id,
            "status": "running",
            "trace_id": ctx.trace_id,
            "submitted_unix": submitted,
            "n_points": len(specs),
            "result": None,
        }
        self._jobs[job_id] = record
        while len(self._jobs) > _MAX_JOBS:
            self._evict_one_job()
        self._loop.create_task(self._run_job(record, body, ctx))
        self.obs.metrics.add("service.jobs.submitted")
        return 202, {"job_id": job_id, "status": "running",
                     "n_points": len(specs), "trace_id": ctx.trace_id}

    def _evict_one_job(self) -> None:
        for job_id, record in self._jobs.items():
            if record["status"] != "running":
                del self._jobs[job_id]
                return
        self._jobs.popitem(last=False)  # all running: drop the oldest

    async def _run_job(self, record: Dict[str, Any], body: Any,
                       ctx: TraceContext) -> None:
        try:
            # Admission was decided when the job was accepted (and
            # journaled); an accepted job always runs, even if interactive
            # load has since filled the inflight budget.
            status, payload = await self._simulate(
                body, ctx, enforce_admission=False)
        except ProtocolError as exc:
            status, payload = exc.status, exc.body()
        except (KeyboardInterrupt, SystemExit):
            raise
        except BaseException as exc:
            status = 500
            payload = {"error": protocol.ERROR_INTERNAL,
                       "message": f"{type(exc).__name__}: {exc}"}
        record["result"] = payload
        record["status"] = "done" if status == 200 else "failed"
        record["completed_unix"] = time.time()
        if self._journal is not None:
            self._journal.record_finished(
                record["job_id"], record["status"], payload,
                record["completed_unix"])

    def _job_status(self, job_id: str) -> Tuple[int, Dict[str, Any]]:
        record = self._jobs.get(job_id)
        if record is None:
            raise ProtocolError(404, protocol.ERROR_NOT_FOUND,
                                f"unknown job {job_id!r}")
        payload = {key: record[key] for key in
                   ("job_id", "status", "n_points", "submitted_unix")}
        if record["status"] != "running":
            payload["result"] = record["result"]
            payload["completed_unix"] = record["completed_unix"]
        return 200, payload

    def _health_payload(self) -> Dict[str, Any]:
        cache = self.cache
        return {
            "status": "draining" if self._draining else "ok",
            "uptime_seconds": time.time() - self._started_at,
            "queue_depth": self._queue.qsize(),
            "inflight_points": self._active_points,
            "max_inflight": self.max_inflight,
            "shed_total": self._shed_total,
            "busy_requests": self._busy_requests,
            "jobs_running": sum(1 for r in self._jobs.values()
                                if r["status"] == "running"),
            "jobs_journal": (self._journal.path
                             if self._journal is not None else None),
            "pool": {
                "jobs": cache.jobs,
                "wave_active": self._wave_active,
                "waves_run": self._waves_run,
                "last_wave_error": self._last_wave_error,
            },
            "simulations_run": cache.simulations_run,
            "scale": self._base_scale,
            "cache_dir": cache.cache_dir,
            "checkpoint": cache.checkpoint,
            "workloads": sorted(registry.WORKLOADS),
            "designs": sorted({protocol.design_slug(name)
                               for name in protocol.DESIGNS_BY_NAME}),
        }

    def _metrics_payload(self) -> Dict[str, Any]:
        metrics = self.obs.metrics
        metrics.set_gauge("service.queue_depth", self._queue.qsize())
        metrics.set_gauge("service.inflight_points", self._active_points)
        metrics.set_gauge("service.shed_total", self._shed_total)
        metrics.set_gauge("service.simulations_run",
                          self.cache.simulations_run)
        metrics.set_gauge("service.waves_run", self._waves_run)
        metrics.set_gauge("service.uptime_seconds",
                          time.time() - self._started_at)
        return metrics.snapshot()


def run_server(
    host: str = "127.0.0.1",
    port: int = 8000,
    jobs: int = 1,
    scale: Optional[float] = None,
    cache_dir: Optional[str] = None,
    checkpoint: Optional[str] = None,
    check_invariants: bool = False,
    point_timeout: Optional[float] = None,
    point_retries: int = 2,
    batch_window: float = 0.01,
    max_batch: int = 64,
    max_inflight: Optional[int] = None,
    jobs_journal: Optional[str] = None,
    trace_out: Optional[str] = None,
    metrics_out: Optional[str] = None,
) -> int:
    """Build and run a service until SIGTERM/SIGINT drains it (CLI path).

    ``max_inflight`` bounds admitted points (shed with 429 beyond it);
    ``jobs_journal`` persists ``/v1/jobs`` across restarts.
    ``trace_out`` streams every request/point/worker span to a
    JSON-lines file (view with ``repro-experiment trace show``);
    ``metrics_out`` writes the final metrics snapshot on drain.
    """
    obs = None
    if trace_out or metrics_out:
        from repro.obs import JsonLinesTracer

        tracer = JsonLinesTracer(trace_out) if trace_out else None
        obs = Observability(tracer=tracer)
    service = ExperimentService(
        host=host, port=port, jobs=jobs, scale=scale, cache_dir=cache_dir,
        checkpoint=checkpoint, check_invariants=check_invariants,
        point_timeout=point_timeout, point_retries=point_retries,
        batch_window=batch_window, max_batch=max_batch,
        max_inflight=max_inflight, jobs_journal=jobs_journal, obs=obs)
    try:
        return service.serve_forever()
    finally:
        if obs is not None:
            obs.close()
        if metrics_out:
            with open(metrics_out, "w", encoding="utf-8") as handle:
                json.dump(service.obs.metrics.snapshot(), handle,
                          indent=2, sort_keys=True)
                handle.write("\n")
