"""System assembly: Table 1 configuration, Table 2 designs, drivers."""

from repro.system.config import SoCConfig, l1_cache_config, l2_cache_config
from repro.system.designs import (
    BASELINE_16K,
    BASELINE_512,
    BASELINE_LARGE_PER_CU,
    IDEAL_MMU,
    L1_ONLY_VC_128,
    L1_ONLY_VC_32,
    MMUDesign,
    TABLE2_DESIGNS,
    VC_WITHOUT_OPT,
    VC_WITH_OPT,
    baseline_unlimited_bandwidth,
    baseline_with_bandwidth,
)
from repro.system.physical_hierarchy import PhysicalHierarchy
from repro.system.run import SimulationResult, simulate

__all__ = [
    "SoCConfig", "l1_cache_config", "l2_cache_config",
    "MMUDesign", "TABLE2_DESIGNS",
    "IDEAL_MMU", "BASELINE_512", "BASELINE_16K", "BASELINE_LARGE_PER_CU",
    "VC_WITHOUT_OPT", "VC_WITH_OPT", "L1_ONLY_VC_32", "L1_ONLY_VC_128",
    "baseline_with_bandwidth", "baseline_unlimited_bandwidth",
    "PhysicalHierarchy",
    "SimulationResult", "simulate",
]
