"""Simulation configuration (Table 1 of the paper).

+---------------+-------------------------------------------------------+
| GPU           | 16 CUs, 32 lanes per CU, 700 MHz                      |
| L1 GPU cache  | per-CU 32 KB, write-through no allocate               |
| L2 GPU cache  | shared 2 MB, 8 banks, write-back, 128 B lines         |
| TLBs          | 32-entry per-CU TLBs (4 KB pages)                     |
| IOMMU         | shared TLB (512 or 16K entries), 16 concurrent PTW,   |
|               | 8 KB page-walk cache                                  |
| DRAM, NoC     | 192 GB/s; dance-hall GPU NoC; PCIe-protocol latency   |
|               | on the GPU↔IOMMU path                                 |
+---------------+-------------------------------------------------------+

Everything is a frozen dataclass so experiment sweeps derive variants
with :func:`dataclasses.replace`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.memsys.cache import CacheConfig
from repro.memsys.interconnect import InterconnectConfig
from repro.memsys.iommu import IOMMUConfig


__all__ = ["SoCConfig", "l1_cache_config", "l2_cache_config"]

def l1_cache_config() -> CacheConfig:
    """Per-CU 32 KB L1: write-through, no write-allocate (Table 1)."""
    return CacheConfig(
        size_bytes=32 * 1024,
        line_size=128,
        associativity=8,
        n_banks=1,
        write_back=False,
        write_allocate=False,
    )


def l2_cache_config() -> CacheConfig:
    """Shared 2 MB L2: 8 banks, write-back, 128 B lines (Table 1)."""
    return CacheConfig(
        size_bytes=2 * 1024 * 1024,
        line_size=128,
        associativity=16,
        n_banks=8,
        write_back=True,
        write_allocate=True,
    )


@dataclass(frozen=True)
class SoCConfig:
    """The full simulated SoC (Table 1 defaults)."""

    n_cus: int = 16
    lanes_per_cu: int = 32
    frequency_ghz: float = 0.7

    l1: CacheConfig = field(default_factory=l1_cache_config)
    l2: CacheConfig = field(default_factory=l2_cache_config)
    l1_latency: float = 4.0
    l2_latency: float = 20.0

    # Per-CU L1 TLBs; None models the infinite TLBs of the IDEAL MMU and
    # the "inf" bars of Figure 2.
    per_cu_tlb_entries: Optional[int] = 32
    per_cu_tlb_latency: float = 1.0

    iommu: IOMMUConfig = field(default_factory=IOMMUConfig)
    interconnect: InterconnectConfig = field(default_factory=InterconnectConfig)

    dram_latency: float = 160.0
    dram_bandwidth_gbps: float = 192.0

    # Outstanding coalesced requests a CU can keep in flight (latency
    # tolerance; §1 — GPUs run up to ~40 contexts per CU).
    cu_window: int = 64

    # FBT sizing (§4.3: 16K entries covers a unique page per L2 line).
    fbt_entries: int = 16384
    fbt_associativity: int = 8

    def __post_init__(self) -> None:
        if self.n_cus <= 0:
            raise ValueError("need at least one CU")
        if self.lanes_per_cu <= 0:
            raise ValueError("need at least one lane per CU")
        if self.l1.line_size != self.l2.line_size:
            raise ValueError("L1 and L2 must share a line size")

    @property
    def line_size(self) -> int:
        return self.l1.line_size

    def with_per_cu_tlb(self, entries: Optional[int]) -> "SoCConfig":
        """Variant with a different per-CU TLB size (Figure 2 sweep)."""
        return replace(self, per_cu_tlb_entries=entries)

    def with_iommu(
        self,
        entries: Optional[int] = None,
        bandwidth: Optional[float] = None,
    ) -> "SoCConfig":
        """Variant with a different shared IOMMU TLB size/bandwidth."""
        new_iommu = replace(
            self.iommu,
            shared_tlb_entries=(
                entries if entries is not None else self.iommu.shared_tlb_entries
            ),
            bandwidth=bandwidth if bandwidth is not None else self.iommu.bandwidth,
        )
        return replace(self, iommu=new_iommu)
