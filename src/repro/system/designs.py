"""MMU design presets (Table 2) and the design → hierarchy builder.

+---------------+--------------+-----------------+------------------+
| Design        | Per-CU TLB   | IOMMU TLB       | B/W limit        |
+---------------+--------------+-----------------+------------------+
| IDEAL MMU     | infinite     | infinite        | infinite         |
| Baseline 512  | 32-entry     | 512-entry       | 1 access/cycle   |
| Baseline 16K  | 32-entry     | 16K-entry       | 1 access/cycle   |
| VC W/O OPT    | —            | 512-entry       | 1 access/cycle   |
| VC With OPT   | —            | +16K-entry FBT  | 1 access/cycle   |
+---------------+--------------+-----------------+------------------+

plus the large-per-CU-TLB baseline of Figure 10 and the two L1-only
virtual-cache designs of Figure 11.
"""

from __future__ import annotations

import dataclasses
import math
import re
from dataclasses import dataclass, replace
from typing import Any, Dict, Optional

from repro.core.l1_only import L1OnlyVirtualHierarchy
from repro.core.virtual_hierarchy import VirtualCacheHierarchy
from repro.memsys.page_table import PageTable
from repro.system.config import SoCConfig
from repro.system.physical_hierarchy import PhysicalHierarchy

__all__ = [
    "BASELINE_16K",
    "BASELINE_512",
    "BASELINE_LARGE_PER_CU",
    "DESIGNS_BY_NAME",
    "FULL_VC",
    "IDEAL_MMU",
    "L1_ONLY_VC",
    "L1_ONLY_VC_128",
    "L1_ONLY_VC_32",
    "MMUDesign",
    "PHYSICAL",
    "PRESET_DESIGNS",
    "TABLE2_DESIGNS",
    "VC_WITHOUT_OPT",
    "VC_WITH_OPT",
    "baseline_unlimited_bandwidth",
    "baseline_with_bandwidth",
    "design_from_dict",
    "design_slug",
    "design_to_dict",
    "lookup_design",
]

PHYSICAL = "physical"
FULL_VC = "vc"
L1_ONLY_VC = "l1vc"


@dataclass(frozen=True)
class MMUDesign:
    """One row of Table 2 (or a sweep variant)."""

    name: str
    kind: str = PHYSICAL
    ideal: bool = False
    per_cu_tlb_entries: Optional[int] = 32
    iommu_entries: Optional[int] = 512
    iommu_bandwidth: float = 1.0
    fbt_as_second_level_tlb: bool = False

    def __post_init__(self) -> None:
        if self.kind not in (PHYSICAL, FULL_VC, L1_ONLY_VC):
            raise ValueError(f"unknown design kind {self.kind!r}")

    def soc_config(self, base: SoCConfig) -> SoCConfig:
        """Apply this design's TLB/IOMMU overrides to a base SoC config."""
        cfg = base.with_per_cu_tlb(self.per_cu_tlb_entries)
        iommu = replace(
            cfg.iommu,
            shared_tlb_entries=self.iommu_entries,
            bandwidth=self.iommu_bandwidth,
        )
        return replace(cfg, iommu=iommu)

    def build(
        self,
        base: SoCConfig,
        page_tables: Dict[int, PageTable],
        track_lifetimes: bool = False,
        obs=None,
    ):
        """Instantiate the memory hierarchy this design describes.

        ``obs`` threads an :class:`~repro.obs.Observability` bundle
        (tracer + metrics) through the hierarchy and its IOMMU.
        """
        cfg = self.soc_config(base)
        if self.kind == PHYSICAL:
            return PhysicalHierarchy(
                cfg, page_tables, ideal=self.ideal,
                track_lifetimes=track_lifetimes, obs=obs,
            )
        if self.kind == FULL_VC:
            return VirtualCacheHierarchy(
                cfg, page_tables,
                fbt_as_second_level_tlb=self.fbt_as_second_level_tlb,
                obs=obs,
            )
        return L1OnlyVirtualHierarchy(cfg, page_tables, obs=obs)


# -- Table 2 presets -----------------------------------------------------

IDEAL_MMU = MMUDesign(
    name="IDEAL MMU",
    ideal=True,
    per_cu_tlb_entries=None,
    iommu_entries=None,
    iommu_bandwidth=float("inf"),
)

BASELINE_512 = MMUDesign(name="Baseline 512", iommu_entries=512)

BASELINE_16K = MMUDesign(name="Baseline 16K", iommu_entries=16384)

VC_WITHOUT_OPT = MMUDesign(
    name="VC W/O OPT",
    kind=FULL_VC,
    per_cu_tlb_entries=None,  # no per-CU TLBs in the proposal
    iommu_entries=512,
)

VC_WITH_OPT = MMUDesign(
    name="VC With OPT",
    kind=FULL_VC,
    per_cu_tlb_entries=None,
    iommu_entries=512,
    fbt_as_second_level_tlb=True,
)

# Figure 10's comparison point: large fully-associative per-CU TLBs.
BASELINE_LARGE_PER_CU = MMUDesign(
    name="Baseline 128-entry TLBs + 16K",
    per_cu_tlb_entries=128,
    iommu_entries=16384,
)

# Figure 11's L1-only virtual cache designs.
L1_ONLY_VC_32 = MMUDesign(
    name="L1-Only VC (32)",
    kind=L1_ONLY_VC,
    per_cu_tlb_entries=32,
    iommu_entries=16384,
)

L1_ONLY_VC_128 = MMUDesign(
    name="L1-Only VC (128)",
    kind=L1_ONLY_VC,
    per_cu_tlb_entries=128,
    iommu_entries=16384,
)

TABLE2_DESIGNS = (
    IDEAL_MMU,
    BASELINE_512,
    BASELINE_16K,
    VC_WITHOUT_OPT,
    VC_WITH_OPT,
)


def baseline_with_bandwidth(accesses_per_cycle: float) -> MMUDesign:
    """Figure 5 sweep point: 16K-entry IOMMU TLB at a given peak bandwidth."""
    return MMUDesign(
        name=f"Baseline 16K @ {accesses_per_cycle:g}/cycle",
        iommu_entries=16384,
        iommu_bandwidth=accesses_per_cycle,
    )


def baseline_unlimited_bandwidth() -> MMUDesign:
    """Figure 3's measurement design: demand rate with no bandwidth limit."""
    return MMUDesign(
        name="Baseline 16K, unlimited B/W",
        iommu_entries=16384,
        iommu_bandwidth=float("inf"),
    )


# -- the named-design registry and wire form ------------------------------

def design_slug(name: str) -> str:
    """URL-friendly identifier for a design name (``"VC With OPT"`` → ``"vc-with-opt"``)."""
    return re.sub(r"[^a-z0-9]+", "-", name.lower()).strip("-")


#: Every named preset addressable by slug: the Table 2 rows plus the
#: Figure 10 large-per-CU baseline and the Figure 11 L1-only designs.
PRESET_DESIGNS = TABLE2_DESIGNS + (
    BASELINE_LARGE_PER_CU,
    L1_ONLY_VC_32,
    L1_ONLY_VC_128,
)

#: Canonical design name → preset, plus a slug alias for each.
DESIGNS_BY_NAME: Dict[str, MMUDesign] = {}
for _design in PRESET_DESIGNS:
    DESIGNS_BY_NAME[_design.name] = _design
    DESIGNS_BY_NAME[design_slug(_design.name)] = _design
del _design


def lookup_design(name: str) -> Optional[MMUDesign]:
    """Find a preset by canonical name or slug; ``None`` if unknown."""
    return DESIGNS_BY_NAME.get(name) or DESIGNS_BY_NAME.get(design_slug(name))


def design_to_dict(design: MMUDesign) -> Dict[str, Any]:
    """JSON-ready form of a design (the SweepSpec inline-design shape).

    Infinite capacities/bandwidth serialize as ``null`` — JSON has no
    ``Infinity`` — so ``design_from_dict`` round-trips every preset.
    """
    return {
        "name": design.name,
        "kind": design.kind,
        "ideal": design.ideal,
        "per_cu_tlb_entries": design.per_cu_tlb_entries,
        "iommu_entries": design.iommu_entries,
        "iommu_bandwidth": (None if math.isinf(design.iommu_bandwidth)
                            else design.iommu_bandwidth),
        "fbt_as_second_level_tlb": design.fbt_as_second_level_tlb,
    }


def _entries_field(obj: Dict[str, Any], key: str,
                   default: Optional[int]) -> Optional[int]:
    value = obj.get(key, default)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(
            f"design field {key!r} must be a positive integer or null "
            f"(null = infinite), got {value!r}")
    if value < 1:
        raise ValueError(f"design field {key!r} must be >= 1, got {value}")
    return value


def design_from_dict(obj: Any) -> MMUDesign:
    """Build an :class:`MMUDesign` from its dict form, strictly validated.

    Raises plain :class:`ValueError` on any problem (unknown key, bad
    kind, wrong type); callers wrap it into their own error taxonomy.
    """
    if not isinstance(obj, dict):
        raise ValueError(
            f"inline design must be an object, got {type(obj).__name__}")
    known = {f.name for f in dataclasses.fields(MMUDesign)}
    unknown = sorted(set(obj) - known)
    if unknown:
        raise ValueError(
            f"unknown design field(s) {', '.join(map(repr, unknown))}; "
            f"valid fields: {', '.join(sorted(known))}")
    name = obj.get("name")
    if not isinstance(name, str) or not name.strip():
        raise ValueError("inline design needs a non-empty string 'name'")
    kind = obj.get("kind", PHYSICAL)
    if kind not in (PHYSICAL, FULL_VC, L1_ONLY_VC):
        raise ValueError(
            f"unknown design kind {kind!r}; valid kinds: "
            f"{PHYSICAL!r}, {FULL_VC!r}, {L1_ONLY_VC!r}")
    for flag in ("ideal", "fbt_as_second_level_tlb"):
        if flag in obj and not isinstance(obj[flag], bool):
            raise ValueError(f"design field {flag!r} must be a boolean, "
                             f"got {obj[flag]!r}")
    bandwidth = obj.get("iommu_bandwidth", 1.0)
    if bandwidth is None:
        bandwidth = float("inf")
    elif isinstance(bandwidth, bool) or not isinstance(bandwidth, (int, float)):
        raise ValueError(
            f"design field 'iommu_bandwidth' must be a positive number or "
            f"null (null = unlimited), got {bandwidth!r}")
    elif not bandwidth > 0:
        raise ValueError(
            f"design field 'iommu_bandwidth' must be positive, "
            f"got {bandwidth}")
    return MMUDesign(
        name=name,
        kind=kind,
        ideal=obj.get("ideal", False),
        per_cu_tlb_entries=_entries_field(obj, "per_cu_tlb_entries", 32),
        iommu_entries=_entries_field(obj, "iommu_entries", 512),
        iommu_bandwidth=float(bandwidth),
        fbt_as_second_level_tlb=obj.get("fbt_as_second_level_tlb", False),
    )
