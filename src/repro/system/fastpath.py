"""Closure-compiled access paths for the memory hierarchies.

The simulate loop spends nearly all of its time inside
``hierarchy.access``; at the default scales that is hundreds of
thousands of Python-level attribute walks (``self.config.interconnect
.l1_to_l2`` and friends), method dispatches, and short-lived
:class:`~repro.memsys.cache.CacheLine` allocations.  This module
*compiles* each hierarchy's access path once at construction time into
a closure whose free variables are the hot structures themselves — the
per-CU TLB list, the raw cache sets, the L2 bank servers, the DRAM
link's bound ``request`` — and whose latencies are plain local floats.

Three rules keep the compiled path bit-identical to the method path
(the golden hot-path test pins every counter *and* the cycle count):

* counters are attributed in exactly the same order and on exactly the
  same events as the methods they replace;
* LRU state is touched identically (probe → ``move_to_end`` on hit,
  ``popitem(last=False)`` on eviction);
* evicted victim lines are *recycled* in place of allocating a fresh
  ``CacheLine`` — same field values, same dict ordering, one object
  allocation less per fill.

A compiled path is only installed when the hierarchy is built without
observability and without lifetime tracking; any instrumented build
keeps the plain methods, which remain the single source of truth for
the semantics.
"""

from __future__ import annotations

from repro.core.fbt import AccessCheck, ReadWriteSynonymFault
from repro.memsys.addressing import large_page_base_vpn
from repro.memsys.cache import CacheLine
from repro.memsys.permissions import PageFault, PermissionFault, Permissions

__all__ = [
    "compile_physical_access",
    "compile_virtual_access",
]

_RW = Permissions.READ_WRITE


def compile_physical_access(h):
    """Build the fast ``access`` closure for a :class:`PhysicalHierarchy`.

    Returns ``None`` when the hierarchy's shape rules out the compiled
    path (non-power-of-two L2 banking falls back to modulo selection,
    which the closure does not carry).
    """
    l2 = h.l2
    if l2._bank_mask is None:
        return None
    if any(bank.delay_histogram is not None for bank in h.l2_banks.banks):
        return None
    per_cu_tlbs = h.per_cu_tlbs
    l1s = h.l1s
    l1_set_mask = l1s[0]._set_mask if l1s else 0
    l1_ways = h.config.l1.associativity
    l2_sets = l2._sets
    l2_set_mask = l2._set_mask
    l2_bank_mask = l2._bank_mask
    l2_ways = h.config.l2.associativity
    banks = h.l2_banks.banks
    line_size = h.dram.line_size
    lpp = h._lpp
    cfg = h.config
    tlb_latency = cfg.per_cu_tlb_latency
    l1_latency = cfg.l1_latency
    l2_latency = cfg.l2_latency
    l1_to_l2 = cfg.interconnect.l1_to_l2
    gpu_to_iommu = cfg.interconnect.gpu_to_iommu
    iommu_to_gpu = cfg.interconnect.iommu_to_gpu
    iommu_translate_parts = h.iommu.translate_parts
    ideal = h.ideal
    page_tables = h.page_tables
    # IOMMU constants for the inlined ``translate_parts`` prologue +
    # shared-TLB probe (the shared-TLB-miss tail keeps the
    # ``_translate_miss_parts`` method).  An instrumented IOMMU
    # (histograms/timeline/tracer/lifetimes) keeps the full method.
    iommu = h.iommu
    stlb = iommu.shared_tlb
    iommu_inline = (iommu._queue_hist is None and iommu._timeline is None
                    and iommu._tracer is None
                    and iommu._translate_hist is None
                    and stlb.lifetimes is None)
    sampler = iommu.access_sampler
    sampler_ic = sampler.interval_cycles
    scounts = sampler._window_counts
    stlb_entries = stlb._entries
    iommu_unlimited = iommu.unlimited_bandwidth
    port_banks = iommu._port_banks
    n_port_banks = iommu._n_port_banks
    bank_low = iommu._bank_select_low
    port_request = iommu.port.request
    iommu_tlb_latency = iommu._tlb_latency
    iommu_translate_miss = iommu._translate_miss_parts
    # Windowed-server accounting constants for the inlined bank request
    # (all banks share one rate; histograms are absent — checked above).
    window_cycles = banks[0].WINDOW_CYCLES
    l2_rate = banks[0].rate
    l2_cap = window_cycles * l2_rate
    # DRAM link constants for the inlined ``BandwidthLink.request``.
    link = h.dram._link
    link_wc = link.WINDOW_CYCLES
    link_bpc = link.bytes_per_cycle
    link_inf = link_bpc == float("inf")
    link_latency = link.latency
    link_transfer = 0.0 if link_inf else line_size / link_bpc
    link_cap = float("inf") if link_inf else link_wc * link_bpc

    def dram_line(now):
        # Inlined one-line ``BandwidthLink.request`` (see resources.py).
        link.total_requests += 1
        link.total_bytes += line_size
        if link_inf:
            return now + link_latency
        w = int(now // link_wc)
        if w > link._window_index:
            link._window_index = w
            wbytes = 0.0 + line_size
        else:
            wbytes = link._window_bytes + line_size
        link._window_bytes = wbytes
        overflow = wbytes - link_cap
        if overflow > 0:
            delay = overflow / link_bpc
            link.total_queue_delay += delay
            return now + delay + link_transfer + link_latency
        return now + link_transfer + link_latency

    def access(cu_id, request, now, asid=0):
        vpn = request.vpn
        is_write = request.is_write
        line_index = request.line_addr % lpp
        tlb = per_cu_tlbs[cu_id]
        key = (asid << 52) | vpn
        if key == tlb._memo_key:
            entry = tlb._memo_entry
            tlb.hits += 1
        else:
            entries = tlb._entries
            entry = entries.get(key)
            if entry is not None:
                entries.move_to_end(key)
                tlb.hits += 1
                tlb._memo_key = key
                tlb._memo_entry = entry
        if entry is not None:
            permissions = entry.permissions
            if not permissions._value_ & (2 if is_write else 1):
                raise PermissionFault(vpn, is_write, permissions)
            physical_line = entry.ppn * lpp + line_index
            ready = now + tlb_latency
        else:
            tlb.misses += 1
            h._n_tlb_misses += 1
            t = now + tlb_latency
            if ideal:
                # Instant fill from the page table: translation is free.
                mapping = page_tables[asid].lookup(vpn)
                if mapping is None:
                    raise PageFault(vpn, asid)
                ppn, permissions = mapping
                tlb.insert(key, ppn, permissions, t)
                ready = t
            else:
                t_iommu = t + gpu_to_iommu
                if iommu_inline:
                    # Inlined ``IOMMU.translate_parts`` prologue +
                    # shared-TLB probe; the per-CU TLB key doubles as
                    # the shared-TLB key (both are ``asid<<52 | vpn``).
                    window = int(t_iommu // sampler_ic)
                    scounts[window] = scounts.get(window, 0) + 1
                    if window > sampler._max_window:
                        sampler._max_window = window
                    iommu._n_accesses += 1
                    iommu._ever_translated = True
                    if iommu_unlimited:
                        service_start = t_iommu
                    elif port_banks is not None:
                        if bank_low:
                            service_start = port_banks[
                                vpn % n_port_banks].request(t_iommu)
                        else:
                            service_start = port_banks[
                                (vpn >> 9) % n_port_banks].request(t_iommu)
                    else:
                        service_start = port_request(t_iommu)
                    iommu.queue_cycles += service_start - t_iommu
                    t_tr = service_start + iommu_tlb_latency
                    if key == stlb._memo_key:
                        stlb.hits += 1
                        sentry = stlb._memo_entry
                    else:
                        sentry = stlb_entries.get(key)
                        if sentry is None:
                            stlb.misses += 1
                        else:
                            stlb_entries.move_to_end(key)
                            stlb.hits += 1
                            stlb._memo_key = key
                            stlb._memo_entry = sentry
                    if sentry is not None:
                        iommu._n_tlb_hits += 1
                        ppn = sentry.ppn
                        permissions = sentry.permissions
                        finish = t_tr
                    else:
                        ppn, permissions, finish, _, _, _, _ = (
                            iommu_translate_miss(key, vpn, t_tr, t_iommu,
                                                 asid))
                else:
                    ppn, permissions, finish, _, _, _, _ = (
                        iommu_translate_parts(vpn, t_iommu, asid))
                ready = finish + iommu_to_gpu
                tlb.insert(key, ppn, permissions, ready)
            if not permissions._value_ & (2 if is_write else 1):
                raise PermissionFault(vpn, is_write, permissions)
            physical_line = ppn * lpp + line_index
            # Figure 2 breakdown: where would a VC have found the data?
            if physical_line in l1s[cu_id]._sets[physical_line & l1_set_mask]:
                h._n_miss_l1_hit += 1
            elif physical_line in l2_sets[physical_line & l2_set_mask]:
                h._n_miss_l2_hit += 1
            else:
                h._n_miss_l2_miss += 1

        l1 = l1s[cu_id]
        l1_set = l1._sets[physical_line & l1_set_mask]
        if is_write:
            # Write-through, no-allocate L1: update on hit; the store
            # occupies the CU window until it lands in the L2.
            if physical_line in l1_set:
                l1_set.move_to_end(physical_line)
                l1.hits += 1
            else:
                l1.misses += 1
            # Inlined ``WindowedServer.request`` (see resources.py).
            server = banks[physical_line & l2_bank_mask]
            t_req = ready + l1_latency + l1_to_l2
            server.total_requests += 1
            w = int(t_req // window_cycles)
            wi = server._window_index
            if w > wi:
                server._window_index = w
                count = 1.0
                server._window_count = count
            else:
                if w < wi:
                    t_req = wi * window_cycles
                count = server._window_count + 1.0
                server._window_count = count
            overflow = count - l2_cap
            if overflow > 0.0:
                delay = overflow / l2_rate
                server.total_queue_delay += delay
                t_req += delay
            t_done = t_req + l2_latency
            l2_set = l2_sets[physical_line & l2_set_mask]
            l2_line = l2_set.get(physical_line)
            if l2_line is not None:
                l2_set.move_to_end(physical_line)
                l2.hits += 1
                l2_line.dirty = True
                return t_done
            l2.misses += 1
            # Write-allocate into the write-back L2 (full-line store:
            # no memory fetch needed).
            if len(l2_set) >= l2_ways:
                _, victim = l2_set.popitem(last=False)
                if victim.dirty:
                    dram_line(t_done)  # write-back traffic
                    h._n_l2_writebacks += 1
                if victim.page is not None:
                    l2._forget_page_line(victim)
                    victim.page = None
                victim.line_addr = physical_line
                victim.dirty = True
                victim.permissions = _RW
                l2_set[physical_line] = victim
            else:
                l2_set[physical_line] = CacheLine(physical_line, True)
                l2._n_resident += 1
            return t_done

        line = l1_set.get(physical_line)
        if line is not None:
            l1_set.move_to_end(physical_line)
            l1.hits += 1
            return ready + l1_latency
        l1.misses += 1

        # Read path below the L1: banked L2 lookup, then DRAM on a miss.
        # Inlined ``WindowedServer.request`` (see resources.py).
        server = banks[physical_line & l2_bank_mask]
        t_req = ready + l1_latency + l1_to_l2
        server.total_requests += 1
        w = int(t_req // window_cycles)
        wi = server._window_index
        if w > wi:
            server._window_index = w
            count = 1.0
            server._window_count = count
        else:
            if w < wi:
                t_req = wi * window_cycles
            count = server._window_count + 1.0
            server._window_count = count
        overflow = count - l2_cap
        if overflow > 0.0:
            delay = overflow / l2_rate
            server.total_queue_delay += delay
            t_req += delay
        t_mem = t_req + l2_latency
        l2_set = l2_sets[physical_line & l2_set_mask]
        if physical_line in l2_set:
            l2_set.move_to_end(physical_line)
            l2.hits += 1
        else:
            l2.misses += 1
            t_mem = dram_line(t_mem)
            if len(l2_set) >= l2_ways:
                _, victim = l2_set.popitem(last=False)
                if victim.dirty:
                    dram_line(t_mem)  # write-back traffic
                    h._n_l2_writebacks += 1
                if victim.page is not None:
                    l2._forget_page_line(victim)
                    victim.page = None
                victim.line_addr = physical_line
                victim.dirty = False
                victim.permissions = _RW
                l2_set[physical_line] = victim
            else:
                l2_set[physical_line] = CacheLine(physical_line)
                l2._n_resident += 1
        # Fill the L1 (the line cannot already be resident: it missed).
        if len(l1_set) >= l1_ways:
            _, victim = l1_set.popitem(last=False)
            victim.line_addr = physical_line
            victim.dirty = False
            victim.permissions = _RW
            l1_set[physical_line] = victim
        else:
            l1_set[physical_line] = CacheLine(physical_line)
            l1._n_resident += 1
        return t_mem + l1_to_l2

    return access


def compile_virtual_access(h):
    """Build the fast ``access`` closure for a :class:`VirtualCacheHierarchy`.

    The L1/L2 probe spine is compiled; the whole-hierarchy miss path
    (IOMMU translation + FBT consultation) keeps its method — it runs
    on a minority of requests and owns the synonym/invalidation logic.
    """
    l2 = h.l2
    if l2._bank_mask is None:
        return None
    if any(bank.delay_histogram is not None for bank in h.l2_banks.banks):
        return None
    l1s = h.l1s
    l1_set_mask = l1s[0]._set_mask if l1s else 0
    l2_sets = l2._sets
    l2_set_mask = l2._set_mask
    l2_bank_mask = l2._bank_mask
    banks = h.l2_banks.banks
    lpp = h._lpp
    l1_latency = h._l1_latency
    l2_latency = h._l2_latency
    l1_to_l2 = h._l1_to_l2
    srts = h.srts
    miss_path = h._miss_path
    iommu_translate_parts = h.iommu.translate_parts
    fbt_check_access = h.fbt.check_access
    execute_invalidation = h._execute_invalidation
    synonym_replay = h._synonym_replay
    interconnect = h.config.interconnect
    gpu_to_iommu = interconnect.gpu_to_iommu
    l2_to_fbt = interconnect.l2_to_fbt
    fbt_lookup = interconnect.fbt_lookup
    filters = h.filters
    l1_ways = l1s[0]._associativity if l1s else 0
    l2_ways = l2._associativity
    fbt_note_l2_eviction = h.fbt.note_l2_eviction
    fbt_note_l2_fill = h.fbt.note_l2_fill
    pkey_mask = (1 << 52) - 1
    # FBT consultation constants for the inlined base-page
    # ``check_access`` (large pages under the counter policy keep the
    # method, which owns that logic).
    fbt = h.fbt
    bt = fbt.bt
    bt_sets = bt._sets
    bt_set_mask = bt.n_sets - 1
    counter_policy = fbt.large_page_policy == fbt.COUNTER_POLICY
    fbt_allocate = fbt._allocate
    fault_on_rw = fbt.fault_on_rw_synonym
    fbt_counters = fbt.counters
    ft = fbt.ft
    ft_index = ft._index
    ft_lookup = ft.lookup
    # IOMMU constants for the inlined ``translate_parts`` prologue +
    # shared-TLB probe (the shared-TLB-miss tail keeps the
    # ``_translate_miss_parts`` method).  An instrumented IOMMU
    # (histograms/timeline/tracer/lifetimes) keeps the full method.
    iommu = h.iommu
    stlb = iommu.shared_tlb
    iommu_inline = (iommu._queue_hist is None and iommu._timeline is None
                    and iommu._tracer is None
                    and iommu._translate_hist is None
                    and stlb.lifetimes is None)
    sampler = iommu.access_sampler
    sampler_ic = sampler.interval_cycles
    scounts = sampler._window_counts
    stlb_entries = stlb._entries
    iommu_unlimited = iommu.unlimited_bandwidth
    port_banks = iommu._port_banks
    n_port_banks = iommu._n_port_banks
    bank_low = iommu._bank_select_low
    port_request = iommu.port.request
    iommu_tlb_latency = iommu._tlb_latency
    iommu_translate_miss = iommu._translate_miss_parts
    # Windowed-server accounting constants for the inlined bank request
    # (all banks share one rate; histograms are absent — checked above).
    window_cycles = banks[0].WINDOW_CYCLES
    l2_rate = banks[0].rate
    l2_cap = window_cycles * l2_rate
    # DRAM link constants for the inlined ``BandwidthLink.request``.
    link = h.dram._link
    line_size = h.dram.line_size
    link_wc = link.WINDOW_CYCLES
    link_bpc = link.bytes_per_cycle
    link_inf = link_bpc == float("inf")
    link_latency = link.latency
    link_transfer = 0.0 if link_inf else line_size / link_bpc
    link_cap = float("inf") if link_inf else link_wc * link_bpc

    def dram_line(now):
        # Inlined ``DRAM.access_line`` → ``BandwidthLink.request``.
        link.total_requests += 1
        link.total_bytes += line_size
        if link_inf:
            return now + link_latency
        w = int(now // link_wc)
        if w > link._window_index:
            link._window_index = w
            wbytes = 0.0 + line_size
        else:
            wbytes = link._window_bytes + line_size
        link._window_bytes = wbytes
        overflow = wbytes - link_cap
        if overflow > 0:
            delay = overflow / link_bpc
            link.total_queue_delay += delay
            return now + delay + link_transfer + link_latency
        return now + link_transfer + link_latency

    # Compiled twins of ``_fill_l1`` / ``_fill_l2`` (same recycling
    # semantics, free variables instead of ``self.`` walks).  The bail
    # paths (``_miss_path``/``_synonym_replay``) keep the methods.
    def fill_l1(cu_id, asid, vpn, key, permissions):
        l1 = l1s[cu_id]
        cache_set = l1._sets[key & l1_set_mask]
        pkey = (asid << 52) | vpn
        # ``InvalidationFilter.on_fill``/``on_evict`` inlined: one dict
        # upsert per L1 fill, one decrement per page-carrying eviction.
        fcounts = filters[cu_id]._counts
        fkey = (asid, vpn)
        existing = cache_set.get(key)
        if existing is not None:
            # A synonym replay can refill a leading line that is already
            # resident (the original probe used the synonym key).
            existing.permissions = permissions
            cache_set.move_to_end(key)
            fcounts[fkey] = fcounts.get(fkey, 0) + 1
            return
        if len(cache_set) >= l1_ways:
            _, victim = cache_set.popitem(last=False)
            victim_page = victim.page
            if victim_page is not None:
                l1._forget_page_line(victim)
                ekey = (victim_page >> 52, victim_page & pkey_mask)
                count = fcounts.get(ekey, 0)
                if count <= 1:
                    fcounts.pop(ekey, None)
                else:
                    fcounts[ekey] = count - 1
            victim.line_addr = key
            victim.dirty = False
            victim.permissions = permissions
            victim.page = pkey
            cache_set[key] = victim
        else:
            cache_set[key] = CacheLine(key, False, permissions, pkey)
            l1._n_resident += 1
        page_lines = l1._page_lines
        page_lines[pkey] = page_lines.get(pkey, 0) + 1
        fcounts[fkey] = fcounts.get(fkey, 0) + 1

    def fill_l2(asid, vpn, line_index, ppn, dirty, permissions, now):
        key = (asid << 52) | (vpn * lpp + line_index)
        pkey = (asid << 52) | vpn
        cache_set = l2_sets[key & l2_set_mask]
        existing = cache_set.get(key)
        if existing is not None:
            # Refill of a resident line: refresh LRU, merge the dirty
            # bit (write-back cache), no victim.
            existing.dirty = existing.dirty or dirty
            existing.permissions = permissions
            cache_set.move_to_end(key)
        else:
            if len(cache_set) >= l2_ways:
                _, victim = cache_set.popitem(last=False)
                if victim.dirty:
                    dram_line(now)  # write-back traffic
                    h._n_l2_writebacks += 1
                victim_page = victim.page
                if victim_page is not None:
                    l2._forget_page_line(victim)
                    fbt_note_l2_eviction(victim_page >> 52,
                                         victim_page & pkey_mask,
                                         victim.line_addr % lpp)
                victim.line_addr = key
                victim.dirty = dirty
                victim.permissions = permissions
                victim.page = pkey
                cache_set[key] = victim
            else:
                cache_set[key] = CacheLine(key, dirty, permissions, pkey)
                l2._n_resident += 1
            page_lines = l2._page_lines
            page_lines[pkey] = page_lines.get(pkey, 0) + 1
        # Inlined ``FBT.note_l2_fill`` (stat-free BT peek + bit set);
        # the rare counter-tracked / missing-entry cases keep the
        # method, which owns the counter-base fallback and the
        # inclusion-broken error.
        entry = bt_sets[ppn & bt_set_mask].get(ppn)
        if entry is not None and entry.tracking == "bitvector":
            bit = 1 << line_index
            if not entry.line_bits & bit:
                entry.line_bits = entry.line_bits | bit
                entry.line_count += 1
        else:
            fbt_note_l2_fill(ppn, line_index)

    def access(cu_id, request, now, asid=0):
        vline = request.line_addr
        vpn = request.vpn
        line_index = vline % lpp
        is_write = request.is_write
        if srts is not None:
            # Dynamic synonym remapping: redirect known synonym pages to
            # their leading address before the L1 lookup.  Inlined
            # ``SynonymRemapTable.lookup`` (dict probe + LRU refresh).
            srt = srts[cu_id]
            skey = (asid, vpn)
            remap = srt._entries.get(skey)
            if remap is None:
                srt.misses += 1
            else:
                srt._entries.move_to_end(skey)
                srt.hits += 1
                asid, vpn = remap
                vline = vpn * lpp + line_index
                h._n_srt_remaps += 1
        key = (asid << 52) | vline
        l1 = l1s[cu_id]
        l1_set = l1._sets[key & l1_set_mask]
        line = l1_set.get(key)
        if line is not None:
            l1_set.move_to_end(key)
            l1.hits += 1
            if not line.permissions._value_ & (2 if is_write else 1):
                raise PermissionFault(vpn, is_write, line.permissions)
            h._n_l1_hits += 1
            if not is_write:
                return now + l1_latency
            # Write-through: the write still flows to the L2 and the
            # store occupies the CU window until it lands there.
            # Inlined ``WindowedServer.request`` (see resources.py).
            server = banks[key & l2_bank_mask]
            start = now + l1_latency + l1_to_l2
            server.total_requests += 1
            w = int(start // window_cycles)
            wi = server._window_index
            if w > wi:
                server._window_index = w
                count = 1.0
                server._window_count = count
            else:
                if w < wi:
                    start = wi * window_cycles
                count = server._window_count + 1.0
                server._window_count = count
            overflow = count - l2_cap
            if overflow > 0.0:
                delay = overflow / l2_rate
                server.total_queue_delay += delay
                start += delay
            l2_set = l2_sets[key & l2_set_mask]
            l2_line = l2_set.get(key)
            if l2_line is not None:
                l2_set.move_to_end(key)
                l2.hits += 1
                l2_line.dirty = True
                # Inlined ``FBT.note_write`` (first FT probe; the
                # counter-policy base-page fallback keeps the counted
                # ``ForwardTable.lookup`` method).
                ft.lookups += 1
                fentry = ft_index.get((asid, vpn))
                if fentry is not None:
                    ft.hits += 1
                    fentry.written = True
                elif counter_policy:
                    fentry = ft_lookup(asid, large_page_base_vpn(vpn))
                    if fentry is not None:
                        fentry.written = True
                return start + l2_latency
            l2.misses += 1
            # Non-inclusive hierarchy: L1 write hit, L2 miss — allocate
            # in the write-back L2 via the translated miss path.
            return miss_path(cu_id, asid, vpn, vline, line_index, True,
                             start + l2_latency, fill_l1=False)
        l1.misses += 1

        # L1 miss → virtual L2.
        # Inlined ``WindowedServer.request`` (see resources.py).
        server = banks[key & l2_bank_mask]
        start = now + l1_latency + l1_to_l2
        server.total_requests += 1
        w = int(start // window_cycles)
        wi = server._window_index
        if w > wi:
            server._window_index = w
            count = 1.0
            server._window_count = count
        else:
            if w < wi:
                start = wi * window_cycles
            count = server._window_count + 1.0
            server._window_count = count
        overflow = count - l2_cap
        if overflow > 0.0:
            delay = overflow / l2_rate
            server.total_queue_delay += delay
            start += delay
        t_hit = start + l2_latency
        l2_set = l2_sets[key & l2_set_mask]
        l2_line = l2_set.get(key)
        if l2_line is not None:
            l2_set.move_to_end(key)
            l2.hits += 1
            if not l2_line.permissions._value_ & (2 if is_write else 1):
                raise PermissionFault(vpn, is_write, l2_line.permissions)
            h._n_l2_hits += 1
            if is_write:
                l2_line.dirty = True
                # Inlined ``FBT.note_write`` (see the L1-hit twin above).
                ft.lookups += 1
                fentry = ft_index.get((asid, vpn))
                if fentry is not None:
                    ft.hits += 1
                    fentry.written = True
                elif counter_policy:
                    fentry = ft_lookup(asid, large_page_base_vpn(vpn))
                    if fentry is not None:
                        fentry.written = True
                return t_hit
            fill_l1(cu_id, asid, vpn, key, l2_line.permissions)
            return t_hit + l1_to_l2
        l2.misses += 1

        # Whole-hierarchy miss → translation is finally needed.  The
        # common (leading-page, no-invalidation) spine of ``_miss_path``
        # is inlined here; synonym replays and shootdowns bail out to
        # the methods, which own that logic.
        h._n_l2_misses += 1
        t_iommu = t_hit + gpu_to_iommu
        if iommu_inline:
            # Inlined ``IOMMU.translate_parts`` prologue + shared-TLB
            # probe.
            window = int(t_iommu // sampler_ic)
            scounts[window] = scounts.get(window, 0) + 1
            if window > sampler._max_window:
                sampler._max_window = window
            iommu._n_accesses += 1
            iommu._ever_translated = True
            if iommu_unlimited:
                service_start = t_iommu
            elif port_banks is not None:
                if bank_low:
                    service_start = port_banks[
                        vpn % n_port_banks].request(t_iommu)
                else:
                    service_start = port_banks[
                        (vpn >> 9) % n_port_banks].request(t_iommu)
            else:
                service_start = port_request(t_iommu)
            iommu.queue_cycles += service_start - t_iommu
            t_tr = service_start + iommu_tlb_latency
            tkey = (asid << 52) | vpn
            if tkey == stlb._memo_key:
                stlb.hits += 1
                sentry = stlb._memo_entry
            else:
                sentry = stlb_entries.get(tkey)
                if sentry is None:
                    stlb.misses += 1
                else:
                    stlb_entries.move_to_end(tkey)
                    stlb.hits += 1
                    stlb._memo_key = tkey
                    stlb._memo_entry = sentry
            if sentry is not None:
                iommu._n_tlb_hits += 1
                ppn = sentry.ppn
                permissions = sentry.permissions
                finish = t_tr
                is_large = sentry.is_large
                lb_vpn = sentry.large_base_vpn
                lb_ppn = sentry.large_base_ppn
            else:
                ppn, permissions, finish, _, is_large, lb_vpn, lb_ppn = (
                    iommu_translate_miss(tkey, vpn, t_tr, t_iommu, asid))
        else:
            ppn, permissions, finish, _, is_large, lb_vpn, lb_ppn = (
                iommu_translate_parts(vpn, t_iommu, asid))
        if not permissions._value_ & (2 if is_write else 1):
            raise PermissionFault(vpn, is_write, permissions)
        t_fbt = finish + l2_to_fbt + fbt_lookup
        if is_large and counter_policy:
            check = fbt_check_access(
                asid, vpn, ppn, permissions, line_index, is_write,
                is_large=True, large_base_vpn=lb_vpn, large_base_ppn=lb_ppn,
            )
        else:
            # Inlined base-page ``FBT.check_access``: BT probe, then the
            # leading case completes here — no AccessCheck object, no
            # invalidations — while allocation/synonym build one.
            bt_set = bt_sets[ppn & bt_set_mask]
            entry = bt_set.get(ppn)
            bt.lookups += 1
            if entry is None:
                check = fbt_allocate(asid, vpn, ppn, permissions, is_write)
            else:
                bt_set.move_to_end(ppn)
                bt.hits += 1
                if entry.leading_asid == asid and entry.leading_vpn == vpn:
                    if is_write:
                        entry.written = True
                        # Full-line store: allocate in the write-back
                        # L2, no fetch.
                        fill_l2(asid, vpn, line_index, ppn, True,
                                permissions, t_fbt)
                        return t_fbt + l1_to_l2
                    t_mem = dram_line(t_fbt)
                    fill_l2(asid, vpn, line_index, ppn, False, permissions,
                            t_mem)
                    fill_l1(cu_id, asid, vpn, key, permissions)
                    return t_mem + l1_to_l2
                # Synonym: mirror ``check_access``'s synonym arm.
                fbt_counters.add("fbt.synonym_accesses")
                if fault_on_rw and (is_write or entry.written):
                    fbt_counters.add("fbt.rw_synonym_faults")
                    raise ReadWriteSynonymFault(ppn, entry.leading_vpn, vpn)
                if is_write:
                    entry.written = True
                check = AccessCheck(
                    status="synonym", entry=entry,
                    leading_asid=entry.leading_asid,
                    leading_vpn=entry.leading_vpn,
                    replay_hits_l2=entry.line_cached(line_index),
                )
        if check.invalidations or check.status == "synonym":
            for order in check.invalidations:
                execute_invalidation(order, t_fbt)
            if check.status == "synonym":
                return synonym_replay(cu_id, asid, vpn, check, ppn,
                                      line_index, is_write, t_fbt, True)
        if is_write:
            # Full-line store: allocate in the write-back L2, no fetch.
            fill_l2(asid, vpn, line_index, ppn, True, permissions, t_fbt)
            return t_fbt + l1_to_l2
        t_mem = dram_line(t_fbt)
        fill_l2(asid, vpn, line_index, ppn, False, permissions, t_mem)
        fill_l1(cu_id, asid, vpn, key, permissions)
        return t_mem + l1_to_l2

    return access
