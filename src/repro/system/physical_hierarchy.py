"""Baseline physically-addressed GPU memory hierarchy (Figure 1).

Per-CU TLBs are consulted after coalescing and before the (physically
indexed) caches.  A private-TLB miss becomes a translation service
request to the IOMMU over the PCIe-protocol link; once the translation
returns, the access proceeds down the physical L1 → shared banked L2 →
DRAM path.

The IDEAL MMU variant (Figure 4) gives every CU an infinite TLB whose
misses are satisfied instantly — translation never costs cycles, which
isolates the pure cache/DRAM behaviour as the 1.0 reference point.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.engine.stats import Counters, LifetimeTracker
from repro.gpu.coalescer import CoalescedRequest
from repro.memsys.addressing import lines_per_page
from repro.memsys.cache import Cache
from repro.memsys.dram import DRAM
from repro.memsys.iommu import IOMMU
from repro.memsys.page_table import PageTable
from repro.memsys.permissions import PageFault, PermissionFault
from repro.memsys.tlb import TLB
from repro.engine.resources import BankedServer
from repro.system.config import SoCConfig
from repro.system.fastpath import compile_physical_access


__all__ = ["PhysicalHierarchy"]

class PhysicalHierarchy:
    """The baseline MMU + physical cache hierarchy."""

    def __init__(
        self,
        config: SoCConfig,
        page_tables: Dict[int, PageTable],
        ideal: bool = False,
        track_lifetimes: bool = False,
        obs=None,
    ) -> None:
        self.config = config
        self.page_tables = dict(page_tables)
        self.ideal = ideal
        self._counters = Counters()
        self.obs = obs
        self._tracer = obs.tracer if obs is not None else None
        # Windowed time series (obs.metrics.timeline); None unless the
        # caller enabled a timeline before building the hierarchy.
        self._timeline = obs.metrics.timeline if obs is not None else None
        # Deferred hot-path event counts (flushed via the ``counters``
        # property; only nonzero counts materialize, matching the
        # key-presence semantics of per-event ``Counters.add``).
        # ``tlb.accesses`` is not counted per access: every access makes
        # exactly one per-CU TLB probe, so it is derived at flush time
        # from the TLBs' own hit/miss totals.
        self._n_tlb_misses = 0
        self._n_miss_l1_hit = 0
        self._n_miss_l2_hit = 0
        self._n_miss_l2_miss = 0
        self._n_l2_writebacks = 0

        self.lifetimes: Optional[Dict[str, LifetimeTracker]] = None
        if track_lifetimes:
            self.lifetimes = {
                "tlb": LifetimeTracker(),
                "l1": LifetimeTracker(),
                "l2": LifetimeTracker(),
            }

        tlb_entries = None if ideal else config.per_cu_tlb_entries
        self.per_cu_tlbs: List[TLB] = [
            TLB(capacity=tlb_entries, name=f"cu{i}-tlb")
            for i in range(config.n_cus)
        ]
        self.l1s: List[Cache] = [
            Cache(config.l1, name=f"cu{i}-l1") for i in range(config.n_cus)
        ]
        self.l2 = Cache(config.l2, name="l2")
        self.l2_banks = BankedServer(config.l2.n_banks)
        self.dram = DRAM(
            latency_cycles=config.dram_latency,
            bandwidth_gbps=config.dram_bandwidth_gbps,
            frequency_ghz=config.frequency_ghz,
            line_size=config.line_size,
        )
        self.iommu = IOMMU(
            config.iommu, page_tables, frequency_ghz=config.frequency_ghz,
            obs=obs,
        )
        self._lpp = lines_per_page(config.line_size)
        if obs is not None:
            self.l2_banks.attach_delay_histogram(
                obs.metrics.histogram("l2.bank_queue_delay"))
        elif not track_lifetimes:
            # Uninstrumented build: shadow the access method with the
            # closure-compiled fast path (bit-identical; see fastpath).
            fast = compile_physical_access(self)
            if fast is not None:
                self.access = fast

    # -- counters ---------------------------------------------------------
    @property
    def counters(self) -> Counters:
        """The hierarchy's counter bag, with pending hot-path deltas flushed."""
        self._flush_counters()
        return self._counters

    def _flush_counters(self) -> None:
        counters = self._counters
        probes = sum(t.hits + t.misses for t in self.per_cu_tlbs)
        if probes:
            counters.set("tlb.accesses", probes)
        if self._n_tlb_misses:
            counters.add("tlb.misses", self._n_tlb_misses)
            self._n_tlb_misses = 0
        if self._n_miss_l1_hit:
            counters.add("tlb.miss_l1_hit", self._n_miss_l1_hit)
            self._n_miss_l1_hit = 0
        if self._n_miss_l2_hit:
            counters.add("tlb.miss_l2_hit", self._n_miss_l2_hit)
            self._n_miss_l2_hit = 0
        if self._n_miss_l2_miss:
            counters.add("tlb.miss_l2_miss", self._n_miss_l2_miss)
            self._n_miss_l2_miss = 0
        if self._n_l2_writebacks:
            counters.add("l2.writebacks", self._n_l2_writebacks)
            self._n_l2_writebacks = 0

    # -- translation -----------------------------------------------------
    def _translate(self, cu_id: int, vpn: int, now: float, asid: int):
        """Per-CU TLB, then IOMMU on a miss.  Returns (ready_time, ppn, perms, tlb_hit).

        The ``tlb.accesses`` event is derived at counter-flush time from
        the TLBs' hit/miss totals (one probe per access), so neither
        this method nor ``access`` counts it per request.
        """
        tlb = self.per_cu_tlbs[cu_id]
        key = (asid << 52) | vpn
        # Inlined TLB.lookup: the per-CU TLBs are built without a
        # lifetime tracker, so a hit is a micro-memo tag compare (or a
        # dict probe + LRU refresh) and a hit count — worth skipping the
        # method dispatch for on the single hottest translation path.
        t = now + self.config.per_cu_tlb_latency
        tracer = self._tracer
        tracing = tracer is not None and tracer.enabled
        if key == tlb._memo_key:
            entry = tlb._memo_entry
        else:
            entries = tlb._entries
            entry = entries.get(key)
            if entry is not None:
                entries.move_to_end(key)
                tlb._memo_key = key
                tlb._memo_entry = entry
        if entry is not None:
            tlb.hits += 1
            if self.lifetimes is not None:
                self.lifetimes["tlb"].on_access((cu_id, key), now)
            if tracing:
                tracer.emit("tlb.hit", t, cu=cu_id, vpn=vpn)
            return t, entry.ppn, entry.permissions, True

        tlb.misses += 1
        self._n_tlb_misses += 1
        if self._timeline is not None:
            self._timeline.record("tlb.misses", t)
        if tracing:
            tracer.emit("tlb.miss", t, cu=cu_id, vpn=vpn)
        if self.ideal:
            # Instant fill from the page table: translation is free.
            mapping = self.page_tables[asid].lookup(vpn)
            if mapping is None:
                raise PageFault(vpn, asid)
            ppn, permissions = mapping
            self._tlb_fill(cu_id, key, ppn, permissions, t)
            return t, ppn, permissions, False

        request_at = t + self.config.interconnect.gpu_to_iommu
        outcome = self.iommu.translate(vpn, request_at, asid=asid)
        ready = outcome.finish + self.config.interconnect.iommu_to_gpu
        self._tlb_fill(cu_id, key, outcome.ppn, outcome.permissions, ready)
        return ready, outcome.ppn, outcome.permissions, False

    def _tlb_fill(self, cu_id: int, key: int, ppn: int, permissions, now: float) -> None:
        tlb = self.per_cu_tlbs[cu_id]
        victim = tlb.insert(key, ppn, permissions, now)
        if self.lifetimes is not None:
            if victim is not None:
                self.lifetimes["tlb"].on_evict((cu_id, victim.vpn), now)
            self.lifetimes["tlb"].on_insert((cu_id, key), now)

    # -- the access path ---------------------------------------------------
    def access(
        self, cu_id: int, request: CoalescedRequest, now: float, asid: int = 0
    ) -> float:
        """Service one coalesced request; return its completion time."""
        vpn = request.vpn
        is_write = request.is_write
        lpp = self._lpp
        line_index = request.line_addr % lpp
        if self._timeline is not None:
            self._timeline.record("tlb.probes", now)

        # Fast path: with no lifetime tracking and no tracer, a TLB hit
        # followed by an L1 read hit is a pair of dict probes — handle
        # both inline and skip three method dispatches per request.  The
        # last-translation micro-memo short-circuits even the dict probe
        # when the request stays on the MRU page (coalesced requests
        # from one instruction usually do), and skipping its LRU refresh
        # is a no-op because the memoized key is by construction MRU.
        tracer = self._tracer
        if self.lifetimes is None and (tracer is None or not tracer.enabled):
            tlb = self.per_cu_tlbs[cu_id]
            key = (asid << 52) | vpn
            if key == tlb._memo_key:
                entry = tlb._memo_entry
                tlb.hits += 1
            else:
                entries = tlb._entries
                entry = entries.get(key)
                if entry is not None:
                    entries.move_to_end(key)
                    tlb.hits += 1
                    tlb._memo_key = key
                    tlb._memo_entry = entry
            if entry is not None:
                permissions = entry.permissions
                if not permissions._value_ & (2 if is_write else 1):
                    raise PermissionFault(vpn, is_write, permissions)
                cfg = self.config
                physical_line = entry.ppn * lpp + line_index
                ready = now + cfg.per_cu_tlb_latency
                if not is_write:
                    l1 = self.l1s[cu_id]
                    cache_set = l1._sets[physical_line & l1._set_mask]
                    line = cache_set.get(physical_line)
                    if line is not None:
                        cache_set.move_to_end(physical_line)
                        l1.hits += 1
                        return ready + cfg.l1_latency
                    l1.misses += 1
                    return self._l1_miss_read(cu_id, physical_line, ready)
                return self._cache_access(cu_id, physical_line, True, ready)

        ready, ppn, permissions, tlb_hit = self._translate(cu_id, vpn, now, asid)
        if not permissions._value_ & (2 if is_write else 1):
            raise PermissionFault(vpn, is_write, permissions)

        physical_line = ppn * lpp + line_index
        if not tlb_hit:
            self._classify_tlb_miss(cu_id, physical_line)

        return self._cache_access(cu_id, physical_line, is_write, ready)

    def _classify_tlb_miss(self, cu_id: int, physical_line: int) -> None:
        """Figure 2 breakdown: where would a virtual cache have found the data?"""
        if self.l1s[cu_id].contains(physical_line):
            self._n_miss_l1_hit += 1
        elif self.l2.contains(physical_line):
            self._n_miss_l2_hit += 1
        else:
            self._n_miss_l2_miss += 1

    def _cache_access(
        self, cu_id: int, physical_line: int, is_write: bool, now: float
    ) -> float:
        l1 = self.l1s[cu_id]
        l2 = self.l2
        cfg = self.config
        if is_write:
            # Write-through, no-allocate L1: update on hit; the store
            # occupies the CU window until it lands in the L2.
            l1.lookup(physical_line)
            t_l2 = now + cfg.l1_latency + cfg.interconnect.l1_to_l2
            start = self.l2_banks.banks[l2.bank_of(physical_line)].request(t_l2)
            t_done = start + cfg.l2_latency
            if l2.lookup(physical_line) is not None:
                l2.mark_dirty(physical_line)
                if self.lifetimes is not None:
                    self._touch_l2(physical_line, start)
            else:
                # Write-allocate into the write-back L2 (full-line store:
                # no memory fetch needed).
                self._fill_l2(physical_line, dirty=True, now=t_done)
            return t_done

        line = l1.lookup(physical_line)
        if line is not None:
            if self.lifetimes is not None:
                self._touch_l1(cu_id, physical_line, now)
            return now + cfg.l1_latency
        return self._l1_miss_read(cu_id, physical_line, now)

    def _l1_miss_read(self, cu_id: int, physical_line: int, now: float) -> float:
        """Read path below the L1: banked L2 lookup, then DRAM on a miss.

        ``now`` is the time of the L1 miss (the L1 lookup itself has
        already been counted by the caller).
        """
        cfg = self.config
        l2 = self.l2
        t_l2 = now + cfg.l1_latency + cfg.interconnect.l1_to_l2
        start = self.l2_banks.banks[l2.bank_of(physical_line)].request(t_l2)
        t_hit = start + cfg.l2_latency
        if l2.lookup(physical_line) is not None:
            if self.lifetimes is not None:
                self._touch_l2(physical_line, t_hit)
            self._fill_l1(cu_id, physical_line, t_hit)
            return t_hit + cfg.interconnect.l1_to_l2

        t_mem = self.dram.access_line(t_hit)
        self._fill_l2(physical_line, dirty=False, now=t_mem)
        self._fill_l1(cu_id, physical_line, t_mem)
        return t_mem + cfg.interconnect.l1_to_l2

    # -- fills with lifetime accounting -------------------------------------
    def _fill_l1(self, cu_id: int, physical_line: int, now: float) -> None:
        victim = self.l1s[cu_id].insert(physical_line)
        if self.lifetimes is not None:
            if victim is not None:
                self.lifetimes["l1"].on_evict((cu_id, victim.line_addr), now)
            self.lifetimes["l1"].on_insert((cu_id, physical_line), now)

    def _fill_l2(self, physical_line: int, dirty: bool, now: float) -> None:
        victim = self.l2.insert(physical_line, dirty=dirty)
        if victim is not None and victim.dirty:
            self.dram.access_line(now)  # write-back traffic
            self._n_l2_writebacks += 1
        if self.lifetimes is not None:
            if victim is not None:
                self.lifetimes["l2"].on_evict(victim.line_addr, now)
            self.lifetimes["l2"].on_insert(physical_line, now)

    def _touch_l1(self, cu_id: int, physical_line: int, now: float) -> None:
        if self.lifetimes is not None:
            self.lifetimes["l1"].on_access((cu_id, physical_line), now)

    def _touch_l2(self, physical_line: int, now: float) -> None:
        if self.lifetimes is not None:
            self.lifetimes["l2"].on_access(physical_line, now)

    # -- software-visible operations ------------------------------------------
    def shootdown(self, asid: int, vpn: int, now: float = 0.0) -> bool:
        """Single-entry TLB shootdown across the per-CU TLBs and the IOMMU.

        The physical caches are untouched: frames are never reused by
        the allocator, so stale lines under a dead translation can never
        be reached again.  Returns True if any translation was dropped.
        """
        key = (asid << 52) | vpn
        dropped = False
        for tlb in self.per_cu_tlbs:
            if tlb.invalidate(key, now):
                dropped = True
        if self.iommu.invalidate(vpn, asid):
            dropped = True
        return dropped

    def shootdown_all(self, now: float = 0.0) -> int:
        """All-entry shootdown; returns the number of translations dropped."""
        dropped = sum(tlb.invalidate_all(now) for tlb in self.per_cu_tlbs)
        return dropped + self.iommu.invalidate_all()

    # -- aggregate statistics ---------------------------------------------------
    def per_cu_tlb_miss_ratio(self) -> float:
        accesses = sum(t.accesses for t in self.per_cu_tlbs)
        misses = sum(t.misses for t in self.per_cu_tlbs)
        return misses / accesses if accesses else 0.0

    def finish(self, now: float) -> None:
        """End-of-run accounting: flush counters and lifetime trackers."""
        self._flush_counters()
        if self.lifetimes is None:
            return
        for tracker in self.lifetimes.values():
            tracker.flush(now)
