"""Top-level trace-driven simulation driver.

Drives a :class:`~repro.workloads.trace.Trace` through a memory
hierarchy (physical baseline, L1-only VC, or full virtual hierarchy).
CUs issue coalesced requests in globally nondecreasing time order (a
lazy-reinsertion heap over CUs), so the shared-resource queues — the
IOMMU TLB port above all — see arrivals in order and their queueing
delays are exactly the paper's serialization overhead.

Execution time is the cycle at which the last CU drains its outstanding
requests; all relative-performance figures (4, 5, 9, 10, 11) are ratios
of this quantity across MMU designs.
"""

from __future__ import annotations

import heapq
import time
import weakref
from typing import Dict, Optional, List

from repro.engine.stats import RateStats
from repro.gpu.scratchpad import Scratchpad
from repro.system.config import SoCConfig
from repro.workloads.trace import Trace

__all__ = ["SimulationResult", "simulate"]

_TIME_EPS = 1e-9


class SimulationResult:
    """Outcome of one simulated run.

    The record itself is *slim* — plain numbers, the counter dict, and
    the IOMMU rate samples — so it pickles cheaply across process
    boundaries (the parallel sweep runner) and onto disk (the
    ``--cache-dir`` result cache).  Two in-process handles ride along
    outside the serialized state:

    * ``metrics`` — the :class:`~repro.obs.MetricsRegistry` the run
      recorded into (``None`` when no observability was attached);
    * ``hierarchy`` — a *weak* reference to the memory hierarchy the
      run drove.  Whoever built the hierarchy owns it; once they drop
      it (e.g. :meth:`ResultCache.clear`), ``result.hierarchy`` becomes
      ``None`` instead of silently pinning every server and counter the
      run ever touched.

    Both handles are dropped by pickling: an unpickled result carries
    only the slim record.
    """

    _SLIM_FIELDS = (
        "workload", "design", "cycles", "instructions", "requests",
        "counters", "iommu_rate", "wall_clock_seconds",
    )
    # Equality is about simulated outcomes.  Wall-clock time is host
    # noise — two bit-identical runs never take exactly as long — so it
    # is serialized (it feeds the perf reports) but not compared.
    _EQ_FIELDS = tuple(f for f in _SLIM_FIELDS if f != "wall_clock_seconds")

    def __init__(
        self,
        workload: str,
        design: str,
        cycles: float,
        instructions: int,
        requests: int,
        counters: Dict[str, int],
        iommu_rate: Optional[RateStats] = None,
        wall_clock_seconds: float = 0.0,
        metrics: object = None,
        hierarchy: object = None,
    ) -> None:
        self.workload = workload
        self.design = design
        self.cycles = cycles
        self.instructions = instructions
        self.requests = requests
        self.counters = counters
        self.iommu_rate = iommu_rate
        self.wall_clock_seconds = wall_clock_seconds
        self.metrics = metrics
        self._hierarchy_ref = (
            weakref.ref(hierarchy) if hierarchy is not None else None
        )

    @property
    def hierarchy(self):
        """The hierarchy this run drove, or ``None`` once released."""
        ref = self._hierarchy_ref
        return ref() if ref is not None else None

    # -- serialization: only the slim record crosses process/disk ---------
    def __getstate__(self) -> Dict[str, object]:
        return {name: getattr(self, name) for name in self._SLIM_FIELDS}

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)
        self.metrics = None
        self._hierarchy_ref = None

    def __repr__(self) -> str:
        return (
            f"SimulationResult(workload={self.workload!r}, "
            f"design={self.design!r}, cycles={self.cycles!r}, "
            f"instructions={self.instructions!r}, requests={self.requests!r})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SimulationResult):
            return NotImplemented
        return all(
            getattr(self, name) == getattr(other, name)
            for name in self._EQ_FIELDS
        )

    __hash__ = None  # mutable record, same as the former dataclass

    # -- derived metrics ---------------------------------------------------
    def relative_time(self, baseline: "SimulationResult") -> float:
        """Execution time relative to ``baseline`` (1.0 = equal)."""
        if baseline.cycles == 0:
            raise ValueError("baseline run has zero cycles")
        return self.cycles / baseline.cycles

    def speedup_over(self, baseline: "SimulationResult") -> float:
        """How much faster this run is than ``baseline``."""
        if self.cycles == 0:
            raise ValueError("run has zero cycles")
        return baseline.cycles / self.cycles

    def per_cu_tlb_miss_ratio(self) -> float:
        accesses = self.counters.get("tlb.accesses", 0)
        if accesses == 0:
            return 0.0
        return self.counters.get("tlb.misses", 0) / accesses

    def tlb_miss_breakdown(self) -> Dict[str, float]:
        """Figure 2 fractions of per-CU TLB misses by data residence."""
        misses = self.counters.get("tlb.misses", 0)
        if misses == 0:
            return {"l1_hit": 0.0, "l2_hit": 0.0, "l2_miss": 0.0}
        return {
            "l1_hit": self.counters.get("tlb.miss_l1_hit", 0) / misses,
            "l2_hit": self.counters.get("tlb.miss_l2_hit", 0) / misses,
            "l2_miss": self.counters.get("tlb.miss_l2_miss", 0) / misses,
        }

    def iommu_accesses_per_cycle(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.counters.get("iommu.accesses", 0) / self.cycles


def simulate(
    trace: Trace,
    hierarchy,
    config: SoCConfig,
    design: str = "unnamed",
    asid: int = 0,
    max_instructions_per_cu: Optional[int] = None,
    start_time: float = 0.0,
    obs=None,
    manifest_out=None,
    check_invariants: bool = False,
    invariant_interval: int = 2048,
) -> SimulationResult:
    """Run ``trace`` through ``hierarchy`` and collect statistics.

    ``hierarchy`` is any object with ``access(cu_id, request, now, asid)
    → completion_time``, a ``counters`` bag, and a ``finish(now)`` hook
    (the three hierarchy classes in this package all qualify).

    ``start_time`` continues the clock of a previous run on the *same*
    hierarchy — the time-sharing case (context switches) — so shared
    resource servers never see time run backwards.  The reported
    ``cycles`` are relative to ``start_time``.

    ``obs`` attaches an :class:`~repro.obs.Observability` bundle: the
    tracer receives ``request.issue`` / ``request.complete`` events per
    coalesced request and the metrics registry an end-to-end
    ``request.latency`` histogram.  When None, the hierarchy's own
    ``obs`` (if it was built with one) is used, so a single bundle
    passed at construction time covers the whole stack.  Observability
    never changes simulated timing.

    ``manifest_out``, if given, is a path where a JSON run manifest
    (config, workload, design, git SHA, wall-clock, all metrics) is
    written after the run.

    ``check_invariants`` audits the hierarchy's structural invariants
    (FT↔BT bijection, inclusion bit vectors, filter counts — see
    :mod:`repro.robustness.invariants`) every ``invariant_interval``
    instructions and once at end of run, raising
    :class:`~repro.robustness.invariants.InvariantViolation` with a
    diagnostic dump on the first inconsistency.  Off by default: the
    only hot-path cost when disabled is one ``is not None`` test per
    instruction.
    """
    if start_time < 0:
        raise ValueError("start_time must be nonnegative")
    auditor = None
    if check_invariants:
        from repro.robustness.invariants import InvariantAuditor

        auditor = InvariantAuditor(interval=invariant_interval)
    wall_start = time.perf_counter()
    if obs is None:
        obs = getattr(hierarchy, "obs", None)
    tracer = obs.tracer if obs is not None else None
    tracing = tracer is not None and tracer.enabled
    req_hist = obs.metrics.histogram("request.latency") if obs is not None else None
    timeline = obs.metrics.timeline if obs is not None else None
    if tracing:
        tracer.emit("run.start", start_time, workload=trace.name, design=design)
    # The issue loop is driven entirely by the coalesced request lists
    # (one list per instruction; None marks a scratchpad instruction) —
    # they mirror ``trace.per_cu`` stream for stream, so compiled traces
    # can replay without materializing per-lane instruction objects.
    coalesced = trace.coalesced_per_cu()
    if max_instructions_per_cu is not None:
        coalesced = [c[:max_instructions_per_cu] for c in coalesced]
    n_cus = len(coalesced)
    hierarchy_cus = len(getattr(hierarchy, "l1s", ()) or ())
    if hierarchy_cus and n_cus > hierarchy_cus:
        raise ValueError(
            f"trace {trace.name!r} has {n_cus} CU streams but the hierarchy "
            f"models only {hierarchy_cus} CUs — build it from a SoCConfig "
            f"with n_cus >= {n_cus}"
        )

    cursors = [0] * n_cus
    # Per-CU list of this instruction's coalesced requests + position.
    pending: List[Optional[list]] = [None] * n_cus
    pending_pos = [0] * n_cus
    pending_last = [0] * n_cus  # index of the instruction's final request
    pending_scratch = [False] * n_cus
    # Per-CU issue-window state: the :class:`~repro.gpu.cu.ComputeUnit`
    # model, inlined as parallel arrays.  The issue loop runs once per
    # coalesced request (plus window retries) and dominates end-to-end
    # simulation time, so the per-CU bookkeeping lives in plain lists
    # and the loop's bindings — heap ops, the hierarchy's access method,
    # stream lengths — in locals rather than attribute lookups.
    outstanding: List[List[float]] = [[] for _ in range(n_cus)]
    next_issue = [start_time] * n_cus
    last_completion = [0.0] * n_cus
    cu_window = config.cu_window
    issue_interval = trace.issue_interval
    scratch_access = Scratchpad().access  # fixed latency, shared by all CUs

    heap = [(start_time, cu_id) for cu_id in range(n_cus) if coalesced[cu_id]]
    heapq.heapify(heap)
    total_requests = 0
    total_instructions = 0

    heappush = heapq.heappush
    heappop = heapq.heappop
    # Re-inserting the current CU and extracting the global minimum is
    # one fused sift (``heappushpop``); when the current CU stays the
    # earliest — long same-CU request runs — it is a single compare.
    heappushpop = heapq.heappushpop
    access = hierarchy.access
    stream_lens = [len(c) for c in coalesced]

    # The loop keeps the earliest (candidate, cu_id) in locals; the heap
    # holds every *other* runnable CU.  It terminates when a CU drains
    # its stream with no other CU left (the only way work runs out).
    # Two copies of the loop: the uninstrumented one below drops the
    # per-iteration tracer/histogram/auditor checks; the general one
    # further down is the reference and carries all instrumentation.
    candidate, cu_id = heappop(heap) if heap else (0.0, -1)
    if not tracing and req_hist is None and auditor is None:
        while cu_id >= 0:
            t = next_issue[cu_id]
            issue = candidate if candidate > t else t
            out = outstanding[cu_id]
            if len(out) >= cu_window and out[0] > issue:
                issue = out[0]
            if issue > candidate + _TIME_EPS:
                candidate, cu_id = heappushpop(heap, (issue, cu_id))
                continue

            requests = pending[cu_id]
            if requests is None:
                reqs = coalesced[cu_id][cursors[cu_id]]
                total_instructions += 1
                if reqs is None:  # scratchpad instruction
                    requests = pending[cu_id] = []
                    pending_scratch[cu_id] = True
                else:
                    requests = pending[cu_id] = reqs
                    pending_scratch[cu_id] = False
                    pending_last[cu_id] = len(reqs) - 1
                pending_pos[cu_id] = 0

            if pending_scratch[cu_id]:
                completion = scratch_access(issue)
                gap = issue_interval
                self_done = True
            else:
                pos = pending_pos[cu_id]
                completion = access(cu_id, requests[pos], issue, asid)
                total_requests += 1
                self_done = last = pos == pending_last[cu_id]
                gap = issue_interval if last else 1.0
                pending_pos[cu_id] = pos + 1

            while out and out[0] <= issue:
                heappop(out)
            heappush(out, completion)
            if completion > last_completion[cu_id]:
                last_completion[cu_id] = completion
            nxt = issue + gap
            next_issue[cu_id] = nxt

            if self_done:
                pending[cu_id] = None
                cursors[cu_id] += 1
                if cursors[cu_id] >= stream_lens[cu_id]:
                    if not heap:
                        break
                    candidate, cu_id = heappop(heap)
                    continue
            candidate, cu_id = heappushpop(heap, (nxt, cu_id))
        cu_id = -1  # the general loop below must not run
    while cu_id >= 0:
        # Earliest cycle a new request can issue, given the window.
        t = next_issue[cu_id]
        issue = candidate if candidate > t else t
        out = outstanding[cu_id]
        if len(out) >= cu_window and out[0] > issue:
            issue = out[0]
        if issue > candidate + _TIME_EPS:
            # The outstanding-request window is full: retry at the time
            # the oldest request completes (keeps global time order).
            candidate, cu_id = heappushpop(heap, (issue, cu_id))
            continue

        requests = pending[cu_id]
        if requests is None:
            reqs = coalesced[cu_id][cursors[cu_id]]
            total_instructions += 1
            if auditor is not None and total_instructions % auditor.interval == 0:
                auditor.audit(hierarchy, f"instruction {total_instructions}")
            if reqs is None:  # scratchpad instruction
                requests = pending[cu_id] = []
                pending_scratch[cu_id] = True
            else:
                requests = pending[cu_id] = reqs
                pending_scratch[cu_id] = False
                pending_last[cu_id] = len(reqs) - 1
            pending_pos[cu_id] = 0

        if pending_scratch[cu_id]:
            completion = scratch_access(issue)
            gap = issue_interval
            self_done = True
        else:
            pos = pending_pos[cu_id]
            request = requests[pos]
            if tracing:
                tracer.emit("request.issue", issue, cu=cu_id,
                            line=request.line_addr, write=request.is_write)
            completion = access(cu_id, request, issue, asid)
            total_requests += 1
            if req_hist is not None:
                req_hist.record(completion - issue)
                if timeline is not None:
                    timeline.record("requests.issued", issue)
                    timeline.record("requests.latency", issue,
                                    completion - issue)
            if tracing:
                tracer.emit("request.complete", completion, cu=cu_id,
                            line=request.line_addr, latency=completion - issue)
            self_done = last = pos == pending_last[cu_id]
            gap = issue_interval if last else 1.0
            pending_pos[cu_id] = pos + 1

        # Record the issued request: retire completed ones, track the
        # new completion, and set the next issue slot (pipeline gap).
        while out and out[0] <= issue:
            heappop(out)
        heappush(out, completion)
        if completion > last_completion[cu_id]:
            last_completion[cu_id] = completion
        nxt = issue + gap
        next_issue[cu_id] = nxt

        if self_done:
            pending[cu_id] = None
            cursors[cu_id] += 1
            if cursors[cu_id] >= stream_lens[cu_id]:
                # This CU is finished; move to the next-earliest one.
                if not heap:
                    break
                candidate, cu_id = heappop(heap)
                continue
        candidate, cu_id = heappushpop(heap, (nxt, cu_id))

    # A CU's drain time is its last outstanding completion.
    end_time = start_time
    for cu_id in range(n_cus):
        out = outstanding[cu_id]
        drain = max(out) if out else last_completion[cu_id]
        if drain > end_time:
            end_time = drain
    hierarchy.finish(end_time)
    if auditor is not None:
        auditor.audit(hierarchy, "end of run")

    counters = dict(hierarchy.counters.as_dict())
    if auditor is not None:
        counters["invariants.audits"] = auditor.audits
    iommu = getattr(hierarchy, "iommu", None)
    iommu_rate = None
    if iommu is not None:
        counters.update(iommu.counters.as_dict())
        iommu_rate = iommu.access_sampler.rate_stats(end_time)
    _merge_cache_counters(hierarchy, counters)
    if obs is not None:
        # Aggregate this run's counters into the shared registry so an
        # experiment-level manifest sees totals across all runs.
        obs.metrics.counters.merge(counters)

    if tracing:
        tracer.emit("run.end", end_time, workload=trace.name, design=design,
                    cycles=end_time - start_time)

    result = SimulationResult(
        workload=trace.name,
        design=design,
        cycles=end_time - start_time,
        instructions=total_instructions,
        requests=total_requests,
        counters=counters,
        iommu_rate=iommu_rate,
        wall_clock_seconds=time.perf_counter() - wall_start,
        metrics=obs.metrics if obs is not None else None,
        hierarchy=hierarchy,
    )
    if manifest_out is not None:
        from repro.obs.manifest import build_manifest, write_manifest

        write_manifest(manifest_out, build_manifest(
            result=result, config=config, metrics=result.metrics))
    return result


def _merge_cache_counters(hierarchy, counters: Dict[str, int]) -> None:
    l1s = getattr(hierarchy, "l1s", None)
    if l1s:
        counters["l1.hits"] = sum(c.hits for c in l1s)
        counters["l1.misses"] = sum(c.misses for c in l1s)
    l2 = getattr(hierarchy, "l2", None)
    if l2 is not None:
        counters["l2.hits"] = counters.get("l2.hits", 0) + l2.hits
        counters["l2.misses"] = counters.get("l2.misses", 0) + l2.misses
    tlbs = getattr(hierarchy, "per_cu_tlbs", None)
    if tlbs:
        counters.setdefault("tlb.accesses", sum(t.accesses for t in tlbs))
        counters.setdefault("tlb.misses", sum(t.misses for t in tlbs))
