"""Workload trace generators (Rodinia-like and Pannotia-like kernels)."""

from repro.workloads.trace import MemoryInstruction, Trace, round_robin_requests

__all__ = ["MemoryInstruction", "Trace", "round_robin_requests"]

from repro.workloads.registry import (  # noqa: E402
    HIGH_BANDWIDTH,
    LOW_BANDWIDTH,
    WORKLOADS,
    load,
)
from repro.workloads.serialization import load_trace, save_trace  # noqa: E402
from repro.workloads.synthetic import (  # noqa: E402
    gather_kernel,
    multiprocess_homonyms,
    synonym_stress,
)

__all__ += [
    "HIGH_BANDWIDTH", "LOW_BANDWIDTH", "WORKLOADS", "load",
    "load_trace", "save_trace",
    "gather_kernel", "multiprocess_homonyms", "synonym_stress",
]
