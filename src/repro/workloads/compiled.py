"""Compiled binary traces: precoalesced, mmap-able workload replays.

Loading a workload normally means *running its algorithm* (BFS over a
generated graph, Floyd-Warshall over a matrix, …) and then coalescing
every instruction's lane addresses through a Python dict — for the
default scales that costs as much as simulating the result.  This
module compiles a generated :class:`~repro.workloads.trace.Trace` once
into structure-of-arrays NumPy containers whose coalesced line
requests are precomputed in one vectorized pass
(:func:`~repro.gpu.coalescer.coalesce_arrays`), and persists them as
plain ``.npy`` files that later processes **mmap read-only** instead of
regenerating: a warm ``registry.load``, a bench rerun, and every
``run_many`` pool worker then share one on-disk compilation.

The on-disk layout is one directory per compilation key
``(workload, scale, seed, line_size)`` under ``<cache-dir>/traces/``::

    <root>/bfs-s0.1-seeddefault-ls64-v1/
        meta.json            # identity, counts, address-space log
        cu_bounds.npy        # (n_cus+1,) instruction offsets per CU
        inst_flags.npy       # (n_insts,) bit0 = write, bit1 = scratchpad
        inst_req_counts.npy  # (n_insts,) coalesced requests per instruction
        req_line.npy         # (n_reqs,) coalesced line addresses
        req_lanes.npy        # (n_reqs,) lanes served per request
        lane_counts.npy      # (n_insts,) lanes per instruction
        lanes.npy            # (n_lanes,) raw lane addresses (for thaw())

Directories are written to a temp name and renamed into place, so
concurrent writers are safe; a corrupt or truncated compilation is
deleted and treated as a miss — the caller regenerates.  The address
space is replayed from its allocation log exactly as
:mod:`repro.workloads.serialization` does, so the virtual→physical
layout — and therefore every simulated cycle — is bit-identical to a
freshly generated trace.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro.gpu.coalescer import CoalescedRequest, coalesce_arrays
from repro.memsys.addressing import DEFAULT_LINE_SIZE
from repro.workloads.serialization import (
    mapping_rows,
    rebuild_address_space,
)
from repro.workloads.trace import (
    MemoryInstruction,
    Trace,
    TraceValidationError,
)

__all__ = [
    "COMPILED_FORMAT_VERSION",
    "CompiledTrace",
    "TraceStore",
    "compile_trace",
    "load_compiled",
    "save_compiled",
    "store_key",
]

COMPILED_FORMAT_VERSION = 1

#: The array files every compilation directory must contain.
_ARRAY_FILES = (
    ("cu_bounds", np.int64),
    ("inst_flags", np.int8),
    ("inst_req_counts", np.int64),
    ("req_line", np.int64),
    ("req_lanes", np.int64),
    ("lane_counts", np.int64),
    ("lanes", np.int64),
)


class CompiledTrace:
    """A trace compiled to structure-of-arrays form.

    Exposes the surface :func:`~repro.system.run.simulate` and the
    experiment drivers touch directly — ``name``, ``issue_interval``,
    ``metadata``, ``address_space``, ``n_cus``, ``n_instructions`` and
    :meth:`coalesced_per_cu` — from the arrays alone.  Anything else
    (``per_cu``, ``truncated``, divergence statistics) transparently
    *thaws* the full :class:`~repro.workloads.trace.Trace` from the
    stored lane addresses; the hot replay path never pays for that.
    """

    def __init__(
        self,
        name: str,
        issue_interval: float,
        metadata: Dict[str, object],
        address_space,
        line_size: int,
        cu_bounds,
        inst_flags,
        inst_req_counts,
        req_line,
        req_lanes,
        lane_counts,
        lanes,
    ) -> None:
        self.name = name
        self.issue_interval = issue_interval
        self.metadata = metadata
        self.address_space = address_space
        self.line_size = line_size
        self._cu_bounds = cu_bounds
        self._inst_flags = inst_flags
        self._inst_req_counts = inst_req_counts
        self._req_line = req_line
        self._req_lanes = req_lanes
        self._lane_counts = lane_counts
        self._lanes = lanes
        self._coalesced: Dict[int, list] = {}
        self._thawed: Optional[Trace] = None

    # -- the simulate-facing surface --------------------------------------
    @property
    def n_cus(self) -> int:
        return len(self._cu_bounds) - 1

    @property
    def n_instructions(self) -> int:
        return len(self._inst_flags)

    def coalesced_per_cu(self, line_size: int = DEFAULT_LINE_SIZE) -> list:
        """Materialize the precompiled request lists (memoized).

        For the compiled line size this walks the arrays once —
        no per-instruction dict, no division — and constructs the same
        ``CoalescedRequest`` objects, in the same order, that
        :meth:`Trace.coalesced_per_cu` would.  A foreign line size
        falls back to thawing and coalescing from the lane addresses.
        """
        cached = self._coalesced.get(line_size)
        if cached is not None:
            return cached
        if line_size != self.line_size:
            return self.thaw().coalesced_per_cu(line_size)
        req_line = self._req_line.tolist()
        req_lanes = self._req_lanes.tolist()
        flags = self._inst_flags.tolist()
        counts = self._inst_req_counts.tolist()
        bounds = self._cu_bounds.tolist()
        out = []
        pos = 0
        for cu in range(len(bounds) - 1):
            stream = []
            for i in range(bounds[cu], bounds[cu + 1]):
                if flags[i] & 2:
                    stream.append(None)
                    continue
                is_write = bool(flags[i] & 1)
                end = pos + counts[i]
                stream.append([
                    CoalescedRequest(req_line[p], is_write, req_lanes[p])
                    for p in range(pos, end)
                ])
                pos = end
            out.append(stream)
        self._coalesced[line_size] = out
        return out

    # -- validation --------------------------------------------------------
    def validate_fast(self) -> None:
        """Vectorized structural validation of the backing arrays.

        The array-backed twin of
        :func:`~repro.workloads.trace.validate_trace`: every check runs
        as one NumPy reduction instead of a Python loop per lane.
        Raises :class:`~repro.workloads.trace.TraceValidationError`.
        """
        where = f"compiled trace {self.name!r}"
        if self.n_instructions == 0:
            raise TraceValidationError(f"{where}: empty (zero instructions)")
        if self.n_cus <= 0:
            raise TraceValidationError(f"{where}: no CU streams")
        bounds = self._cu_bounds
        if int(bounds[0]) != 0 or int(bounds[-1]) != self.n_instructions:
            raise TraceValidationError(f"{where}: CU bounds do not tile the "
                                       f"instruction arrays")
        if bool(np.any(np.diff(bounds) < 0)):
            raise TraceValidationError(f"{where}: CU bounds not monotonic")
        for label, arr, n in (
            ("inst_req_counts", self._inst_req_counts, self.n_instructions),
            ("lane_counts", self._lane_counts, self.n_instructions),
        ):
            if len(arr) != n:
                raise TraceValidationError(
                    f"{where}: {label} has {len(arr)} rows for {n} "
                    f"instructions")
        if bool(np.any(np.bitwise_and(self._inst_flags, ~np.int8(3)))):
            raise TraceValidationError(
                f"{where}: unknown instruction flag bits (only is_write=1 "
                f"and scratchpad=2 are defined)")
        if self._lane_counts.size and int(self._lane_counts.min()) <= 0:
            raise TraceValidationError(
                f"{where}: instruction with non-positive lane count")
        if int(self._lane_counts.sum()) != self._lanes.size:
            raise TraceValidationError(
                f"{where}: lane array holds {self._lanes.size} addresses "
                f"but instructions claim {int(self._lane_counts.sum())}")
        if self._lanes.size and int(self._lanes.min()) < 0:
            raise TraceValidationError(
                f"{where}: negative lane address {int(self._lanes.min())}")
        scratch = (self._inst_flags & 2) != 0
        if bool(np.any(self._inst_req_counts[scratch])):
            raise TraceValidationError(
                f"{where}: scratchpad instruction with coalesced requests")
        if self._inst_req_counts.size and (
                int(self._inst_req_counts.min()) < 0):
            raise TraceValidationError(
                f"{where}: negative request count")
        n_reqs = int(self._inst_req_counts.sum())
        if n_reqs != self._req_line.size or n_reqs != self._req_lanes.size:
            raise TraceValidationError(
                f"{where}: request arrays hold {self._req_line.size} lines / "
                f"{self._req_lanes.size} lane counts but instructions claim "
                f"{n_reqs}")
        if bool(np.any(~scratch & (self._inst_req_counts == 0))):
            raise TraceValidationError(
                f"{where}: memory instruction with zero coalesced requests")

    # -- full-Trace fallback ----------------------------------------------
    def thaw(self) -> Trace:
        """The full per-lane :class:`Trace`, rebuilt lazily (memoized).

        The thawed trace shares this object's address space and is
        seeded with the already-materialized coalesced lists, so
        thawing never re-coalesces what the compilation already holds.
        """
        if self._thawed is not None:
            return self._thawed
        lanes = self._lanes.tolist()
        lane_counts = self._lane_counts.tolist()
        flags = self._inst_flags.tolist()
        bounds = self._cu_bounds.tolist()
        per_cu: List[List[MemoryInstruction]] = []
        cursor = 0
        for cu in range(len(bounds) - 1):
            stream = []
            for i in range(bounds[cu], bounds[cu + 1]):
                end = cursor + lane_counts[i]
                stream.append(MemoryInstruction(
                    addresses=tuple(lanes[cursor:end]),
                    is_write=bool(flags[i] & 1),
                    scratchpad=bool(flags[i] & 2),
                ))
                cursor = end
            per_cu.append(stream)
        trace = Trace(
            name=self.name,
            per_cu=per_cu,
            address_space=self.address_space,
            issue_interval=self.issue_interval,
            metadata=self.metadata,
        )
        trace._coalesced.update(self._coalesced)
        self._thawed = trace
        return trace

    def __getattr__(self, attr: str):
        # Anything outside the compiled surface (per_cu, truncated,
        # mean_divergence, …) delegates to the thawed full trace.
        if attr.startswith("__"):
            raise AttributeError(attr)
        return getattr(self.thaw(), attr)

    def __repr__(self) -> str:
        return (f"CompiledTrace(name={self.name!r}, n_cus={self.n_cus}, "
                f"n_instructions={self.n_instructions}, "
                f"line_size={self.line_size})")


def compile_trace(trace: Trace,
                  line_size: int = DEFAULT_LINE_SIZE) -> CompiledTrace:
    """Compile a generated trace into structure-of-arrays form.

    One flattening pass over the instruction streams builds the lane
    arrays; the coalesced request arrays come from a single vectorized
    :func:`~repro.gpu.coalescer.coalesce_arrays` call over every
    instruction at once.  Scratchpad instructions contribute zero
    requests (they never reach the memory hierarchy).
    """
    if trace.address_space is None:
        raise ValueError("only traces with an address space can be compiled")
    lanes: List[int] = []
    lane_counts: List[int] = []
    flags: List[int] = []
    cu_bounds: List[int] = [0]
    for stream in trace.per_cu:
        for inst in stream:
            lane_counts.append(inst.n_lanes)
            flags.append(int(inst.is_write) | (int(inst.scratchpad) << 1))
            lanes.extend(inst.addresses)
        cu_bounds.append(len(lane_counts))
    lanes_arr = np.asarray(lanes, dtype=np.int64)
    lane_counts_arr = np.asarray(lane_counts, dtype=np.int64)
    flags_arr = np.asarray(flags, dtype=np.int8)
    req_line, req_lanes, counts = coalesce_arrays(
        lanes_arr, lane_counts_arr, line_size)
    scratch = (flags_arr & 2) != 0
    if bool(scratch.any()):
        # Drop scratchpad instructions' requests: they coalesce to None.
        inst_of_req = np.repeat(
            np.arange(len(counts), dtype=np.int64), counts)
        keep = ~scratch[inst_of_req]
        req_line = req_line[keep]
        req_lanes = req_lanes[keep]
        counts = np.where(scratch, 0, counts)
    return CompiledTrace(
        name=trace.name,
        issue_interval=trace.issue_interval,
        metadata=dict(trace.metadata),
        address_space=trace.address_space,
        line_size=line_size,
        cu_bounds=np.asarray(cu_bounds, dtype=np.int64),
        inst_flags=flags_arr,
        inst_req_counts=np.asarray(counts, dtype=np.int64),
        req_line=np.asarray(req_line, dtype=np.int64),
        req_lanes=np.asarray(req_lanes, dtype=np.int64),
        lane_counts=lane_counts_arr,
        lanes=lanes_arr,
    )


def store_key(name: str, scale: float, seed: Optional[int],
              line_size: int = DEFAULT_LINE_SIZE) -> str:
    """Directory name for one compilation: workload, scale, seed, line size."""
    seed_part = "default" if seed is None else str(seed)
    return (f"{name}-s{scale!r}-seed{seed_part}-ls{line_size}"
            f"-v{COMPILED_FORMAT_VERSION}")


def save_compiled(compiled: CompiledTrace, directory: Union[str, Path],
                  scale: float, seed: Optional[int]) -> Path:
    """Write one compilation directory atomically; returns its path.

    The arrays land in a temp directory first and are renamed into
    place, so a reader never sees a half-written compilation and a
    concurrent writer race resolves to whichever rename wins.
    """
    directory = Path(directory)
    directory.parent.mkdir(parents=True, exist_ok=True)
    tmp = Path(tempfile.mkdtemp(dir=str(directory.parent), prefix=".tmp-"))
    try:
        arrays = {
            "cu_bounds": compiled._cu_bounds,
            "inst_flags": compiled._inst_flags,
            "inst_req_counts": compiled._inst_req_counts,
            "req_line": compiled._req_line,
            "req_lanes": compiled._req_lanes,
            "lane_counts": compiled._lane_counts,
            "lanes": compiled._lanes,
        }
        for stem, dtype in _ARRAY_FILES:
            np.save(tmp / f"{stem}.npy",
                    np.ascontiguousarray(arrays[stem], dtype=dtype))
        meta = {
            "format": COMPILED_FORMAT_VERSION,
            "name": compiled.name,
            "scale": scale,
            "seed": seed,
            "line_size": compiled.line_size,
            "issue_interval": compiled.issue_interval,
            "asid": compiled.address_space.asid,
            "metadata": compiled.metadata,
            "mappings": mapping_rows(compiled.address_space),
            "counts": {
                "instructions": compiled.n_instructions,
                "cus": compiled.n_cus,
                "requests": int(compiled._req_line.size),
                "lanes": int(compiled._lanes.size),
            },
        }
        (tmp / "meta.json").write_text(json.dumps(meta, indent=1,
                                                  sort_keys=True))
        try:
            os.replace(tmp, directory)
        except OSError:
            # A concurrent writer won the race (or the target is
            # otherwise occupied): keep theirs, discard ours.
            shutil.rmtree(tmp, ignore_errors=True)
    except BaseException:
        shutil.rmtree(tmp, ignore_errors=True)
        raise
    return directory


def load_compiled(directory: Union[str, Path]) -> Optional[CompiledTrace]:
    """Load (mmap) one compilation directory; ``None`` if absent/corrupt.

    Arrays are opened with ``mmap_mode='r'`` so concurrent processes
    replaying the same compilation share the page cache instead of
    each holding a private copy.  Any structural problem — unreadable
    JSON, missing array, shape mismatch, failed validation — deletes
    the directory and returns ``None``: the caller regenerates and the
    next save repairs the cache.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return None
    try:
        meta = json.loads((directory / "meta.json").read_text())
        if meta.get("format") != COMPILED_FORMAT_VERSION:
            raise ValueError(f"format {meta.get('format')!r}")
        arrays = {}
        for stem, dtype in _ARRAY_FILES:
            arr = np.load(directory / f"{stem}.npy", mmap_mode="r")
            if arr.dtype != np.dtype(dtype) or arr.ndim != 1:
                raise ValueError(f"{stem}.npy has dtype {arr.dtype}, "
                                 f"ndim {arr.ndim}")
            arrays[stem] = arr
        counts = meta["counts"]
        if (len(arrays["inst_flags"]) != counts["instructions"]
                or len(arrays["cu_bounds"]) != counts["cus"] + 1
                or len(arrays["req_line"]) != counts["requests"]
                or len(arrays["lanes"]) != counts["lanes"]):
            raise ValueError("array lengths disagree with recorded counts")
        space = rebuild_address_space(meta["asid"], meta["mappings"])
        compiled = CompiledTrace(
            name=meta["name"],
            issue_interval=meta["issue_interval"],
            metadata=meta["metadata"],
            address_space=space,
            line_size=meta["line_size"],
            cu_bounds=arrays["cu_bounds"],
            inst_flags=arrays["inst_flags"],
            inst_req_counts=arrays["inst_req_counts"],
            req_line=arrays["req_line"],
            req_lanes=arrays["req_lanes"],
            lane_counts=arrays["lane_counts"],
            lanes=arrays["lanes"],
        )
        compiled.validate_fast()
        return compiled
    except (KeyboardInterrupt, SystemExit):
        raise
    except Exception:
        # Corrupt, truncated, foreign, or version-skewed: drop it so
        # the next save rebuilds a good compilation.
        shutil.rmtree(directory, ignore_errors=True)
        return None


class TraceStore:
    """A directory of compiled traces keyed by (workload, scale, seed).

    ``hits``/``misses``/``stores`` count this process's traffic; the
    bench harness reads them to label each point's trace stage.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def path_for(self, name: str, scale: float, seed: Optional[int],
                 line_size: int = DEFAULT_LINE_SIZE) -> Path:
        return self.root / store_key(name, scale, seed, line_size)

    def load(self, name: str, scale: float, seed: Optional[int],
             line_size: int = DEFAULT_LINE_SIZE) -> Optional[CompiledTrace]:
        compiled = load_compiled(self.path_for(name, scale, seed, line_size))
        if compiled is None:
            self.misses += 1
        else:
            self.hits += 1
        return compiled

    def store(self, trace: Trace, scale: float, seed: Optional[int],
              line_size: int = DEFAULT_LINE_SIZE) -> Optional[Path]:
        """Compile and persist ``trace``; ``None`` if it cannot be stored.

        I/O failures (full disk, permissions) are swallowed — losing a
        compilation only costs a regeneration next time.
        """
        try:
            compiled = compile_trace(trace, line_size)
            path = save_compiled(
                compiled, self.path_for(trace.name, scale, seed, line_size),
                scale, seed)
        except (KeyboardInterrupt, SystemExit):
            raise
        except (OSError, ValueError):
            return None
        self.stores += 1
        return path
