"""Building blocks for GPU-kernel trace generation.

Workload generators in this package *run the actual algorithms* (BFS
levels, PageRank sweeps, Floyd–Warshall updates, …) over data structures
laid out in a simulated virtual address space, and record the per-lane
addresses each warp-sized step would issue.  :class:`DeviceArray` is the
layout piece (an array living in the address space); :class:`TraceBuilder`
is the recording piece; :func:`warp_chunks` is the work distributor
(block-cyclic warp scheduling over the CUs, as GPU runtimes do).

Trace *sampling*: real kernels execute millions of warps; the simulator
is a Python model, so generators may emit only every ``sample``-th warp.
Sampling keeps the access *pattern* (strides, gathers, page reuse,
divergence) while bounding trace length; footprints are unchanged.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple

import numpy as np

from repro.memsys.address_space import AddressSpace, Mapping
from repro.memsys.permissions import Permissions
from repro.workloads.trace import MemoryInstruction, Trace

__all__ = [
    "DeviceArray",
    "LANES",
    "TraceBuilder",
    "clamp_indices",
    "strided_lane_addresses",
    "warp_chunks",
]

LANES = 32


class DeviceArray:
    """A typed array resident in the simulated virtual address space."""

    def __init__(
        self,
        space: AddressSpace,
        n_elements: int,
        element_size: int = 4,
        name: str = "array",
        permissions: Permissions = Permissions.READ_WRITE,
    ) -> None:
        if n_elements <= 0:
            raise ValueError("array must have at least one element")
        self.space = space
        self.n_elements = n_elements
        self.element_size = element_size
        self.name = name
        self.mapping: Mapping = space.alloc_array(n_elements, element_size, permissions)

    @property
    def base_va(self) -> int:
        return self.mapping.base_va

    def addr(self, index: int) -> int:
        """Virtual byte address of ``self[index]``."""
        if not 0 <= index < self.n_elements:
            raise IndexError(f"{self.name}[{index}] out of bounds ({self.n_elements})")
        return self.mapping.base_va + index * self.element_size

    def addrs(self, indices: Iterable[int]) -> List[int]:
        """Virtual byte addresses for a gather over ``indices``."""
        base = self.mapping.base_va
        size = self.element_size
        return [base + int(i) * size for i in indices]

    def row_addr(self, row: int, col: int, n_cols: int) -> int:
        """Address of element (row, col) of a row-major 2-D view."""
        return self.addr(row * n_cols + col)


class TraceBuilder:
    """Accumulates per-CU memory-instruction streams into a Trace."""

    def __init__(self, n_cus: int = 16, lanes: int = LANES) -> None:
        if n_cus <= 0:
            raise ValueError("need at least one CU")
        self.n_cus = n_cus
        self.lanes = lanes
        self.streams: List[List[MemoryInstruction]] = [[] for _ in range(n_cus)]

    def emit(self, cu: int, addresses: Sequence[int], is_write: bool = False) -> None:
        """Record one global-memory instruction on ``cu``."""
        self.streams[cu % self.n_cus].append(
            MemoryInstruction(addresses=tuple(addresses), is_write=is_write)
        )

    def emit_scratch(self, cu: int, is_write: bool = False) -> None:
        """Record one scratchpad instruction (no TLB/cache traffic)."""
        self.streams[cu % self.n_cus].append(
            MemoryInstruction(addresses=(0,), is_write=is_write, scratchpad=True)
        )

    def emit_scratch_burst(self, cu: int, count: int) -> None:
        """Record ``count`` scratchpad instructions (tile compute phases)."""
        for _ in range(count):
            self.emit_scratch(cu)

    def build(
        self,
        name: str,
        space: AddressSpace,
        issue_interval: float,
        **metadata,
    ) -> Trace:
        """Finalize into a :class:`Trace`."""
        streams = [s for s in self.streams if s]
        if not streams:
            raise ValueError(f"workload {name!r} produced an empty trace")
        return Trace(
            name=name,
            per_cu=streams,
            address_space=space,
            issue_interval=issue_interval,
            metadata=dict(metadata),
        )


def warp_chunks(
    n_items: int,
    n_cus: int,
    lanes: int = LANES,
    sample: int = 1,
) -> Iterator[Tuple[int, int, int]]:
    """Block-cyclic warp scheduling: yield ``(cu, start, count)`` chunks.

    Work item ranges of ``lanes`` elements are dealt to CUs round-robin.
    With ``sample > 1`` only every ``sample``-th warp is emitted (trace
    sampling; see the module docstring).
    """
    if n_items <= 0:
        return
    if sample <= 0:
        raise ValueError("sample must be positive")
    warp = 0
    emitted = 0
    for start in range(0, n_items, lanes):
        if warp % sample == 0:
            count = min(lanes, n_items - start)
            # Deal by *emitted* warp so sampling never starves CUs.
            yield emitted % n_cus, start, count
            emitted += 1
        warp += 1


def strided_lane_addresses(
    array: DeviceArray, start_index: int, count: int, stride: int = 1
) -> List[int]:
    """Lane addresses for ``array[start + k*stride]``, k in [0, count)."""
    base = array.base_va + start_index * array.element_size
    step = stride * array.element_size
    return [base + k * step for k in range(count)]


def clamp_indices(indices: np.ndarray, n: int) -> np.ndarray:
    """Clip gather indices into [0, n) (guard for synthetic data)."""
    return np.clip(indices, 0, n - 1)
