"""Graph substrate for the Pannotia-like workloads.

Pannotia's inputs are real-world scale-free graphs; their skewed degree
distributions are why the graph workloads show both poor page locality
(neighbor gathers touch many pages) *and* meaningful cache hit rates
(hub vertices are hot).  We generate power-law graphs with a fast
preferential-attachment process and store them in CSR form, the layout
the GPU kernels index.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


__all__ = [
    "CSRGraph",
    "edge_positions",
    "grid_graph",
    "powerlaw_graph",
    "segment_max",
    "segment_min",
    "uniform_random_graph",
    "zipf_graph",
]


@dataclass
class CSRGraph:
    """Compressed-sparse-row adjacency."""

    n_vertices: int
    row_ptr: np.ndarray  # int64, length n_vertices + 1
    col_idx: np.ndarray  # int32, length n_edges

    def __post_init__(self) -> None:
        if len(self.row_ptr) != self.n_vertices + 1:
            raise ValueError("row_ptr length must be n_vertices + 1")
        if self.row_ptr[0] != 0 or self.row_ptr[-1] != len(self.col_idx):
            raise ValueError("row_ptr must start at 0 and end at n_edges")
        if np.any(np.diff(self.row_ptr) < 0):
            raise ValueError("row_ptr must be nondecreasing")

    @property
    def n_edges(self) -> int:
        return len(self.col_idx)

    def degree(self, v: int) -> int:
        return int(self.row_ptr[v + 1] - self.row_ptr[v])

    def neighbors(self, v: int) -> np.ndarray:
        return self.col_idx[self.row_ptr[v]:self.row_ptr[v + 1]]

    def out_degrees(self) -> np.ndarray:
        return np.diff(self.row_ptr)


def powerlaw_graph(n_vertices: int, mean_degree: int = 8, seed: int = 0) -> CSRGraph:
    """A scale-free graph via preferential attachment (vectorized).

    Each new vertex attaches ``mean_degree`` edges to targets sampled
    with probability proportional to (current degree + 1), realized
    cheaply by sampling uniformly from the running edge-endpoint list —
    the standard repeated-nodes trick for Barabási–Albert graphs.
    """
    if n_vertices < 2:
        raise ValueError("need at least two vertices")
    if mean_degree < 1:
        raise ValueError("mean degree must be at least 1")
    rng = np.random.default_rng(seed)
    m = mean_degree
    # Endpoint pool: sampling uniformly from it = degree-proportional.
    pool = np.zeros(2 * m * n_vertices, dtype=np.int64)
    pool_len = 0
    sources = np.empty(m * n_vertices, dtype=np.int64)
    targets = np.empty(m * n_vertices, dtype=np.int64)
    n_edges = 0

    seed_count = min(m + 1, n_vertices)
    for v in range(1, seed_count):  # small seed clique path
        sources[n_edges] = v
        targets[n_edges] = v - 1
        pool[pool_len] = v
        pool[pool_len + 1] = v - 1
        pool_len += 2
        n_edges += 1

    for v in range(seed_count, n_vertices):
        picks = pool[rng.integers(0, pool_len, size=m)]
        for t in picks:
            sources[n_edges] = v
            targets[n_edges] = t
            n_edges += 1
        pool[pool_len:pool_len + m] = picks
        pool[pool_len + m:pool_len + 2 * m] = v
        pool_len += 2 * m

    src = np.concatenate([sources[:n_edges], targets[:n_edges]])
    dst = np.concatenate([targets[:n_edges], sources[:n_edges]])
    return _csr_from_edges(n_vertices, src, dst)


def uniform_random_graph(n_vertices: int, mean_degree: int = 8, seed: int = 0) -> CSRGraph:
    """An Erdős–Rényi-style graph (no hubs — the hard case for caches)."""
    if n_vertices < 2:
        raise ValueError("need at least two vertices")
    rng = np.random.default_rng(seed)
    n_edges = n_vertices * mean_degree // 2
    src = rng.integers(0, n_vertices, size=n_edges)
    dst = rng.integers(0, n_vertices, size=n_edges)
    keep = src != dst
    src, dst = src[keep], dst[keep]
    return _csr_from_edges(n_vertices, np.concatenate([src, dst]),
                           np.concatenate([dst, src]))


def grid_graph(side: int) -> CSRGraph:
    """A 2-D grid (4-neighborhood) — the regular extreme."""
    if side < 2:
        raise ValueError("grid side must be at least 2")
    n = side * side
    src_list = []
    dst_list = []
    idx = np.arange(n).reshape(side, side)
    right = np.stack([idx[:, :-1].ravel(), idx[:, 1:].ravel()])
    down = np.stack([idx[:-1, :].ravel(), idx[1:, :].ravel()])
    src = np.concatenate([right[0], down[0]])
    dst = np.concatenate([right[1], down[1]])
    return _csr_from_edges(n, np.concatenate([src, dst]), np.concatenate([dst, src]))


def zipf_graph(
    n_vertices: int,
    mean_degree: int = 8,
    exponent: float = 1.1,
    seed: int = 0,
    symmetric: bool = False,
) -> CSRGraph:
    """A directed graph whose edge *targets* follow a Zipf popularity law.

    Real scale-free inputs (road/web/social graphs in Pannotia) have
    heavy-tailed in-degree: a small set of hub vertices receives a large
    share of all edges.  This generator gives direct control over that
    skew — ``exponent`` ≈ 1.0–1.3 matches common web/social graphs —
    and then *scatters* the hubs across the ID space with a random
    permutation, as real vertex labelings do.  The scatter matters: hub
    *lines* stay hot in the caches while hub *pages* are too many and
    too spread out for a small TLB to cover, which is precisely the
    behaviour (cache hit, TLB miss) that makes virtual caches filter
    translations.
    """
    if n_vertices < 2:
        raise ValueError("need at least two vertices")
    if exponent <= 0:
        raise ValueError("Zipf exponent must be positive")
    rng = np.random.default_rng(seed)
    out_degree = rng.poisson(mean_degree, size=n_vertices).astype(np.int64)
    out_degree = np.maximum(out_degree, 1)
    n_edges = int(out_degree.sum())
    # Zipf-distributed target ranks via inverse-CDF sampling.
    ranks = np.arange(1, n_vertices + 1, dtype=np.float64)
    weights = ranks ** (-exponent)
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    target_ranks = np.searchsorted(cdf, rng.random(n_edges))
    # Scatter hubs: rank r lives at a random vertex ID.
    perm = rng.permutation(n_vertices)
    dst = perm[target_ranks]
    src = np.repeat(np.arange(n_vertices, dtype=np.int64), out_degree)
    if symmetric:
        # Undirected view (traversal workloads need full reachability).
        src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
    return _csr_from_edges(n_vertices, src, dst)


def edge_positions(graph: CSRGraph, vertices: np.ndarray) -> np.ndarray:
    """Positions in ``col_idx`` of all edges of ``vertices`` (vectorized)."""
    verts = np.asarray(vertices, dtype=np.int64)
    if len(verts) == 0:
        return np.empty(0, dtype=np.int64)
    starts = graph.row_ptr[verts]
    lens = (graph.row_ptr[verts + 1] - starts).astype(np.int64)
    total = int(lens.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    # repeat each start, then add 0..len-1 within each segment
    seg_ids = np.repeat(np.arange(len(verts)), lens)
    offsets = np.arange(total) - np.repeat(np.cumsum(lens) - lens, lens)
    return starts[seg_ids] + offsets


def segment_max(graph: CSRGraph, values: np.ndarray,
                fill: float = -np.inf) -> np.ndarray:
    """Per-vertex max of ``values`` over each vertex's neighbors."""
    vals = values[graph.col_idx]
    out = np.full(graph.n_vertices, fill, dtype=np.float64)
    nonempty = graph.row_ptr[:-1] < graph.row_ptr[1:]
    if vals.size:
        seg = np.maximum.reduceat(vals, graph.row_ptr[:-1].clip(max=len(vals) - 1))
        out[nonempty] = seg[nonempty]
    return out


def segment_min(graph: CSRGraph, values: np.ndarray,
                fill: float = np.inf) -> np.ndarray:
    """Per-vertex min of ``values`` over each vertex's neighbors."""
    vals = values[graph.col_idx]
    out = np.full(graph.n_vertices, fill, dtype=np.float64)
    nonempty = graph.row_ptr[:-1] < graph.row_ptr[1:]
    if vals.size:
        seg = np.minimum.reduceat(vals, graph.row_ptr[:-1].clip(max=len(vals) - 1))
        out[nonempty] = seg[nonempty]
    return out


def _csr_from_edges(n_vertices: int, src: np.ndarray, dst: np.ndarray) -> CSRGraph:
    order = np.argsort(src, kind="stable")
    src_sorted = src[order]
    dst_sorted = dst[order]
    counts = np.bincount(src_sorted, minlength=n_vertices)
    row_ptr = np.zeros(n_vertices + 1, dtype=np.int64)
    np.cumsum(counts, out=row_ptr[1:])
    return CSRGraph(
        n_vertices=n_vertices,
        row_ptr=row_ptr,
        col_idx=dst_sorted.astype(np.int32),
    )
