"""Pannotia-like irregular graph workloads.

Eight kernels mirroring the Pannotia suite the paper evaluates:
``bc``, ``color_maxmin``, ``color_max``, ``fw``, ``fw_block``, ``mis``,
``pagerank``, ``pagerank_spmv``.  State-dependent algorithms (BFS
frontiers, colouring rounds, Luby's MIS) are *actually executed* with
numpy over a skewed graph; the trace records the lane addresses each
warp would issue.  These workloads are the paper's "high translation
bandwidth" group: neighbor gathers scatter across hundreds of pages
(poor TLB locality) while hub vertices keep the caches warm (good
virtual-cache filtering).

``fw``/``fw_block`` are dense Floyd–Warshall variants: the unblocked
kernel's column-strided accesses span one page per lane — the paper's
example of extreme memory divergence (9.3 accesses per instruction) —
while the blocked version stages 32×32 tiles through the scratchpad.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.memsys.address_space import AddressSpace
from repro.workloads.device import DeviceArray, TraceBuilder, warp_chunks
from repro.workloads.graphs import (
    CSRGraph,
    edge_positions,
    segment_max,
    segment_min,
    zipf_graph,
)
from repro.workloads.trace import Trace

__all__ = [
    "LANES",
    "N_CUS",
    "bc",
    "color_max",
    "color_maxmin",
    "fw",
    "fw_block",
    "mis",
    "pagerank",
    "pagerank_spmv",
]

N_CUS = 16
LANES = 32


def _scaled(value: int, scale: float, minimum: int = 1) -> int:
    return max(minimum, int(value * scale))


class _GraphKernel:
    """Shared setup for CSR graph kernels: layout + frontier sweeps."""

    def __init__(self, n_vertices: int, mean_degree: int, seed: int,
                 n_cus: int = N_CUS, zipf_exponent: float = 1.2,
                 symmetric: bool = False) -> None:
        self.graph = zipf_graph(n_vertices, mean_degree, exponent=zipf_exponent,
                                seed=seed, symmetric=symmetric)
        self.space = AddressSpace(asid=0)
        self.tb = TraceBuilder(n_cus=n_cus)
        self.n_cus = n_cus
        g = self.graph
        self.row_arr = DeviceArray(self.space, g.n_vertices + 1, 8, "row_ptr")
        self.col_arr = DeviceArray(self.space, max(1, g.n_edges), 4, "col_idx")
        self.rng = np.random.default_rng(seed + 1)

    def prop(self, name: str, element_size: int = 4) -> DeviceArray:
        """Allocate one per-vertex property array."""
        return DeviceArray(self.space, self.graph.n_vertices, element_size, name)

    # -- the core sweep -----------------------------------------------------
    def frontier_pass(
        self,
        frontier: np.ndarray,
        gathers: Sequence[DeviceArray],
        scatter_writes: Optional[DeviceArray] = None,
        vertex_writes: Optional[DeviceArray] = None,
        frontier_array: Optional[DeviceArray] = None,
        sample: int = 1,
        edge_cap: int = 64,
        edge_offset: int = 0,
    ) -> None:
        """One GPU sweep over ``frontier`` vertices.

        Per warp of frontier entries the kernel issues: the frontier
        load (when the frontier is a compacted array), the row_ptr
        gather, then per 32-edge chunk the col_idx load, one gather per
        array in ``gathers`` (the divergent accesses), and optional
        scatter writes to neighbors; finally per-vertex result writes.
        ``edge_cap`` bounds edges traced per warp (hub truncation —
        trace sampling, not an algorithm change); ``edge_offset``
        rotates which edges are kept across iterations.
        """
        frontier = np.asarray(frontier, dtype=np.int64)
        g = self.graph
        for cu, start, count in warp_chunks(len(frontier), self.n_cus, sample=sample):
            verts = frontier[start:start + count]
            if frontier_array is not None:
                self.tb.emit(cu, frontier_array.addrs(range(start, start + count)))
            self.tb.emit(cu, self.row_arr.addrs(verts))

            eps = edge_positions(g, verts)
            if len(eps) > edge_cap:
                # Even subsampling with a rotating phase: keeps the
                # spread over the warp's edge ranges.
                sel = (np.arange(edge_cap) * len(eps)) // edge_cap
                eps = eps[(sel + edge_offset) % len(eps)]
            for chunk_start in range(0, len(eps), LANES):
                chunk = eps[chunk_start:chunk_start + LANES]
                cols = g.col_idx[chunk]
                self.tb.emit(cu, self.col_arr.addrs(chunk))
                for arr in gathers:
                    self.tb.emit(cu, arr.addrs(cols))
                if scatter_writes is not None:
                    self.tb.emit(cu, scatter_writes.addrs(cols), is_write=True)
            if vertex_writes is not None:
                self.tb.emit(cu, vertex_writes.addrs(verts), is_write=True)

    def build(self, name: str, issue_interval: float, **metadata) -> Trace:
        metadata.setdefault("suite", "pannotia")
        metadata.setdefault("high_bandwidth", True)
        metadata.setdefault("n_vertices", self.graph.n_vertices)
        metadata.setdefault("n_edges", self.graph.n_edges)
        return self.tb.build(name, self.space, issue_interval, **metadata)


# ---------------------------------------------------------------------------
# PageRank (vertex-centric) and its SpMV formulation
# ---------------------------------------------------------------------------

def pagerank(scale: float = 1.0, seed: int = 0) -> Trace:
    """Vertex-centric PageRank: gather neighbor ranks, scale, store."""
    k = _GraphKernel(_scaled(160_000, scale, 4096), mean_degree=8, seed=seed)
    pr_old = k.prop("pr_old")
    pr_new = k.prop("pr_new")
    all_vertices = np.arange(k.graph.n_vertices)
    for it in range(2):
        k.frontier_pass(
            all_vertices,
            gathers=[pr_old],
            vertex_writes=pr_new,
            sample=8,
            edge_cap=64,
            edge_offset=it * 17,
        )
        pr_old, pr_new = pr_new, pr_old
    return k.build("pagerank", issue_interval=50.0)


def pagerank_spmv(scale: float = 1.0, seed: int = 1) -> Trace:
    """SpMV-formulated PageRank: edge-parallel y += A·x sweeps."""
    k = _GraphKernel(_scaled(160_000, scale, 4096), mean_degree=8, seed=seed)
    g = k.graph
    x = k.prop("x")
    y = k.prop("y")
    val = DeviceArray(k.space, max(1, g.n_edges), 4, "values")
    rows_of_edge = np.repeat(np.arange(g.n_vertices), g.out_degrees())
    sample = 24
    for _it in range(2):
        for cu, start, count in warp_chunks(g.n_edges, k.n_cus, sample=sample):
            positions = range(start, start + count)
            cols = g.col_idx[start:start + count]
            k.tb.emit(cu, k.col_arr.addrs(positions))       # streaming col_idx
            k.tb.emit(cu, val.addrs(positions))             # streaming values
            k.tb.emit(cu, x.addrs(cols))                    # divergent gather
            k.tb.emit(cu, y.addrs(rows_of_edge[start:start + count]), is_write=True)
        x, y = y, x
    return k.build("pagerank_spmv", issue_interval=37.0)


# ---------------------------------------------------------------------------
# BFS-based kernels: bc (betweenness centrality)
# ---------------------------------------------------------------------------

def _bfs_levels(graph: CSRGraph, source: int) -> List[np.ndarray]:
    """Level-synchronous BFS (vectorized); returns each level's frontier."""
    dist = np.full(graph.n_vertices, -1, dtype=np.int64)
    dist[source] = 0
    frontier = np.array([source], dtype=np.int64)
    levels = [frontier]
    level = 0
    while len(frontier):
        level += 1
        eps = edge_positions(graph, frontier)
        targets = np.unique(graph.col_idx[eps])
        new = targets[dist[targets] < 0]
        if len(new) == 0:
            break
        dist[new] = level
        levels.append(new)
        frontier = new
    return levels


def bc(scale: float = 1.0, seed: int = 2) -> Trace:
    """Betweenness centrality: forward BFS + backward dependency pass."""
    k = _GraphKernel(_scaled(120_000, scale, 4096), mean_degree=6, seed=seed,
                     symmetric=True)
    dist = k.prop("dist")
    sigma = k.prop("sigma")
    delta = k.prop("delta")
    frontier_buf = k.prop("frontier")
    source = int(k.rng.integers(0, k.graph.n_vertices))
    levels = _bfs_levels(k.graph, source)
    for level in levels:
        k.frontier_pass(
            level,
            gathers=[dist],
            scatter_writes=sigma,
            frontier_array=frontier_buf,
            sample=6,
            edge_cap=64,
        )
    for level in reversed(levels):
        k.frontier_pass(
            level,
            gathers=[sigma, delta],
            frontier_array=frontier_buf,
            vertex_writes=delta,
            sample=6,
            edge_cap=64,
        )
    return k.build("bc", issue_interval=110.0)


# ---------------------------------------------------------------------------
# Graph colouring (max and max-min) and maximal independent set
# ---------------------------------------------------------------------------

def _color_rounds(graph: CSRGraph, rng: np.random.Generator,
                  maxmin: bool, max_rounds: int) -> List[np.ndarray]:
    """Run greedy parallel colouring (vectorized); per-round active sets."""
    priority = rng.permutation(graph.n_vertices).astype(np.float64)
    active = np.ones(graph.n_vertices, dtype=bool)
    rounds: List[np.ndarray] = []
    for _ in range(max_rounds):
        ids = np.flatnonzero(active)
        if len(ids) == 0:
            break
        rounds.append(ids)
        masked = np.where(active, priority, -np.inf)
        nmax = segment_max(graph, masked)
        chosen = active & (priority > nmax)
        if maxmin:
            masked_min = np.where(active, priority, np.inf)
            nmin = segment_min(graph, masked_min)
            chosen |= active & (priority < nmin)
        if not chosen.any():
            break
        active &= ~chosen
    return rounds


def _color_workload(name: str, maxmin: bool, scale: float, seed: int) -> Trace:
    k = _GraphKernel(_scaled(120_000, scale, 4096), mean_degree=8, seed=seed)
    priority = k.prop("priority")
    color = k.prop("color")
    worklist = k.prop("worklist")
    rounds = _color_rounds(k.graph, k.rng, maxmin=maxmin, max_rounds=5)
    gathers = [priority, color]
    for i, active in enumerate(rounds):
        k.frontier_pass(
            active,
            gathers=gathers,
            frontier_array=worklist,
            vertex_writes=color,
            sample=10,
            edge_cap=64,
            edge_offset=i * 13,
        )
    return k.build(name, issue_interval=70.0)


def color_max(scale: float = 1.0, seed: int = 3) -> Trace:
    """Greedy graph colouring, max-priority rule."""
    return _color_workload("color_max", maxmin=False, scale=scale, seed=seed)


def color_maxmin(scale: float = 1.0, seed: int = 4) -> Trace:
    """Greedy graph colouring choosing both max- and min-priority vertices."""
    return _color_workload("color_maxmin", maxmin=True, scale=scale, seed=seed)


def mis(scale: float = 1.0, seed: int = 5) -> Trace:
    """Luby's maximal independent set: the most divergent graph kernel."""
    k = _GraphKernel(_scaled(130_000, scale, 4096), mean_degree=8, seed=seed)
    priority = k.prop("priority")
    state = k.prop("state")
    worklist = k.prop("worklist")
    g = k.graph
    prio = k.rng.permutation(g.n_vertices).astype(np.float64)
    active = np.ones(g.n_vertices, dtype=bool)
    for round_no in range(8):
        ids = np.flatnonzero(active)
        if len(ids) == 0:
            break
        k.frontier_pass(
            ids,
            gathers=[priority, state],
            scatter_writes=state,
            frontier_array=worklist,
            vertex_writes=state,
            sample=10,
            edge_cap=64,
            edge_offset=round_no * 11,
        )
        # Luby's selection (vectorized): local maxima join the MIS,
        # their neighbors leave the active set.
        masked = np.where(active, prio, -np.inf)
        nmax = segment_max(g, masked)
        chosen = active & (prio > nmax)
        if not chosen.any():
            break
        active &= ~chosen
        eps = edge_positions(g, np.flatnonzero(chosen))
        active[g.col_idx[eps]] = False
    return k.build("mis", issue_interval=41.0)


# ---------------------------------------------------------------------------
# Floyd–Warshall: unblocked (fw) and blocked (fw_block)
# ---------------------------------------------------------------------------

_FW_N = 1024  # 4 KB rows: one page per row, so column strides span pages


def fw(scale: float = 1.0, seed: int = 6) -> Trace:
    """Unblocked Floyd–Warshall over a dense distance matrix.

    Warps alternate between row-parallel (lanes over j: coalesced) and
    column-parallel (lanes over i: one page per lane) phases; the column
    phases are the extreme scatter/gather divergence §3.1 highlights.
    The matrix edge is fixed at 1024 (4 KB rows) so a column access
    touches one page per lane; ``scale`` varies the number of traced
    pivot steps.
    """
    n = _FW_N
    space = AddressSpace(asid=0)
    tb = TraceBuilder(n_cus=N_CUS)
    d = DeviceArray(space, n * n, 4, "dist")
    row_bytes = n * 4
    k_steps = _scaled(4, scale, 2)
    rng = np.random.default_rng(seed)
    k_values = sorted(rng.choice(n, size=min(k_steps, n), replace=False))
    sample = 32
    for step, kk in enumerate(k_values):
        kk = int(kk)
        if step % 2 == 0:
            # Row-parallel: for rows i, lanes cover consecutive j.
            for cu, start, count in warp_chunks(n * n, N_CUS, sample=sample):
                i, j0 = divmod(start, n)
                count = min(count, n - j0)
                base = d.base_va + i * row_bytes + j0 * 4
                row_j = [base + c * 4 for c in range(count)]
                k_row = [d.base_va + kk * row_bytes + (j0 + c) % n * 4
                         for c in range(count)]
                tb.emit(cu, row_j)                                   # d[i][j..]
                tb.emit(cu, [d.base_va + i * row_bytes + kk * 4])    # d[i][k]
                tb.emit(cu, k_row)                                   # d[k][j..]
                tb.emit(cu, row_j, is_write=True)
        else:
            # Column-parallel: lanes cover consecutive i — one page each.
            for cu, start, count in warp_chunks(n * n, N_CUS, sample=sample):
                j, i0 = divmod(start, n)
                count = min(count, n - i0)
                col_i = [d.base_va + (i0 + c) * row_bytes + j * 4
                         for c in range(count)]
                col_k = [d.base_va + (i0 + c) * row_bytes + kk * 4
                         for c in range(count)]
                tb.emit(cu, col_i)                                   # d[i..][j]
                tb.emit(cu, col_k)                                   # d[i..][k]
                tb.emit(cu, [d.base_va + kk * row_bytes + j * 4])    # d[k][j]
                tb.emit(cu, col_i, is_write=True)
    return tb.build("fw", space, issue_interval=10.0,
                    suite="pannotia", high_bandwidth=True, matrix_n=n)


def fw_block(scale: float = 1.0, seed: int = 7) -> Trace:
    """Blocked Floyd–Warshall: 32×32 tiles staged through the scratchpad."""
    n = _FW_N
    space = AddressSpace(asid=0)
    tb = TraceBuilder(n_cus=N_CUS)
    d = DeviceArray(space, n * n, 4, "dist")
    row_bytes = n * 4
    tiles = n // LANES
    rng = np.random.default_rng(seed)
    k_blocks = sorted(int(b) for b in rng.choice(
        tiles, size=min(_scaled(4, scale, 2), tiles), replace=False))
    tile_sample = 9

    def load_tile(cu: int, ti: int, tj: int, write: bool = False) -> None:
        # 32 rows of a 32×32 tile; each row is one 128-byte line.
        for r in range(LANES):
            base = d.base_va + (ti * LANES + r) * row_bytes + tj * LANES * 4
            tb.emit(cu, [base + c * 4 for c in range(LANES)], is_write=write)

    for kb in k_blocks:
        # Phase 1: the pivot tile, computed in scratchpad.
        load_tile(0, kb, kb)
        tb.emit_scratch_burst(0, 32)
        load_tile(0, kb, kb, write=True)
        # Phase 2: pivot row and column panels.
        for t in range(tiles):
            cu = t % N_CUS
            if t == kb:
                continue
            load_tile(cu, kb, t)
            tb.emit_scratch_burst(cu, 16)
            load_tile(cu, kb, t, write=True)
        # Phase 3: sampled interior tiles.
        counter = 0
        for ti in range(tiles):
            for tj in range(tiles):
                if ti == kb or tj == kb:
                    continue
                counter += 1
                if counter % tile_sample:
                    continue
                cu = counter % N_CUS
                load_tile(cu, ti, tj)
                tb.emit_scratch_burst(cu, 16)
                load_tile(cu, ti, tj, write=True)
    return tb.build("fw_block", space, issue_interval=5.0,
                    suite="pannotia", high_bandwidth=True, matrix_n=n)
