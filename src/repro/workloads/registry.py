"""Workload registry: the 15 simulated benchmarks.

The paper's two suites, with the same names and the same
high/low-translation-bandwidth grouping it uses in §5.2 (Figures 9 and
10 show the high-bandwidth group; the low-bandwidth five see little
change from any MMU design).

``REPRO_SCALE`` (environment variable, default 1.0) scales every
workload's problem size / iteration count — useful for quick test runs
(< 1) or longer, closer-to-paper runs (> 1).  Traces are memoized per
``(name, scale, seed)`` because generation (running the algorithms) can
cost as much as simulating them.

When a trace cache directory is configured (:func:`set_trace_cache`, or
the ``REPRO_TRACE_CACHE`` environment variable — which the setter also
exports so spawned pool workers inherit it), :func:`load` consults an
on-disk :class:`~repro.workloads.compiled.TraceStore` before running any
workload algorithm: a warm process mmaps the precompiled,
precoalesced arrays instead of regenerating, and a cold process
compiles once so every later process is warm.  :func:`load_fresh`
never touches the store — fault injection mutates page tables, and a
mutated compilation must never be shared.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.workloads import pannotia, rodinia
from repro.workloads.compiled import TraceStore
from repro.workloads.trace import Trace

__all__ = [
    "HIGH_BANDWIDTH",
    "LOW_BANDWIDTH",
    "PANNOTIA",
    "RODINIA",
    "WORKLOADS",
    "WorkloadFactory",
    "clear_cache",
    "default_scale",
    "is_high_bandwidth",
    "load",
    "load_fresh",
    "load_many",
    "set_trace_cache",
    "trace_cache_stats",
]

WorkloadFactory = Callable[..., Trace]

PANNOTIA: Dict[str, WorkloadFactory] = {
    "bc": pannotia.bc,
    "color_maxmin": pannotia.color_maxmin,
    "color_max": pannotia.color_max,
    "fw": pannotia.fw,
    "fw_block": pannotia.fw_block,
    "mis": pannotia.mis,
    "pagerank": pannotia.pagerank,
    "pagerank_spmv": pannotia.pagerank_spmv,
}

RODINIA: Dict[str, WorkloadFactory] = {
    "kmeans": rodinia.kmeans,
    "backprop": rodinia.backprop,
    "bfs": rodinia.bfs,
    "hotspot": rodinia.hotspot,
    "lud": rodinia.lud,
    "nw": rodinia.nw,
    "pathfinder": rodinia.pathfinder,
}

WORKLOADS: Dict[str, WorkloadFactory] = {**PANNOTIA, **RODINIA}

# §5.2's grouping: all Pannotia kernels plus bfs and lud demand high
# translation bandwidth; the other five Rodinia kernels do not.
HIGH_BANDWIDTH: Tuple[str, ...] = (
    "bc", "color_maxmin", "color_max", "fw", "fw_block", "mis",
    "pagerank", "pagerank_spmv", "bfs", "lud",
)
LOW_BANDWIDTH: Tuple[str, ...] = (
    "kmeans", "backprop", "hotspot", "nw", "pathfinder",
)

_cache: Dict[Tuple[str, float, Optional[int]], Trace] = {}

# On-disk compiled-trace store.  ``_trace_store`` is resolved lazily
# from REPRO_TRACE_CACHE unless set_trace_cache() pinned it explicitly.
_trace_store: Optional[TraceStore] = None
_trace_store_pinned = False


def set_trace_cache(root: Optional[Union[str, Path]]) -> Optional[TraceStore]:
    """Point :func:`load` at an on-disk compiled-trace store (or disable).

    Also exports (or clears) ``REPRO_TRACE_CACHE`` so pool workers
    spawned by the experiment drivers resolve the same store.  Passing
    ``None`` disables the store and drops any memoized compiled traces.
    """
    global _trace_store, _trace_store_pinned
    _trace_store_pinned = True
    if root is None:
        _trace_store = None
        os.environ.pop("REPRO_TRACE_CACHE", None)
        _cache.clear()
    else:
        _trace_store = TraceStore(Path(root))
        os.environ["REPRO_TRACE_CACHE"] = str(root)
    return _trace_store


def _store() -> Optional[TraceStore]:
    global _trace_store
    if not _trace_store_pinned and _trace_store is None:
        root = os.environ.get("REPRO_TRACE_CACHE")
        if root:
            _trace_store = TraceStore(Path(root))
    return _trace_store


def trace_cache_stats() -> Dict[str, int]:
    """This process's trace-store traffic (all zero when disabled)."""
    store = _store()
    if store is None:
        return {"hits": 0, "misses": 0, "stores": 0}
    return {"hits": store.hits, "misses": store.misses,
            "stores": store.stores}


def default_scale() -> float:
    """The REPRO_SCALE environment override (default 1.0)."""
    try:
        scale = float(os.environ.get("REPRO_SCALE", "1.0"))
    except ValueError as exc:
        raise ValueError("REPRO_SCALE must be a number") from exc
    if scale <= 0:
        raise ValueError("REPRO_SCALE must be positive")
    return scale


def load(name: str, scale: Optional[float] = None, seed: Optional[int] = None) -> Trace:
    """Build (or fetch the memoized) trace for workload ``name``."""
    if name not in WORKLOADS:
        raise KeyError(
            f"unknown workload {name!r}; available: {', '.join(sorted(WORKLOADS))}"
        )
    if scale is None:
        scale = default_scale()
    key = (name, scale, seed)
    if key not in _cache:
        store = _store()
        trace = store.load(name, scale, seed) if store is not None else None
        if trace is None:
            kwargs = {"scale": scale}
            if seed is not None:
                kwargs["seed"] = seed
            trace = WORKLOADS[name](**kwargs)
            if store is not None:
                store.store(trace, scale, seed)
        _cache[key] = trace
    return _cache[key]


def load_fresh(name: str, scale: Optional[float] = None,
               seed: Optional[int] = None) -> Trace:
    """Build a private, non-memoized trace instance.

    Fault injection mutates the trace's page table (remaps, unmaps), so
    chaos runs must never share the memoized instance other experiments
    see.  The fresh trace is not entered into the cache either.
    """
    if name not in WORKLOADS:
        raise KeyError(
            f"unknown workload {name!r}; available: {', '.join(sorted(WORKLOADS))}"
        )
    if scale is None:
        scale = default_scale()
    kwargs = {"scale": scale}
    if seed is not None:
        kwargs["seed"] = seed
    return WORKLOADS[name](**kwargs)


def load_many(names, scale: Optional[float] = None) -> List[Trace]:
    """Traces for several workloads (memoized)."""
    return [load(name, scale=scale) for name in names]


def clear_cache() -> None:
    """Drop memoized traces (tests use this to control memory)."""
    _cache.clear()


def is_high_bandwidth(name: str) -> bool:
    """Whether the paper groups this workload as high translation bandwidth."""
    if name not in WORKLOADS:
        raise KeyError(f"unknown workload {name!r}")
    return name in HIGH_BANDWIDTH
